"""Ablations: the design choices DESIGN.md calls out, quantified.

1. **Huge pages vs 4 KB pages** for the NxP data window — the paper
   covers the 4 GB store with four 1 GB pages so the 16-entry TLB almost
   never walks; with 4 KB pages the cross-PCIe walker dominates.
2. **One-burst descriptor DMA vs word-by-word MMIO** (Section IV-B1's
   rationale for the DMA engine).
3. **NxP poll period** sensitivity of the round trip.
4. **NxP core clock** — the paper anticipates hardened (faster) cores
   reduce the overhead further.
5. **Flick vs offload-engine style** — what the transparent abstraction
   costs over a raw busy-polled job queue.
"""

import pytest

from repro.analysis import parallel_map, render_table
from repro.baselines import flick_roundtrip_component_ns, offload_roundtrip_ns
from repro.core.config import DEFAULT_CONFIG
from repro.core.hosted import HostedMachine, HostedProgram
from repro.interconnect import PCIeLink
from repro.memory import MemoryRegion, PhysicalMemory
from repro.os.loader import NXP_WINDOW_VBASE
from repro.sim import Simulator
from repro.workloads.null_call import measure_h2n_roundtrip


def _random_scan_time(page_size_label: str) -> tuple:
    """NxP random scan over 64 MB; huge pages vs forced 4K mapping."""
    prog = HostedProgram()
    stride = 5 * 4096 + 64  # hits a fresh 4K page almost every access

    def scan(ctx, base, n):
        for i in range(n):
            ctx.load(base + (i * stride) % (64 << 20))
            yield from ctx.maybe_flush()
        return 0

    prog.register("scan", "nisa", scan)

    def main(ctx, base, n):
        return (yield from ctx.call("scan", base, n))

    prog.register("main", "hisa", main)

    hosted = HostedMachine(prog)
    base = hosted.process.nxp_heap.alloc(64 << 20, align=1 << 21)
    if page_size_label == "4k":
        # Remap the window region covering the buffer with 4K pages.
        pt = hosted.process.page_tables
        from repro.memory.paging import PAGE_4K, PAGE_1G

        # Unmap the covering 1GB page and remap the 64MB buffer as 4K.
        gb_base = base & ~(PAGE_1G - 1)
        pt.unmap_page(gb_base)
        mm = hosted.cfg.memory_map
        paddr_base = mm.bar0_base + (base - NXP_WINDOW_VBASE)
        pt.map_range(base, paddr_base, 64 << 20, PAGE_4K, nx=True)
    n = 1500
    hosted.run("main", [base, 8])
    t0 = hosted.sim.now
    hosted.run("main", [base, n])
    per_access = (hosted.sim.now - t0 - 18_300) / n
    misses = hosted.machine.stats.get("hosted.nxp.dtlb.miss")
    return per_access, misses


def test_ablation_huge_pages(benchmark, report):
    results = {}

    def run():
        results["1g"] = _random_scan_time("1g")
        results["4k"] = _random_scan_time("4k")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    (t_huge, m_huge), (t_4k, m_4k) = results["1g"], results["4k"]
    rows = [
        ("1GB pages (paper)", f"{t_huge:.0f}ns", m_huge),
        ("4KB pages", f"{t_4k:.0f}ns", m_4k),
        ("slowdown", f"{t_4k / t_huge:.1f}x", "-"),
    ]
    report(
        "Ablation: huge pages vs 4KB for the NxP window",
        render_table(["Mapping", "ns per random NxP access", "TLB misses"], rows),
    )
    assert t_4k > 3 * t_huge  # cross-PCIe walks dominate with 4K pages
    assert m_4k > 50 * max(m_huge, 1)


def test_ablation_descriptor_dma_vs_mmio(benchmark, report):
    """One 128B burst vs 16 individual non-posted word reads."""
    cfg = DEFAULT_CONFIG
    times = {}

    def run():
        sim = Simulator()
        phys = PhysicalMemory()
        mm = cfg.memory_map
        phys.add_region(MemoryRegion("dram", 0, 1 << 26))
        phys.add_region(MemoryRegion("nxp", mm.bar0_base, 1 << 26))
        link = PCIeLink(sim, cfg, phys)
        sim.run_process(link.burst(0x1000, mm.bar0_base, cfg.descriptor_bytes))
        times["burst"] = sim.now

        sim2 = Simulator()
        link2 = PCIeLink(sim2, cfg, phys)

        def word_by_word(sim):
            for i in range(cfg.descriptor_bytes // 8):
                yield from link2.read(0x1000 + 8 * i, 8, service_ns=cfg.host_dram_ns)

        sim2.run_process(word_by_word(sim2))
        times["mmio"] = sim2.now
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("one DMA burst (Flick)", f"{times['burst']:.0f}ns"),
        ("16 MMIO word reads", f"{times['mmio']:.0f}ns"),
        ("burst advantage", f"{times['mmio'] / times['burst']:.1f}x"),
    ]
    report(
        "Ablation: descriptor transfer, burst DMA vs word-by-word MMIO",
        render_table(["Method", "128B descriptor transfer"], rows),
    )
    assert times["mmio"] > 5 * times["burst"]


def _roundtrip_us(job):
    """Module-level so it is picklable for the parallel sweep workers."""
    label, cfg = job
    return label, measure_h2n_roundtrip(cfg=cfg, calls=40).roundtrip_us


def test_ablation_poll_period_and_clock(benchmark, report):
    # Each configuration is an independent simulation: fan the grid out
    # across workers (serial when only one CPU / FLICK_SWEEP_WORKERS=1).
    jobs = [
        (f"poll={poll:.0f}ns", DEFAULT_CONFIG.with_overrides(nxp_poll_period_ns=poll))
        for poll in (200.0, 600.0, 2400.0, 9600.0)
    ] + [
        (f"clock={mhz:.0f}MHz", DEFAULT_CONFIG.with_overrides(nxp_clock_mhz=mhz))
        for mhz in (100.0, 200.0, 800.0)
    ]
    results = {}

    def run():
        results.update(parallel_map(_roundtrip_us, jobs))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(k, f"{v:.2f}us") for k, v in results.items()]
    report(
        "Ablation: NxP poll period & core clock vs round trip",
        render_table(["Configuration", "host-NxP-host round trip"], rows),
    )
    assert results["poll=9600ns"] > results["poll=200ns"]
    assert results["clock=800MHz"] < results["clock=100MHz"]
    # The paper's remark: hardened (faster) NxP cores shrink the overhead.
    assert results["clock=800MHz"] < results["clock=200MHz"]


def test_ablation_segment_translation(benchmark, report):
    """Segments vs huge pages vs 4KB pages for the NxP data window —
    the paper cites segment translation [16, 17] as the way specialized
    NxPs can avoid TLB misses entirely (Section III-A)."""
    from repro.core.hosted import HostedMachine

    def scan_program():
        from repro.core.hosted import HostedProgram

        prog = HostedProgram()
        stride = 5 * 4096 + 64

        def scan(ctx, base, n):
            for i in range(n):
                ctx.load(base + (i * stride) % (64 << 20))
                yield from ctx.maybe_flush()
            return 0

        prog.register("scan", "nisa", scan)

        def main(ctx, base, n):
            return (yield from ctx.call("scan", base, n))

        prog.register("main", "hisa", main)
        return prog

    def per_access(hosted, base, n=1200):
        hosted.run("main", [base, 8])
        t0 = hosted.sim.now
        hosted.run("main", [base, n])
        return (hosted.sim.now - t0 - 18_300) / n

    results = {}

    def run():
        # 1GB pages (default mapping).
        hosted = HostedMachine(scan_program())
        base = hosted.process.nxp_heap.alloc(64 << 20, align=1 << 21)
        results["1GB pages"] = per_access(hosted, base)
        # Segments.
        hosted2 = HostedMachine(
            scan_program(), nxp_segments=[(NXP_WINDOW_VBASE, 4 << 30)]
        )
        base2 = hosted2.process.nxp_heap.alloc(64 << 20, align=1 << 21)
        results["MMU segments"] = per_access(hosted2, base2)
        # 4KB pages.
        results["4KB pages"] = _random_scan_time("4k")[0]
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(k, f"{v:.0f}ns") for k, v in results.items()]
    report(
        "Ablation: NxP address translation (segments vs paging)",
        render_table(["Translation", "ns per random NxP access"], rows),
    )
    assert results["MMU segments"] <= results["1GB pages"]
    assert results["1GB pages"] < results["4KB pages"] / 3


def test_ablation_measured_breakdown(benchmark, report):
    """Measured (trace-derived) migration phases vs the config pricing —
    the two must agree, or the simulation charges time it can't account
    for."""
    from repro import FlickMachine
    from repro.analysis import measure_breakdown, render_breakdown

    state = {}

    def run():
        machine = FlickMachine()
        machine.run_program(
            """
            @nxp func f() { return 0; }
            func main(n) {
                var i = 0;
                while (i < n) { f(); i = i + 1; }
                return 0;
            }
            """,
            args=[50],
        )
        state["breakdown"] = measure_breakdown(machine.trace)
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)
    b = state["breakdown"]
    report("Ablation: measured migration breakdown", render_breakdown(b))
    total_us = (b.total_ns + DEFAULT_CONFIG.host_page_fault_ns) / 1000
    assert 17.5 < total_us < 19.5
    assert b.sessions == 50


def test_ablation_flick_vs_offload(benchmark, report):
    def run():
        return offload_roundtrip_ns(), flick_roundtrip_component_ns()

    offload, flick_parts = benchmark.pedantic(run, rounds=1, iterations=1)
    flick_total = sum(flick_parts.values())
    rows = [(k, f"{v / 1000:.2f}us") for k, v in flick_parts.items()]
    rows.append(("TOTAL Flick (transparent, host core freed)", f"{flick_total / 1000:.2f}us"))
    rows.append(("offload-engine style (host core busy-polls)", f"{offload.total_ns / 1000:.2f}us"))
    rows.append(("cost of transparency", f"{(flick_total - offload.total_ns) / 1000:.2f}us"))
    report(
        "Ablation: Flick round-trip breakdown vs offload-engine style",
        render_table(["Component", "Latency"], rows),
    )
    assert flick_total == pytest.approx(18_000, rel=0.05)
    assert offload.total_ns < flick_total
