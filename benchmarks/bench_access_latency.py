"""Section V access-latency measurements.

Paper: "the round-trip time for the host x86 cores and the NxP RISC-V
core to access the NxP side storage are approximately 825ns and 267ns,
respectively."  Measured here through the actual link/TLB models.
"""

import pytest

from repro.analysis import render_table
from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.hosted import HostedMachine, HostedProgram
from repro.interconnect import PCIeLink
from repro.memory import MemoryRegion, PhysicalMemory
from repro.sim import Simulator


def _measure_host_bar_read() -> float:
    sim = Simulator()
    phys = PhysicalMemory()
    mm = DEFAULT_CONFIG.memory_map
    phys.add_region(MemoryRegion("nxp", mm.bar0_base, mm.nxp_local_size))
    link = PCIeLink(sim, DEFAULT_CONFIG, phys)
    n = 64

    def reads(sim):
        for i in range(n):
            yield from link.read(mm.bar0_base + 64 * i, 8, service_ns=DEFAULT_CONFIG.nxp_local_dram_ns - 120.0)

    sim.run_process(reads(sim))
    return sim.now / n


def _measure_nxp_local_read() -> float:
    prog = HostedProgram()

    def scan(ctx, addr, n):
        for i in range(n):
            ctx.load(addr + 8 * (i % 8))
            yield from ctx.maybe_flush()
        return 0

    prog.register("scan", "nisa", scan)

    def main(ctx, addr, n):
        return (yield from ctx.call("scan", addr, n))

    prog.register("main", "hisa", main)
    hosted = HostedMachine(prog)
    buf = hosted.process.nxp_heap.alloc(4096)
    hosted.run("main", [buf, 8])  # warm TLB
    n = 2000
    t0 = hosted.sim.now
    hosted.run("main", [buf, n])
    total = hosted.sim.now - t0
    migration = 18_300.0  # one call round trip wraps the scan
    return (total - migration) / n


def test_access_latencies(benchmark, report):
    results = {}

    def run():
        results["host"] = _measure_host_bar_read()
        results["nxp"] = _measure_nxp_local_read()
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("host core -> NxP storage", f"{results['host']:.0f}ns", "~825ns"),
        ("NxP core -> NxP storage", f"{results['nxp']:.0f}ns", "~267ns"),
    ]
    text = render_table(
        ["Access", "Measured (sim)", "Paper"],
        rows,
        title="Section V: storage access round-trip latencies",
    )
    report("Access latencies (Section V)", text)
    assert results["host"] == pytest.approx(825, rel=0.03)
    assert results["nxp"] == pytest.approx(267 + DEFAULT_CONFIG.tlb_hit_ns, rel=0.05)
