"""Extra experiment: NxP contention under concurrent migrating threads.

The paper evaluates one migrating thread; a natural systems question is
what happens when several host threads share the single NxP core.  The
NxP scheduler serializes dispatches, so per-thread round-trip latency
grows with the number of concurrently migrating threads while total
throughput saturates at the NxP's service rate.
"""

from repro import FlickMachine
from repro.analysis import render_table

SRC = """
@nxp func work(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
}
func main(calls, n) {
    var i = 0;
    while (i < calls) { work(n); i = i + 1; }
    return 0;
}
"""

CALLS = 12
WORK = 50


def _per_pid_spans(machine):
    """Round-trip spans paired per PID (concurrent traces interleave)."""
    open_start = {}
    spans = []
    for event in machine.trace.events:
        pid = event.attrs.get("pid")
        if event.name == "h2n_call_start":
            open_start[pid] = event.time
        elif event.name == "h2n_call_done" and pid in open_start:
            spans.append(event.time - open_start.pop(pid))
    return spans


def _run(threads: int):
    machine = FlickMachine(host_cores=max(threads, 2))
    exe = machine.compile(SRC)
    handles = []
    for i in range(threads):
        process = machine.load(exe, name=f"p{i}")
        handles.append(machine.spawn(process, args=[CALLS, WORK]))
    machine.run()
    finish = max(t.finished_at for t in handles)
    spans = _per_pid_spans(machine)
    steady = spans[threads:]  # skip first-migration outliers
    avg_rt = sum(steady) / len(steady)
    throughput = (threads * CALLS) / (finish / 1e9) / 1e3  # k-migrations/s
    return avg_rt, throughput, finish


def test_nxp_contention(benchmark, report):
    results = {}

    def run():
        for threads in (1, 2, 4, 8):
            results[threads] = _run(threads)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (f"{t} thread(s)", f"{rt / 1000:.1f}us", f"{tp:.1f}k/s", f"{fin / 1e6:.2f}ms")
        for t, (rt, tp, fin) in results.items()
    ]
    report(
        "Extra: NxP contention (concurrent migrating threads)",
        render_table(
            ["Concurrency", "avg round trip", "migration throughput", "makespan"], rows
        ),
    )

    rts = {t: rt for t, (rt, _tp, _f) in results.items()}
    tps = {t: tp for t, (_rt, tp, _f) in results.items()}
    # Each call occupies the NxP for most of its round trip, so the NxP
    # saturates almost immediately: queueing delay shows up by 4-8
    # threads, and throughput stays pinned at the NxP service rate.
    assert rts[8] > 1.5 * rts[1]
    assert rts[4] > rts[1]
    assert tps[2] >= tps[1]
    assert tps[8] < tps[2] * 1.15  # saturated, not scaling
