"""Extra experiment: first-order energy comparison (extension).

The paper's premise includes power efficiency (its background cites 23%
energy savings for heterogeneous-ISA CMPs).  With per-core busy-time
accounting and a catalog-level power model, the pointer-chase workload
shows Flick's *second* win: not only is the traversal faster near the
data, the expensive host core is parked while the 0.35 W NxP does the
work.
"""

from repro.analysis import estimate_energy, render_table
from repro.core.hosted import HostedMachine
from repro.workloads.pointer_chase import _make_program, build_chain


def _run(mode, accesses=1024, calls=8):
    hosted = HostedMachine(_make_program())
    head = build_chain(hosted, accesses)
    out = hosted.run("main", [head, accesses, calls, 1 if mode == "flick" else 0, 0.0])
    return estimate_energy(hosted.machine, out.sim_time_ns), out.sim_time_ns


def test_energy_comparison(benchmark, report):
    results = {}

    def run():
        results["host"] = _run("host")
        results["flick"] = _run("flick")
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    (e_host, t_host), (e_flick, t_flick) = results["host"], results["flick"]
    rows = [
        ("host-direct", f"{t_host/1e6:.2f}ms", f"{e_host.host_j*1e3:.2f}mJ",
         f"{(e_host.nxp_busy_j + e_host.nxp_idle_j)*1e3:.2f}mJ", f"{e_host.total_j*1e3:.2f}mJ"),
        ("Flick", f"{t_flick/1e6:.2f}ms", f"{e_flick.host_j*1e3:.2f}mJ",
         f"{(e_flick.nxp_busy_j + e_flick.nxp_idle_j)*1e3:.2f}mJ", f"{e_flick.total_j*1e3:.2f}mJ"),
        ("ratio", f"{t_host/t_flick:.2f}x", "-", "-", f"{e_host.total_j/e_flick.total_j:.2f}x"),
    ]
    report(
        "Extra: energy, pointer chase @1024 accesses/migration",
        render_table(["System", "Time", "Host energy", "NxP energy", "Total"], rows),
    )
    assert e_flick.total_j < e_host.total_j
    assert e_host.total_j / e_flick.total_j > t_host / t_flick  # double win
