"""Fig. 5a: pointer chasing with frequent migration.

Paper: Flick reaches the host-direct baseline at ~32 accesses per
migration and stabilizes at ~2.6x; systems with 500 us / 1 ms migration
latency barely (or never) reach the baseline within 1024 accesses.
"""

import os

from repro.analysis import crossover_point, plateau_value, render_fig5
from repro.baselines import config_with_migration_rt
from repro.workloads.pointer_chase import paper_sweep_points, sweep_pointer_chase

# Default: a 16-point log-spaced subset.  FLICK_BENCH_FULL=1 runs the
# paper's exact 256-point sweep (4..1024 step 4).
SWEEP = (
    paper_sweep_points()
    if os.environ.get("FLICK_BENCH_FULL")
    else [4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024]
)


def test_fig5a_frequent_migration(benchmark, report):
    curves = {}

    def run():
        curves["flick"] = sweep_pointer_chase(SWEEP, calls=8)
        curves["500us"] = sweep_pointer_chase(
            SWEEP, calls=4, cfg=config_with_migration_rt(500_000)
        )
        curves["1ms"] = sweep_pointer_chase(
            SWEEP, calls=4, cfg=config_with_migration_rt(1_000_000)
        )
        return curves

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_fig5(
        curves["flick"],
        slow_500us=curves["500us"],
        slow_1ms=curves["1ms"],
        title="Fig. 5a: pointer chasing, frequent migration (normalized to host-direct)",
    )
    cross = crossover_point(curves["flick"], threshold=1.0)
    plateau = plateau_value(curves["flick"])
    text += (
        f"\nFlick crossover: {cross} accesses/migration (paper: ~32)"
        f"\nFlick plateau:   {plateau:.2f}x (paper: ~2.6x)"
        f"\n500us system at 1024 accesses: {curves['500us'][1024]:.2f}x (paper: ~baseline)"
        f"\n1ms system at 1024 accesses:   {curves['1ms'][1024]:.2f}x (paper: below baseline)"
    )
    report("Fig. 5a: pointer chase, frequent migration", text)

    assert 24 <= cross <= 64  # paper: ~32
    assert 2.2 <= plateau <= 2.8  # paper: ~2.6
    assert curves["500us"][1024] < 1.2
    assert curves["1ms"][1024] < 1.0
    # Monotone improvement with more work per migration.
    values = [curves["flick"][x] for x in SWEEP]
    assert values == sorted(values)
