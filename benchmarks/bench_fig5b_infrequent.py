"""Fig. 5b: pointer chasing with infrequent migration (every 100 us).

Paper: with 100 us of host work between calls the migration overhead
matters less — the pre-crossover penalty shrinks, but the achievable
benefit also drops to ~2x at 1024 accesses.
"""

from repro.analysis import plateau_value, render_fig5
from repro.workloads.pointer_chase import sweep_pointer_chase

SWEEP = [4, 8, 16, 32, 64, 128, 256, 512, 1024]
INTERVAL_NS = 100_000.0


def test_fig5b_infrequent_migration(benchmark, report):
    curves = {}

    def run():
        curves["frequent"] = sweep_pointer_chase(SWEEP, calls=6)
        curves["infrequent"] = sweep_pointer_chase(SWEEP, calls=6, inter_call_ns=INTERVAL_NS)
        return curves

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_fig5(
        curves["infrequent"],
        title="Fig. 5b: pointer chasing, one migration per 100us of host work",
    )
    plateau = plateau_value(curves["infrequent"])
    text += (
        f"\nplateau: {plateau:.2f}x (paper: ~2x)"
        f"\npenalty at 4 accesses: {curves['infrequent'][4]:.2f}x "
        f"(vs {curves['frequent'][4]:.2f}x when migrating back-to-back)"
    )
    report("Fig. 5b: pointer chase, infrequent migration", text)

    assert 1.9 <= curves["infrequent"][1024] <= 2.3  # paper: ~2x at the right edge
    assert plateau < plateau_value(curves["frequent"])  # benefit reduced
    assert curves["infrequent"][4] > curves["frequent"][4]  # softer penalty
    assert curves["infrequent"][4] < 1.0  # still a penalty before crossover
