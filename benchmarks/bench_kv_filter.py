"""Extra experiment: near-data KV filtering and the selectivity trade-off.

Not a paper table — this is the near-storage scenario the paper's
introduction motivates (ship the scan to the data), extended with a
dimension Fig. 5 cannot show: as *selectivity* rises, the NxP's matches
become cross-PCIe writes and Flick's advantage erodes (but never
inverts, since each match saved two reads and costs one posted write).
"""

from repro.analysis import render_table
from repro.workloads.kv_filter import run_kv_filter, sweep_selectivity


def test_kv_filter_selectivity(benchmark, report):
    results = {}

    def run():
        results["size"] = {}
        for n in (16, 128, 1024, 4096):
            flick = run_kv_filter(n, mode="flick")
            host = run_kv_filter(n, mode="host")
            results["size"][n] = host.sim_time_ns / flick.sim_time_ns
        results["selectivity"] = sweep_selectivity(1500, [1, 2, 5, 10, 100])
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    size_rows = [(f"{n} records/query", f"{v:.2f}x") for n, v in results["size"].items()]
    sel_rows = [
        (f"{s:.0%} of records match", f"{v:.2f}x")
        for s, v in sorted(results["selectivity"].items())
    ]
    text = render_table(["Scan size", "Flick speedup"], size_rows)
    text += "\n\n" + render_table(
        ["Selectivity (1500 records)", "Flick speedup"], sel_rows
    )
    report("Extra: near-data KV filter", text)

    # Crossover with scan size, like Fig. 5a.
    assert results["size"][16] < 1.0
    assert results["size"][4096] > 2.0
    # Monotone erosion with selectivity.
    sel = results["selectivity"]
    ordered = [sel[s] for s in sorted(sel)]
    assert ordered == sorted(ordered, reverse=True)
    assert ordered[-1] > 1.0  # full-match scan still wins near the data
