"""Simulator throughput tracking: instructions/sec, events/sec, speedup.

Not a paper figure — this benchmark guards the acceleration layer
(docs/PERFORMANCE.md).  It runs the interpreted workloads with all
fast-path toggles on and off, asserts the two configurations agree
bit-for-bit on everything observable (timing-invariance contract), and
asserts the fast paths actually pay for themselves: >= 2x wall-clock on
the interpreted null-call loop.  Results land in ``BENCH_simspeed.json``
so the throughput trajectory is tracked from this PR on.
"""

import os

from repro.analysis.simspeed import measure_all, render, write_report

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_simspeed.json")


def test_simspeed(benchmark, report):
    state = {}

    def run():
        state["results"] = measure_all(repeats=3)
        return state["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = state["results"]
    write_report(results, os.path.abspath(OUT_PATH))
    report("Simulator throughput (fast paths on vs off)", render(results))

    by_name = {r.workload: r for r in results}
    for r in results:
        assert r.parity, f"{r.workload}: fast/slow configs disagree"
    # The acceleration layer's headline number: the interpreted
    # null-call loop (full migrations through the whole stack).
    assert by_name["null_call_loop"].speedup >= 2.0
    assert by_name["compute_loop"].speedup >= 2.0
