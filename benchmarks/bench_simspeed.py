"""Simulator throughput tracking: instructions/sec, events/sec, speedup.

Not a paper figure — this benchmark guards the acceleration layer
(docs/PERFORMANCE.md).  It runs the interpreted workloads three ways
(everything on, tracing JIT off, everything off), asserts the three
configurations agree bit-for-bit on everything observable
(timing-invariance contract), and asserts the fast paths actually pay
for themselves: >= 2x wall-clock on the interpreted null-call loop and
>= 10x on the compute loop (the JIT tier's headline).  It also measures
hosted-mode op batching on the million-access pointer-chase sweep
(batched vs unbatched must be bit-identical AND >= 2x faster).  Results
land in ``BENCH_simspeed.json`` so the throughput trajectory is tracked
from this PR on.
"""

import os

from repro.analysis.simspeed import (
    measure_all,
    measure_hosted_batching,
    render,
    render_hosted,
    write_report,
)

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_simspeed.json")


def test_simspeed(benchmark, report):
    state = {}

    def run():
        state["results"] = measure_all(repeats=3)
        state["hosted"] = measure_hosted_batching(accesses=1_000_000, repeats=2)
        return state["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = state["results"]
    hosted = state["hosted"]
    write_report(results, os.path.abspath(OUT_PATH), hosted=hosted)
    report(
        "Simulator throughput (fast paths on vs off)",
        render(results) + "\n" + render_hosted(hosted),
    )

    by_name = {r.workload: r for r in results}
    for r in results:
        assert r.parity, f"{r.workload}: fast/nojit/slow configs disagree"
    # The acceleration layer's headline numbers: the interpreted
    # null-call loop (full migrations through the whole stack) and the
    # compute loop, where the tracing-JIT tier must push the all-on /
    # all-off ratio past 10x and contribute a marginal win itself.  On
    # the null-call loop the migration machinery (DMA, protocol events)
    # dominates wall time, so the JIT's marginal ratio sits near 1x;
    # the floor only guards against the tier making migrations slower
    # (the committed baseline tracks the actual trajectory).
    assert by_name["null_call_loop"].speedup >= 2.0
    assert by_name["null_call_loop"].jit_speedup >= 0.9
    assert by_name["compute_loop"].speedup >= 10.0
    assert by_name["compute_loop"].jit_speedup >= 1.5
    # Hosted op batching: bit-identical results, >= 2x on the
    # million-access sweep (docs/PERFORMANCE.md).
    assert hosted.parity, "hosted batching changed simulated results"
    assert hosted.speedup >= 2.0
