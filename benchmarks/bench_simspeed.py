"""Simulator throughput tracking: instructions/sec, events/sec, speedup.

Not a paper figure — this benchmark guards the acceleration layer
(docs/PERFORMANCE.md).  It runs the interpreted workloads with all
fast-path toggles on and off, asserts the two configurations agree
bit-for-bit on everything observable (timing-invariance contract), and
asserts the fast paths actually pay for themselves: >= 2x wall-clock on
the interpreted null-call loop.  It also measures hosted-mode op
batching on the million-access pointer-chase sweep (batched vs
unbatched must be bit-identical AND >= 2x faster).  Results land in
``BENCH_simspeed.json`` so the throughput trajectory is tracked from
this PR on.
"""

import os

from repro.analysis.simspeed import (
    measure_all,
    measure_hosted_batching,
    render,
    render_hosted,
    write_report,
)

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_simspeed.json")


def test_simspeed(benchmark, report):
    state = {}

    def run():
        state["results"] = measure_all(repeats=3)
        state["hosted"] = measure_hosted_batching(accesses=1_000_000, repeats=2)
        return state["results"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = state["results"]
    hosted = state["hosted"]
    write_report(results, os.path.abspath(OUT_PATH), hosted=hosted)
    report(
        "Simulator throughput (fast paths on vs off)",
        render(results) + "\n" + render_hosted(hosted),
    )

    by_name = {r.workload: r for r in results}
    for r in results:
        assert r.parity, f"{r.workload}: fast/slow configs disagree"
    # The acceleration layer's headline number: the interpreted
    # null-call loop (full migrations through the whole stack).
    assert by_name["null_call_loop"].speedup >= 2.0
    assert by_name["compute_loop"].speedup >= 2.0
    # Hosted op batching: bit-identical results, >= 2x on the
    # million-access sweep (docs/PERFORMANCE.md).
    assert hosted.parity, "hosted batching changed simulated results"
    assert hosted.speedup >= 2.0
