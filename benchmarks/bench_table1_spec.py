"""Table I: system specification (configuration of the simulated twin)."""

from repro.analysis import table1_system_spec
from repro.core.config import DEFAULT_CONFIG


def test_table1_system_spec(benchmark, report):
    text = benchmark.pedantic(lambda: table1_system_spec(DEFAULT_CONFIG), rounds=1, iterations=1)
    report("Table I: system specification", text)
    assert "200 MHz" in text  # the NxP core clock from the paper
    assert "2.4 GHz" in text  # the Xeon clock from the paper
