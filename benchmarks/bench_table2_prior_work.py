"""Table II: migration overhead of prior work vs Flick.

Measures Flick's round trip (interpreted, real protocol) and *measures*
— not just tabulates — each emulated prior-work system by running the
same null-call benchmark under its injected per-crossing overhead.
Paper's headline: Flick is 23x-38x faster than the heterogeneous-ISA
systems and beats even big.LITTLE's on-chip 22 us.
"""

from repro.analysis import render_table
from repro.baselines import prior_work_config
from repro.core.config import PRIOR_WORK
from repro.workloads.null_call import measure_h2n_roundtrip


def test_table2_prior_work_comparison(benchmark, report):
    measured = {}

    def run():
        measured["flick"] = measure_h2n_roundtrip(calls=60).roundtrip_us
        for name in ("asplos12", "eurosys15", "isca16", "biglittle"):
            cfg = prior_work_config(name)
            measured[name] = measure_h2n_roundtrip(cfg=cfg, calls=6).roundtrip_us
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)
    flick_us = measured["flick"]

    rows = []
    for name in ("asplos12", "eurosys15", "isca16", "biglittle"):
        spec = PRIOR_WORK[name]
        rows.append(
            (
                spec.name,
                spec.interconnect,
                f"~{spec.round_trip_ns / 1000:.0f}us",
                f"{measured[name]:.0f}us",
                f"{measured[name] / flick_us:.1f}x",
            )
        )
    rows.append(("Flick (this repro)", "PCIe-like link", "18.3us (paper)", f"{flick_us:.1f}us", "1.0x"))
    text = render_table(
        ["Work", "Interconnect", "Published overhead", "Measured (emulated)", "vs Flick"],
        rows,
        title="Table II: thread migration overhead, prior work vs Flick",
    )
    report("Table II: prior work comparison", text)

    # The paper's claim: 23x-38x over prior heterogeneous-ISA migration.
    het_factors = [measured[n] / flick_us for n in ("asplos12", "eurosys15", "isca16")]
    assert 20 < min(het_factors) < 26
    assert 34 < max(het_factors) < 42
    # And faster than on-chip big.LITTLE migration.
    assert flick_us < measured["biglittle"]
