"""Table III: Flick thread-migration round-trip overhead.

Paper: Host-NxP-Host 18.3 us, NxP-Host-NxP 16.9 us, with the host page
fault contributing only ~0.7 us.  Interpreted-mode measurement: real
FlickC binaries, real NX faults, 10k-style call loop (trimmed via
FLICK_BENCH_CALLS).
"""

from repro.analysis import table3_roundtrips
from repro.core.config import DEFAULT_CONFIG
from repro.workloads.null_call import measure_h2n_roundtrip, measure_n2h_roundtrip

from .conftest import bench_calls


def test_table3_roundtrip_overhead(benchmark, report):
    calls = bench_calls()
    results = {}

    def run():
        results["h2n"] = measure_h2n_roundtrip(calls=calls)
        results["n2h"] = measure_n2h_roundtrip(calls=calls)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    h2n = results["h2n"].roundtrip_us
    n2h = results["n2h"].roundtrip_us
    text = table3_roundtrips(h2n, n2h)
    text += (
        f"\n(page fault component: {DEFAULT_CONFIG.host_page_fault_ns / 1000:.1f}us, "
        f"paper: 0.7us; {calls} calls per direction)"
    )
    report("Table III: migration round trip", text)
    assert abs(h2n - 18.3) / 18.3 < 0.05
    assert abs(n2h - 16.9) / 16.9 < 0.05
