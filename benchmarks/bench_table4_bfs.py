"""Table IV: BFS on the three (synthetic, scaled) SNAP datasets.

Paper: Flick is slower on the vertex-heavy Epinions1 (1.8s -> 2.4s) but
9-19% faster on Pokec and LiveJournal1 despite migrating for *every*
discovered vertex.  Absolute seconds differ (scaled graphs, simulated
substrate); the reproduction targets the speedup pattern.
"""

from repro.analysis import table4_bfs
from repro.workloads.bfs import run_bfs
from repro.workloads.graphs import PAPER_DATASETS, scaled_dataset

from .conftest import bfs_scales


def test_table4_bfs(benchmark, report):
    scales = bfs_scales()
    results = {}

    def run():
        for name, scale in scales.items():
            graph, _spec, _s = scaled_dataset(name, scale=scale)
            flick = run_bfs(graph, mode="flick")
            host = run_bfs(graph, mode="host")
            assert flick.discovered == host.discovered == graph.vertices
            results[name] = {
                "baseline_s": host.sim_time_s,
                "flick_s": flick.sim_time_s,
                "scale": scale,
            }
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Render one table per scale grouping (scales may differ per dataset).
    text_rows = []
    for name, r in results.items():
        spec = PAPER_DATASETS[name]
        speedup = r["baseline_s"] / r["flick_s"]
        paper = spec.baseline_s / spec.flick_s
        text_rows.append(
            f"{spec.name:13s} 1/{r['scale']:<5d} baseline={r['baseline_s']:8.3f}s "
            f"flick={r['flick_s']:8.3f}s  speedup={speedup:5.2f}x  (paper {paper:4.2f}x)"
        )
    text = "Table IV: BFS, synthetic graphs with the paper's E/V ratios\n" + "\n".join(text_rows)
    report("Table IV: BFS", text)

    sp = {n: r["baseline_s"] / r["flick_s"] for n, r in results.items()}
    assert sp["epinions1"] < 1.0  # paper: Flick slower on Epinions1
    assert sp["pokec"] > 1.05  # paper: +19%
    assert sp["livejournal1"] > 1.0  # paper: +9%
    assert sp["pokec"] > sp["livejournal1"] > sp["epinions1"]
