"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures and
registers the rendered text through the ``report`` fixture; a terminal
summary prints all of them at the end of the run (so the output survives
pytest's capture and lands in ``bench_output.txt``).

Environment knobs:

* ``FLICK_BENCH_SCALE`` — divisor applied to the Table IV datasets
  (default 256 for Epinions, 1024/2048 for the big graphs).
* ``FLICK_BENCH_CALLS`` — null-call repetitions (default 200).
"""

import os

import pytest

_REPORTS = []


@pytest.fixture
def report():
    """Call with (title, text) to register output for the summary."""

    def add(title: str, text: str):
        _REPORTS.append((title, text))

    return add


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "Flick reproduction: regenerated tables & figures")
    for title, text in _REPORTS:
        tr.write_sep("-", title)
        tr.write_line(text)


def bench_calls() -> int:
    return int(os.environ.get("FLICK_BENCH_CALLS", "200"))


def bfs_scales() -> dict:
    base = int(os.environ.get("FLICK_BENCH_SCALE", "0"))
    if base:
        return {"epinions1": base, "pokec": base, "livejournal1": base}
    # Defaults sized for ~1 minute of wall time while keeping thousands
    # of vertices (and therefore thousands of real migrations) per run.
    return {"epinions1": 64, "pokec": 512, "livejournal1": 1024}
