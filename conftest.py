"""Repository-root pytest configuration.

Ensures ``import repro`` resolves to ``src/repro`` even when the package
has not been installed (e.g. offline environments where ``pip install
-e .`` cannot bootstrap build isolation).  An installed copy, if any,
still wins only if it comes earlier on ``sys.path`` — inserting at the
front makes the in-tree sources authoritative for the test suite.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
