#!/usr/bin/env python3
"""Near-data BFS (the paper's Table IV application study).

A social graph is stored in the NxP-side DRAM as adjacency linked
lists.  The traversal migrates to the NxP, but calls a host function for
*every* newly discovered vertex (a common "host reacts per result"
pattern) — so each discovery costs a full NxP->host->NxP round trip.

Whether Flick wins depends on the edges-per-vertex ratio: edge work is
cheap near the data, but every vertex forces a migration.

Run:  python examples/bfs_near_data.py  [scale]
"""

import sys

from repro.workloads.bfs import run_bfs
from repro.workloads.graphs import PAPER_DATASETS, scaled_dataset


def main():
    base_scale = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    scales = (
        {name: base_scale for name in PAPER_DATASETS}
        if base_scale
        else {"epinions1": 64, "pokec": 512, "livejournal1": 1024}
    )

    print(f"{'dataset':13s} {'V':>8s} {'E':>9s} {'E/V':>5s} "
          f"{'baseline':>10s} {'Flick':>10s} {'speedup':>8s} {'paper':>6s}")
    for name, scale in scales.items():
        graph, spec, _ = scaled_dataset(name, scale=scale)
        host = run_bfs(graph, mode="host")
        flick = run_bfs(graph, mode="flick")
        assert host.discovered == flick.discovered == graph.vertices
        speedup = host.sim_time_ns / flick.sim_time_ns
        paper = spec.baseline_s / spec.flick_s
        print(
            f"{spec.name:13s} {graph.vertices:8,d} {graph.edges:9,d} "
            f"{graph.edges / graph.vertices:5.1f} {host.sim_time_s:9.3f}s "
            f"{flick.sim_time_s:9.3f}s {speedup:7.2f}x {paper:5.2f}x"
        )

    print()
    print("Epinions1 *loses* under Flick: too few edges per vertex to pay")
    print("for the per-discovery migration.  The two big graphs win -- and")
    print("as the paper notes, no prior system (430-700us per migration)")
    print("could profit from migrating once per discovered vertex at all.")


if __name__ == "__main__":
    main()
