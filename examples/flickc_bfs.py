#!/usr/bin/env python3
"""BFS written entirely in FlickC, end to end through the real toolchain.

Unlike examples/bfs_near_data.py (which uses the hosted timing mode for
paper-scale graphs), this program is *actual dual-ISA code*: the host
half builds an adjacency-linked-list graph in NxP DRAM, the `@nxp` half
traverses it instruction by instruction on the simulated NISA core, and
every newly discovered vertex migrates back for a host-side visit —
the complete Table IV pattern, interpreted, on a small graph.

Run:  python examples/flickc_bfs.py
"""

from repro import FlickMachine

PROGRAM = """
var visit_count = 0;

func host_visit(v) {                     // the per-discovery host work
    visit_count = visit_count + 1;
    return 0;
}

@nxp func nxp_alloc(n) { return alloc(n); }

// Graph build (host side): edge nodes are {target, next} pairs chained
// per source vertex; heads[] points at each vertex's first edge node.
func add_edge(heads, nodes, slot, u, v) {
    var node = nodes + slot * 16;
    store(node, v);
    store(node + 8, load(heads + u * 8));   // push-front
    store(heads + u * 8, node);
    return slot + 1;
}

func build_ring_with_chords(heads, nodes, n) {
    var slot = 0;
    var i = 0;
    while (i < n) {
        slot = add_edge(heads, nodes, slot, i, (i + 1) % n);   // ring
        if (i % 3 == 0) {
            slot = add_edge(heads, nodes, slot, i, (i + n / 2) % n);  // chord
        }
        i = i + 1;
    }
    return slot;
}

@nxp func bfs(heads, visited, frontier, source, n) {
    store8(visited + source, 1);
    store(frontier, source);
    var head = 0;
    var tail = 1;
    var found = 1;
    while (head < tail) {
        var u = load(frontier + head * 8);
        head = head + 1;
        var node = load(heads + u * 8);
        while (node != 0) {
            var v = load(node);
            if (load8(visited + v) == 0) {
                store8(visited + v, 1);
                store(frontier + tail * 8, v);
                tail = tail + 1;
                found = found + 1;
                host_visit(v);
            }
            node = load(node + 8);
        }
    }
    return found;
}

func main(n) {
    var heads = nxp_alloc(n * 8);
    var visited = nxp_alloc(n);
    var frontier = nxp_alloc(n * 8);
    var nodes = nxp_alloc(2 * n * 16);
    build_ring_with_chords(heads, nodes, n);
    var found = bfs(heads, visited, frontier, 0, n);
    if (found != n) { return -1; }
    if (visit_count != n - 1) { return -2; }
    return found;
}
"""


def main():
    n = 36
    machine = FlickMachine()
    outcome = machine.run_program(PROGRAM, args=[n])

    print(f"vertices discovered: {outcome.retval} (graph has {n})")
    print(f"simulated time: {outcome.sim_time_us:.1f} us")
    print(f"host->NxP migrations: {machine.trace.count('h2n_call_start')}")
    print(f"NxP->host visits:     {machine.trace.count('n2h_call')}")
    print(f"NISA instructions:    {machine.stats.get('nxp.core.inst'):,}")
    print(f"NxP local loads:      {machine.stats.get('nxp.load_local'):,}")
    print(f"D-TLB misses:         {machine.stats.get('nxp.dtlb.miss')} "
          "(1GB pages: the whole graph fits in a few entries)")
    assert outcome.retval == n
    print("\nevery vertex was discovered on the NxP and visited on the host;")
    print("the caller wrote ordinary calls -- the NX bit did the rest.")


if __name__ == "__main__":
    main()
