#!/usr/bin/env python3
"""Function pointers across the ISA boundary (Section III-B's motivation).

A compiler cannot know whether an indirect call targets host or NxP code
— which is exactly why Flick triggers migration from the *page fault*
rather than from compiler-inserted call-site code.  Here a dispatch
table mixes host and NxP implementations; the same ``call_ptr`` site
sometimes migrates and sometimes doesn't, decided purely at runtime.

Run:  python examples/function_pointers.py
"""

from repro import FlickMachine

SOURCE = """
@nxp func near_sum(buf, n) {          // reduce near the data
    var acc = 0;
    var i = 0;
    while (i < n) {
        acc = acc + load(buf + i * 8);
        i = i + 1;
    }
    return acc;
}

func host_sum(buf, n) {               // same reduction, from the host
    var acc = 0;
    var i = 0;
    while (i < n) {
        acc = acc + load(buf + i * 8);
        i = i + 1;
    }
    return acc;
}

func fill(buf, n) {                   // host initializes NxP-local data
    var i = 0;
    while (i < n) {
        store(buf + i * 8, i + 1);
        i = i + 1;
    }
    return 0;
}

@nxp func nxp_buffer(n) { return alloc(n * 8); }  // NxP-local allocator

func main(n) {
    var buf = nxp_buffer(n);          // allocated in NxP DRAM
    fill(buf, n);                     // host writes through the same VAs
    var reduce = &host_sum;
    if (n > 16) { reduce = &near_sum; }   // decided at runtime!
    return call_ptr(reduce, buf, n);
}
"""


def main():
    for n in (8, 64):
        machine = FlickMachine()
        outcome = machine.run_program(SOURCE, args=[n])
        expected = n * (n + 1) // 2
        picked = "near_sum (migrated)" if n > 16 else "host_sum (stayed)"
        # main() migrates once for nxp_buffer(); the indirect call adds
        # a second migration only when it lands on NxP code.
        indirect_migrated = outcome.migrations == 2
        print(
            f"n={n:3d}: sum={outcome.retval} (expected {expected}), "
            f"dispatch picked {picked}, migrations={outcome.migrations}"
        )
        assert outcome.retval == expected
        assert indirect_migrated == (n > 16)

    print()
    print("the very same call_ptr instruction migrated for n=64 and did not")
    print("for n=8 -- no call-site instrumentation, just the NX bit.")


if __name__ == "__main__":
    main()
