#!/usr/bin/env python3
"""A near-data service as a multi-ISA kernel module (Section IV-D).

The paper's own Flick support ships as a kernel module whose host half
(platform init, the migration ioctl) and NxP half (scheduler, NxP
migration handler) live in one loadable object.  This example builds a
toy analogue: a "checksum service" module whose host-side entry point
validates arguments and whose NxP-side worker hashes buffers *next to
the data*.  User programs link against the module's exported symbol and
never know half of it runs on another ISA.

Also demonstrates the demand-paged heap extension: the user program's
buffers are allocated lazily, each page backed on first touch.

Run:  python examples/near_data_service.py
"""

from repro import FlickMachine

SERVICE_MODULE = """
var served = 0;

@nxp func svc_worker(p, n) {
    var h = 1469598103934665603;      // FNV-ish accumulator
    var i = 0;
    while (i < n) {
        h = h * 1099511628211 + load8(p + i);
        i = i + 1;
    }
    return h;
}

func svc_checksum(p, n) {
    if (n <= 0) { return 0; }
    served = served + 1;
    return svc_worker(p, n);
}

func module_init() { return 1; }
"""

USER_PROGRAM = """
func main(n) {
    var buf = alloc(n);
    var i = 0;
    while (i < n) {
        store8(buf + i, i * 7 + 1);
        i = i + 1;
    }
    var h1 = svc_checksum(buf, n);
    var h2 = svc_checksum(buf, n);
    if (h1 != h2) { return -1; }      // deterministic service
    print(h1 % 1000000);
    return svc_checksum(0, 0);        // the host half rejects n=0 locally
}
"""


def main():
    machine = FlickMachine()
    module = machine.load_module(SERVICE_MODULE, "checksum_svc")
    print(f"module 'checksum_svc' loaded at {module.base_vaddr:#x}")
    for name, isa in module.isa_of_symbol.items():
        print(f"  exported {name}: {isa or 'data'}")

    exe = machine.compile(USER_PROGRAM)
    process = machine.load(exe, name="user")
    lazy = machine.enable_lazy_heap(process)
    thread = machine.spawn(process, args=[512])
    machine.run()

    print(f"\nuser program return: {thread.result} (0 = ok)")
    print(f"service checksum (mod 1e6): {process.output[0]}")
    print(f"minor faults serviced (demand paging): {lazy.minor_faults}")
    print(f"migrations into the module's NxP half: {machine.trace.count('h2n_call_start')}")
    counter_addr = module.symbol("served")
    tr = process.page_tables.translate(counter_addr)
    print(f"module-global 'served' counter: {machine.phys.read_u64(tr.paddr)}")
    assert thread.result == 0
    assert machine.phys.read_u64(tr.paddr) == 2  # n=0 call rejected host-side


if __name__ == "__main__":
    main()
