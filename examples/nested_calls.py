#!/usr/bin/env python3
"""Nested bidirectional ISA-crossing calls (Section IV-B's reentrancy).

Flick's migration handlers are reentrant: host code can call NxP code
which calls host code which calls NxP code again, to any depth — even
mutual recursion *across the ISA boundary*.  This example runs a Collatz
walk where every even step executes on the host and every odd step on
the NxP, so the thread ping-pongs across PCIe the whole way down.

Run:  python examples/nested_calls.py
"""

from repro import FlickMachine

SOURCE = """
// Odd steps run near the data on the NxP...
@nxp func odd_step(n, depth) {
    if (n == 1) { return depth; }
    if (n % 2 == 0) { return even_step(n / 2, depth + 1); }
    return even_step(3 * n + 1, depth + 1);
}

// ...even steps run on the host: cross-ISA mutual recursion.
func even_step(n, depth) {
    if (n == 1) { return depth; }
    if (n % 2 == 0) { return odd_step(n / 2, depth + 1); }
    return odd_step(3 * n + 1, depth + 1);
}

func main(n) { return odd_step(n, 0); }
"""


def collatz_steps(n):
    steps = 0
    while n != 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def main():
    machine = FlickMachine()
    n = 27  # the famous long Collatz orbit: 111 steps
    outcome = machine.run_program(SOURCE, args=[n])

    expected = collatz_steps(n)
    print(f"collatz({n}) = {outcome.retval} steps (expected {expected})")
    assert outcome.retval == expected

    h2n = machine.trace.count("h2n_call_start")
    n2h = machine.trace.count("n2h_call")
    print(f"host->NxP call migrations: {h2n}")
    print(f"NxP->host call migrations: {n2h}")
    print(f"deepest live cross-ISA nesting survives on one NxP stack and")
    print(f"one host stack -- {outcome.sim_time_us:.1f} us of simulated time total.")
    print()
    print("first 12 protocol events:")
    for event in machine.trace.events[:12]:
        print("  ", event)


if __name__ == "__main__":
    main()
