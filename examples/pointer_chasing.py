#!/usr/bin/env python3
"""Pointer chasing near the data (the paper's Fig. 5 microbenchmark).

Linked lists live in the NxP's DRAM.  Chasing them from the host costs
~825 ns per hop across PCIe; migrating the thread to the NxP drops that
to ~267 ns — *if* the list is long enough to amortize the ~18 us
migration.  This example sweeps the list length and prints the paper's
Fig. 5a curve, including the 500 us / 1 ms prior-work comparators.

Run:  python examples/pointer_chasing.py
"""

from repro.analysis import crossover_point, plateau_value, render_fig5
from repro.baselines import config_with_migration_rt
from repro.workloads.pointer_chase import run_pointer_chase, sweep_pointer_chase

SWEEP = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


def main():
    print("single point: 256 accesses per migration")
    flick = run_pointer_chase(256, calls=8, mode="flick")
    host = run_pointer_chase(256, calls=8, mode="host")
    print(f"  host-direct: {host.avg_call_us:8.2f} us per traversal")
    print(f"  Flick:       {flick.avg_call_us:8.2f} us per traversal "
          f"({host.avg_call_ns / flick.avg_call_ns:.2f}x)")
    print()

    print("sweeping accesses-per-migration (this is Fig. 5a)...")
    flick_curve = sweep_pointer_chase(SWEEP, calls=8)
    slow_500 = sweep_pointer_chase(SWEEP, calls=4, cfg=config_with_migration_rt(500_000))
    slow_1ms = sweep_pointer_chase(SWEEP, calls=4, cfg=config_with_migration_rt(1_000_000))

    print(render_fig5(flick_curve, slow_500us=slow_500, slow_1ms=slow_1ms))
    print()
    print(f"Flick crossover: ~{crossover_point(flick_curve)} accesses (paper: ~32)")
    print(f"Flick plateau:   {plateau_value(flick_curve):.2f}x (paper: ~2.6x)")
    print("the 500us/1ms systems never pay off in this range -- exactly the")
    print("paper's argument for why migration latency is make-or-break.")


if __name__ == "__main__":
    main()
