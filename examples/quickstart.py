#!/usr/bin/env python3
"""Quickstart: compile a dual-ISA program and watch a thread migrate.

A FlickC program marks one function ``@nxp``.  The toolchain compiles it
for the NxP's ISA, the linker resolves symbols across ISAs into a single
address space, the loader marks the NxP text pages no-execute for the
host — and at runtime the thread transparently migrates to the NxP core
on the call and back on the return.  The caller never knows it left.

Run:  python examples/quickstart.py
"""

from repro import FlickMachine

SOURCE = """
// Runs near the data, on the NxP core (RISC-V-like, 200 MHz).
@nxp func weigh(x, y) {
    var acc = 0;
    while (x > 0) {
        acc = acc + y;
        x = x - 1;
    }
    return acc;
}

// Runs on the host (x86-like, 2.4 GHz).  The call to weigh() looks like
// any other call -- the NX page fault does the rest.
func main(a, b) {
    var near = weigh(a, b);
    var far = a * b;
    print(near);
    print(far);
    return near == far;
}
"""


def main():
    machine = FlickMachine()
    outcome = machine.run_program(SOURCE, args=[6, 7])

    print("program output (print() calls):", outcome.output)
    print(f"return value: {outcome.retval}  (1 = NxP and host agree)")
    print(f"simulated time: {outcome.sim_time_us:.2f} us")
    print(f"migrations: {outcome.migrations} host->NxP round trip(s)")
    print()
    print("migration trace:")
    for event in machine.trace.events:
        print("  ", event)

    spans = machine.trace.spans("h2n_call_start", "h2n_call_done")
    print()
    print(
        f"the ISA-crossing call cost {spans[0] / 1000:.1f} us round trip "
        "(first call; includes NxP stack setup and cold TLBs/I-cache -- "
        "steady state is ~18.3 us, Table III)"
    )
    assert outcome.retval == 1


if __name__ == "__main__":
    main()
