"""Flick reproduction: fast ISA-crossing calls on a simulated
heterogeneous-ISA machine (ISCA 2020).

Public entry points:

* :class:`repro.FlickMachine` — build the machine, compile FlickC
  programs, run them with transparent host<->NxP thread migration.
* :class:`repro.FlickConfig` — every latency/sizing knob.
* :mod:`repro.workloads` — the paper's evaluation workloads.
* :mod:`repro.baselines` — host-direct and prior-work comparators.
"""

from repro.core import DEFAULT_CONFIG, FlickConfig, FlickMachine, ProgramOutcome

__version__ = "1.0.0"

__all__ = ["FlickMachine", "FlickConfig", "ProgramOutcome", "DEFAULT_CONFIG", "__version__"]
