"""``python -m repro`` — the Flick reproduction CLI."""

import sys

from repro.tools.cli import main

sys.exit(main())
