"""Result rendering: the paper's tables and figures from measured data."""

from repro.analysis.breakdown import (
    PhaseBreakdown,
    chrome_phase_events,
    measure_breakdown,
    measure_breakdown_by_pid,
    render_breakdown,
)
from repro.analysis.export import config_to_dict, export_results, load_results
from repro.analysis.energy import EnergyEstimate, PowerModel, estimate_energy
from repro.analysis.figures import ascii_plot, crossover_point, plateau_value, render_fig5
from repro.analysis.metrics import (
    HistogramSummary,
    RunReport,
    UtilizationSummary,
    build_run_report,
    render_json,
    render_openmetrics,
    report_from_json,
)
from repro.analysis.regression import (
    RegressionResult,
    compare,
    compare_files,
    render_regression,
)
from repro.analysis.serving import (
    RequestRecord,
    ServingResult,
    TrafficConfig,
    generate_arrivals,
    run_serving,
    saturation_point,
    sweep_latency_vs_load,
)
from repro.analysis.simspeed import SimSpeedResult, measure_simspeed
from repro.analysis.sweep import parallel_map, resolve_workers
from repro.analysis.tables import (
    render_table,
    table1_system_spec,
    table2_prior_work,
    table3_roundtrips,
    table4_bfs,
)

__all__ = [
    "render_table",
    "table1_system_spec",
    "table2_prior_work",
    "table3_roundtrips",
    "table4_bfs",
    "ascii_plot",
    "render_fig5",
    "crossover_point",
    "plateau_value",
    "PowerModel",
    "EnergyEstimate",
    "estimate_energy",
    "config_to_dict",
    "export_results",
    "load_results",
    "PhaseBreakdown",
    "chrome_phase_events",
    "measure_breakdown",
    "measure_breakdown_by_pid",
    "render_breakdown",
    "parallel_map",
    "resolve_workers",
    "SimSpeedResult",
    "measure_simspeed",
    "HistogramSummary",
    "RunReport",
    "UtilizationSummary",
    "build_run_report",
    "render_json",
    "render_openmetrics",
    "report_from_json",
    "RegressionResult",
    "compare",
    "compare_files",
    "render_regression",
    "TrafficConfig",
    "RequestRecord",
    "ServingResult",
    "generate_arrivals",
    "run_serving",
    "sweep_latency_vs_load",
    "saturation_point",
]
