"""Measured migration-latency breakdown from traces.

`repro.baselines.offload.flick_roundtrip_component_ns` prices the round
trip from config constants; this module instead *measures* the phases of
real migrations from the event trace, so the two can be cross-checked
(and so workloads whose migrations overlap other activity can be
analyzed honestly).

Phases of one simple host→NxP→host call (no nesting):

========================  =============================================
``host_out``              handler entry → descriptor handed to the DMA
                          (handler + ioctl + context switch + kick)
``transfer_to_nxp``       DMA burst + NxP poll/dispatch/context-switch
``nxp_execute``           target function on the NxP + return-descriptor
                          build + switch back to the scheduler
``return_to_host``        DMA back + interrupt delivery + IRQ handler
``host_resume``           wakeup + ioctl return + handler return
========================  =============================================

The ~0.7 µs page-fault entry precedes the first trace event and is
reported separately from config (it happens before the handler exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.trace import MigrationTrace

__all__ = ["PhaseBreakdown", "measure_breakdown", "render_breakdown"]

_PHASES = ("host_out", "transfer_to_nxp", "nxp_execute", "return_to_host", "host_resume")


@dataclass
class PhaseBreakdown:
    """Mean per-phase latency over the measured migrations (ns)."""

    phases: Dict[str, float]
    sessions: int

    @property
    def total_ns(self) -> float:
        return sum(self.phases.values())


def measure_breakdown(trace: MigrationTrace, pid: Optional[int] = None) -> PhaseBreakdown:
    """Extract per-phase means for simple (non-nested) H2N sessions.

    Sessions containing nested NxP→host calls are skipped — their phases
    overlap and cannot be attributed cleanly.
    """
    sessions: List[Dict[str, float]] = []
    state: Dict[int, Dict[str, float]] = {}

    for event in trace.events:
        epid = event.attrs.get("pid")
        if pid is not None and epid != pid:
            continue
        marks = state.setdefault(epid, {})
        if event.name == "h2n_call_start":
            state[epid] = {"start": event.time}
        elif event.name == "dma_h2n" and "start" in marks and "dma_out" not in marks:
            marks["dma_out"] = event.time
        elif event.name == "nxp_dispatch_call" and "dma_out" in marks:
            marks["dispatch"] = event.time
        elif event.name == "n2h_call":
            marks["nested"] = True  # disqualify this session
        elif event.name == "n2h_return" and "dispatch" in marks:
            marks["nxp_done"] = event.time
        elif event.name == "irq" and "nxp_done" in marks and "irq" not in marks:
            marks["irq"] = event.time
        elif event.name == "h2n_call_done" and "start" in marks:
            if "irq" in marks and not marks.get("nested"):
                sessions.append(
                    {
                        "host_out": marks["dma_out"] - marks["start"],
                        "transfer_to_nxp": marks["dispatch"] - marks["dma_out"],
                        "nxp_execute": marks["nxp_done"] - marks["dispatch"],
                        "return_to_host": marks["irq"] - marks["nxp_done"],
                        "host_resume": event.time - marks["irq"],
                    }
                )
            state[epid] = {}

    if not sessions:
        return PhaseBreakdown(phases={p: 0.0 for p in _PHASES}, sessions=0)
    means = {
        phase: sum(s[phase] for s in sessions) / len(sessions) for phase in _PHASES
    }
    return PhaseBreakdown(phases=means, sessions=len(sessions))


def render_breakdown(breakdown: PhaseBreakdown, page_fault_ns: float = 700.0) -> str:
    from repro.analysis.tables import render_table

    rows = [("page fault entry (config)", f"{page_fault_ns / 1000:.2f}us")]
    rows += [(phase, f"{ns / 1000:.2f}us") for phase, ns in breakdown.phases.items()]
    rows.append(("TOTAL (measured + fault)", f"{(breakdown.total_ns + page_fault_ns) / 1000:.2f}us"))
    return render_table(
        ["Phase", "Mean latency"],
        rows,
        title=f"Measured migration breakdown ({breakdown.sessions} sessions)",
    )
