"""Measured migration-latency breakdown from traces.

`repro.baselines.offload.flick_roundtrip_component_ns` prices the round
trip from config constants; this module instead *measures* the phases of
real migrations from the event trace, so the two can be cross-checked
(and so workloads whose migrations overlap other activity can be
analyzed honestly).

Phases of one host→NxP→host session:

========================  =============================================
``host_out``              handler entry → descriptor handed to the DMA
                          (handler + ioctl + context switch + kick)
``transfer_to_nxp``       DMA burst + NxP poll/dispatch/context-switch
``nxp_execute``           time the session is *resident on the NxP core*
                          (summed over every residency leg when nested
                          NxP→host calls punt control back to the host)
``nested_host``           time spent away from the NxP servicing nested
                          NxP→host calls (transfer + host execution +
                          transfer back + re-dispatch); 0 for simple
                          sessions
``return_to_host``        DMA back + interrupt delivery + IRQ handler
``host_resume``           wakeup + ioctl return + handler return
========================  =============================================

The ~0.7 µs page-fault entry precedes the first trace event and is
reported separately from config (it happens before the handler exists).

Session pairing is **per pid with a stack**: every event attributes to
the innermost open session of *its own* task, so two concurrent
migrating tasks whose phases interleave in the global event stream can
never conflate, and device-scoped events (``pid is None``) never enter
session state at all.  **Nested sessions are decomposed, not skipped**:
a session containing NxP→host calls reports its NxP-resident legs under
``nxp_execute`` and the away-time under ``nested_host``; a nested
host→NxP session (a host function, called from the NxP, migrating
again) is measured as its own inner session.  The phases of one session
tile its duration exactly: ``sum(phases) == done - start``.

Analyses refuse to run on a truncated trace (the ring dropped events)
unless ``allow_truncated=True``, because a windowed trace yields
corrupted means without any other symptom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.descriptors import KIND_CALL
from repro.core.trace import MigrationTrace, TraceTruncated

__all__ = [
    "PhaseBreakdown",
    "measure_breakdown",
    "measure_breakdown_by_pid",
    "chrome_phase_events",
    "render_breakdown",
]

_PHASES = (
    "host_out",
    "transfer_to_nxp",
    "nxp_execute",
    "nested_host",
    "return_to_host",
    "host_resume",
)


@dataclass
class _Session:
    """One host→NxP→host session being assembled from per-pid events."""

    pid: int
    start: float
    dma_out: Optional[float] = None
    dispatch: Optional[float] = None
    nxp_done: Optional[float] = None
    irq: Optional[float] = None
    done: Optional[float] = None
    leg_start: Optional[float] = None
    nested_start: Optional[float] = None
    leg_intervals: List[Tuple[float, float]] = field(default_factory=list)
    nested_intervals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return None not in (self.dma_out, self.dispatch, self.nxp_done, self.irq, self.done)

    @property
    def nested(self) -> bool:
        return bool(self.nested_intervals)

    def phases(self) -> Dict[str, float]:
        return {
            "host_out": self.dma_out - self.start,
            "transfer_to_nxp": self.dispatch - self.dma_out,
            "nxp_execute": sum(b - a for a, b in self.leg_intervals),
            "nested_host": sum(b - a for a, b in self.nested_intervals),
            "return_to_host": self.irq - self.nxp_done,
            "host_resume": self.done - self.irq,
        }


@dataclass
class PhaseBreakdown:
    """Mean per-phase latency over the measured migrations (ns)."""

    phases: Dict[str, float]
    sessions: int
    nested_sessions: int = 0

    @property
    def total_ns(self) -> float:
        return sum(self.phases.values())


def _collect_sessions(
    trace: MigrationTrace, pid: Optional[int] = None, allow_truncated: bool = False
) -> List[_Session]:
    """Pair the trace's point events into per-pid migration sessions."""
    if trace.truncated and not allow_truncated:
        raise TraceTruncated(
            f"trace dropped {trace.dropped} events ({trace.spans_dropped} spans); "
            f"phase means over a truncated trace would be corrupted — raise the "
            f"trace limit or pass allow_truncated=True to analyze the window"
        )
    stacks: Dict[int, List[_Session]] = {}
    sessions: List[_Session] = []
    for event in trace.events:
        epid = event.pid
        if epid is None:
            continue  # device-scoped events never enter session state
        if pid is not None and epid != pid:
            continue
        stack = stacks.setdefault(epid, [])
        name = event.name
        t = event.time
        if name == "h2n_call_start":
            stack.append(_Session(epid, t))
            continue
        if not stack:
            continue
        s = stack[-1]
        if name == "dma_h2n":
            if event.attrs.get("kind") == KIND_CALL and s.dma_out is None:
                s.dma_out = t
        elif name == "nxp_dispatch_call":
            if s.dispatch is None:
                s.dispatch = t
            s.leg_start = t
        elif name == "nxp_dispatch_return":
            # Back on the NxP after a nested NxP→host call completed.
            if s.nested_start is not None:
                s.nested_intervals.append((s.nested_start, t))
                s.nested_start = None
            s.leg_start = t
        elif name == "n2h_call":
            if s.leg_start is not None:
                s.leg_intervals.append((s.leg_start, t))
                s.leg_start = None
            s.nested_start = t
        elif name == "n2h_return":
            if s.leg_start is not None:
                s.leg_intervals.append((s.leg_start, t))
                s.leg_start = None
            s.nxp_done = t
        elif name == "irq":
            if event.attrs.get("kind") == "return" and s.nxp_done is not None and s.irq is None:
                s.irq = t
        elif name == "h2n_call_done":
            stack.pop()
            s.done = t
            if s.complete:
                sessions.append(s)
    return sessions


def measure_breakdown(
    trace: MigrationTrace, pid: Optional[int] = None, allow_truncated: bool = False
) -> PhaseBreakdown:
    """Extract per-phase means for H2N sessions (nested ones decomposed).

    ``pid`` restricts the measurement to one task; without it, sessions
    of every pid contribute to the means (still paired per-pid — use
    :func:`measure_breakdown_by_pid` for separate per-task results).
    Raises :class:`~repro.core.trace.TraceTruncated` when the trace ring
    dropped events, unless ``allow_truncated`` is set.
    """
    sessions = _collect_sessions(trace, pid=pid, allow_truncated=allow_truncated)
    if not sessions:
        return PhaseBreakdown(phases={p: 0.0 for p in _PHASES}, sessions=0)
    per_session = [s.phases() for s in sessions]
    means = {
        phase: sum(p[phase] for p in per_session) / len(per_session) for phase in _PHASES
    }
    return PhaseBreakdown(
        phases=means,
        sessions=len(sessions),
        nested_sessions=sum(1 for s in sessions if s.nested),
    )


def measure_breakdown_by_pid(
    trace: MigrationTrace, allow_truncated: bool = False
) -> Dict[int, PhaseBreakdown]:
    """Per-task phase means: one :class:`PhaseBreakdown` per migrating pid."""
    sessions = _collect_sessions(trace, allow_truncated=allow_truncated)
    by_pid: Dict[int, List[_Session]] = {}
    for s in sessions:
        by_pid.setdefault(s.pid, []).append(s)
    out: Dict[int, PhaseBreakdown] = {}
    for pid, group in sorted(by_pid.items()):
        per_session = [s.phases() for s in group]
        means = {
            phase: sum(p[phase] for p in per_session) / len(per_session)
            for phase in _PHASES
        }
        out[pid] = PhaseBreakdown(
            phases=means,
            sessions=len(group),
            nested_sessions=sum(1 for s in group if s.nested),
        )
    return out


def chrome_phase_events(
    trace: MigrationTrace, allow_truncated: bool = False
) -> List[dict]:
    """Derived Chrome ``trace_event`` entries: one complete ("X") span
    per migration phase per session, on the owning pid's track.

    Feed these to :meth:`MigrationTrace.to_chrome`'s ``extra_events`` to
    overlay the measured phase decomposition on the raw event timeline.
    """
    out: List[dict] = []

    def span(name: str, pid: int, t0: float, t1: float) -> dict:
        return {
            "name": name,
            "cat": "phase",
            "ph": "X",
            "ts": t0 / 1000.0,
            "dur": (t1 - t0) / 1000.0,
            "pid": pid,
            "tid": pid,
            "args": {},
        }

    for s in _collect_sessions(trace, allow_truncated=allow_truncated):
        out.append(span("host_out", s.pid, s.start, s.dma_out))
        out.append(span("transfer_to_nxp", s.pid, s.dma_out, s.dispatch))
        for a, b in s.leg_intervals:
            out.append(span("nxp_execute", s.pid, a, b))
        for a, b in s.nested_intervals:
            out.append(span("nested_host", s.pid, a, b))
        out.append(span("return_to_host", s.pid, s.nxp_done, s.irq))
        out.append(span("host_resume", s.pid, s.irq, s.done))
    return out


def render_breakdown(breakdown: PhaseBreakdown, page_fault_ns: float = 700.0) -> str:
    from repro.analysis.tables import render_table

    rows = [("page fault entry (config)", f"{page_fault_ns / 1000:.2f}us")]
    rows += [(phase, f"{ns / 1000:.2f}us") for phase, ns in breakdown.phases.items()]
    rows.append(("TOTAL (measured + fault)", f"{(breakdown.total_ns + page_fault_ns) / 1000:.2f}us"))
    title = f"Measured migration breakdown ({breakdown.sessions} sessions"
    if breakdown.nested_sessions:
        title += f", {breakdown.nested_sessions} nested"
    title += ")"
    return render_table(["Phase", "Mean latency"], rows, title=title)
