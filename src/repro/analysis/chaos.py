"""Chaos harness: run workloads under seeded fault plans and classify.

This is the driver behind ``python -m repro chaos`` and the chaos-matrix
tests.  Each case arms one :class:`~repro.sim.faults.FaultPlan` on a
fresh machine, runs a fixed workload with a **simulated-time bound**,
and classifies the terminal state against a golden faults-off run:

============  =====================================================
``survived``  Correct return value, no degraded (host-fallback)
              calls — the hardened protocol absorbed every fault.
``degraded``  Correct return value, but at least one NISA call ran
              on the host-fallback interpreter (NxP declared dead).
``crashed``   The workload raised a typed :class:`ProcessCrash`
              (e.g. the NxP died mid-migration-session).
``hung``      The workload neither finished nor crashed within the
              sim-time bound.  Always a bug: the watchdog/retry/
              fallback ladder must produce one of the above.
``mismatch``  Finished, but with the wrong return value.  Always a
              bug: corruption must never survive the checksum.
``shed``      Overload cases only: every request either completed
              correctly or was rejected with a *typed* admission
              shed — the overload-protection contract
              (docs/ROBUSTNESS.md).
``recovered`` Revive cases only: a killed device was revived, passed
              its half-open breaker probes, and served traffic again
              while the workload completed correctly.
============  =====================================================

Both execution modes are exercised: ``null_call`` is an interpreted
FlickC migration loop; ``pointer_chase`` is a hosted-mode traversal of
a linked list in NxP DRAM whose return value (the final node address)
is data-dependent, so silent corruption cannot hide.

Everything is deterministic: plans are seeded, workloads are fixed, and
the machine has no wall-clock inputs — a matrix run is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.errors import ProcessCrash, WorkloadHung
from repro.core.hosted import HostedMachine, HostedProgram
from repro.core.machine import FlickMachine, signed_retval
from repro.sim.engine import Deadlock, SimulationError
from repro.sim.faults import FaultPlan, FaultRule, builtin_plans
from repro.workloads.pointer_chase import build_chain

__all__ = [
    "ChaosResult",
    "WORKLOADS",
    "DEFAULT_BOUND_NS",
    "run_chaos_case",
    "run_chaos_matrix",
    "run_multi_nxp_kill_case",
    "run_multi_nxp_revive_case",
    "run_overload_storm_case",
    "render_verdicts",
]

#: Generous sim-time ceiling: the slowest legitimate recovery (declare
#: dead after 3 exhausted retry ladders, then fall back) finishes well
#: under 20 ms of simulated time for these workloads.
DEFAULT_BOUND_NS = 50_000_000.0

NULL_CALL_ITERS = 4
NULL_CALL_SRC = """
@nxp func bump(x) { return x + 3; }
func main(n) {
    var i = 0;
    var acc = 0;
    while (i < n) { acc = bump(acc); i = i + 1; }
    return acc;
}
"""

CHASE_NODES = 24
CHASE_CALLS = 3


@dataclass(frozen=True)
class ChaosResult:
    """Terminal classification of one (plan, workload) chaos case."""

    plan: str
    workload: str
    verdict: str  # survived | degraded | crashed | hung | mismatch | shed | recovered
    retval: Optional[int]
    expected: Optional[int]
    sim_ns: float
    degraded_calls: int
    faults_fired: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True for the verdicts the hardening contract allows."""
        return self.verdict in ("survived", "degraded", "crashed", "shed", "recovered")


@dataclass
class _Probe:
    """Raw terminal state of one bounded run, before classification."""

    retval: Optional[int]
    done: bool
    sim_ns: float
    degraded_calls: int
    faults_fired: int
    crash: Optional[ProcessCrash] = None


def _run_null_call(cfg: FlickConfig, bound_ns: float) -> _Probe:
    """Interpreted mode: a loop of NISA migrations accumulating state."""
    machine = FlickMachine(cfg)
    process = machine.load(machine.compile(NULL_CALL_SRC))
    thread = machine.spawn(process, args=[NULL_CALL_ITERS])
    crash = None
    try:
        machine.sim.run(until=bound_ns)
    except Deadlock:
        # The NxP scheduler is always a live waiting process, so every
        # bounded run that drains its queue ends in Deadlock; the
        # thread's own state decides what actually happened.
        pass
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
        else:
            raise
    done = thread.task.state.value == "done"
    retval = signed_retval(thread.result) if done else None
    stats = machine.stats.snapshot()
    return _Probe(
        retval=retval,
        done=done,
        sim_ns=thread.finished_at if thread.finished_at is not None else machine.sim.now,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )


def _chase_program() -> HostedProgram:
    prog = HostedProgram()

    def traverse(ctx, head, count):
        node = head
        remaining = count
        while remaining > 0:
            node = ctx.load(node)
            ctx.compute(10)
            remaining -= 1
            yield from ctx.maybe_flush()
        return node

    prog.register("traverse", "nisa", traverse)

    def main(ctx, head, count, calls):
        last = 0
        for _ in range(calls):
            last = yield from ctx.call("traverse", head, count)
        return last

    prog.register("main", "hisa", main)
    return prog


def _run_pointer_chase(cfg: FlickConfig, bound_ns: float) -> _Probe:
    """Hosted mode: chase a list in NxP DRAM, return the final node."""
    hosted = HostedMachine(_chase_program(), cfg=cfg)
    head = build_chain(hosted, CHASE_NODES, seed=11)
    machine = hosted.machine
    crash = None
    done = False
    retval: Optional[int] = None
    sim_ns = 0.0
    try:
        out = hosted.run("main", [head, CHASE_NODES - 1, CHASE_CALLS], until=bound_ns)
        # Hosted outcomes carry the raw u64 return register; apply the
        # same two's-complement fixup as the interpreted probe so a
        # body that legitimately returns a negative value classifies
        # against its golden run instead of reading as a huge positive.
        retval = signed_retval(out.retval)
        sim_ns = out.sim_time_ns
        done = True
    except WorkloadHung:
        sim_ns = hosted.sim.now
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
            sim_ns = hosted.sim.now
        else:
            raise
    stats = machine.stats.snapshot()
    return _Probe(
        retval=retval,
        done=done,
        sim_ns=sim_ns,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )


WORKLOADS = {
    "null_call": _run_null_call,
    "pointer_chase": _run_pointer_chase,
}


def _classify(probe: _Probe, expected: Optional[int]) -> tuple:
    if probe.crash is not None:
        return "crashed", str(probe.crash)
    if not probe.done:
        return "hung", "sim-time bound reached without completion or crash"
    if expected is not None and probe.retval != expected:
        return "mismatch", f"retval {probe.retval} != expected {expected}"
    if probe.degraded_calls:
        return "degraded", f"{probe.degraded_calls} call(s) via host fallback"
    return "survived", ""


def run_chaos_case(
    plan: FaultPlan,
    workload: str,
    cfg: FlickConfig = DEFAULT_CONFIG,
    bound_ns: float = DEFAULT_BOUND_NS,
    expected: Optional[int] = None,
) -> ChaosResult:
    """Run one (plan, workload) case and classify its terminal state.

    ``expected`` is the golden faults-off return value; pass ``None``
    to skip the mismatch check (the matrix driver always supplies it).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r} (know {sorted(WORKLOADS)})")
    probe = WORKLOADS[workload](plan.apply(cfg), bound_ns)
    verdict, detail = _classify(probe, expected)
    return ChaosResult(
        plan=plan.name or "<unnamed>",
        workload=workload,
        verdict=verdict,
        retval=probe.retval,
        expected=expected,
        sim_ns=probe.sim_ns,
        degraded_calls=probe.degraded_calls,
        faults_fired=probe.faults_fired,
        detail=detail,
    )


def run_chaos_matrix(
    plans: Optional[Sequence[FaultPlan]] = None,
    workloads: Optional[Iterable[str]] = None,
    cfg: FlickConfig = DEFAULT_CONFIG,
    seed: int = 0,
    bound_ns: float = DEFAULT_BOUND_NS,
) -> List[ChaosResult]:
    """The full chaos matrix: every plan crossed with every workload.

    A golden faults-off run per workload supplies the expected return
    value; a golden run that fails is a configuration error, not a
    chaos verdict, and raises immediately.
    """
    if plans is None:
        plans = list(builtin_plans(seed).values())
    names = list(workloads) if workloads is not None else sorted(WORKLOADS)
    golden: Dict[str, int] = {}
    for name in names:
        probe = WORKLOADS[name](cfg.with_overrides(faults=(), fault_seed=0), bound_ns)
        if probe.crash is not None or not probe.done:
            raise RuntimeError(f"golden faults-off run of {name!r} did not complete")
        golden[name] = probe.retval
    results = []
    for plan in plans:
        for name in names:
            results.append(
                run_chaos_case(plan, name, cfg=cfg, bound_ns=bound_ns, expected=golden[name])
            )
    return results


def run_multi_nxp_kill_case(
    nxps: int = 2,
    kill_device: int = 0,
    kill_at_ns: float = 5_000.0,
    kill_mode: str = "abrupt",
    cfg: FlickConfig = DEFAULT_CONFIG,
    bound_ns: float = DEFAULT_BOUND_NS,
) -> ChaosResult:
    """Kill one of ``nxps`` devices mid-run; survivors must finish.

    The fleet drain contract (docs/FLEET.md): an abrupt kill strands
    the dead device's in-flight opening legs, the watchdog recovers
    them, and placement re-routes every later session to a survivor —
    the workload completes with its correct value and no host-fallback.
    Deliberately *not* part of the default chaos matrix (those plans
    describe single-machine fault processes); this case is driven by
    the fleet tests and the CI fleet smoke.
    """
    if nxps < 2:
        raise ValueError("the kill case needs nxps >= 2 (survivors)")
    # Arm the hardened protocol with a never-firing rule, then tighten
    # the recovery knobs: one retry and a one-strike dead threshold is
    # safe here because a single closed-loop workload never queues
    # behind itself, so a watchdog trip really does mean a lost leg.
    run_cfg = cfg.with_overrides(
        nxp_count=nxps,
        placement_policy="round_robin",
        faults=(FaultRule("dma_drop", after_ns=1e18, count=None),),
        fault_seed=1,
        migration_watchdog_ns=50_000.0,
        migration_retry_limit=1,
        nxp_dead_threshold=1,
    )
    machine = FlickMachine(run_cfg)
    process = machine.load(machine.compile(NULL_CALL_SRC))
    thread = machine.spawn(process, args=[NULL_CALL_ITERS])

    def _killer(sim):
        yield sim.timeout(kill_at_ns)
        machine.kill_nxp(kill_device, mode=kill_mode)

    machine.sim.spawn(_killer(machine.sim), name="chaos-killer")
    crash = None
    try:
        machine.sim.run(until=bound_ns)
    except Deadlock:
        pass
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
        else:
            raise
    done = thread.task.state.value == "done"
    stats = machine.stats.snapshot()
    probe = _Probe(
        retval=signed_retval(thread.result) if done else None,
        done=done,
        sim_ns=thread.finished_at if thread.finished_at is not None else machine.sim.now,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )
    expected = NULL_CALL_ITERS * 3
    verdict, detail = _classify(probe, expected)
    return ChaosResult(
        plan=f"kill-dev{kill_device}-{kill_mode}@{kill_at_ns:.0f}ns",
        workload="null_call",
        verdict=verdict,
        retval=probe.retval,
        expected=expected,
        sim_ns=probe.sim_ns,
        degraded_calls=probe.degraded_calls,
        faults_fired=probe.faults_fired,
        detail=detail,
    )


def run_overload_storm_case(
    qps: float = 20_000.0,
    requests: int = 120,
    deadline_us: float = 500.0,
    cfg: FlickConfig = DEFAULT_CONFIG,
    seed: int = 0,
) -> ChaosResult:
    """Overload storm with the full protection stack armed.

    Serves ``requests`` null-call requests at ``qps`` (far past the
    single-NxP saturation point) under the ``overload-storm`` fault
    plan, with per-request deadlines, bounded admission queues and a
    machine-wide retry budget.  The overload-protection contract: the
    run quiesces with **zero hangs** — every request either completes
    with its correct value or is rejected with a typed shed — and the
    retransmit storm is capped by the budget.  Verdict ``shed`` when
    load was actually shed, ``survived``/``degraded`` when the machine
    somehow kept up, ``hung``/``mismatch`` on contract violations.
    """
    from repro.analysis.serving import TrafficConfig, run_serving

    plan = builtin_plans(seed)["overload-storm"]
    tc = TrafficConfig(
        scenario="null_call",
        arrival="poisson",
        qps=qps,
        requests=requests,
        clients=8,
        seed=seed,
        deadline_ns=deadline_us * 1000.0,
        admission_limit=4,
        retry_budget_tokens=8.0,
        retry_budget_refill_per_ms=2.0,
    )
    # The storm plan's delays must be able to outlast the watchdog, or
    # the retry budget is never consulted; a high dead-threshold keeps
    # the device in service (the point is shedding, not failover), and
    # (1 + 1) * 8 = 16 stays within the ring-capacity invariant.
    run_cfg = plan.apply(cfg).with_overrides(
        host_cores=tc.host_cores,
        admission_queue_limit=tc.admission_limit,
        retry_budget_tokens=tc.retry_budget_tokens,
        retry_budget_refill_per_ms=tc.retry_budget_refill_per_ms,
        migration_watchdog_ns=100_000.0,
        migration_retry_limit=1,
        nxp_dead_threshold=8,
    )
    name = f"overload-storm@{qps:.0f}qps"
    try:
        result = run_serving(tc, cfg=run_cfg)
    except RuntimeError as exc:
        return ChaosResult(
            plan=name, workload="serving", verdict="hung", retval=None,
            expected=None, sim_ns=0.0, degraded_calls=0, faults_fired=0,
            detail=str(exc),
        )
    bad = [r for r in result.records if not r.shed and not r.ok]
    if bad:
        verdict, detail = "mismatch", f"{len(bad)} completed request(s) wrong"
    elif result.shed:
        verdict = "shed"
        detail = (
            f"{result.shed} typed shed(s) {result.shed_by_reason}, "
            f"{len(result.completed_records)} completed ok, "
            f"retry budget denied {result.retry_budget_denied}"
        )
    elif result.degraded_calls:
        verdict, detail = "degraded", f"{result.degraded_calls} fallback call(s)"
    else:
        verdict, detail = "survived", "machine kept up with the storm"
    return ChaosResult(
        plan=name,
        workload="serving",
        verdict=verdict,
        retval=None,
        expected=None,
        sim_ns=result.sim_ns,
        degraded_calls=result.degraded_calls,
        faults_fired=0,
        detail=detail,
    )


def run_multi_nxp_revive_case(
    nxps: int = 2,
    kill_device: int = 0,
    kill_at_ns: float = 5_000.0,
    revive_at_ns: float = 120_000.0,
    iters: int = 16,
    cfg: FlickConfig = DEFAULT_CONFIG,
    bound_ns: float = DEFAULT_BOUND_NS,
) -> ChaosResult:
    """Kill one device, revive it mid-run, and demand it serve again.

    The self-healing contract (docs/ROBUSTNESS.md): after
    ``machine.revive_nxp`` the breaker goes DEAD → RECOVERING, placement
    feeds the device half-open probe sessions, and after
    ``nxp_probe_successes`` consecutive successes it is a full peer
    again.  Verdict ``recovered`` only when the workload completes with
    its correct value *and* the revived device served sessions after the
    revive instant.
    """
    if nxps < 2:
        raise ValueError("the revive case needs nxps >= 2 (survivors)")
    if revive_at_ns <= kill_at_ns:
        raise ValueError("revive_at_ns must be after kill_at_ns")
    run_cfg = cfg.with_overrides(
        nxp_count=nxps,
        placement_policy="round_robin",
        faults=(FaultRule("dma_drop", after_ns=1e18, count=None),),
        fault_seed=1,
        migration_watchdog_ns=50_000.0,
        migration_retry_limit=1,
        nxp_dead_threshold=1,
        nxp_recovery=True,
    )
    machine = FlickMachine(run_cfg)
    process = machine.load(machine.compile(NULL_CALL_SRC))
    thread = machine.spawn(process, args=[iters])
    sessions_at_revive: Dict[int, int] = {}

    def _chaos(sim):
        yield sim.timeout(kill_at_ns)
        machine.kill_nxp(kill_device, mode="abrupt")
        yield sim.timeout(revive_at_ns - kill_at_ns)
        sessions_at_revive.update(machine.placement.session_counts())
        machine.revive_nxp(kill_device)

    machine.sim.spawn(_chaos(machine.sim), name="chaos-kill-revive")
    crash = None
    try:
        machine.sim.run(until=bound_ns)
    except Deadlock:
        pass
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
        else:
            raise
    done = thread.task.state.value == "done"
    stats = machine.stats.snapshot()
    probe = _Probe(
        retval=signed_retval(thread.result) if done else None,
        done=done,
        sim_ns=thread.finished_at if thread.finished_at is not None else machine.sim.now,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )
    expected = iters * 3
    verdict, detail = _classify(probe, expected)
    if verdict in ("survived", "degraded"):
        revived = int(stats.get("nxp.revived", 0))
        served_after = (
            machine.placement.session_counts().get(kill_device, 0)
            - sessions_at_revive.get(kill_device, 0)
        )
        health = machine.devices[kill_device].health
        if revived and served_after > 0 and not health.dead:
            verdict = "recovered"
            detail = (
                f"device {kill_device} revived, {served_after} post-revive "
                f"session(s), {int(stats.get('health.probe_success', 0))} "
                f"probe success(es), health {health.state.value}"
            )
        else:
            verdict, detail = (
                "hung",
                f"revive did not re-admit device {kill_device} "
                f"(revived={revived}, post-revive sessions={served_after}, "
                f"health={health.state.value})",
            )
    return ChaosResult(
        plan=f"kill-revive-dev{kill_device}@{revive_at_ns:.0f}ns",
        workload="null_call",
        verdict=verdict,
        retval=probe.retval,
        expected=expected,
        sim_ns=probe.sim_ns,
        degraded_calls=probe.degraded_calls,
        faults_fired=probe.faults_fired,
        detail=detail,
    )


def render_verdicts(results: Sequence[ChaosResult]) -> str:
    """Aligned verdict table plus a one-line tally."""
    rows = [("plan", "workload", "verdict", "retval", "degraded", "faults", "sim_ms")]
    for r in results:
        rows.append(
            (
                r.plan,
                r.workload,
                r.verdict,
                "-" if r.retval is None else str(r.retval),
                str(r.degraded_calls),
                str(r.faults_fired),
                f"{r.sim_ns / 1e6:.3f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    tally: Dict[str, int] = {}
    for r in results:
        tally[r.verdict] = tally.get(r.verdict, 0) + 1
    order = ["survived", "degraded", "shed", "recovered", "crashed", "hung", "mismatch"]
    summary = ", ".join(f"{tally[v]} {v}" for v in order if v in tally)
    lines.append("")
    lines.append(f"{len(results)} cases: {summary}")
    return "\n".join(lines)
