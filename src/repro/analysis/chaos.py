"""Chaos harness: run workloads under seeded fault plans and classify.

This is the driver behind ``python -m repro chaos`` and the chaos-matrix
tests.  Each case arms one :class:`~repro.sim.faults.FaultPlan` on a
fresh machine, runs a fixed workload with a **simulated-time bound**,
and classifies the terminal state against a golden faults-off run:

============  =====================================================
``survived``  Correct return value, no degraded (host-fallback)
              calls — the hardened protocol absorbed every fault.
``degraded``  Correct return value, but at least one NISA call ran
              on the host-fallback interpreter (NxP declared dead).
``crashed``   The workload raised a typed :class:`ProcessCrash`
              (e.g. the NxP died mid-migration-session).
``hung``      The workload neither finished nor crashed within the
              sim-time bound.  Always a bug: the watchdog/retry/
              fallback ladder must produce one of the above.
``mismatch``  Finished, but with the wrong return value.  Always a
              bug: corruption must never survive the checksum.
============  =====================================================

Both execution modes are exercised: ``null_call`` is an interpreted
FlickC migration loop; ``pointer_chase`` is a hosted-mode traversal of
a linked list in NxP DRAM whose return value (the final node address)
is data-dependent, so silent corruption cannot hide.

Everything is deterministic: plans are seeded, workloads are fixed, and
the machine has no wall-clock inputs — a matrix run is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.errors import ProcessCrash, WorkloadHung
from repro.core.hosted import HostedMachine, HostedProgram
from repro.core.machine import FlickMachine, signed_retval
from repro.sim.engine import Deadlock, SimulationError
from repro.sim.faults import FaultPlan, FaultRule, builtin_plans
from repro.workloads.pointer_chase import build_chain

__all__ = [
    "ChaosResult",
    "WORKLOADS",
    "DEFAULT_BOUND_NS",
    "run_chaos_case",
    "run_chaos_matrix",
    "run_multi_nxp_kill_case",
    "render_verdicts",
]

#: Generous sim-time ceiling: the slowest legitimate recovery (declare
#: dead after 3 exhausted retry ladders, then fall back) finishes well
#: under 20 ms of simulated time for these workloads.
DEFAULT_BOUND_NS = 50_000_000.0

NULL_CALL_ITERS = 4
NULL_CALL_SRC = """
@nxp func bump(x) { return x + 3; }
func main(n) {
    var i = 0;
    var acc = 0;
    while (i < n) { acc = bump(acc); i = i + 1; }
    return acc;
}
"""

CHASE_NODES = 24
CHASE_CALLS = 3


@dataclass(frozen=True)
class ChaosResult:
    """Terminal classification of one (plan, workload) chaos case."""

    plan: str
    workload: str
    verdict: str  # survived | degraded | crashed | hung | mismatch
    retval: Optional[int]
    expected: Optional[int]
    sim_ns: float
    degraded_calls: int
    faults_fired: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True for the verdicts the hardening contract allows."""
        return self.verdict in ("survived", "degraded", "crashed")


@dataclass
class _Probe:
    """Raw terminal state of one bounded run, before classification."""

    retval: Optional[int]
    done: bool
    sim_ns: float
    degraded_calls: int
    faults_fired: int
    crash: Optional[ProcessCrash] = None


def _run_null_call(cfg: FlickConfig, bound_ns: float) -> _Probe:
    """Interpreted mode: a loop of NISA migrations accumulating state."""
    machine = FlickMachine(cfg)
    process = machine.load(machine.compile(NULL_CALL_SRC))
    thread = machine.spawn(process, args=[NULL_CALL_ITERS])
    crash = None
    try:
        machine.sim.run(until=bound_ns)
    except Deadlock:
        # The NxP scheduler is always a live waiting process, so every
        # bounded run that drains its queue ends in Deadlock; the
        # thread's own state decides what actually happened.
        pass
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
        else:
            raise
    done = thread.task.state.value == "done"
    retval = signed_retval(thread.result) if done else None
    stats = machine.stats.snapshot()
    return _Probe(
        retval=retval,
        done=done,
        sim_ns=thread.finished_at if thread.finished_at is not None else machine.sim.now,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )


def _chase_program() -> HostedProgram:
    prog = HostedProgram()

    def traverse(ctx, head, count):
        node = head
        remaining = count
        while remaining > 0:
            node = ctx.load(node)
            ctx.compute(10)
            remaining -= 1
            yield from ctx.maybe_flush()
        return node

    prog.register("traverse", "nisa", traverse)

    def main(ctx, head, count, calls):
        last = 0
        for _ in range(calls):
            last = yield from ctx.call("traverse", head, count)
        return last

    prog.register("main", "hisa", main)
    return prog


def _run_pointer_chase(cfg: FlickConfig, bound_ns: float) -> _Probe:
    """Hosted mode: chase a list in NxP DRAM, return the final node."""
    hosted = HostedMachine(_chase_program(), cfg=cfg)
    head = build_chain(hosted, CHASE_NODES, seed=11)
    machine = hosted.machine
    crash = None
    done = False
    retval: Optional[int] = None
    sim_ns = 0.0
    try:
        out = hosted.run("main", [head, CHASE_NODES - 1, CHASE_CALLS], until=bound_ns)
        # Hosted outcomes carry the raw u64 return register; apply the
        # same two's-complement fixup as the interpreted probe so a
        # body that legitimately returns a negative value classifies
        # against its golden run instead of reading as a huge positive.
        retval = signed_retval(out.retval)
        sim_ns = out.sim_time_ns
        done = True
    except WorkloadHung:
        sim_ns = hosted.sim.now
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
            sim_ns = hosted.sim.now
        else:
            raise
    stats = machine.stats.snapshot()
    return _Probe(
        retval=retval,
        done=done,
        sim_ns=sim_ns,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )


WORKLOADS = {
    "null_call": _run_null_call,
    "pointer_chase": _run_pointer_chase,
}


def _classify(probe: _Probe, expected: Optional[int]) -> tuple:
    if probe.crash is not None:
        return "crashed", str(probe.crash)
    if not probe.done:
        return "hung", "sim-time bound reached without completion or crash"
    if expected is not None and probe.retval != expected:
        return "mismatch", f"retval {probe.retval} != expected {expected}"
    if probe.degraded_calls:
        return "degraded", f"{probe.degraded_calls} call(s) via host fallback"
    return "survived", ""


def run_chaos_case(
    plan: FaultPlan,
    workload: str,
    cfg: FlickConfig = DEFAULT_CONFIG,
    bound_ns: float = DEFAULT_BOUND_NS,
    expected: Optional[int] = None,
) -> ChaosResult:
    """Run one (plan, workload) case and classify its terminal state.

    ``expected`` is the golden faults-off return value; pass ``None``
    to skip the mismatch check (the matrix driver always supplies it).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r} (know {sorted(WORKLOADS)})")
    probe = WORKLOADS[workload](plan.apply(cfg), bound_ns)
    verdict, detail = _classify(probe, expected)
    return ChaosResult(
        plan=plan.name or "<unnamed>",
        workload=workload,
        verdict=verdict,
        retval=probe.retval,
        expected=expected,
        sim_ns=probe.sim_ns,
        degraded_calls=probe.degraded_calls,
        faults_fired=probe.faults_fired,
        detail=detail,
    )


def run_chaos_matrix(
    plans: Optional[Sequence[FaultPlan]] = None,
    workloads: Optional[Iterable[str]] = None,
    cfg: FlickConfig = DEFAULT_CONFIG,
    seed: int = 0,
    bound_ns: float = DEFAULT_BOUND_NS,
) -> List[ChaosResult]:
    """The full chaos matrix: every plan crossed with every workload.

    A golden faults-off run per workload supplies the expected return
    value; a golden run that fails is a configuration error, not a
    chaos verdict, and raises immediately.
    """
    if plans is None:
        plans = list(builtin_plans(seed).values())
    names = list(workloads) if workloads is not None else sorted(WORKLOADS)
    golden: Dict[str, int] = {}
    for name in names:
        probe = WORKLOADS[name](cfg.with_overrides(faults=(), fault_seed=0), bound_ns)
        if probe.crash is not None or not probe.done:
            raise RuntimeError(f"golden faults-off run of {name!r} did not complete")
        golden[name] = probe.retval
    results = []
    for plan in plans:
        for name in names:
            results.append(
                run_chaos_case(plan, name, cfg=cfg, bound_ns=bound_ns, expected=golden[name])
            )
    return results


def run_multi_nxp_kill_case(
    nxps: int = 2,
    kill_device: int = 0,
    kill_at_ns: float = 5_000.0,
    kill_mode: str = "abrupt",
    cfg: FlickConfig = DEFAULT_CONFIG,
    bound_ns: float = DEFAULT_BOUND_NS,
) -> ChaosResult:
    """Kill one of ``nxps`` devices mid-run; survivors must finish.

    The fleet drain contract (docs/FLEET.md): an abrupt kill strands
    the dead device's in-flight opening legs, the watchdog recovers
    them, and placement re-routes every later session to a survivor —
    the workload completes with its correct value and no host-fallback.
    Deliberately *not* part of the default chaos matrix (those plans
    describe single-machine fault processes); this case is driven by
    the fleet tests and the CI fleet smoke.
    """
    if nxps < 2:
        raise ValueError("the kill case needs nxps >= 2 (survivors)")
    # Arm the hardened protocol with a never-firing rule, then tighten
    # the recovery knobs: one retry and a one-strike dead threshold is
    # safe here because a single closed-loop workload never queues
    # behind itself, so a watchdog trip really does mean a lost leg.
    run_cfg = cfg.with_overrides(
        nxp_count=nxps,
        placement_policy="round_robin",
        faults=(FaultRule("dma_drop", after_ns=1e18, count=None),),
        fault_seed=1,
        migration_watchdog_ns=50_000.0,
        migration_retry_limit=1,
        nxp_dead_threshold=1,
    )
    machine = FlickMachine(run_cfg)
    process = machine.load(machine.compile(NULL_CALL_SRC))
    thread = machine.spawn(process, args=[NULL_CALL_ITERS])

    def _killer(sim):
        yield sim.timeout(kill_at_ns)
        machine.kill_nxp(kill_device, mode=kill_mode)

    machine.sim.spawn(_killer(machine.sim), name="chaos-killer")
    crash = None
    try:
        machine.sim.run(until=bound_ns)
    except Deadlock:
        pass
    except SimulationError as exc:
        if isinstance(exc.__cause__, ProcessCrash):
            crash = exc.__cause__
        else:
            raise
    done = thread.task.state.value == "done"
    stats = machine.stats.snapshot()
    probe = _Probe(
        retval=signed_retval(thread.result) if done else None,
        done=done,
        sim_ns=thread.finished_at if thread.finished_at is not None else machine.sim.now,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        faults_fired=machine.injector.fired_total if machine.injector else 0,
        crash=crash,
    )
    expected = NULL_CALL_ITERS * 3
    verdict, detail = _classify(probe, expected)
    return ChaosResult(
        plan=f"kill-dev{kill_device}-{kill_mode}@{kill_at_ns:.0f}ns",
        workload="null_call",
        verdict=verdict,
        retval=probe.retval,
        expected=expected,
        sim_ns=probe.sim_ns,
        degraded_calls=probe.degraded_calls,
        faults_fired=probe.faults_fired,
        detail=detail,
    )


def render_verdicts(results: Sequence[ChaosResult]) -> str:
    """Aligned verdict table plus a one-line tally."""
    rows = [("plan", "workload", "verdict", "retval", "degraded", "faults", "sim_ms")]
    for r in results:
        rows.append(
            (
                r.plan,
                r.workload,
                r.verdict,
                "-" if r.retval is None else str(r.retval),
                str(r.degraded_calls),
                str(r.faults_fired),
                f"{r.sim_ns / 1e6:.3f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip() for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    tally: Dict[str, int] = {}
    for r in results:
        tally[r.verdict] = tally.get(r.verdict, 0) + 1
    order = ["survived", "degraded", "crashed", "hung", "mismatch"]
    summary = ", ".join(f"{tally[v]} {v}" for v in order if v in tally)
    lines.append("")
    lines.append(f"{len(results)} cases: {summary}")
    return "\n".join(lines)
