"""Per-request critical-path extraction and tail attribution.

A traced serving run (``TrafficConfig.traced`` /
``FlickConfig.trace_context``) stamps every span and event a request
causes with its ``trace_id``.  This module folds each request's span
DAG back into an **exactly-tiling causal timeline**: a partition of the
request's measured latency (arrival → completion) into named phases
that sum back to the latency, so "where did the time go" always has a
complete answer — nothing double-counted, nothing unattributed.

**Phase taxonomy** (the Mavrogeorgis migration-cost vocabulary, adapted
to Flick's protocol; see docs/OBSERVABILITY.md):

============== ==========================================================
queue_wait     arrival → the request's thread starts running (connection
               pool + host-core queueing)
host_execute   host-ISA instruction execution outside migration sessions
protocol_host  h2n session overhead: fault entry, ioctl, descriptor
               build, context switches, IRQ delivery, wakeup
dma_h2n        descriptor bursts host → NxP (successful legs)
dma_n2h        descriptor bursts NxP → host (successful legs)
nxp_execute    NISA execution resident on an NxP device
nested_host    NxP-requested host callbacks (the reentrant ladder)
retry_backoff  watchdog waits + backoff on lost legs, recovered by
               retransmission to the *same* device
failover       watchdog waits + recovery re-placed on *another* device
               (a ``placement`` event with ``failover`` inside)
fallback       degraded host-emulation of NISA code (device(s) dead)
============== ==========================================================

The tiling is computed by *elementary-interval decomposition*: every
claim (span or derived interval) is clipped to the request window, the
window is cut at every claim boundary, and each elementary slice is
awarded to the highest-priority claim covering it.  Priorities encode
causal specificity — NxP residency beats the session that contains it,
a recovery interval beats the doomed DMA burst inside it — and the
slices of one request partition its window by construction, so the
phase sums tile the latency exactly (property-tested in
``tests/analysis/test_critical_path.py``).

Tail attribution buckets requests into percentile bands, aggregates
phase breakdowns per band, and names the dominant phase of the tail
plus exemplar trace ids — the ``python -m repro why`` report
(``flick.why.v1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "PHASES",
    "RequestPath",
    "TailBand",
    "WhyReport",
    "extract_request_paths",
    "tail_attribution",
    "why_report",
    "render_why",
    "why_doc",
]

#: Canonical phase order (reports render in this order).
PHASES = (
    "queue_wait",
    "host_execute",
    "protocol_host",
    "dma_h2n",
    "dma_n2h",
    "nxp_execute",
    "nested_host",
    "retry_backoff",
    "failover",
    "fallback",
)

#: What each phase means for a "why is the tail slow" verdict.
_CULPRITS = {
    "queue_wait": "queueing: requests wait for a connection/host core — offered load is at or past capacity",
    "host_execute": "host execution: the request's own host-ISA work dominates",
    "protocol_host": "migration protocol overhead: ioctl/context-switch/IRQ path dominates",
    "dma_h2n": "interconnect: host->NxP descriptor transfers dominate",
    "dma_n2h": "interconnect: NxP->host descriptor transfers dominate",
    "nxp_execute": "slow device: NISA execution resident on the NxP dominates",
    "nested_host": "reentrant ladder: NxP-requested host callbacks dominate",
    "retry_backoff": "retry storm: watchdog waits + backoff on lost legs dominate",
    "failover": "failover recovery: lost legs re-placed on surviving devices dominate",
    "fallback": "degraded mode: host-fallback emulation of NISA code dominates",
}

# Claim priorities: lower wins.  See module docstring.
_PRI_NXP = 0
_PRI_RECOVERY = 1
_PRI_DMA = 2
_PRI_FALLBACK = 3
_PRI_NESTED = 4
_PRI_SESSION = 5
_PRI_QUEUE = 6


@dataclass(frozen=True)
class RequestPath:
    """One request's exactly-tiling causal timeline."""

    trace_id: str
    index: int
    kind: str
    ok: bool
    arrival_ns: float
    end_ns: float
    #: phase name -> attributed ns (every phase >= 0; sums to latency)
    phases: Dict[str, float]
    #: the phase with the largest share (ties break by PHASES order)
    dominant: str
    #: devices whose spans appear on this request's path (indices)
    devices: Tuple[int, ...] = ()
    #: watchdog trips this request suffered
    retries: int = 0
    #: failover re-placements (placement events with failover set)
    failovers: int = 0
    #: True when any part completed via host-fallback emulation
    fallback: bool = False

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.arrival_ns

    @property
    def phase_sum_ns(self) -> float:
        return math.fsum(self.phases.values())

    @property
    def device_labels(self) -> Tuple[str, ...]:
        return tuple(f"nxp{i}" for i in self.devices)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "index": self.index,
            "kind": self.kind,
            "ok": self.ok,
            "arrival_ns": self.arrival_ns,
            "end_ns": self.end_ns,
            "latency_ns": self.latency_ns,
            "phases": {k: v for k, v in self.phases.items() if v > 0.0},
            "dominant": self.dominant,
            "devices": list(self.device_labels),
            "retries": self.retries,
            "failovers": self.failovers,
            "fallback": self.fallback,
        }


def _group_by_trace_id(items) -> Dict[str, list]:
    out: Dict[str, list] = {}
    for item in items:
        tid = item.attrs.get("trace_id")
        if tid is not None:
            out.setdefault(tid, []).append(item)
    return out


def _recovery_claims(events, t1: float) -> List[Tuple[int, str, float, float]]:
    """Derive retry/failover intervals from a request's point events.

    Each ``watchdog_trip`` denotes one lost leg: the interval from that
    attempt's DMA kick (the preceding ``dma_h2n`` event) to the next
    recovery action (the retransmit's ``dma_h2n``, a ``degraded_call``,
    or — nothing — the request end) was consumed by the loss.  When a
    ``placement`` event with ``failover`` set falls inside the recovery
    window the leg was re-placed on another device: the interval is
    ``failover``; otherwise it is ``retry_backoff``.
    """
    claims: List[Tuple[int, str, float, float]] = []
    events = sorted(events, key=lambda e: e.time)
    kicks = [e.time for e in events if e.name == "dma_h2n"]
    for i, ev in enumerate(events):
        if ev.name != "watchdog_trip":
            continue
        # the latest kick at or before the trip is this attempt's send
        prior = [t for t in kicks if t <= ev.time]
        start = prior[-1] if prior else ev.time
        nxt = t1
        failover = False
        for later in events[i + 1:]:
            if later.name == "placement" and later.attrs.get("failover"):
                failover = True
            if later.name in ("dma_h2n", "degraded_call"):
                nxt = later.time
                break
        if nxt > start:
            phase = "failover" if failover else "retry_backoff"
            claims.append((_PRI_RECOVERY, phase, start, nxt))
    return claims


def _span_claims(spans) -> List[Tuple[int, str, float, float]]:
    claims: List[Tuple[int, str, float, float]] = []
    for s in spans:
        if s.end is None:
            continue
        if s.name == "nxp_resident":
            claims.append((_PRI_NXP, "nxp_execute", s.start, s.end))
        elif s.name == "dma.h2n":
            claims.append((_PRI_DMA, "dma_h2n", s.start, s.end))
        elif s.name == "dma.n2h":
            claims.append((_PRI_DMA, "dma_n2h", s.start, s.end))
        elif s.name == "n2h_host_exec":
            claims.append((_PRI_NESTED, "nested_host", s.start, s.end))
        elif s.name == "h2n_session":
            claims.append((_PRI_SESSION, "protocol_host", s.start, s.end))
    return claims


def extract_request_paths(trace, records: Sequence) -> List["RequestPath"]:
    """Fold a traced run back into one :class:`RequestPath` per request.

    ``records`` supplies ground truth for the request window (arrival /
    end instants) and metadata; the trace supplies the causal spans.
    Requests whose ``serve_request`` span was evicted from the span ring
    still tile correctly (their whole window defaults to coarse phases),
    but a truncated trace should be treated as a windowed view — check
    ``trace.truncated``.
    """
    spans_by_tid = _group_by_trace_id(trace.finished_spans())
    events_by_tid = _group_by_trace_id(trace.events)
    tid_by_index: Dict[int, str] = {}
    for tid, spans in spans_by_tid.items():
        for s in spans:
            if s.name == "serve_request" and "index" in s.attrs:
                tid_by_index[s.attrs["index"]] = tid
    paths: List[RequestPath] = []
    for rec in records:
        tid = tid_by_index.get(rec.index)
        spans = spans_by_tid.get(tid, []) if tid is not None else []
        events = events_by_tid.get(tid, []) if tid is not None else []
        paths.append(
            _build_path(rec, tid or f"req-unknown-{rec.index:04d}", spans, events)
        )
    return paths


def _build_path(rec, tid: str, spans, events) -> RequestPath:
    t0 = rec.arrival_ns
    t1 = rec.end_ns
    claims: List[Tuple[int, str, float, float]] = []

    thread_start: Optional[float] = None
    for s in spans:
        if s.name == "thread":
            thread_start = s.start if thread_start is None else min(thread_start, s.start)
    claims.extend(_span_claims(spans))
    claims.extend(_recovery_claims(events, t1))

    # Degraded execution: degraded_call -> degraded_done point events.
    fallback = False
    pending_call: Optional[float] = None
    for ev in sorted(events, key=lambda e: e.time):
        if ev.name == "degraded_call":
            fallback = True
            if pending_call is None:
                pending_call = ev.time
        elif ev.name == "degraded_done" and pending_call is not None:
            claims.append((_PRI_FALLBACK, "fallback", pending_call, ev.time))
            pending_call = None
    if pending_call is not None:
        claims.append((_PRI_FALLBACK, "fallback", pending_call, t1))

    # Queue wait: arrival until the request's thread starts running.
    if thread_start is not None and thread_start > t0:
        claims.append((_PRI_QUEUE, "queue_wait", t0, thread_start))

    phases = _tile(t0, t1, claims)

    devices = set()
    for s in spans:
        dev = s.attrs.get("device")
        if dev is not None:
            devices.add(int(dev))
    retries = sum(1 for e in events if e.name == "watchdog_trip")
    failovers = sum(
        1 for e in events if e.name == "placement" and e.attrs.get("failover")
    )
    dominant = max(PHASES, key=lambda p: (phases.get(p, 0.0), -PHASES.index(p)))
    return RequestPath(
        trace_id=tid,
        index=rec.index,
        kind=rec.kind,
        ok=rec.ok,
        arrival_ns=t0,
        end_ns=t1,
        phases=phases,
        dominant=dominant,
        devices=tuple(sorted(devices)),
        retries=retries,
        failovers=failovers,
        fallback=fallback,
    )


def _tile(t0: float, t1: float, claims: List[Tuple[int, str, float, float]]) -> Dict[str, float]:
    """Partition [t0, t1] among the claims by elementary intervals.

    Every boundary of every (clipped) claim cuts the window; each slice
    goes to the lowest-priority-number claim covering it, defaulting to
    ``host_execute``.  Per-phase sums use ``math.fsum`` so the tiling is
    as exact as the float representation allows.
    """
    clipped = []
    cuts = {t0, t1}
    for pri, phase, a, b in claims:
        a = max(a, t0)
        b = min(b, t1)
        if b > a:
            clipped.append((pri, phase, a, b))
            cuts.add(a)
            cuts.add(b)
    bounds = sorted(cuts)
    parts: Dict[str, List[float]] = {}
    for a, b in zip(bounds, bounds[1:]):
        if b <= a:
            continue
        best: Optional[Tuple[int, str]] = None
        for pri, phase, ca, cb in clipped:
            if ca <= a and cb >= b:
                if best is None or pri < best[0]:
                    best = (pri, phase)
        phase = best[1] if best is not None else "host_execute"
        parts.setdefault(phase, []).append(b - a)
    return {phase: math.fsum(widths) for phase, widths in parts.items()}


# ---------------------------------------------------------------------------
# tail attribution
# ---------------------------------------------------------------------------

#: Default percentile bands for tail attribution reports.
DEFAULT_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 50.0),
    (50.0, 95.0),
    (95.0, 99.0),
    (99.0, 100.0),
)


@dataclass(frozen=True)
class TailBand:
    """One latency-percentile band's aggregate phase breakdown."""

    lo_pct: float
    hi_pct: float
    count: int
    mean_latency_ns: float
    #: phase -> mean attributed ns across the band's requests
    phases: Dict[str, float]
    #: slowest requests in the band, worst first (trace ids)
    exemplars: Tuple[str, ...]
    dominant: str

    @property
    def label(self) -> str:
        return f"p{self.lo_pct:g}-p{self.hi_pct:g}"

    def to_dict(self) -> dict:
        return {
            "band": self.label,
            "lo_pct": self.lo_pct,
            "hi_pct": self.hi_pct,
            "count": self.count,
            "mean_latency_ns": self.mean_latency_ns,
            "phases": {k: v for k, v in self.phases.items() if v > 0.0},
            "dominant": self.dominant,
            "exemplar_trace_ids": list(self.exemplars),
        }


def tail_attribution(
    paths: Sequence[RequestPath],
    bands: Sequence[Tuple[float, float]] = DEFAULT_BANDS,
    exemplars: int = 3,
) -> List[TailBand]:
    """Bucket requests by latency percentile and aggregate each band."""
    if not paths:
        return []
    ranked = sorted(paths, key=lambda p: (p.latency_ns, p.index))
    n = len(ranked)
    out: List[TailBand] = []
    for lo, hi in bands:
        lo_i = int(math.floor(n * lo / 100.0))
        hi_i = int(math.ceil(n * hi / 100.0))
        members = ranked[lo_i:hi_i]
        if not members:
            continue
        phase_means: Dict[str, float] = {}
        for phase in PHASES:
            total = math.fsum(p.phases.get(phase, 0.0) for p in members)
            if total > 0.0:
                phase_means[phase] = total / len(members)
        dominant = max(
            PHASES, key=lambda ph: (phase_means.get(ph, 0.0), -PHASES.index(ph))
        )
        worst = sorted(members, key=lambda p: -p.latency_ns)[:exemplars]
        out.append(
            TailBand(
                lo_pct=lo,
                hi_pct=hi,
                count=len(members),
                mean_latency_ns=math.fsum(p.latency_ns for p in members) / len(members),
                phases=phase_means,
                exemplars=tuple(p.trace_id for p in worst),
                dominant=dominant,
            )
        )
    return out


@dataclass(frozen=True)
class WhyReport:
    """The ``python -m repro why`` verdict (``flick.why.v1``)."""

    percentile: float
    requests: int
    bands: Tuple[TailBand, ...]
    #: the band the verdict is about (>= percentile)
    tail: TailBand
    culprit_phase: str
    culprit: str
    #: tail phase means vs the p0-p50 body's, for "X us above baseline"
    baseline: Optional[TailBand] = None

    def to_dict(self) -> dict:
        return {
            "schema": "flick.why.v1",
            "percentile": self.percentile,
            "requests": self.requests,
            "culprit_phase": self.culprit_phase,
            "culprit": self.culprit,
            "bands": [b.to_dict() for b in self.bands],
        }


def why_report(paths: Sequence[RequestPath], percentile: float = 99.0) -> WhyReport:
    """Name the dominant cause of the latency tail above ``percentile``.

    The culprit phase is the one with the largest *excess* mean over
    the p0-p50 body: the tail is slow because of what it spends extra
    time on, not what every request pays anyway.
    """
    if not paths:
        raise ValueError("why_report needs at least one request path")
    bands = tail_attribution(
        paths, bands=tuple(DEFAULT_BANDS) + ((percentile, 100.0),)
    )
    tail = bands[-1]
    baseline = bands[0] if bands[0].hi_pct <= 50.0 else None
    if baseline is not None and baseline is not tail:
        excess = {
            ph: tail.phases.get(ph, 0.0) - baseline.phases.get(ph, 0.0)
            for ph in PHASES
        }
        culprit_phase = max(PHASES, key=lambda ph: (excess.get(ph, 0.0), -PHASES.index(ph)))
        if excess.get(culprit_phase, 0.0) <= 0.0:
            culprit_phase = tail.dominant
    else:
        culprit_phase = tail.dominant
    return WhyReport(
        percentile=percentile,
        requests=len(paths),
        bands=tuple(bands[:-1]),
        tail=tail,
        culprit_phase=culprit_phase,
        culprit=_CULPRITS.get(culprit_phase, culprit_phase),
        baseline=baseline,
    )


def render_why(report: WhyReport) -> str:
    """Human-readable ``python -m repro why`` output."""
    lines: List[str] = []
    lines.append(
        f"why is p{report.percentile:g} slow?  ({report.requests} requests)"
    )
    lines.append(f"  verdict: {report.culprit}")
    tail = report.tail
    lines.append(
        f"  tail band {tail.label}: {tail.count} request(s), "
        f"mean {tail.mean_latency_ns / 1000.0:.1f} us, "
        f"dominant phase {tail.dominant}"
    )
    lines.append(f"  exemplar traces: {', '.join(tail.exemplars)}")
    lines.append("")
    header = ("band", "n", "mean_us") + tuple(PHASES)
    rows: List[Tuple[str, ...]] = [header]
    shown = tuple(report.bands)
    if tail not in shown:
        shown += (tail,)
    for band in shown:
        rows.append(
            (
                band.label,
                str(band.count),
                f"{band.mean_latency_ns / 1000.0:.1f}",
            )
            + tuple(
                f"{band.phases.get(ph, 0.0) / 1000.0:.1f}" for ph in PHASES
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    lines.append("")
    lines.append("  (per-band phase means in us; phases tile each request's latency exactly)")
    return "\n".join(lines)


def why_doc(report: WhyReport) -> dict:
    """The ``flick.why.v1`` JSON document."""
    doc = report.to_dict()
    doc["tail"] = report.tail.to_dict()
    return doc
