"""First-order energy estimation (extension).

The heterogeneous-ISA premise is performance *and* power (the paper's
background cites 23% energy savings for heterogeneous-ISA CMPs [3]).
The reproduction tracks how long each core is busy, so a simple
active/idle power model can compare Flick against the host-direct
baseline:

* the host-direct baseline keeps a big out-of-order core busy for the
  whole run, much of it stalled on ~825 ns PCIe reads;
* under Flick the host core is *released* while the thread runs on the
  NxP (that is what the suspend path is for), and the 200 MHz in-order
  NxP core burns two orders of magnitude less power.

Default power numbers are catalog-level figures for a Xeon-class core
and an FPGA soft core; they are inputs, not claims — sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PowerModel", "EnergyEstimate", "estimate_energy"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core active/idle power in watts."""

    host_core_active_w: float = 12.0  # one Xeon core, loaded
    host_core_idle_w: float = 1.5  # deep-idle residual
    nxp_active_w: float = 0.35  # 200 MHz soft core + BRAM
    nxp_idle_w: float = 0.08  # polling loop


@dataclass(frozen=True)
class EnergyEstimate:
    """Joules attributed to one run."""

    host_busy_j: float
    host_idle_j: float
    nxp_busy_j: float
    nxp_idle_j: float

    @property
    def total_j(self) -> float:
        return self.host_busy_j + self.host_idle_j + self.nxp_busy_j + self.nxp_idle_j

    @property
    def host_j(self) -> float:
        return self.host_busy_j + self.host_idle_j

    def as_dict(self) -> Dict[str, float]:
        return {
            "host_busy_j": self.host_busy_j,
            "host_idle_j": self.host_idle_j,
            "nxp_busy_j": self.nxp_busy_j,
            "nxp_idle_j": self.nxp_idle_j,
            "total_j": self.total_j,
        }


def estimate_energy(
    machine,
    duration_ns: float,
    model: PowerModel = PowerModel(),
    host_cores: int = 1,
) -> EnergyEstimate:
    """Estimate the energy of a run of ``duration_ns`` on ``machine``.

    ``host_cores`` bounds how many host cores the workload could occupy
    (account only those; the rest of the socket is not this workload's
    bill).  Busy time comes from the core-pool and NxP accounting.
    """
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    host_busy = min(machine.cores.busy_ns, duration_ns * host_cores)
    host_idle = max(0.0, duration_ns * host_cores - host_busy)
    acc = machine.stats.accumulators.get("nxp.busy_ns")
    nxp_busy = min(acc.total if acc else 0.0, duration_ns)
    nxp_idle = max(0.0, duration_ns - nxp_busy)

    to_j = 1e-9  # W * ns -> nJ; 1e-9 converts to joules
    return EnergyEstimate(
        host_busy_j=host_busy * model.host_core_active_w * to_j,
        host_idle_j=host_idle * model.host_core_idle_w * to_j,
        nxp_busy_j=nxp_busy * model.nxp_active_w * to_j,
        nxp_idle_j=nxp_idle * model.nxp_idle_w * to_j,
    )
