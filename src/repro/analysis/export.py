"""Machine-readable result export.

Benchmarks and user experiments can persist their measurements (plus the
exact configuration that produced them) as JSON, so downstream plotting
or regression tooling never has to re-parse rendered tables.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.config import DEFAULT_CONFIG, FlickConfig

__all__ = ["config_to_dict", "export_results", "load_results"]


def config_to_dict(cfg: FlickConfig) -> Dict[str, Any]:
    """Flatten a FlickConfig (including the memory map) to plain types."""
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(cfg):
        value = getattr(cfg, field.name)
        if dataclasses.is_dataclass(value):
            out[field.name] = {
                f.name: getattr(value, f.name) for f in dataclasses.fields(value)
            }
        else:
            out[field.name] = value
    return out


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def export_results(
    path: Union[str, Path],
    experiment: str,
    results: Any,
    cfg: Optional[FlickConfig] = None,
    notes: str = "",
) -> Path:
    """Write one experiment's results (with provenance) to JSON.

    The file is a dict keyed by experiment name, so repeated calls with
    the same path accumulate a result set.
    """
    path = Path(path)
    existing: Dict[str, Any] = {}
    if path.exists():
        existing = json.loads(path.read_text())
    existing[experiment] = {
        "results": _jsonable(results),
        "config": config_to_dict(cfg or DEFAULT_CONFIG),
        "notes": notes,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a result set written by :func:`export_results`."""
    return json.loads(Path(path).read_text())
