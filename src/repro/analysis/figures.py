"""ASCII figure rendering for the pointer-chase sweeps (Fig. 5)."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_plot", "render_fig5", "crossover_point", "plateau_value"]


def ascii_plot(
    series: Dict[str, Dict[int, float]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    ylabel: str = "normalized perf",
    hline: Optional[float] = 1.0,
) -> str:
    """Plot one or more {x: y} series on a log-x ASCII grid."""
    xs = sorted({x for s in series.values() for x in s})
    ys = [y for s in series.values() for y in s.values()]
    if not xs or not ys:
        return "(empty plot)"
    ymin, ymax = 0.0, max(max(ys), (hline or 0) * 1.1)
    lx = [math.log2(x) for x in xs]
    lx_min, lx_max = min(lx), max(lx)
    span_x = max(lx_max - lx_min, 1e-9)

    grid = [[" "] * width for _ in range(height)]

    def col(x: int) -> int:
        return int((math.log2(x) - lx_min) / span_x * (width - 1))

    def row(y: float) -> int:
        frac = (y - ymin) / max(ymax - ymin, 1e-9)
        return height - 1 - int(frac * (height - 1))

    if hline is not None and ymin <= hline <= ymax:
        r = row(hline)
        for c in range(width):
            grid[r][c] = "."

    markers = "*o+x#@"
    legend = []
    for idx, (name, points) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"  {mark} = {name}")
        for x, y in sorted(points.items()):
            grid[row(min(max(y, ymin), ymax))][col(x)] = mark

    lines = []
    if title:
        lines.append(title)
    for i, grid_row in enumerate(grid):
        y_at = ymax - (ymax - ymin) * i / (height - 1)
        prefix = f"{y_at:6.2f} |"
        lines.append(prefix + "".join(grid_row))
    lines.append(" " * 7 + "+" + "-" * width)
    tick_line = [" "] * (width + 16)  # room for the rightmost label
    for x in xs:
        c = col(x) + 8
        label = str(x)
        for j, ch in enumerate(label):
            if c + j < len(tick_line):
                tick_line[c + j] = ch
    lines.append("".join(tick_line))
    lines.append(" " * 8 + "memory accesses per migration (log scale)")
    lines.extend(legend)
    lines.append(f"  ({ylabel}; dotted line = baseline)")
    return "\n".join(lines)


def render_fig5(
    flick: Dict[int, float],
    slow_500us: Optional[Dict[int, float]] = None,
    slow_1ms: Optional[Dict[int, float]] = None,
    title: str = "Fig. 5a: pointer chasing, frequent migration",
) -> str:
    series = {"Flick": flick}
    if slow_500us:
        series["500us migration"] = slow_500us
    if slow_1ms:
        series["1ms migration"] = slow_1ms
    return ascii_plot(series, title=title)


def crossover_point(curve: Dict[int, float], threshold: float = 1.0) -> Optional[int]:
    """Smallest x where the curve reaches ``threshold`` (Fig. 5a: ~32)."""
    for x in sorted(curve):
        if curve[x] >= threshold:
            return x
    return None


def plateau_value(curve: Dict[int, float], tail_points: int = 3) -> float:
    """Mean of the last few points (Fig. 5a: ~2.6, Fig. 5b: ~2)."""
    xs = sorted(curve)[-tail_points:]
    return sum(curve[x] for x in xs) / len(xs)
