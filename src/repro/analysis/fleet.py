"""Fleet-scale serving: NxP scaling curves, placement ablation, chaos drain.

The serving harness (:mod:`repro.analysis.serving`) measures one machine
under open-loop load.  This module asks the *fleet* questions a
multi-NxP topology (``FlickConfig.nxp_count``, :mod:`repro.os.placement`)
exists to answer:

* **Scaling** — how does saturation throughput grow with the number of
  NxP devices behind one PCIe link?  One latency-vs-load sweep per
  device count, all points fanned over
  :func:`repro.analysis.sweep.parallel_map` in a single flat job list
  (a point is an independent machine, so the curve is bit-identical at
  any worker count).

* **Placement ablation** — the same traffic under each placement
  policy.  ``static`` pins every session to device 0 and should
  saturate like a single-device machine; ``round_robin`` and
  ``least_loaded`` spread sessions and should track the scaling curve.
  The per-device session counts come from the placement layer's
  sidecar counters.

* **Chaos drain** — kill one of N devices mid-run and compare against
  the same traffic with no kill: every request must still complete
  with its expected retval, traffic must drain to the survivors, and
  the p99 must stay bounded (the kill run uses the hardened protocol's
  watchdog/failover machinery; see ``TrafficConfig.kill_at_ns``).

Everything lands in a ``flick.fleet.v1`` JSON document plus rendered
tables.  Exposed as ``python -m repro fleet`` (``--smoke`` runs a
CI-sized subset).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.serving import (
    ServingResult,
    TrafficConfig,
    aim_kill_ns,
    run_serving,
    saturation_point,
)
from repro.analysis.sweep import parallel_map

__all__ = [
    "FleetConfig",
    "ScalingPoint",
    "AblationRow",
    "ChaosOutcome",
    "FleetReport",
    "fleet_scaling",
    "policy_ablation",
    "chaos_drain",
    "run_fleet",
    "fleet_report_doc",
    "write_fleet_report",
    "render_scaling_table",
    "render_ablation_table",
    "render_chaos_summary",
]


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet study (defaults = the full curve)."""

    scenario: str = "null_call"
    arrival: str = "poisson"
    requests: int = 200
    clients: int = 16
    seed: int = 7
    #: host cores per machine — generous so the host side is not the
    #: bottleneck before the devices are (the study varies *devices*)
    host_cores: int = 8
    #: device counts for the scaling curve
    nxps_list: Tuple[int, ...] = (1, 2, 4)
    #: offered-load points for each device count's sweep
    qps_list: Tuple[float, ...] = (
        20_000.0,
        40_000.0,
        60_000.0,
        80_000.0,
        120_000.0,
        160_000.0,
    )
    #: placement policy used on multi-device scaling points
    scaling_policy: str = "round_robin"
    #: ablation: every policy, same machine shape and load
    policies: Tuple[str, ...] = (
        "static",
        "round_robin",
        "least_loaded",
        "locality",
    )
    ablation_nxps: int = 2
    ablation_qps: float = 60_000.0
    #: chaos drain: kill one of ``chaos_nxps`` devices mid-run.
    #: ``chaos_kill_at_ns=None`` aims the kill at an in-flight h2n leg
    #: observed in the traced baseline (serving.aim_kill_ns) — an
    #: abrupt kill only strands legs that are in flight or ring-queued,
    #: so a blindly-timed kill at moderate load usually lands between
    #: legs and recovers nothing.
    chaos_nxps: int = 2
    chaos_qps: float = 24_000.0
    chaos_kill_at_ns: Optional[float] = None
    chaos_kill_device: int = 0
    chaos_kill_mode: str = "abrupt"
    #: kill-then-revive drain (docs/ROBUSTNESS.md): revive the killed
    #: device at epoch + this instant (must be after the kill; requires
    #: an abrupt kill).  The killed device re-enters service through the
    #: breaker's half-open probes and must serve a nonzero share of the
    #: post-revival sessions.  ``None`` keeps the plain drain study.
    chaos_revive_at_ns: Optional[float] = None
    #: trace the chaos pair (request-scoped causal tracing) so the
    #: outcome carries exactly-tiling critical paths and the report can
    #: attribute the kill's tail cost to retry/failover phases.
    #: Required for kill auto-aim.
    chaos_traced: bool = True

    @classmethod
    def smoke(cls) -> "FleetConfig":
        """A CI-sized study: two device counts, two load points."""
        return cls(
            requests=60,
            clients=8,
            nxps_list=(1, 2),
            # 60k offered saturates one device (~40k) but not two, so
            # even the smoke run shows the fleet's throughput headroom.
            qps_list=(20_000.0, 60_000.0),
            ablation_qps=20_000.0,
            chaos_qps=20_000.0,
        )

    def base_traffic(self) -> TrafficConfig:
        return TrafficConfig(
            scenario=self.scenario,
            arrival=self.arrival,
            qps=self.qps_list[0],
            requests=self.requests,
            clients=self.clients,
            mode="open",
            seed=self.seed,
            host_cores=self.host_cores,
        )


@dataclass
class ScalingPoint:
    """One device count's latency-vs-load sweep."""

    nxps: int
    policy: str
    results: List[ServingResult]

    @property
    def saturation_qps(self) -> Optional[float]:
        return saturation_point(self.results)

    @property
    def peak_achieved_qps(self) -> float:
        return max(r.achieved_qps for r in self.results)


@dataclass
class AblationRow:
    """One placement policy under the ablation traffic."""

    policy: str
    result: ServingResult

    @property
    def device_share(self) -> Dict[int, float]:
        """Fraction of sessions each device received."""
        total = sum(self.result.device_sessions.values())
        if not total:
            return {}
        return {
            dev: count / total
            for dev, count in sorted(self.result.device_sessions.items())
        }

    @property
    def imbalance(self) -> float:
        """max/min session share across devices (1.0 = perfectly even;
        infinite when a device received nothing)."""
        shares = list(self.device_share.values())
        if not shares:
            return 1.0
        lo = min(shares)
        return float("inf") if lo == 0.0 else max(shares) / lo


@dataclass
class ChaosOutcome:
    """Kill-one-device run vs the identical traffic with no kill."""

    baseline: ServingResult
    killed: ServingResult
    kill_device: int
    kill_mode: str

    @property
    def all_served_ok(self) -> bool:
        return self.killed.errors == 0 and all(
            rec.ok for rec in self.killed.records
        )

    @property
    def p99_ratio(self) -> float:
        """Killed-run p99 over baseline p99 (the drain's tail cost)."""
        if self.baseline.p99_ns <= 0:
            return float("inf")
        return self.killed.p99_ns / self.baseline.p99_ns

    @property
    def survivor_sessions(self) -> int:
        return sum(
            count
            for dev, count in self.killed.device_sessions.items()
            if dev != self.kill_device
        )

    @property
    def revived(self) -> bool:
        """The killed device was revived during the run."""
        return self.killed.revived > 0

    @property
    def post_revival_share(self) -> float:
        """Fraction of post-revive sessions the revived device served
        (0.0 on a run without a revive, or before any post-revive
        session landed).  Nonzero means the breaker's half-open probes
        succeeded and placement re-admitted the device — the
        ``recovered`` fleet verdict."""
        total = sum(self.killed.post_revival_sessions.values())
        if not total:
            return 0.0
        return self.killed.post_revival_sessions.get(self.kill_device, 0) / total

    @property
    def verdict(self) -> str:
        """``recovered`` / ``drained`` / ``failed`` fleet chaos verdict."""
        if not self.all_served_ok:
            return "failed"
        if self.revived and self.post_revival_share > 0.0:
            return "recovered"
        return "drained"

    @property
    def recovered_requests(self) -> List:
        """Requests whose critical path crossed watchdog recovery
        (retry or failover time > 0); empty on an untraced run."""
        return [
            p
            for p in self.killed.paths
            if p.phases.get("retry_backoff", 0.0) > 0.0
            or p.phases.get("failover", 0.0) > 0.0
        ]

    def why(self, percentile: float = 99.0):
        """Tail attribution of the killed run (traced runs only)."""
        if not self.killed.paths:
            return None
        from repro.analysis.critical_path import why_report

        return why_report(self.killed.paths, percentile=percentile)


@dataclass
class FleetReport:
    config: FleetConfig
    scaling: List[ScalingPoint]
    ablation: List[AblationRow]
    chaos: ChaosOutcome
    workers: Optional[int] = None
    extras: Dict[str, object] = field(default_factory=dict)


def _fleet_job(tc: TrafficConfig) -> ServingResult:
    """Module-level so the sweep pool can pickle it."""
    return run_serving(tc)


def fleet_scaling(
    fc: FleetConfig, workers: Optional[int] = None
) -> List[ScalingPoint]:
    """One latency-vs-load sweep per device count, flattened into a
    single ``parallel_map`` so slow high-load points overlap across
    device counts instead of serializing sweep-by-sweep."""
    base = fc.base_traffic()
    jobs: List[TrafficConfig] = []
    shapes: List[Tuple[int, str]] = []
    for nxps in fc.nxps_list:
        policy = fc.scaling_policy if nxps > 1 else "static"
        shapes.append((nxps, policy))
        for qps in fc.qps_list:
            jobs.append(
                replace(base, qps=float(qps), nxps=nxps, policy=policy)
            )
    flat = parallel_map(_fleet_job, jobs, workers=workers)
    points: List[ScalingPoint] = []
    per = len(fc.qps_list)
    for i, (nxps, policy) in enumerate(shapes):
        points.append(
            ScalingPoint(nxps, policy, flat[i * per : (i + 1) * per])
        )
    return points


def policy_ablation(
    fc: FleetConfig, workers: Optional[int] = None
) -> List[AblationRow]:
    """The same traffic once per placement policy."""
    base = replace(
        fc.base_traffic(), qps=fc.ablation_qps, nxps=fc.ablation_nxps
    )
    jobs = [replace(base, policy=policy) for policy in fc.policies]
    results = parallel_map(_fleet_job, jobs, workers=workers)
    return [
        AblationRow(policy, result)
        for policy, result in zip(fc.policies, results)
    ]


def chaos_drain(
    fc: FleetConfig, workers: Optional[int] = None
) -> ChaosOutcome:
    """Kill one device mid-run; baseline is the same traffic unkilled.

    When ``fc.chaos_kill_at_ns`` is ``None`` the kill is *aimed*: the
    (traced) baseline runs first, and the kill instant is chosen inside
    one of the victim device's in-flight h2n transfers — the killed run
    replays the identical pre-kill history, so the aimed leg is
    guaranteed to be stranded and recovered by the watchdog/failover
    machinery, which the traced tail attribution then names.
    """
    base = replace(
        fc.base_traffic(),
        qps=fc.chaos_qps,
        nxps=fc.chaos_nxps,
        policy="round_robin",
        traced=fc.chaos_traced,
    )
    revive_at = fc.chaos_revive_at_ns
    kill_at = fc.chaos_kill_at_ns
    if kill_at is None:
        if not fc.chaos_traced:
            raise ValueError(
                "chaos kill auto-aim (chaos_kill_at_ns=None) needs "
                "chaos_traced=True to observe the baseline's in-flight legs"
            )
        baseline = _fleet_job(base)
        if revive_at is None:
            kill_at = aim_kill_ns(baseline, fc.chaos_kill_device)
        else:
            # A kill-then-revive drain needs arrivals *after* the
            # revive instant, or the revived device has nothing to
            # serve — aim the kill into the first half of the run.
            kill_at = aim_kill_ns(
                baseline, fc.chaos_kill_device, frac_lo=0.15, frac_hi=0.45
            )
        if revive_at is not None and revive_at <= kill_at:
            raise ValueError(
                f"chaos_revive_at_ns={revive_at:.0f} is not after the "
                f"aimed kill instant {kill_at:.0f}"
            )
        killed = _fleet_job(
            replace(
                base,
                kill_at_ns=kill_at,
                kill_device=fc.chaos_kill_device,
                kill_mode=fc.chaos_kill_mode,
                revive_at_ns=revive_at,
            )
        )
    else:
        killed_tc = replace(
            base,
            kill_at_ns=kill_at,
            kill_device=fc.chaos_kill_device,
            kill_mode=fc.chaos_kill_mode,
            revive_at_ns=revive_at,
        )
        baseline, killed = parallel_map(
            _fleet_job, [base, killed_tc], workers=workers
        )
    return ChaosOutcome(
        baseline=baseline,
        killed=killed,
        kill_device=fc.chaos_kill_device,
        kill_mode=fc.chaos_kill_mode,
    )


def run_fleet(
    fc: Optional[FleetConfig] = None, workers: Optional[int] = None
) -> FleetReport:
    """The full study: scaling curve, policy ablation, chaos drain."""
    fc = fc if fc is not None else FleetConfig()
    return FleetReport(
        config=fc,
        scaling=fleet_scaling(fc, workers=workers),
        ablation=policy_ablation(fc, workers=workers),
        chaos=chaos_drain(fc, workers=workers),
        workers=workers,
    )


# ---------------------------------------------------------------------------
# rendering / export
# ---------------------------------------------------------------------------


def _table(rows: Sequence[Tuple[str, ...]]) -> List[str]:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return lines


def render_scaling_table(points: Sequence[ScalingPoint]) -> str:
    """Throughput vs device count (the fleet's headline table)."""
    rows: List[Tuple[str, ...]] = [
        ("nxps", "policy", "saturation_qps", "peak_achieved", "p99_us@low")
    ]
    for pt in points:
        sat = pt.saturation_qps
        rows.append(
            (
                str(pt.nxps),
                pt.policy,
                "none" if sat is None else f"{sat:.0f}",
                f"{pt.peak_achieved_qps:.0f}",
                f"{pt.results[0].p99_ns / 1000.0:.1f}",
            )
        )
    lines = _table(rows)
    base = points[0].peak_achieved_qps if points else 0.0
    if base > 0 and len(points) > 1:
        speedups = ", ".join(
            f"{pt.nxps}x-dev={pt.peak_achieved_qps / base:.2f}x"
            for pt in points[1:]
        )
        lines.append(f"peak throughput vs 1 device: {speedups}")
    return "\n".join(lines)


def render_ablation_table(rows_in: Sequence[AblationRow]) -> str:
    rows: List[Tuple[str, ...]] = [
        ("policy", "achieved", "p99_us", "sessions/device", "imbalance")
    ]
    for row in rows_in:
        sessions = " ".join(
            f"d{dev}:{count}"
            for dev, count in sorted(row.result.device_sessions.items())
        )
        imb = row.imbalance
        rows.append(
            (
                row.policy,
                f"{row.result.achieved_qps:.0f}",
                f"{row.result.p99_ns / 1000.0:.1f}",
                sessions or "-",
                "inf" if imb == float("inf") else f"{imb:.2f}",
            )
        )
    return "\n".join(_table(rows))


def render_chaos_summary(outcome: ChaosOutcome) -> str:
    killed = outcome.killed
    lines = [
        f"chaos drain: kill device {outcome.kill_device} "
        f"({outcome.kill_mode}) at "
        f"{killed.config.kill_at_ns / 1000.0:.0f} us into the run",
        f"  requests: {len(killed.records)} served, "
        f"{killed.errors} errors, all retvals "
        f"{'correct' if outcome.all_served_ok else 'WRONG'}",
        f"  sessions: {dict(sorted(killed.device_sessions.items()))} "
        f"(survivors took {outcome.survivor_sessions})",
        f"  p99: {killed.p99_ns / 1000.0:.1f} us vs baseline "
        f"{outcome.baseline.p99_ns / 1000.0:.1f} us "
        f"({outcome.p99_ratio:.2f}x)",
        f"  host-fallback calls: {killed.degraded_calls}",
    ]
    if killed.config.revive_at_ns is not None:
        lines.append(
            f"  revive: device {outcome.kill_device} at "
            f"{killed.config.revive_at_ns / 1000.0:.0f} us — "
            f"{'revived' if outcome.revived else 'NOT revived'}, "
            f"post-revive sessions "
            f"{dict(sorted(killed.post_revival_sessions.items()))} "
            f"(revived device share {outcome.post_revival_share:.2f}) "
            f"-> verdict {outcome.verdict}"
        )
    recovered = outcome.recovered_requests
    if recovered:
        ids = ", ".join(p.trace_id for p in recovered[:4])
        lines.append(
            f"  watchdog-recovered requests: {len(recovered)} ({ids})"
        )
    why = outcome.why()
    if why is not None:
        lines.append(
            f"  p99 attribution: dominant phase "
            f"{why.tail.dominant} — {why.culprit}"
        )
    return "\n".join(lines)


def fleet_report_doc(report: FleetReport) -> dict:
    """A BENCH_simspeed.json-style document for the whole study."""
    fc = report.config
    return {
        "benchmark": "fleet",
        "schema": "flick.fleet.v1",
        "scenario": fc.scenario,
        "arrival": fc.arrival,
        "seed": fc.seed,
        "host_cores": fc.host_cores,
        "scaling": [
            {
                "nxps": pt.nxps,
                "policy": pt.policy,
                "saturation_qps": pt.saturation_qps,
                "peak_achieved_qps": pt.peak_achieved_qps,
                "points": [r.to_point() for r in pt.results],
            }
            for pt in report.scaling
        ],
        "ablation": [
            {
                "policy": row.policy,
                "point": row.result.to_point(),
                "device_share": {
                    str(dev): share
                    for dev, share in row.device_share.items()
                },
            }
            for row in report.ablation
        ],
        "chaos": {
            "kill_device": report.chaos.kill_device,
            "kill_mode": report.chaos.kill_mode,
            "kill_at_ns": report.chaos.killed.config.kill_at_ns,
            "revive_at_ns": report.chaos.killed.config.revive_at_ns,
            "revived": report.chaos.revived,
            "post_revival_share": report.chaos.post_revival_share,
            "verdict": report.chaos.verdict,
            "all_served_ok": report.chaos.all_served_ok,
            "p99_ratio": report.chaos.p99_ratio,
            "survivor_sessions": report.chaos.survivor_sessions,
            "degraded_calls": report.chaos.killed.degraded_calls,
            "baseline": report.chaos.baseline.to_point(),
            "killed": report.chaos.killed.to_point(),
            "recovered_trace_ids": [
                p.trace_id for p in report.chaos.recovered_requests
            ],
            "why": (
                report.chaos.why().to_dict()
                if report.chaos.killed.paths
                else None
            ),
        },
    }


def write_fleet_report(report: FleetReport, path: str) -> dict:
    doc = fleet_report_doc(report)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc
