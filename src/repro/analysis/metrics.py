"""Span-derived metrics: latency histograms, utilization, RunReport.

``repro.analysis.breakdown`` measures *mean* phase latencies; this
module measures *distributions* and *occupancy* — the paper's headline
claims are latency distributions (Table III's round-trip legs, the
null-call latency) and the crossover analysis rests on where those
distributions sit, so a reproduction needs more than means.  Everything
here is derived **after the run** from the finished trace and the stat
registry; nothing charges simulated time.

Three derivations:

* **Latency histograms** — per-pid (and machine-wide) log2 histograms
  of ``h2n_session`` end-to-end latency plus the per-leg device spans
  (``dma.h2n``, ``dma.n2h``, ``irq_deliver``), mirroring Table III's
  decomposition.  Histogram sums reconcile exactly with the span
  durations they summarize (tested against
  ``repro.analysis.breakdown`` phase totals).

* **Utilization** — per-device busy fraction over the run, computed
  from span interval unions: the NxP core from ``nxp_resident`` spans,
  the DMA engine from ``dma.h2n``/``dma.n2h`` spans, and the host cores
  from ``thread`` spans minus suspended time (``h2n_session`` minus the
  nested ``n2h_host_exec`` legs, during which the task *is* on a host
  core).  Each device also gets a fixed-slice busy-fraction timeline.

* **RunReport** — one structured object with the stat snapshot, the
  measured phase breakdown, every histogram, the utilization table and
  run metadata; renderable as OpenMetrics text
  (:func:`render_openmetrics`) or JSON (:func:`render_json`, round-trip
  via :func:`report_from_json`), and exposed on the command line as
  ``python -m repro metrics``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.breakdown import measure_breakdown
from repro.core.trace import MigrationTrace
from repro.sim.stats import Histogram, StatRegistry

__all__ = [
    "HistogramSummary",
    "UtilizationSummary",
    "RunReport",
    "build_run_report",
    "session_latency_histograms",
    "device_utilization",
    "render_openmetrics",
    "render_json",
    "report_to_dict",
    "report_from_json",
]

#: span names treated as per-leg latencies (name -> metric name)
_LEG_SPANS = {
    "dma.h2n": "dma_h2n_ns",
    "dma.n2h": "dma_n2h_ns",
    "irq_deliver": "irq_deliver_ns",
}

_SESSION_METRIC = "h2n_session_ns"

#: default number of slices in a utilization timeline
TIMELINE_SLICES = 20


# ---------------------------------------------------------------------------
# summaries (JSON-friendly views of Histogram / interval math)
# ---------------------------------------------------------------------------


@dataclass
class HistogramSummary:
    """A JSON-friendly snapshot of one :class:`~repro.sim.stats.Histogram`."""

    name: str
    count: int
    sum: float
    min: float
    max: float
    #: cumulative ``(le, count)`` pairs, increasing ``le`` (log2 bounds)
    buckets: List[Tuple[float, int]]
    p50: float
    p90: float
    p99: float

    @classmethod
    def of(cls, hist: Histogram) -> "HistogramSummary":
        return cls(
            name=hist.name,
            count=hist.count,
            sum=hist.sum,
            min=hist.min,
            max=hist.max,
            buckets=hist.buckets(),
            p50=hist.quantile(50),
            p90=hist.quantile(90),
            p99=hist.quantile(99),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "min": None if math.isnan(self.min) else self.min,
            "max": None if math.isnan(self.max) else self.max,
            "buckets": [[le, n] for le, n in self.buckets],
            "p50": None if math.isnan(self.p50) else self.p50,
            "p90": None if math.isnan(self.p90) else self.p90,
            "p99": None if math.isnan(self.p99) else self.p99,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "HistogramSummary":
        nan = float("nan")
        return cls(
            name=d["name"],
            count=d["count"],
            sum=d["sum"],
            min=nan if d["min"] is None else d["min"],
            max=nan if d["max"] is None else d["max"],
            buckets=[(le, n) for le, n in d["buckets"]],
            p50=nan if d["p50"] is None else d["p50"],
            p90=nan if d["p90"] is None else d["p90"],
            p99=nan if d["p99"] is None else d["p99"],
        )


@dataclass
class UtilizationSummary:
    """Busy fraction of one device over the run, plus a sliced timeline."""

    device: str
    busy_ns: float
    total_ns: float
    fraction: float
    #: per-slice busy fractions over ``total_ns`` split into equal slices
    timeline: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "busy_ns": self.busy_ns,
            "total_ns": self.total_ns,
            "fraction": self.fraction,
            "timeline": list(self.timeline),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "UtilizationSummary":
        return cls(
            device=d["device"],
            busy_ns=d["busy_ns"],
            total_ns=d["total_ns"],
            fraction=d["fraction"],
            timeline=list(d["timeline"]),
        )


@dataclass
class RunReport:
    """Everything one run measured, in one structured object."""

    sim_ns: float
    stats: Dict[str, float]
    #: mean phase latencies from repro.analysis.breakdown (ns)
    phases: Dict[str, float]
    sessions: int
    #: machine-wide histograms, keyed by metric name
    histograms: Dict[str, HistogramSummary]
    #: per-pid histograms: pid -> metric name -> summary
    by_pid: Dict[int, Dict[str, HistogramSummary]]
    #: per-device busy fractions
    utilization: Dict[str, UtilizationSummary]
    #: trace health: analyses over a truncated trace are windows
    truncated: bool = False
    #: tracing-JIT tier telemetry (``FlickMachine.jit_stats``): kept out
    #: of ``stats`` so the parity-pinned snapshot never sees the tier
    jit: Dict[str, float] = field(default_factory=dict)
    #: multi-NxP placement sidecar counters (picks per device, failover,
    #: exhausted, half-open breaker probes) — kept out of ``stats`` for
    #: the same parity reason, empty on single-NxP machines
    placement: Dict[str, float] = field(default_factory=dict)
    #: spans still open when the report was built (hung legs / in-flight
    #: requests) — their time is absent from every histogram above
    open_spans: int = 0
    #: span lifecycle violations recorded by the trace (double closes)
    span_anomalies: int = 0
    #: ring-evicted events / spans (nonzero means every derivation above
    #: saw a window of the run, not the whole run)
    trace_dropped: int = 0
    trace_spans_dropped: int = 0


# ---------------------------------------------------------------------------
# interval math
# ---------------------------------------------------------------------------


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping ``(start, end)`` intervals."""
    out: List[Tuple[float, float]] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out


def _subtract(
    base: List[Tuple[float, float]], minus: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Set difference ``base - minus`` over merged interval lists."""
    out: List[Tuple[float, float]] = []
    minus = _merge(minus)
    for start, end in _merge(base):
        cursor = start
        for m_start, m_end in minus:
            if m_end <= cursor or m_start >= end:
                continue
            if m_start > cursor:
                out.append((cursor, m_start))
            cursor = max(cursor, m_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def _total(intervals: List[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def _timeline(
    intervals: List[Tuple[float, float]], t_end: float, slices: int
) -> List[float]:
    """Busy fraction per equal-width slice of ``[0, t_end]``."""
    if t_end <= 0 or slices < 1:
        return []
    width = t_end / slices
    out = []
    for i in range(slices):
        lo, hi = i * width, (i + 1) * width
        busy = sum(
            max(0.0, min(end, hi) - max(start, lo)) for start, end in intervals
        )
        out.append(busy / width)
    return out


def _span_intervals(
    trace: MigrationTrace, name: str, pid: Optional[int] = None
) -> List[Tuple[float, float]]:
    return [(s.start, s.end) for s in trace.finished_spans(name, pid=pid)]


# ---------------------------------------------------------------------------
# derivations
# ---------------------------------------------------------------------------


def session_latency_histograms(
    trace: MigrationTrace,
) -> Tuple[Dict[str, Histogram], Dict[int, Dict[str, Histogram]]]:
    """Latency histograms from completed spans.

    Returns ``(overall, by_pid)``: machine-wide histograms for the
    session metric and each leg metric, plus per-pid histograms for
    every task-attributed span (device spans whose emitter knew no pid
    contribute to the machine-wide histogram only).
    """
    overall: Dict[str, Histogram] = {}
    by_pid: Dict[int, Dict[str, Histogram]] = {}

    def feed(metric: str, span) -> None:
        overall.setdefault(metric, Histogram(metric)).observe(span.duration)
        if span.pid is not None:
            by_pid.setdefault(span.pid, {}).setdefault(
                metric, Histogram(metric)
            ).observe(span.duration)

    for span in trace.finished_spans(_SESSION_METRIC.replace("_ns", "")):
        feed(_SESSION_METRIC, span)
    for span_name, metric in _LEG_SPANS.items():
        for span in trace.finished_spans(span_name):
            feed(metric, span)
    return overall, by_pid


def device_utilization(
    trace: MigrationTrace,
    t_end: float,
    slices: int = TIMELINE_SLICES,
    t_start: float = 0.0,
    nxp_devices: Optional[int] = None,
) -> Dict[str, UtilizationSummary]:
    """Per-device busy fractions from span interval unions.

    ``t_start`` restricts the measurement to the window ``[t_start,
    t_end]`` — the serving harness uses it to exclude setup time (chain
    building, first-migration stack allocation) from steady-state
    utilization.  Intervals are clipped to the window and fractions are
    of the window's width.

    Definitions (docs/OBSERVABILITY.md):

    * ``nxp``: union of ``nxp_resident`` spans — the NxP core is busy
      exactly while a migrated session is resident on it.  On a
      multi-NxP machine (``nxp_devices > 1``, or residency spans from
      more than one device) the combined ``nxp`` row is joined by one
      ``nxp{i}`` row per device index, split on the residency spans'
      ``device`` attr; single-NxP output keeps exactly the historical
      ``{host_core, nxp, dma}`` keys.
    * ``dma``: union of ``dma.h2n`` and ``dma.n2h`` burst spans (one
      engine per device, serialized link; the row unions all engines).
    * ``host_core``: union of ``thread`` spans minus ``h2n_session``
      time, plus the nested ``n2h_host_exec`` legs (during a session the
      task is suspended off-core, *except* while it services a nested
      NxP-to-host call).  This measures task-on-core time derived
      purely from spans; core-acquisition wait under contention counts
      as busy only for the task that holds the core.
    """
    out: Dict[str, UtilizationSummary] = {}

    per_dev: Dict[int, List[Tuple[float, float]]] = {}
    for span in trace.finished_spans("nxp_resident"):
        per_dev.setdefault(int(span.attrs.get("device", 0)), []).append(
            (span.start, span.end)
        )
    nxp = _merge([iv for ivs in per_dev.values() for iv in ivs])
    dma = _merge(
        _span_intervals(trace, "dma.h2n") + _span_intervals(trace, "dma.n2h")
    )
    host = _merge(
        _subtract(
            _span_intervals(trace, "thread"),
            _span_intervals(trace, "h2n_session"),
        )
        + _span_intervals(trace, "n2h_host_exec")
    )

    rows: List[Tuple[str, List[Tuple[float, float]]]] = [
        ("host_core", host), ("nxp", nxp), ("dma", dma),
    ]
    indices = set(per_dev)
    if nxp_devices is not None:
        indices |= set(range(nxp_devices))
    if (nxp_devices or 0) > 1 or any(i > 0 for i in indices):
        rows.extend(
            (f"nxp{i}", _merge(per_dev.get(i, []))) for i in sorted(indices)
        )

    width = t_end - t_start
    for device, intervals in rows:
        if t_start > 0.0:
            # Clip to the window, then shift to window-relative time so
            # the slice math below stays over [0, width].
            intervals = [
                (max(start, t_start) - t_start, min(end, t_end) - t_start)
                for start, end in intervals
                if end > t_start and start < t_end
            ]
        busy = _total(intervals)
        out[device] = UtilizationSummary(
            device=device,
            busy_ns=busy,
            total_ns=width,
            fraction=busy / width if width > 0 else 0.0,
            timeline=_timeline(intervals, width, slices),
        )
    return out


def build_run_report(
    machine,
    sim_ns: Optional[float] = None,
    slices: int = TIMELINE_SLICES,
    allow_truncated: bool = False,
) -> RunReport:
    """Derive a :class:`RunReport` from a finished machine's trace + stats.

    ``machine`` is a :class:`~repro.core.machine.FlickMachine` (or any
    object with ``trace``, ``stats`` and ``sim`` attributes) that has
    finished running.  ``sim_ns`` defaults to the simulator clock.
    Raises :class:`~repro.core.trace.TraceTruncated` via the breakdown
    pass when the trace ring dropped events, unless ``allow_truncated``.
    """
    trace: MigrationTrace = machine.trace
    stats: StatRegistry = machine.stats
    t_end = machine.sim.now if sim_ns is None else sim_ns

    breakdown = measure_breakdown(trace, allow_truncated=allow_truncated)
    overall, by_pid = session_latency_histograms(trace)

    return RunReport(
        sim_ns=t_end,
        stats=stats.snapshot(),
        phases=dict(breakdown.phases),
        sessions=breakdown.sessions,
        histograms={k: HistogramSummary.of(h) for k, h in sorted(overall.items())},
        by_pid={
            pid: {k: HistogramSummary.of(h) for k, h in sorted(hists.items())}
            for pid, hists in sorted(by_pid.items())
        },
        utilization=device_utilization(
            trace,
            t_end,
            slices=slices,
            nxp_devices=(
                len(machine.devices)
                if getattr(machine, "multi_nxp", False)
                else None
            ),
        ),
        truncated=trace.truncated,
        jit=machine.jit_stats() if hasattr(machine, "jit_stats") else {},
        placement=(
            dict(machine.placement.counters)
            if getattr(machine, "multi_nxp", False)
            else {}
        ),
        open_spans=len(trace.open_spans()),
        span_anomalies=trace.span_anomalies,
        trace_dropped=trace.dropped,
        trace_spans_dropped=trace.spans_dropped,
    )


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

_PREFIX = "flick_"


def _metric_name(name: str) -> str:
    """Sanitize to the OpenMetrics name charset ``[a-zA-Z0-9_:]``."""
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return _PREFIX + sanitized


def _escape_label(value: str) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _emit_histogram(
    lines: List[str],
    metric: str,
    summary: HistogramSummary,
    labels: Dict[str, str],
    typed: set,
) -> None:
    if metric not in typed:
        lines.append(f"# TYPE {metric} histogram")
        lines.append(f"# UNIT {metric} nanoseconds")
        typed.add(metric)
    for le, cumulative in summary.buckets:
        lines.append(
            f"{metric}_bucket{_labels({**labels, 'le': _fmt(le)})} {cumulative}"
        )
    lines.append(f"{metric}_bucket{_labels({**labels, 'le': '+Inf'})} {summary.count}")
    lines.append(f"{metric}_sum{_labels(labels)} {_fmt(summary.sum)}")
    lines.append(f"{metric}_count{_labels(labels)} {summary.count}")


def render_openmetrics(report: RunReport) -> str:
    """Render a :class:`RunReport` as OpenMetrics/Prometheus text.

    Families: every registry counter becomes a ``counter`` (with the
    required ``_total`` suffix), registry accumulators become
    ``summary`` families (``_sum``/``_count`` + ``quantile`` lines),
    derived histograms become ``histogram`` families (``_bucket`` with
    cumulative ``le`` labels, ``_sum``, ``_count``; per-pid series carry
    a ``pid`` label), utilization and phase means become ``gauge``
    families.  Ends with the mandatory ``# EOF`` terminator.
    """
    lines: List[str] = []
    typed: set = set()
    stats = report.stats

    # partition the flat snapshot into families: a key with derived
    # ``.count``+``.total``/``.sum`` companions is a summary (accumulator
    # or registry histogram); a key with only a ``.max`` companion is a
    # gauge; a bare key with no companions is a counter.
    suffixes = (".mean", ".count", ".total", ".sum", ".min", ".max", ".p50", ".p99")
    prefixes = set()
    for key in stats:
        for suffix in suffixes:
            if key.endswith(suffix):
                prefixes.add(key[: -len(suffix)])
    summary_keys = {
        key
        for key in prefixes
        if f"{key}.count" in stats
        and (f"{key}.total" in stats or f"{key}.sum" in stats)
    }
    gauge_keys = prefixes - summary_keys

    for key in sorted(stats):
        if key in prefixes or any(key.endswith(s) for s in suffixes):
            continue
        metric = _metric_name(key)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(stats[key])}")

    for key in sorted(gauge_keys):
        if key not in stats:
            continue
        metric = _metric_name(key)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(stats[key])}")
        if f"{key}.max" in stats:
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_fmt(stats[f'{key}.max'])}")

    # accumulators / registry histograms flatten to summaries
    for key in sorted(summary_keys):
        count = stats[f"{key}.count"]
        total = stats.get(f"{key}.total", stats.get(f"{key}.sum"))
        metric = _metric_name(key)
        lines.append(f"# TYPE {metric} summary")
        for pct, label in ((f"{key}.p50", "0.5"), (f"{key}.p99", "0.99")):
            if pct in stats:
                lines.append(
                    f"{metric}{_labels({'quantile': label})} {_fmt(stats[pct])}"
                )
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {int(count)}")

    # derived latency histograms (machine-wide, then per-pid series)
    for name, summary in report.histograms.items():
        _emit_histogram(lines, _metric_name(f"latency.{name}"), summary, {}, typed)
    for pid, hists in report.by_pid.items():
        for name, summary in hists.items():
            _emit_histogram(
                lines, _metric_name(f"latency.{name}"), summary, {"pid": str(pid)}, typed
            )

    # utilization + phase means as gauges
    util_metric = _metric_name("device_utilization")
    lines.append(f"# TYPE {util_metric} gauge")
    for device, summary in report.utilization.items():
        lines.append(
            f"{util_metric}{_labels({'device': device})} {_fmt(summary.fraction)}"
        )
    phase_metric = _metric_name("phase_mean_ns")
    lines.append(f"# TYPE {phase_metric} gauge")
    for phase, ns in report.phases.items():
        lines.append(f"{phase_metric}{_labels({'phase': phase})} {_fmt(ns)}")

    # tracing-JIT tier telemetry (sidecar counters, not in the registry)
    for key in sorted(report.jit):
        metric = _metric_name(key)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(report.jit[key])}")

    # placement sidecar counters (multi-NxP: picks, failover, probes)
    for key in sorted(report.placement):
        metric = _metric_name(key)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_fmt(report.placement[key])}")

    # trace health: work the histograms above could not see
    open_metric = _metric_name("trace_open_spans")
    lines.append(f"# TYPE {open_metric} gauge")
    lines.append(f"{open_metric} {report.open_spans}")
    anomaly_metric = _metric_name("trace_span_anomalies")
    lines.append(f"# TYPE {anomaly_metric} counter")
    lines.append(f"{anomaly_metric}_total {report.span_anomalies}")
    dropped_metric = _metric_name("trace_dropped")
    lines.append(f"# TYPE {dropped_metric} counter")
    lines.append(f"{dropped_metric}_total {report.trace_dropped}")
    sdropped_metric = _metric_name("trace_spans_dropped")
    lines.append(f"# TYPE {sdropped_metric} counter")
    lines.append(f"{sdropped_metric}_total {report.trace_spans_dropped}")

    sim_metric = _metric_name("sim_time_ns")
    lines.append(f"# TYPE {sim_metric} gauge")
    lines.append(f"{sim_metric} {_fmt(report.sim_ns)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def report_to_dict(report: RunReport) -> dict:
    return {
        "schema": "flick.run_report.v1",
        "sim_ns": report.sim_ns,
        "stats": dict(report.stats),
        "phases": dict(report.phases),
        "sessions": report.sessions,
        "histograms": {k: v.to_dict() for k, v in report.histograms.items()},
        "by_pid": {
            str(pid): {k: v.to_dict() for k, v in hists.items()}
            for pid, hists in report.by_pid.items()
        },
        "utilization": {k: v.to_dict() for k, v in report.utilization.items()},
        "truncated": report.truncated,
        "jit": dict(report.jit),
        "placement": dict(report.placement),
        "open_spans": report.open_spans,
        "span_anomalies": report.span_anomalies,
        "trace_dropped": report.trace_dropped,
        "trace_spans_dropped": report.trace_spans_dropped,
    }


def render_json(report: RunReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent) + "\n"


def report_from_json(doc) -> RunReport:
    """Rebuild a :class:`RunReport` from :func:`render_json` output
    (a JSON string or an already-parsed dict)."""
    if isinstance(doc, str):
        doc = json.loads(doc)
    if doc.get("schema") != "flick.run_report.v1":
        raise ValueError(f"not a RunReport document: schema={doc.get('schema')!r}")
    return RunReport(
        sim_ns=doc["sim_ns"],
        stats=dict(doc["stats"]),
        phases=dict(doc["phases"]),
        sessions=doc["sessions"],
        histograms={
            k: HistogramSummary.from_dict(v) for k, v in doc["histograms"].items()
        },
        by_pid={
            int(pid): {k: HistogramSummary.from_dict(v) for k, v in hists.items()}
            for pid, hists in doc["by_pid"].items()
        },
        utilization={
            k: UtilizationSummary.from_dict(v) for k, v in doc["utilization"].items()
        },
        truncated=doc["truncated"],
        jit=dict(doc.get("jit", {})),  # absent in pre-JIT documents
        placement=dict(doc.get("placement", {})),  # absent pre-robustness
        open_spans=int(doc.get("open_spans", 0)),  # absent pre-serving
        span_anomalies=int(doc.get("span_anomalies", 0)),
        trace_dropped=int(doc.get("trace_dropped", 0)),  # absent pre-tracing
        trace_spans_dropped=int(doc.get("trace_spans_dropped", 0)),
    )
