"""Bench regression gate: diff two BENCH_*.json documents with tolerances.

The simulator's benchmark reports (``repro.analysis.simspeed``) mix two
kinds of numbers:

* **Deterministic** fields — simulated nanoseconds, instruction and DES
  event counts, parity verdicts.  These are pure functions of the model;
  any drift means the *simulation changed*, not that the machine was
  slow.  They are compared **exactly**.

* **Wall-clock** fields — seconds and derived rates.  These depend on
  the machine running the bench, so absolute values are useless as a
  gate.  The *speedup ratios* (fast/slow, batched/unbatched) are
  however self-normalizing: both sides ran on the same machine in the
  same process.  Speedups are gated with a generous relative lower
  bound (an optimization that stops working shows up as a collapsed
  ratio, while run-to-run noise does not).  Raw seconds and rates are
  reported but never gated.

``compare`` returns a :class:`RegressionResult` whose ``ok`` property
drives the CLI exit code (``python -m repro bench --check BASELINE``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Check",
    "RegressionResult",
    "DEFAULT_SPEEDUP_REL_TOL",
    "compare",
    "compare_files",
    "render_regression",
]

#: a current speedup may fall this fraction below baseline before failing
#: (generous: speedups are noisy at --quick scales; an optimization that
#: actually regressed collapses toward 1.0 and still trips this)
DEFAULT_SPEEDUP_REL_TOL = 0.5

#: per-workload fields compared exactly (simulation determinism)
_EXACT_FIELDS = ("iterations", "sim_ns", "instructions", "events", "parity")

#: per-workload fields gated as lower-bounded ratios (a field missing on
#: either side is skipped, so baselines predating the tracing-JIT tier's
#: ``jit_speedup`` column still compare cleanly)
_SPEEDUP_FIELDS = ("speedup", "jit_speedup")

#: wall-clock fields carried into the report but never gated
_INFO_FIELDS = (
    "wall_s_fast",
    "wall_s_nojit",
    "wall_s_slow",
    "inst_per_sec_fast",
    "inst_per_sec_slow",
    "events_per_sec_fast",
    "events_per_sec_slow",
)


@dataclass
class Check:
    """One comparison: ``status`` is ``ok``, ``fail`` or ``info``."""

    name: str
    status: str
    baseline: object = None
    current: object = None
    note: str = ""

    def __str__(self) -> str:
        tag = {"ok": "  ok ", "fail": "FAIL ", "info": "  -- "}[self.status]
        detail = f" ({self.note})" if self.note else ""
        return f"{tag}{self.name}: {self.baseline!r} -> {self.current!r}{detail}"


@dataclass
class RegressionResult:
    checks: List[Check] = field(default_factory=list)

    @property
    def failures(self) -> List[Check]:
        return [c for c in self.checks if c.status == "fail"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def add(self, *args, **kwargs) -> None:
        self.checks.append(Check(*args, **kwargs))


def _values_equal(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if isinstance(a, float) and isinstance(b, float):
            if math.isnan(a) and math.isnan(b):
                return True
        return a == b
    return a == b


def _check_section(
    result: RegressionResult,
    prefix: str,
    baseline: dict,
    current: dict,
    speedup_rel_tol: float,
) -> None:
    """Gate one record (a workload entry or the hosted_batching block)."""
    for fld in _EXACT_FIELDS:
        if fld not in baseline and fld not in current:
            continue
        name = f"{prefix}.{fld}"
        if fld not in baseline or fld not in current:
            result.add(name, "fail", baseline.get(fld), current.get(fld),
                       "field missing on one side")
            continue
        b, c = baseline[fld], current[fld]
        if _values_equal(b, c):
            result.add(name, "ok", b, c)
        else:
            result.add(name, "fail", b, c, "deterministic field drifted")

    for fld in _SPEEDUP_FIELDS:
        if fld not in baseline or fld not in current:
            continue
        name = f"{prefix}.{fld}"
        b, c = baseline[fld], current[fld]
        floor = b * (1.0 - speedup_rel_tol)
        if c >= floor:
            result.add(name, "ok", b, c, f"floor {floor:.2f}x")
        else:
            result.add(name, "fail", b, c,
                       f"below floor {floor:.2f}x (rel_tol {speedup_rel_tol})")

    for fld in _INFO_FIELDS:
        if fld in baseline or fld in current:
            result.add(f"{prefix}.{fld}", "info",
                       baseline.get(fld), current.get(fld))


def compare(
    baseline: dict,
    current: dict,
    speedup_rel_tol: float = DEFAULT_SPEEDUP_REL_TOL,
) -> RegressionResult:
    """Diff two simspeed bench documents; failures gate CI.

    Both arguments are parsed BENCH_simspeed.json documents
    (:func:`repro.analysis.simspeed.write_report` shape).  Workloads are
    matched by name; a workload present in the baseline but missing from
    the current run is a failure (coverage must not silently shrink),
    while a *new* workload is informational.
    """
    result = RegressionResult()

    b_kind = baseline.get("benchmark")
    c_kind = current.get("benchmark")
    if b_kind != c_kind:
        result.add("benchmark", "fail", b_kind, c_kind, "different benchmark kinds")
        return result
    result.add("benchmark", "ok", b_kind, c_kind)

    b_workloads = {w["workload"]: w for w in baseline.get("workloads", [])}
    c_workloads = {w["workload"]: w for w in current.get("workloads", [])}

    for name in sorted(b_workloads):
        if name not in c_workloads:
            result.add(f"workloads.{name}", "fail", "present", "missing",
                       "workload dropped from current run")
            continue
        _check_section(result, f"workloads.{name}", b_workloads[name],
                       c_workloads[name], speedup_rel_tol)
    for name in sorted(set(c_workloads) - set(b_workloads)):
        result.add(f"workloads.{name}", "info", "missing", "present",
                   "new workload (not in baseline)")

    b_hosted = baseline.get("hosted_batching")
    c_hosted = current.get("hosted_batching")
    if b_hosted and not c_hosted:
        result.add("hosted_batching", "fail", "present", "missing",
                   "hosted-batching section dropped")
    elif b_hosted and c_hosted:
        _check_section(result, "hosted_batching", b_hosted, c_hosted,
                       speedup_rel_tol)
    elif c_hosted:
        result.add("hosted_batching", "info", "missing", "present")

    return result


def compare_files(
    baseline_path: str,
    current_path: Optional[str] = None,
    current_doc: Optional[dict] = None,
    speedup_rel_tol: float = DEFAULT_SPEEDUP_REL_TOL,
) -> RegressionResult:
    """File-level wrapper: load JSON, then :func:`compare`.

    Pass either ``current_path`` or an in-memory ``current_doc`` (the
    CLI uses the latter to gate the run it just measured).
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if current_doc is None:
        if current_path is None:
            raise ValueError("need current_path or current_doc")
        with open(current_path) as fh:
            current_doc = json.load(fh)
    return compare(baseline, current_doc, speedup_rel_tol=speedup_rel_tol)


def render_regression(result: RegressionResult, verbose: bool = False) -> str:
    """Human-readable gate report; failures always shown."""
    lines = ["bench regression gate"]
    shown: Dict[str, int] = {"ok": 0, "info": 0}
    for check in result.checks:
        if check.status == "fail" or verbose:
            lines.append("  " + str(check))
        else:
            shown[check.status] += 1
    if not verbose:
        lines.append(f"  ({shown['ok']} ok, {shown['info']} informational)")
    lines.append("PASS" if result.ok else f"FAIL ({len(result.failures)} regressions)")
    return "\n".join(lines)
