"""Serving-traffic harness: open-loop load, QPS sweeps, tail latency.

Every other workload in this repository is a closed-loop single-process
run: issue a call, wait, issue the next.  A serving system is measured
the other way around — requests arrive on *their* schedule, not the
machine's, and the question is what happens to the latency distribution
as offered load rises.  This module is that harness (the
harness/workload-profile split follows llm-d-benchmark; the request
programs live in :mod:`repro.workloads.serving_profiles`):

* **Deterministic seeded traffic**: :func:`generate_arrivals` produces
  the complete arrival schedule *closed-form* from the config before
  the simulation starts — Poisson, bursty (on/off-modulated Poisson) or
  uniform inter-arrivals — and :func:`draw_kinds` draws each request's
  type from the scenario mix on an independent seeded stream.  Same
  seed + config ⇒ bit-identical schedule, always.

* **Open-loop mode**: each arrival is posted with
  :meth:`~repro.sim.engine.Simulator.spawn_at` at its absolute instant,
  so nothing the machine does can delay an arrival.  Arrivals land in
  per-client FIFO queues (a fixed-size connection pool); a request's
  latency runs from its *arrival* to its completion, so queueing delay
  — the thing that explodes past saturation — is part of every
  percentile reported.

* **Closed-loop mode**: each client issues its next request only after
  the previous one completes (plus optional think time) — the classic
  paper-style measurement, kept for comparison.

* **Reporting**: p50/p95/p99/mean session latency (exact order
  statistics via :func:`repro.sim.stats.quantile`), achieved vs offered
  requests/sec, per-device utilization over the serving window (from
  the span machinery via
  :func:`repro.analysis.metrics.device_utilization`), queue-wait, and a
  per-request ``serve_request`` span in the trace.  A latency-vs-load
  sweep (:func:`sweep_latency_vs_load`) fans points over
  :func:`repro.analysis.sweep.parallel_map` and lands curves in a
  ``BENCH_simspeed.json``-style document; :func:`saturation_point`
  reads the knee off the curve.

Everything is deterministic and wall-clock-free: a serving run is
replayable bit-for-bit, and the sweep produces identical results at any
worker count.  Exposed as ``python -m repro serve``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.critical_path import extract_request_paths
from repro.analysis.metrics import (
    HistogramSummary,
    UtilizationSummary,
    device_utilization,
)
from repro.analysis.sweep import parallel_map
from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.errors import AdmissionRejected
from repro.core.machine import FlickMachine, signed_retval
from repro.sim.stats import Histogram, quantile
from repro.workloads.serving_profiles import PROFILES, scenario_mix

__all__ = [
    "TrafficConfig",
    "RequestRecord",
    "ServingResult",
    "generate_arrivals",
    "draw_kinds",
    "run_serving",
    "aim_kill_ns",
    "sweep_latency_vs_load",
    "saturation_point",
    "render_serving_table",
    "render_serving_openmetrics",
    "serving_report_doc",
    "write_serving_report",
]

ARRIVALS = ("poisson", "bursty", "uniform")
MODES = ("open", "closed")


@dataclass(frozen=True)
class TrafficConfig:
    """One serving run, fully specified (hashable, picklable, frozen).

    ``qps`` is offered load in requests per *simulated* second.  In
    closed-loop mode the arrival schedule is ignored (completions pace
    the clients) but ``qps`` is still recorded as the nominal point.
    """

    scenario: str = "null_call"
    arrival: str = "poisson"  # poisson | bursty | uniform
    qps: float = 1000.0
    requests: int = 200
    #: connection-pool size: max concurrently-served requests (open
    #: mode) / number of request-issuing clients (closed mode)
    clients: int = 8
    mode: str = "open"  # open | closed
    seed: int = 0
    #: closed-loop think time between a completion and the next issue
    think_ns: float = 0.0
    #: bursty arrival shape: on/off cycle length and duty fraction; the
    #: ON windows carry Poisson arrivals at rate qps/duty so the mean
    #: offered load stays qps
    burst_period_ns: float = 2_000_000.0
    burst_duty: float = 0.25
    #: host cores on the serving machine (FlickConfig.host_cores)
    host_cores: int = 4
    #: NxP devices on the serving machine (FlickConfig.nxp_count); 1
    #: keeps the exact single-device machine the pre-fleet harness built
    nxps: int = 1
    #: session-placement policy for nxps > 1 (repro.os.placement)
    policy: str = "static"
    #: chaos: kill device ``kill_device`` at epoch + ``kill_at_ns``
    #: simulated ns (None = no kill).  ``abrupt`` mode arms a quiet
    #: fault plan and tightens the watchdogs so in-flight sessions fail
    #: over with bounded latency; ``drain`` only stops new placements.
    kill_at_ns: Optional[float] = None
    kill_device: int = 0
    kill_mode: str = "abrupt"  # abrupt | drain
    #: self-healing: revive ``kill_device`` at epoch + ``revive_at_ns``
    #: (None = no revive).  Requires an abrupt kill run — the revive
    #: rides the hardened protocol's breaker (docs/ROBUSTNESS.md) — and
    #: arms ``FlickConfig.nxp_recovery`` on the serving machine.
    revive_at_ns: Optional[float] = None
    #: per-request deadline, measured from *arrival* (0 = no deadlines).
    #: A request still queued when its deadline passes is shed with a
    #: typed ``deadline`` rejection instead of being served late.
    deadline_ns: float = 0.0
    #: admission-queue bound per in-service device (FlickConfig.
    #: admission_queue_limit; 0 = unbounded).  Arrivals beyond the bound
    #: are shed ``queue_full`` at the front door.
    admission_limit: int = 0
    #: brownout mode: over-limit / deadline-risk requests run on the
    #: host-fallback path instead of being shed (FlickConfig.brownout)
    brownout: bool = False
    brownout_margin_ns: float = 0.0
    #: machine-wide watchdog-retransmit budget (FlickConfig.
    #: retry_budget_tokens / retry_budget_refill_per_ms; 0 = unlimited)
    retry_budget_tokens: float = 0.0
    retry_budget_refill_per_ms: float = 0.0
    #: request-scoped causal tracing (docs/OBSERVABILITY.md): every
    #: request gets a deterministic ``trace_id`` threaded through its
    #: spans, and the result carries exactly-tiling critical paths
    #: (repro.analysis.critical_path).  Off (the default) leaves the
    #: exact untraced code paths — pinned bit-identical.
    traced: bool = False

    def validate(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival {self.arrival!r} (know {ARRIVALS})")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r} (know {MODES})")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.qps <= 0:
            raise ValueError("qps must be > 0")
        if not 0.0 < self.burst_duty <= 1.0:
            raise ValueError("burst_duty must be in (0, 1]")
        if self.nxps < 1:
            raise ValueError("nxps must be >= 1")
        if self.nxps > 1:
            from repro.os.placement import POLICIES

            if self.policy not in POLICIES:
                raise ValueError(
                    f"unknown placement policy {self.policy!r} "
                    f"(know {sorted(POLICIES)})"
                )
        if self.kill_at_ns is not None:
            if self.nxps < 2:
                raise ValueError("a kill run needs nxps >= 2 (survivors)")
            if not 0 <= self.kill_device < self.nxps:
                raise ValueError("kill_device out of range")
            if self.kill_mode not in ("abrupt", "drain"):
                raise ValueError(f"unknown kill mode {self.kill_mode!r}")
        if self.revive_at_ns is not None:
            if self.kill_at_ns is None or self.kill_mode != "abrupt":
                raise ValueError(
                    "a revive run needs an abrupt kill (kill_at_ns + "
                    "kill_mode='abrupt'): recovery rides the hardened "
                    "protocol's breaker"
                )
            if self.revive_at_ns <= self.kill_at_ns:
                raise ValueError("revive_at_ns must be after kill_at_ns")
        if self.deadline_ns < 0:
            raise ValueError("deadline_ns must be >= 0 (0 = no deadlines)")
        if self.admission_limit < 0:
            raise ValueError("admission_limit must be >= 0 (0 = unbounded)")
        scenario_mix(self.scenario)  # raises on unknown scenario


@dataclass(frozen=True)
class RequestRecord:
    """One served request: timestamps in absolute simulated ns."""

    index: int
    kind: str
    client: int
    arrival_ns: float
    start_ns: float  # dequeued by a client (== arrival in closed mode)
    end_ns: float
    ok: bool  # retval matched the profile's golden value
    #: admission control rejected this request instead of serving it
    #: (``ok`` is False; latency/percentile stats exclude shed records)
    shed: bool = False
    shed_reason: str = ""  # deadline | queue_full (empty when served)

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.arrival_ns

    @property
    def wait_ns(self) -> float:
        return self.start_ns - self.arrival_ns


def _request_trace_id(seed: int, idx: int) -> str:
    """Deterministic per-request trace id: same config ⇒ same ids, so
    exemplar ids in reports and EXPERIMENTS.md are stable across runs."""
    return f"req-{seed:x}-{idx:04d}"


def _stream(seed: int, label: str) -> random.Random:
    """An independent deterministic RNG stream.

    String seeding is hashed with SHA-512 inside ``random.seed`` —
    stable across processes and interpreter runs, unlike tuple seeds
    (which go through PYTHONHASHSEED-randomized ``hash``).
    """
    return random.Random(f"flick-serving/{seed}/{label}")


def generate_arrivals(tc: TrafficConfig) -> List[float]:
    """The closed-form arrival schedule: ``requests`` offsets in ns.

    Offsets are relative to the serving epoch, nondecreasing, and
    depend only on the config — never on anything the simulation does.
    The open-loop independence test pins observed arrival instants to
    exactly this list even when the machine is saturated.
    """
    tc.validate()
    rng = _stream(tc.seed, "arrivals")
    out: List[float] = []
    if tc.arrival == "uniform":
        period = 1e9 / tc.qps
        return [i * period for i in range(tc.requests)]
    if tc.arrival == "poisson":
        t = 0.0
        for _ in range(tc.requests):
            t += rng.expovariate(tc.qps) * 1e9
            out.append(t)
        return out
    # bursty: Poisson at peak rate qps/duty, folded onto the ON windows
    # of an on/off square wave — mean rate stays qps, but arrivals club
    # together (the tail-latency stress a smooth Poisson never applies).
    peak = tc.qps / tc.burst_duty
    on_ns = tc.burst_period_ns * tc.burst_duty
    busy = 0.0  # cumulative on-window time consumed
    for _ in range(tc.requests):
        busy += rng.expovariate(peak) * 1e9
        cycles = int(busy // on_ns)
        out.append(cycles * tc.burst_period_ns + (busy - cycles * on_ns))
    return out


def draw_kinds(tc: TrafficConfig) -> List[str]:
    """Each request's type, drawn from the scenario mix.

    A separate stream from the arrival schedule, so changing the mix
    never perturbs the arrival instants (and vice versa).
    """
    mix = scenario_mix(tc.scenario)
    rng = _stream(tc.seed, "mix")
    kinds: List[str] = []
    for _ in range(tc.requests):
        draw = rng.random()
        acc = 0.0
        kind = mix[-1][0]
        for name, weight in mix:
            acc += weight
            if draw < acc:
                kind = name
                break
        kinds.append(kind)
    return kinds


@dataclass
class ServingResult:
    """Everything one serving run measured."""

    config: TrafficConfig
    records: List[RequestRecord]
    #: observed arrival instants (absolute ns) in request-index order;
    #: in open mode these equal epoch + generate_arrivals() exactly
    arrivals_ns: List[float]
    epoch_ns: float  # serving start (t0)
    sim_ns: float  # last completion - epoch
    offered_qps: float
    achieved_qps: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    mean_ns: float
    max_ns: float
    mean_wait_ns: float
    errors: int
    kind_counts: Dict[str, int]
    latency_histogram: HistogramSummary
    utilization: Dict[str, UtilizationSummary] = field(default_factory=dict)
    #: trace health after the run: both must be zero for a clean run
    open_spans: int = 0
    span_anomalies: int = 0
    #: multi-NxP only: sessions placed per device index (placement
    #: sidecar counters); empty on a single-NxP run
    device_sessions: Dict[int, int] = field(default_factory=dict)
    #: NISA calls that completed via host-fallback emulation (all
    #: devices down, or a kill run's tail) — from ``degraded.calls``
    degraded_calls: int = 0
    #: requests admission control shed (typed rejections; these carry
    #: ``RequestRecord.shed`` and are excluded from every latency stat)
    shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: calls the brownout router sent to host fallback instead of the NxP
    brownout_calls: int = 0
    #: watchdog retransmits the machine-wide retry budget denied
    retry_budget_denied: int = 0
    #: devices revived (``nxp.revived``) during the run
    revived: int = 0
    #: revive runs only: sessions placed per device *after* the revive
    #: instant (final placement counters minus the pre-revive snapshot)
    post_revival_sessions: Dict[int, int] = field(default_factory=dict)
    #: trace ring pressure after the run: events / completed spans the
    #: bounded rings evicted.  Non-zero means every span-derived number
    #: above was computed on a *window*, not the whole run.
    trace_dropped: int = 0
    trace_spans_dropped: int = 0
    #: traced runs only (config.traced): one exactly-tiling critical
    #: path per request, request-index order
    #: (repro.analysis.critical_path.RequestPath); empty when untraced
    paths: list = field(default_factory=list)
    #: traced multi-NxP runs only: per device index, the ``(start, end)``
    #: interval of every h2n DMA transfer aimed at it, kick order.
    #: Chaos harnesses use these to aim a kill at an in-flight leg
    #: (:func:`aim_kill_ns`) — arrivals are seeded, so a window observed
    #: in a baseline run exists at the same instant in a kill run.
    device_kicks: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)

    @property
    def latencies_ns(self) -> List[float]:
        return [r.latency_ns for r in self.completed_records]

    @property
    def completed_records(self) -> List[RequestRecord]:
        """Records that were actually served (shed rejections excluded);
        the population every latency/SLO statistic is computed over."""
        return [r for r in self.records if not r.shed]

    def to_point(self) -> dict:
        """One latency-vs-load curve point (JSON-friendly)."""
        return {
            "scenario": self.config.scenario,
            "arrival": self.config.arrival,
            "mode": self.config.mode,
            "seed": self.config.seed,
            "requests": len(self.records),
            "clients": self.config.clients,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "mean_ns": self.mean_ns,
            "max_ns": self.max_ns,
            "mean_wait_ns": self.mean_wait_ns,
            "errors": self.errors,
            "sim_ns": self.sim_ns,
            "kind_counts": dict(self.kind_counts),
            "latency_histogram": self.latency_histogram.to_dict(),
            "utilization": {
                device: summary.fraction
                for device, summary in self.utilization.items()
            },
            "open_spans": self.open_spans,
            "span_anomalies": self.span_anomalies,
            "nxps": self.config.nxps,
            "policy": self.config.policy,
            "device_sessions": {str(k): v for k, v in self.device_sessions.items()},
            "degraded_calls": self.degraded_calls,
            "trace_dropped": self.trace_dropped,
            "trace_spans_dropped": self.trace_spans_dropped,
            "shed": self.shed,
            "shed_by_reason": dict(self.shed_by_reason),
            "brownout_calls": self.brownout_calls,
            "retry_budget_denied": self.retry_budget_denied,
            "revived": self.revived,
            "post_revival_sessions": {
                str(k): v for k, v in self.post_revival_sessions.items()
            },
        }


def run_serving(tc: TrafficConfig, cfg: Optional[FlickConfig] = None) -> ServingResult:
    """Serve one traffic config on a fresh machine; fully deterministic."""
    tc.validate()
    if cfg is None:
        overrides: Dict[str, object] = {"host_cores": tc.host_cores}
        if tc.nxps > 1:
            overrides["nxp_count"] = tc.nxps
            overrides["placement_policy"] = tc.policy
        if tc.kill_at_ns is not None and tc.kill_mode == "abrupt":
            # An abrupt kill needs the hardened protocol: arm a quiet
            # (never-firing) fault plan and tighten the recovery knobs
            # so a leg lost to the killed device fails over in well
            # under a millisecond instead of the conservative defaults'
            # ~5 ms.  The watchdog must stay comfortably above the
            # worst-case *queueing* delay at a loaded survivor, or a
            # slow-but-healthy device gets latched DEAD too (retries
            # are seq-deduplicated, so a trip itself is harmless — only
            # the dead-threshold is destructive).  Kill runs should use
            # single-leg scenarios (``null_call``) at moderate load; a
            # mid-ladder leg lost to a kill is a ProcessCrash by design.
            from repro.sim.faults import FaultRule

            overrides["faults"] = (
                FaultRule("dma_drop", after_ns=1e18, count=None),
            )
            overrides["migration_watchdog_ns"] = 250_000.0
            overrides["migration_retry_limit"] = 1
            overrides["nxp_dead_threshold"] = 1
        if tc.traced:
            overrides["trace_context"] = True
        # Robustness knobs (docs/ROBUSTNESS.md); each stays at its
        # parity-pinned default unless the traffic config arms it.
        if tc.admission_limit:
            overrides["admission_queue_limit"] = tc.admission_limit
        if tc.brownout:
            overrides["brownout"] = True
            overrides["brownout_margin_ns"] = tc.brownout_margin_ns
        if tc.retry_budget_tokens:
            overrides["retry_budget_tokens"] = tc.retry_budget_tokens
            overrides["retry_budget_refill_per_ms"] = tc.retry_budget_refill_per_ms
        if tc.revive_at_ns is not None:
            overrides["nxp_recovery"] = True
        cfg = DEFAULT_CONFIG.with_overrides(**overrides)
    machine = FlickMachine(cfg)
    if tc.traced:
        # Covers an explicitly-passed cfg too; a no-op when the config
        # already enabled trace_context.
        machine.trace.context_enabled = True
    # Size the trace rings to the run so utilization and the per-request
    # spans are derived from complete data, not a truncated window.
    machine.trace.limit = max(machine.trace.limit, tc.requests * 150)
    machine.trace.span_limit = max(machine.trace.span_limit, tc.requests * 40)
    sim = machine.sim
    trace = machine.trace

    kinds = draw_kinds(tc)
    clients = min(tc.clients, tc.requests)
    epoch = sim.now

    exes: Dict[str, object] = {}
    procs: Dict[Tuple[int, str], object] = {}
    arrivals_seen: List[Optional[float]] = [None] * tc.requests
    records: List[Optional[RequestRecord]] = [None] * tc.requests

    def _process_for(client: int, kind: str):
        # One loaded process per (connection, request type), reused for
        # every request that connection serves of that type — requests
        # on one connection serialize, so reuse is race-free, and the
        # profiles are re-entrant by construction.
        key = (client, kind)
        if key not in procs:
            if kind not in exes:
                exes[kind] = machine.compile(PROFILES[kind].source)
            procs[key] = machine.load(exes[kind], name=f"c{client}.{kind}")
        return procs[key]

    def _shed(client: int, idx: int, kind: str, span, reason: str) -> None:
        """Record a typed admission rejection (no thread is spawned)."""
        trace.close(span, client=client, shed=reason)
        records[idx] = RequestRecord(
            index=idx,
            kind=kind,
            client=client,
            arrival_ns=arrivals_seen[idx],
            start_ns=sim.now,
            end_ns=sim.now,
            ok=False,
            shed=True,
            shed_reason=reason,
        )

    def _serve_one(client: int, idx: int, kind: str, span):
        profile = PROFILES[kind]
        if tc.deadline_ns:
            # The deadline clock starts at *arrival*: a request that
            # already burned its budget queueing is shed here (typed),
            # not served late — the admission slot it held goes back.
            deadline_at = arrivals_seen[idx] + tc.deadline_ns
            if sim.now >= deadline_at:
                machine.stats.count("admission.shed.deadline")
                if tc.admission_limit:
                    machine.admission_release()
                _shed(client, idx, kind, span, "deadline")
                return
        process = _process_for(client, kind)
        start = sim.now
        thread = machine.spawn(process, entry="main", args=profile.args)
        if tc.deadline_ns:
            # Brownout risk assessment reads the task's deadline.
            thread.task.deadline_ns = arrivals_seen[idx] + tc.deadline_ns
        if tc.traced and span is not None:
            # Thread the request's causal context into everything its
            # fresh task emits (h2n legs, DMA, retries, placement); the
            # serve_request root adopts the task pid as its child root.
            trace.set_context(
                thread.task.pid,
                span.attrs["trace_id"],
                root_span_id=span.attrs.get("span_id"),
                request=idx,
            )
        yield thread.proc  # join: resumes when the request thread finishes
        if tc.traced:
            trace.clear_context(thread.task.pid)
        trace.close(span, client=client)
        retval = signed_retval(thread.result)
        records[idx] = RequestRecord(
            index=idx,
            kind=kind,
            client=client,
            arrival_ns=arrivals_seen[idx],
            start_ns=start,
            end_ns=sim.now,
            ok=retval == profile.expected,
        )
        # Recycle the finished task's 64 KB NxP stack: BRAM would cap
        # the run near 250 requests otherwise.
        if thread.task.nxp_stack_base is not None:
            machine.release_nxp_stack(thread.task.nxp_stack_base)
        if tc.admission_limit:
            machine.admission_release()

    if tc.mode == "open":
        offsets = generate_arrivals(tc)
        channels = [sim.channel(f"client[{c}]") for c in range(clients)]
        counts = [0] * clients
        for idx in range(tc.requests):
            counts[idx % clients] += 1

        def _arrive(idx: int, kind: str):
            # Runs at exactly epoch + offsets[idx]: the instant was
            # fixed by spawn_at before the simulation started, so the
            # arrival cannot be delayed by a congested machine — the
            # open-loop property.  Queueing shows up as channel wait.
            arrivals_seen[idx] = sim.now
            if tc.traced:
                span = trace.open_span(
                    "serve_request", kind=kind, index=idx,
                    trace_id=_request_trace_id(tc.seed, idx),
                )
            else:
                span = trace.open_span("serve_request", kind=kind, index=idx)
            if tc.admission_limit or tc.deadline_ns:
                deadline_at = (
                    sim.now + tc.deadline_ns if tc.deadline_ns else None
                )
                try:
                    machine.admit_request(deadline_at)
                except AdmissionRejected as exc:
                    # Front-door shed: the client still consumes one
                    # channel item (counts[] is precomputed), but the
                    # marker carries no work.
                    _shed(idx % clients, idx, kind, span, exc.reason)
                    channels[idx % clients].put(None)
                    return
            channels[idx % clients].put((idx, kind, span))
            return
            yield  # unreachable; makes this function a generator

        def _client(c: int):
            for _ in range(counts[c]):
                item = yield channels[c].get()
                if item is None:
                    continue  # arrival was shed at the front door
                idx, kind, span = item
                yield from _serve_one(c, idx, kind, span)

        for idx, (off, kind) in enumerate(zip(offsets, kinds)):
            sim.spawn_at(epoch + off, _arrive(idx, kind), name=f"arrive[{idx}]")
        for c in range(clients):
            sim.spawn(_client(c), name=f"client[{c}]")
    else:  # closed loop: completions pace the clients

        def _client(c: int):
            for idx in range(c, tc.requests, clients):
                kind = kinds[idx]
                arrivals_seen[idx] = sim.now
                if tc.traced:
                    span = trace.open_span(
                        "serve_request", kind=kind, index=idx,
                        trace_id=_request_trace_id(tc.seed, idx),
                    )
                else:
                    span = trace.open_span("serve_request", kind=kind, index=idx)
                if tc.admission_limit or tc.deadline_ns:
                    deadline_at = (
                        sim.now + tc.deadline_ns if tc.deadline_ns else None
                    )
                    try:
                        machine.admit_request(deadline_at)
                    except AdmissionRejected as exc:
                        _shed(c, idx, kind, span, exc.reason)
                        continue
                yield from _serve_one(c, idx, kind, span)
                if tc.think_ns > 0:
                    yield sim.timeout(tc.think_ns)

        for c in range(clients):
            sim.spawn(_client(c), name=f"client[{c}]")

    if tc.kill_at_ns is not None:

        def _killer():
            yield sim.timeout(tc.kill_at_ns)
            machine.kill_nxp(tc.kill_device, mode=tc.kill_mode)

        sim.spawn(_killer(), name="chaos-killer")

    sessions_before_revive: Dict[int, int] = {}
    if tc.revive_at_ns is not None:

        def _reviver():
            yield sim.timeout(tc.revive_at_ns)
            if machine.placement is not None:
                sessions_before_revive.update(machine.placement.session_counts())
            machine.revive_nxp(tc.kill_device)

        sim.spawn(_reviver(), name="chaos-reviver")

    sim.run()

    unserved = [i for i, r in enumerate(records) if r is None]
    if unserved:
        raise RuntimeError(
            f"serving run quiesced with {len(unserved)} unserved request(s): "
            f"{unserved[:5]}..."
        )
    done: List[RequestRecord] = records  # type: ignore[assignment]
    served = [r for r in done if not r.shed]
    if not served:
        raise RuntimeError(
            "serving run shed every request; nothing to measure — lower "
            "the load or loosen deadline_ns/admission_limit"
        )

    latencies = [r.latency_ns for r in served]
    t_end = max(r.end_ns for r in served)
    window_ns = t_end - epoch
    achieved = len(served) / (window_ns / 1e9) if window_ns > 0 else 0.0
    offered = tc.qps if tc.mode == "open" else achieved
    hist = Histogram("serve_latency_ns")
    for value in latencies:
        hist.observe(value)
    kind_counts: Dict[str, int] = {}
    for r in served:
        kind_counts[r.kind] = kind_counts.get(r.kind, 0) + 1
    shed_by_reason: Dict[str, int] = {}
    for r in done:
        if r.shed:
            shed_by_reason[r.shed_reason] = shed_by_reason.get(r.shed_reason, 0) + 1
    stats = machine.stats.snapshot()
    final_sessions = (
        machine.placement.session_counts() if machine.placement else {}
    )
    post_revival: Dict[int, int] = {}
    if tc.revive_at_ns is not None:
        post_revival = {
            dev: count - sessions_before_revive.get(dev, 0)
            for dev, count in final_sessions.items()
        }

    return ServingResult(
        config=tc,
        records=done,
        arrivals_ns=[r.arrival_ns for r in done],
        epoch_ns=epoch,
        sim_ns=window_ns,
        offered_qps=offered,
        achieved_qps=achieved,
        p50_ns=quantile(latencies, 50),
        p95_ns=quantile(latencies, 95),
        p99_ns=quantile(latencies, 99),
        mean_ns=sum(latencies) / len(latencies),
        max_ns=max(latencies),
        mean_wait_ns=sum(r.wait_ns for r in served) / len(served),
        errors=sum(1 for r in served if not r.ok),
        kind_counts=kind_counts,
        latency_histogram=HistogramSummary.of(hist),
        utilization=device_utilization(
            trace, t_end, t_start=epoch,
            nxp_devices=tc.nxps if tc.nxps > 1 else None,
        ),
        open_spans=len(trace.open_spans()),
        span_anomalies=trace.span_anomalies,
        device_sessions=final_sessions,
        degraded_calls=int(stats.get("degraded.calls", 0)),
        shed=len(done) - len(served),
        shed_by_reason=shed_by_reason,
        brownout_calls=int(
            stats.get("brownout.deadline_risk", 0)
            + stats.get("brownout.queue_full", 0)
        ),
        retry_budget_denied=int(stats.get("retry_budget.denied", 0)),
        revived=int(stats.get("nxp.revived", 0)),
        post_revival_sessions=post_revival,
        trace_dropped=trace.dropped,
        trace_spans_dropped=trace.spans_dropped,
        paths=(
            extract_request_paths(trace, served) if tc.traced else []
        ),
        device_kicks=(
            _device_kicks(trace) if tc.traced and tc.nxps > 1 else {}
        ),
    )


def _device_kicks(trace) -> Dict[int, List[Tuple[float, float]]]:
    """Per-device h2n transfer intervals (traced runs label DMA spans
    with their engine's device index)."""
    out: Dict[int, List[Tuple[float, float]]] = {}
    for span in trace.finished_spans("dma.h2n"):
        dev = span.attrs.get("device")
        if dev is not None:
            out.setdefault(int(dev), []).append((span.start, span.end))
    for kicks in out.values():
        kicks.sort()
    return out


def aim_kill_ns(
    result: ServingResult,
    device: int,
    frac_lo: float = 0.5,
    frac_hi: float = 0.85,
) -> float:
    """Pick a kill instant that strands in-flight legs on ``device``.

    A leg is lost to an abrupt kill only if its descriptor is still in
    flight (DMA transfer running) or ring-queued when the device dies —
    a body already dispatched completes and replies.  This scans the
    *baseline* run's h2n transfer intervals for ``device`` inside the
    ``[frac_lo, frac_hi]`` span of the run and returns the midpoint of
    the transfer overlapped by the most concurrent transfers (latest
    such moment wins ties, keeping the post-kill degraded window
    short).  Arrivals are seeded, so the killed run replays the same
    history up to this instant.
    """
    kicks = result.device_kicks.get(device)
    if not kicks:
        raise ValueError(
            f"no h2n kicks recorded for device {device}; aim_kill_ns "
            "needs a traced multi-NxP baseline (TrafficConfig.traced)"
        )
    t_end = max(end for _start, end in kicks)
    lo, hi = frac_lo * t_end, frac_hi * t_end
    window = [k for k in kicks if lo <= k[0] <= hi] or kicks
    best = None
    for start, end in window:
        mid = start + 0.5 * (end - start)
        overlap = sum(1 for s, e in kicks if s <= mid < e)
        key = (overlap, mid)
        if best is None or key > best[0]:
            best = (key, mid)
    return best[1]


# ---------------------------------------------------------------------------
# latency-vs-load sweep
# ---------------------------------------------------------------------------


def _sweep_job(tc: TrafficConfig) -> ServingResult:
    """Module-level so the sweep pool can pickle it."""
    return run_serving(tc)


def sweep_latency_vs_load(
    qps_list: Sequence[float],
    base: Optional[TrafficConfig] = None,
    workers: Optional[int] = None,
) -> List[ServingResult]:
    """One serving run per offered-QPS point, fanned over worker
    processes; results come back in input order and are bit-identical
    at any worker count (each point is an independent machine)."""
    base = base if base is not None else TrafficConfig()
    jobs = [replace(base, qps=float(qps)) for qps in qps_list]
    return parallel_map(_sweep_job, jobs, workers=workers)


def saturation_point(
    results: Sequence[ServingResult], tolerance: float = 0.95
) -> Optional[float]:
    """The largest offered QPS the machine still keeps up with.

    A point "keeps up" when achieved/offered >= ``tolerance`` (open
    loop; closed-loop points always keep up by construction).  Returns
    ``None`` when every point is past saturation.
    """
    good = [
        r.offered_qps
        for r in results
        if r.offered_qps > 0 and r.achieved_qps / r.offered_qps >= tolerance
    ]
    return max(good) if good else None


# ---------------------------------------------------------------------------
# rendering / export
# ---------------------------------------------------------------------------


def render_serving_table(results: Sequence[ServingResult]) -> str:
    """The latency-vs-load table ``python -m repro serve`` prints."""
    rows = [
        (
            "offered_qps", "achieved", "p50_us", "p95_us", "p99_us",
            "wait_us", "host", "nxp", "dma", "shed", "err",
        )
    ]
    for r in results:
        util = {d: s.fraction for d, s in r.utilization.items()}
        rows.append(
            (
                f"{r.offered_qps:.0f}",
                f"{r.achieved_qps:.0f}",
                f"{r.p50_ns / 1000.0:.1f}",
                f"{r.p95_ns / 1000.0:.1f}",
                f"{r.p99_ns / 1000.0:.1f}",
                f"{r.mean_wait_ns / 1000.0:.1f}",
                f"{util.get('host_core', 0.0):.2f}",
                f"{util.get('nxp', 0.0):.2f}",
                f"{util.get('dma', 0.0):.2f}",
                str(r.shed),
                str(r.errors),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    sat = saturation_point(results)
    first = results[0]
    lines.append("")
    lines.append(
        f"scenario={first.config.scenario} arrival={first.config.arrival} "
        f"mode={first.config.mode} seed={first.config.seed} "
        f"requests/point={len(first.records)} clients={first.config.clients}"
    )
    lines.append(
        "saturation: "
        + (f"~{sat:.0f} qps (last point with achieved/offered >= 0.95)"
           if sat is not None else "below the lowest offered point")
    )
    return "\n".join(lines)


def render_serving_openmetrics(results: Sequence[ServingResult]) -> str:
    """Serving curves as OpenMetrics text (one series per offered QPS)."""
    lines: List[str] = []
    lines.append("# TYPE flick_serving_latency_ns histogram")
    lines.append("# UNIT flick_serving_latency_ns nanoseconds")
    for r in results:
        labels = f'{{offered_qps="{r.offered_qps:g}",scenario="{r.config.scenario}"}}'
        hist = r.latency_histogram
        for le, cumulative in hist.buckets:
            lines.append(
                f'flick_serving_latency_ns_bucket{{offered_qps="{r.offered_qps:g}",'
                f'scenario="{r.config.scenario}",le="{le:g}"}} {cumulative}'
            )
        lines.append(
            f'flick_serving_latency_ns_bucket{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}",le="+Inf"}} {hist.count}'
        )
        lines.append(f"flick_serving_latency_ns_sum{labels} {hist.sum}")
        lines.append(f"flick_serving_latency_ns_count{labels} {hist.count}")
    lines.append("# TYPE flick_serving_achieved_qps gauge")
    for r in results:
        lines.append(
            f'flick_serving_achieved_qps{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}"}} {r.achieved_qps}'
        )
    lines.append("# TYPE flick_serving_device_utilization gauge")
    for r in results:
        for device, summary in r.utilization.items():
            lines.append(
                f'flick_serving_device_utilization{{offered_qps="{r.offered_qps:g}",'
                f'device="{device}"}} {summary.fraction}'
            )
    lines.append("# TYPE flick_serving_shed counter")
    for r in results:
        for reason, n in sorted(r.shed_by_reason.items()):
            lines.append(
                f'flick_serving_shed_total{{offered_qps="{r.offered_qps:g}",'
                f'scenario="{r.config.scenario}",reason="{reason}"}} {n}'
            )
    lines.append("# TYPE flick_serving_retry_budget_denied counter")
    for r in results:
        lines.append(
            f'flick_serving_retry_budget_denied_total{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}"}} {r.retry_budget_denied}'
        )
    lines.append("# TYPE flick_serving_revived counter")
    for r in results:
        lines.append(
            f'flick_serving_revived_total{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}"}} {r.revived}'
        )
    lines.append("# TYPE flick_trace_dropped counter")
    for r in results:
        lines.append(
            f'flick_trace_dropped_total{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}"}} {r.trace_dropped}'
        )
    lines.append("# TYPE flick_trace_spans_dropped counter")
    for r in results:
        lines.append(
            f'flick_trace_spans_dropped_total{{offered_qps="{r.offered_qps:g}",'
            f'scenario="{r.config.scenario}"}} {r.trace_spans_dropped}'
        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def serving_report_doc(results: Sequence[ServingResult]) -> dict:
    """A BENCH_simspeed.json-style document for the sweep."""
    first = results[0].config if results else TrafficConfig()
    return {
        "benchmark": "serving",
        "schema": "flick.serving.v1",
        "scenario": first.scenario,
        "arrival": first.arrival,
        "mode": first.mode,
        "seed": first.seed,
        "saturation_qps": saturation_point(results),
        "points": [r.to_point() for r in results],
    }


def write_serving_report(results: Sequence[ServingResult], path: str) -> dict:
    doc = serving_report_doc(results)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc
