"""Simulator wall-clock speed: instructions/sec and events/sec.

The acceleration layer (docs/PERFORMANCE.md) promises two things at
once: the fast paths change nothing the simulation can observe, and
they make the wall clock meaningfully faster.  This module measures
both on interpreted workloads, running each one twice — all
``FlickConfig`` fast-path toggles on, then all off — and reporting:

* wall-clock seconds per config (best of ``repeats`` runs),
* simulated instructions per wall second (from the ``*.inst`` counters),
* DES events per wall second (``Simulator.events_processed``),
* the speedup ratio, and
* the parity verdict: retval, simulated ns, every stat counter, and the
  processed-event count must be bit-identical across the two configs.

``benchmarks/bench_simspeed.py`` runs the standard workloads and writes
the result to ``BENCH_simspeed.json`` so the perf trajectory is tracked
release over release; ``python -m repro bench --quick`` runs a smaller
smoke of the same measurement.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.config import FlickConfig
from repro.core.machine import FlickMachine

__all__ = [
    "SimSpeedResult",
    "WORKLOADS",
    "fast_config",
    "slow_config",
    "measure_simspeed",
    "measure_all",
    "write_report",
    "render",
]

# The interpreted null-call loop: every iteration is a full Flick
# migration, so it exercises interpreter, ports, TLBs, DMA and the DES
# engine together.  The compute loop stays on the host core and isolates
# pure interpreter + decode overhead.
NULL_CALL_LOOP = """
@nxp func f(x) { return x + 1; }
func main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = f(acc) + i; i = i + 1; }
    return acc;
}
"""

COMPUTE_LOOP = """
func main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc * 3 + i; i = i + 1; }
    return acc;
}
"""

WORKLOADS = {
    "null_call_loop": (NULL_CALL_LOOP, 400),
    "compute_loop": (COMPUTE_LOOP, 4000),
}


@dataclass(frozen=True)
class SimSpeedResult:
    workload: str
    iterations: int
    wall_s_fast: float
    wall_s_slow: float
    speedup: float
    instructions: int
    inst_per_sec_fast: float
    inst_per_sec_slow: float
    events: int
    events_per_sec_fast: float
    events_per_sec_slow: float
    sim_ns: float
    parity: bool


def fast_config() -> FlickConfig:
    """All fast paths on (the defaults)."""
    return FlickConfig()


def slow_config() -> FlickConfig:
    """Every fast path off — the reference timing path."""
    return FlickConfig(
        decode_cache=False,
        translation_fast_path=False,
        engine_fast_path=False,
    )


def _run_once(source: str, n: int, cfg: FlickConfig):
    # Machine construction and toolchain compilation are one-time setup,
    # identical across configs — the timed window is the simulation only.
    machine = FlickMachine(cfg)
    exe = machine.compile(source)
    t0 = time.perf_counter()
    outcome = machine.run_program(exe, args=[n])
    wall = time.perf_counter() - t0
    instructions = sum(
        int(v) for k, v in outcome.stats.items() if k.endswith(".inst")
    )
    return {
        "wall": wall,
        "retval": outcome.retval,
        "sim_ns": outcome.sim_time_ns,
        "stats": outcome.stats,
        "instructions": instructions,
        "events": machine.sim.events_processed,
    }


def measure_simspeed(
    workload: str,
    iterations: Optional[int] = None,
    repeats: int = 2,
) -> SimSpeedResult:
    """Measure one workload fast-vs-slow; wall times are best-of-repeats."""
    source, default_n = WORKLOADS[workload]
    n = default_n if iterations is None else iterations
    # Untimed warmup: the first simulation in a fresh process pays
    # allocator and code warm-up that would skew the fast/slow ratio.
    _run_once(source, max(10, n // 10), fast_config())
    _run_once(source, max(10, n // 10), slow_config())
    fast = slow = None
    wall_fast = wall_slow = float("inf")
    for _ in range(max(1, repeats)):
        run = _run_once(source, n, fast_config())
        wall_fast = min(wall_fast, run["wall"])
        fast = run
        run = _run_once(source, n, slow_config())
        wall_slow = min(wall_slow, run["wall"])
        slow = run
    parity = (
        fast["retval"] == slow["retval"]
        and fast["sim_ns"] == slow["sim_ns"]
        and fast["stats"] == slow["stats"]
        and fast["events"] == slow["events"]
    )
    return SimSpeedResult(
        workload=workload,
        iterations=n,
        wall_s_fast=wall_fast,
        wall_s_slow=wall_slow,
        speedup=wall_slow / wall_fast,
        instructions=fast["instructions"],
        inst_per_sec_fast=fast["instructions"] / wall_fast,
        inst_per_sec_slow=slow["instructions"] / wall_slow,
        events=fast["events"],
        events_per_sec_fast=fast["events"] / wall_fast,
        events_per_sec_slow=slow["events"] / wall_slow,
        sim_ns=fast["sim_ns"],
        parity=parity,
    )


def measure_all(repeats: int = 2, scale: float = 1.0) -> List[SimSpeedResult]:
    """Measure every standard workload; ``scale`` shrinks iteration counts
    (the CLI's --quick smoke uses scale < 1 to stay under 30 s)."""
    results = []
    for name, (_source, default_n) in WORKLOADS.items():
        n = max(10, int(default_n * scale))
        results.append(measure_simspeed(name, iterations=n, repeats=repeats))
    return results


def write_report(results: List[SimSpeedResult], path: str) -> None:
    payload: Dict[str, object] = {
        "benchmark": "simspeed",
        "workloads": [asdict(r) for r in results],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(results: List[SimSpeedResult]) -> str:
    lines = [
        f"{'workload':<16} {'fast':>8} {'slow':>8} {'speedup':>8} "
        f"{'Minst/s':>8} {'Mev/s':>8} {'parity':>7}"
    ]
    for r in results:
        lines.append(
            f"{r.workload:<16} {r.wall_s_fast:>7.3f}s {r.wall_s_slow:>7.3f}s "
            f"{r.speedup:>7.2f}x {r.inst_per_sec_fast / 1e6:>8.3f} "
            f"{r.events_per_sec_fast / 1e6:>8.3f} {str(r.parity):>7}"
        )
    return "\n".join(lines)
