"""Simulator wall-clock speed: instructions/sec and events/sec.

The acceleration layer (docs/PERFORMANCE.md) promises two things at
once: the fast paths change nothing the simulation can observe, and
they make the wall clock meaningfully faster.  This module measures
both on interpreted workloads, running each one three ways — all
``FlickConfig`` fast-path toggles on (tracing JIT included), JIT off
with the other fast paths on, then everything off — and reporting:

* wall-clock seconds per config (best of ``repeats`` runs),
* simulated instructions per wall second (from the ``*.inst`` counters),
* DES events per wall second (``Simulator.events_processed``),
* the speedup ratio, and
* the parity verdict: retval, simulated ns, every stat counter, and the
  processed-event count must be bit-identical across the two configs.

:func:`measure_hosted_batching` applies the same discipline to hosted
mode: the million-access pointer-chase sweep with op batching on vs off,
where parity is *bit-identical* (retval, simulated ns, every stat
counter) and the speedup is the batching layer's headline number.

``benchmarks/bench_simspeed.py`` runs the standard workloads and writes
the result to ``BENCH_simspeed.json`` so the perf trajectory is tracked
release over release; ``python -m repro bench --quick`` runs a smaller
smoke of the same measurement (add ``--hosted`` for the batching smoke).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.config import FlickConfig
from repro.core.machine import FlickMachine

__all__ = [
    "SimSpeedResult",
    "HostedSpeedResult",
    "WORKLOADS",
    "fast_config",
    "nojit_config",
    "slow_config",
    "measure_simspeed",
    "measure_all",
    "measure_hosted_batching",
    "write_report",
    "render",
    "render_hosted",
]

# The interpreted null-call loop: every iteration is a full Flick
# migration, so it exercises interpreter, ports, TLBs, DMA and the DES
# engine together.  The compute loop stays on the host core and isolates
# pure interpreter + decode overhead.
NULL_CALL_LOOP = """
@nxp func f(x) { return x + 1; }
func main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = f(acc) + i; i = i + 1; }
    return acc;
}
"""

COMPUTE_LOOP = """
func main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc * 3 + i; i = i + 1; }
    return acc;
}
"""

WORKLOADS = {
    "null_call_loop": (NULL_CALL_LOOP, 400),
    "compute_loop": (COMPUTE_LOOP, 4000),
}


@dataclass(frozen=True)
class SimSpeedResult:
    workload: str
    iterations: int
    wall_s_fast: float
    wall_s_slow: float
    speedup: float
    instructions: int
    inst_per_sec_fast: float
    inst_per_sec_slow: float
    events: int
    events_per_sec_fast: float
    events_per_sec_slow: float
    sim_ns: float
    parity: bool
    #: Same run with every fast path on except the tracing JIT — isolates
    #: the JIT tier's marginal contribution (jit_speedup = nojit / fast).
    wall_s_nojit: float = 0.0
    jit_speedup: float = 1.0


def fast_config() -> FlickConfig:
    """All fast paths on (the defaults), tracing JIT included."""
    return FlickConfig()


def nojit_config() -> FlickConfig:
    """All fast paths on except the tracing-JIT tier."""
    return FlickConfig(jit_enabled=False)


def slow_config() -> FlickConfig:
    """Every fast path off — the reference timing path."""
    return FlickConfig(
        decode_cache=False,
        translation_fast_path=False,
        engine_fast_path=False,
        jit_enabled=False,
    )


def _run_once(source: str, n: int, cfg: FlickConfig):
    # Machine construction and toolchain compilation are one-time setup,
    # identical across configs — the timed window is the simulation only.
    machine = FlickMachine(cfg)
    exe = machine.compile(source)
    t0 = time.perf_counter()
    outcome = machine.run_program(exe, args=[n])
    wall = time.perf_counter() - t0
    instructions = sum(
        int(v) for k, v in outcome.stats.items() if k.endswith(".inst")
    )
    return {
        "wall": wall,
        "retval": outcome.retval,
        "sim_ns": outcome.sim_time_ns,
        "stats": outcome.stats,
        "instructions": instructions,
        "events": machine.sim.events_processed,
    }


def measure_simspeed(
    workload: str,
    iterations: Optional[int] = None,
    repeats: int = 2,
) -> SimSpeedResult:
    """Measure one workload fast-vs-slow; wall times are best-of-repeats."""
    source, default_n = WORKLOADS[workload]
    n = default_n if iterations is None else iterations
    # Untimed warmup: the first simulation in a fresh process pays
    # allocator and code warm-up that would skew the fast/slow ratio.
    _run_once(source, max(10, n // 10), fast_config())
    _run_once(source, max(10, n // 10), slow_config())
    fast = nojit = slow = None
    wall_fast = wall_nojit = wall_slow = float("inf")
    for _ in range(max(1, repeats)):
        run = _run_once(source, n, fast_config())
        wall_fast = min(wall_fast, run["wall"])
        fast = run
        run = _run_once(source, n, nojit_config())
        wall_nojit = min(wall_nojit, run["wall"])
        nojit = run
        run = _run_once(source, n, slow_config())
        wall_slow = min(wall_slow, run["wall"])
        slow = run
    # Three-way parity: JIT-on, JIT-off and all-slow must agree on every
    # simulated observable bit-for-bit.
    parity = all(
        fast["retval"] == other["retval"]
        and fast["sim_ns"] == other["sim_ns"]
        and fast["stats"] == other["stats"]
        and fast["events"] == other["events"]
        for other in (nojit, slow)
    )
    return SimSpeedResult(
        workload=workload,
        iterations=n,
        wall_s_fast=wall_fast,
        wall_s_slow=wall_slow,
        speedup=wall_slow / wall_fast,
        instructions=fast["instructions"],
        inst_per_sec_fast=fast["instructions"] / wall_fast,
        inst_per_sec_slow=slow["instructions"] / wall_slow,
        events=fast["events"],
        events_per_sec_fast=fast["events"] / wall_fast,
        events_per_sec_slow=slow["events"] / wall_slow,
        sim_ns=fast["sim_ns"],
        parity=parity,
        wall_s_nojit=wall_nojit,
        jit_speedup=wall_nojit / wall_fast,
    )


def measure_all(repeats: int = 2, scale: float = 1.0) -> List[SimSpeedResult]:
    """Measure every standard workload; ``scale`` shrinks iteration counts
    (the CLI's --quick smoke uses scale < 1 to stay under 30 s)."""
    results = []
    for name, (_source, default_n) in WORKLOADS.items():
        n = max(10, int(default_n * scale))
        results.append(measure_simspeed(name, iterations=n, repeats=repeats))
    return results


@dataclass(frozen=True)
class HostedSpeedResult:
    """Hosted-mode op batching, on vs off (docs/PERFORMANCE.md)."""

    workload: str
    accesses: int
    calls: int
    wall_s_batched: float
    wall_s_unbatched: float
    speedup: float
    sim_ns: float
    parity: bool


def _hosted_run(cfg: FlickConfig, accesses: int, calls: int):
    from repro.core.hosted import HostedMachine
    from repro.workloads.pointer_chase import _make_program, build_chain

    # Machine construction and chain materialization are one-time setup
    # shared by both configs — the timed window is the simulation only.
    hosted = HostedMachine(_make_program(), cfg=cfg)
    head = build_chain(hosted, accesses)
    t0 = time.perf_counter()
    out = hosted.run("main", [head, accesses, calls, 1, 0.0])
    wall = time.perf_counter() - t0
    return {
        "wall": wall,
        "retval": out.retval,
        "sim_ns": out.sim_time_ns,
        "stats": out.stats,
    }


def measure_hosted_batching(
    accesses: int = 1_000_000,
    calls: int = 1,
    repeats: int = 2,
) -> HostedSpeedResult:
    """The hosted million-access pointer-chase sweep, op batching on vs
    off; wall times are best-of-repeats.

    Parity here is *bit-identical*: return value, simulated ns, and
    every stat counter must match exactly across the toggle (the
    per-batch contract in docs/PERFORMANCE.md).
    """
    from dataclasses import replace

    batched_cfg = FlickConfig()
    unbatched_cfg = replace(batched_cfg, hosted_batch_ops=False)
    batched = unbatched = None
    wall_batched = wall_unbatched = float("inf")
    for _ in range(max(1, repeats)):
        run = _hosted_run(batched_cfg, accesses, calls)
        wall_batched = min(wall_batched, run["wall"])
        batched = run
        run = _hosted_run(unbatched_cfg, accesses, calls)
        wall_unbatched = min(wall_unbatched, run["wall"])
        unbatched = run
    parity = (
        batched["retval"] == unbatched["retval"]
        and batched["sim_ns"] == unbatched["sim_ns"]
        and batched["stats"] == unbatched["stats"]
    )
    return HostedSpeedResult(
        workload="hosted_pointer_chase",
        accesses=accesses,
        calls=calls,
        wall_s_batched=wall_batched,
        wall_s_unbatched=wall_unbatched,
        speedup=wall_unbatched / wall_batched,
        sim_ns=batched["sim_ns"],
        parity=parity,
    )


def write_report(
    results: List[SimSpeedResult],
    path: str,
    hosted: Optional[HostedSpeedResult] = None,
) -> None:
    payload: Dict[str, object] = {
        "benchmark": "simspeed",
        "workloads": [asdict(r) for r in results],
    }
    if hosted is not None:
        payload["hosted_batching"] = asdict(hosted)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(results: List[SimSpeedResult]) -> str:
    lines = [
        f"{'workload':<16} {'fast':>8} {'slow':>8} {'speedup':>8} "
        f"{'jit':>7} {'Minst/s':>8} {'Mev/s':>8} {'parity':>7}"
    ]
    for r in results:
        lines.append(
            f"{r.workload:<16} {r.wall_s_fast:>7.3f}s {r.wall_s_slow:>7.3f}s "
            f"{r.speedup:>7.2f}x {r.jit_speedup:>6.2f}x "
            f"{r.inst_per_sec_fast / 1e6:>8.3f} "
            f"{r.events_per_sec_fast / 1e6:>8.3f} {str(r.parity):>7}"
        )
    return "\n".join(lines)


def render_hosted(r: HostedSpeedResult) -> str:
    return (
        f"{r.workload:<22} {r.accesses} accesses x {r.calls} call(s): "
        f"batched {r.wall_s_batched:.3f}s  unbatched {r.wall_s_unbatched:.3f}s  "
        f"speedup {r.speedup:.2f}x  parity {r.parity}"
    )
