"""SLO windows and burn-rate evaluation over serving runs.

A latency SLO is a promise about a percentile: "p99 latency stays under
500 us".  This module evaluates such promises against the request
records a serving run produced (:mod:`repro.analysis.serving`) — it
needs only arrival/end timestamps, so it works on traced *and* untraced
runs alike and charges nothing to simulated time.

Two views:

* **Windows** — the run is cut into equal wall-clock windows (by
  request *completion* time) and each window gets its own percentile
  snapshot.  A fleet whose aggregate p99 looks healthy can still burn
  its whole error budget in one bad window (a kill, a burst); windows
  make that visible.
* **Burn rate** — the SRE error-budget framing: an SLO at percentile
  ``p`` grants an error budget of ``1 - p/100`` (the fraction of
  requests allowed over threshold).  ``burn = bad_fraction / budget``;
  1.0 means spending the budget exactly as fast as it accrues, >1 means
  the budget runs out before the period does.

Thresholds parse from compact specs (``"p99:500us"``) so the CLI can
gate runs: ``python -m repro serve --slo p99:500us --slo-gate`` exits
nonzero when the promise is broken (docs/OBSERVABILITY.md).

The JSON document (:func:`slo_doc`) carries schema ``flick.slo.v1``;
:func:`render_slo_openmetrics` exposes the same numbers as gauges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.stats import quantile

__all__ = [
    "SLO",
    "SLOWindow",
    "SLOReport",
    "parse_slo",
    "evaluate_slo",
    "render_slo",
    "render_slo_openmetrics",
    "slo_doc",
]

#: default number of wall-clock windows a run is cut into
DEFAULT_WINDOWS = 8

_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

_SPEC_RE = re.compile(
    r"^p(?P<pct>\d+(?:\.\d+)?)\s*[:<]=?\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>ns|us|ms|s)$"
)


@dataclass(frozen=True)
class SLO:
    """One latency promise: ``percentile`` of latency <= ``threshold_ns``."""

    percentile: float
    threshold_ns: float

    def __post_init__(self):
        if not 0.0 < self.percentile < 100.0:
            raise ValueError("SLO percentile must be in (0, 100)")
        if self.threshold_ns <= 0:
            raise ValueError("SLO threshold must be > 0")

    @property
    def budget(self) -> float:
        """Error budget: the fraction of requests allowed over threshold."""
        return 1.0 - self.percentile / 100.0

    @property
    def spec(self) -> str:
        """Canonical compact spec, e.g. ``p99:500us``."""
        pct = f"{self.percentile:g}"
        for unit in ("s", "ms", "us", "ns"):
            scale = _UNITS_NS[unit]
            value = self.threshold_ns / scale
            if value >= 1.0 and value == int(value):
                return f"p{pct}:{int(value)}{unit}"
        return f"p{pct}:{self.threshold_ns:g}ns"


def parse_slo(spec: str) -> SLO:
    """Parse a compact SLO spec like ``p99:500us`` (also ``p99<=500us``).

    Units: ``ns``, ``us``, ``ms``, ``s``.
    """
    m = _SPEC_RE.match(spec.strip().lower())
    if m is None:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected e.g. 'p99:500us' "
            f"(units: {sorted(_UNITS_NS)})"
        )
    return SLO(
        percentile=float(m.group("pct")),
        threshold_ns=float(m.group("value")) * _UNITS_NS[m.group("unit")],
    )


@dataclass(frozen=True)
class SLOWindow:
    """Percentile snapshot of one wall-clock window of the run."""

    index: int
    t0_ns: float
    t1_ns: float
    count: int
    latency_ns: float  # the SLO percentile's latency in this window (NaN if empty)
    bad: int  # requests over threshold
    burn_rate: float  # bad_fraction / error_budget (0 for an empty window)

    @property
    def ok(self) -> bool:
        return self.burn_rate <= 1.0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t0_ns": self.t0_ns,
            "t1_ns": self.t1_ns,
            "count": self.count,
            "latency_ns": self.latency_ns,
            "bad": self.bad,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class SLOReport:
    """One SLO evaluated over a whole run plus its windows.

    ``shed`` counts requests the run rejected at admission (typed shed,
    docs/ROBUSTNESS.md).  Shed requests never produce a latency, so they
    are *excluded* from the percentile and burn-rate math — the SLO is a
    promise about completed work — but the count rides on the report so
    a gate that passes by shedding everything is visible.
    """

    slo: SLO
    requests: int
    latency_ns: float  # the percentile's latency over the whole run
    bad: int
    burn_rate: float
    windows: Tuple[SLOWindow, ...]
    shed: int = 0

    @property
    def ok(self) -> bool:
        """The run-level promise: overall burn rate within budget."""
        return self.burn_rate <= 1.0

    @property
    def worst_window(self) -> Optional[SLOWindow]:
        busy = [w for w in self.windows if w.count]
        return max(busy, key=lambda w: (w.burn_rate, w.index)) if busy else None

    def to_dict(self) -> dict:
        return {
            "spec": self.slo.spec,
            "percentile": self.slo.percentile,
            "threshold_ns": self.slo.threshold_ns,
            "requests": self.requests,
            "latency_ns": self.latency_ns,
            "bad": self.bad,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
            "shed": self.shed,
            "windows": [w.to_dict() for w in self.windows],
        }


def evaluate_slo(
    records: Sequence,
    slo: SLO,
    windows: int = DEFAULT_WINDOWS,
    shed: int = 0,
) -> SLOReport:
    """Evaluate ``slo`` over serving ``records`` (anything with
    ``arrival_ns``/``end_ns``/``latency_ns``), cutting the run into
    ``windows`` equal spans of completion time.

    Pass *completed* records only (``ServingResult.completed_records``)
    — shed requests have no meaningful latency; report their count via
    ``shed`` instead so it surfaces alongside the verdict.
    """
    if not records:
        raise ValueError("evaluate_slo needs at least one request record")
    if windows < 1:
        raise ValueError("windows must be >= 1")
    ordered = sorted(records, key=lambda r: r.end_ns)
    t0 = min(r.arrival_ns for r in ordered)
    t1 = ordered[-1].end_ns
    width = (t1 - t0) / windows if t1 > t0 else 0.0

    buckets: List[List[float]] = [[] for _ in range(windows)]
    for r in ordered:
        if width > 0:
            slot = min(int((r.end_ns - t0) / width), windows - 1)
        else:
            slot = 0
        buckets[slot].append(r.latency_ns)

    out: List[SLOWindow] = []
    for i, latencies in enumerate(buckets):
        bad = sum(1 for v in latencies if v > slo.threshold_ns)
        burn = (bad / len(latencies)) / slo.budget if latencies else 0.0
        out.append(
            SLOWindow(
                index=i,
                t0_ns=t0 + i * width,
                t1_ns=t0 + (i + 1) * width if width > 0 else t1,
                count=len(latencies),
                latency_ns=(
                    quantile(latencies, slo.percentile)
                    if latencies
                    else float("nan")
                ),
                bad=bad,
                burn_rate=burn,
            )
        )

    latencies = [r.latency_ns for r in ordered]
    bad_total = sum(1 for v in latencies if v > slo.threshold_ns)
    return SLOReport(
        slo=slo,
        requests=len(latencies),
        latency_ns=quantile(latencies, slo.percentile),
        bad=bad_total,
        burn_rate=(bad_total / len(latencies)) / slo.budget,
        windows=tuple(out),
        shed=shed,
    )


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def render_slo(report: SLOReport) -> str:
    """Human-readable verdict plus the per-window burn table."""
    slo = report.slo
    lines = [
        f"SLO {slo.spec}: {'OK' if report.ok else 'VIOLATED'}  "
        f"(p{slo.percentile:g} = {report.latency_ns / 1e3:.1f} us over "
        f"{report.requests} requests; {report.bad} over threshold, "
        f"burn rate {report.burn_rate:.2f}x"
        + (f"; {report.shed} shed, excluded" if report.shed else "")
        + ")"
    ]
    worst = report.worst_window
    if worst is not None and worst.burn_rate > 0:
        lines.append(
            f"  worst window: #{worst.index} "
            f"[{worst.t0_ns / 1e6:.2f}ms, {worst.t1_ns / 1e6:.2f}ms) "
            f"burn {worst.burn_rate:.2f}x ({worst.bad}/{worst.count} bad)"
        )
    rows = [("window", "span_ms", "requests", f"p{slo.percentile:g}_us", "bad", "burn", "ok")]
    for w in report.windows:
        rows.append(
            (
                f"#{w.index}",
                f"{w.t0_ns / 1e6:.2f}-{w.t1_ns / 1e6:.2f}",
                str(w.count),
                "-" if w.count == 0 else f"{w.latency_ns / 1e3:.1f}",
                str(w.bad),
                f"{w.burn_rate:.2f}x",
                "yes" if w.ok else "NO",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        lines.append("  " + "  ".join(cell.rjust(w) for w, cell in zip(widths, row)))
    return "\n".join(lines)


def render_slo_openmetrics(report: SLOReport) -> str:
    """The same numbers as OpenMetrics gauges (``flick_slo_*``)."""
    spec = report.slo.spec
    lines = [
        "# TYPE flick_slo_latency_ns gauge",
        f'flick_slo_latency_ns{{slo="{spec}"}} {report.latency_ns!r}',
        "# TYPE flick_slo_burn_rate gauge",
        f'flick_slo_burn_rate{{slo="{spec}"}} {report.burn_rate!r}',
        "# TYPE flick_slo_ok gauge",
        f'flick_slo_ok{{slo="{spec}"}} {1 if report.ok else 0}',
        "# TYPE flick_slo_shed gauge",
        f'flick_slo_shed{{slo="{spec}"}} {report.shed}',
        "# TYPE flick_slo_window_burn_rate gauge",
    ]
    for w in report.windows:
        lines.append(
            f'flick_slo_window_burn_rate{{slo="{spec}",window="{w.index}"}} '
            f"{w.burn_rate!r}"
        )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def slo_doc(reports: Iterable[SLOReport]) -> dict:
    """The ``flick.slo.v1`` JSON document for one or more SLOs."""
    reports = list(reports)
    return {
        "schema": "flick.slo.v1",
        "slos": [r.to_dict() for r in reports],
        "ok": all(r.ok for r in reports),
    }
