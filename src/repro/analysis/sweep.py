"""Parallel experiment fan-out for sweeps and ablations.

Every Fig. 5 sweep point and every ablation configuration is an
independent simulation — the machines share no state, so the sweep is
embarrassingly parallel.  :func:`parallel_map` fans a job list out over
a ``multiprocessing`` pool and merges the results back **in input
order**, so a parallel sweep produces byte-identical output to a serial
one regardless of worker scheduling.

Determinism and safety rules:

* Results are ordered by input position (``Pool.map`` semantics), never
  by completion time.
* Job functions must be module-level (picklable); per-job arguments
  travel inside the job tuple.
* Only *pool-setup* failures — unpicklable job function or job list,
  missing ``fork`` support, restricted environment — fall back to the
  serial loop, and the fallback emits a :class:`RuntimeWarning` (a sweep
  that silently loses parallelism looks identical but runs N× slower).
  An exception raised *by a job* propagates to the caller unchanged; it
  is never swallowed into a silent serial re-run (which would execute
  every job twice and then raise anyway).

Worker count resolution, in precedence order: explicit ``workers``
argument, then the ``FLICK_SWEEP_WORKERS`` environment variable, then
``os.cpu_count()``.  Set ``FLICK_SWEEP_WORKERS=1`` to force serial
execution everywhere.  A malformed ``FLICK_SWEEP_WORKERS`` (anything
``int()`` rejects) emits a :class:`RuntimeWarning` and falls through to
``os.cpu_count()`` rather than being silently ignored.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: argument > FLICK_SWEEP_WORKERS > cpu_count.

    A malformed ``FLICK_SWEEP_WORKERS`` warns (the user asked for a
    specific parallelism and is not getting it) and falls back to
    ``os.cpu_count()``.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("FLICK_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"FLICK_SWEEP_WORKERS={env!r} is not an integer; "
                "falling back to os.cpu_count()",
                RuntimeWarning,
                stacklevel=2,
            )
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: Optional[int] = None,
) -> List[_R]:
    """Map ``fn`` over ``items``, fanned out over worker processes.

    Results come back in input order (deterministic merge).  With one
    worker, one item, or an unusable pool (unpicklable ``fn``/``items``,
    no ``fork`` support) the map runs serially in this process instead.
    An exception raised by a job propagates to the caller either way —
    a failing sweep point must fail the sweep, not silently re-run
    every point serially first.
    """
    jobs = list(items)
    count = min(resolve_workers(workers), len(jobs))
    if count <= 1:
        return [fn(job) for job in jobs]
    try:
        # Everything the pool would need to ship across the process
        # boundary must pickle; probing up front separates "the pool
        # cannot run these jobs at all" from "a job failed".  The probe
        # can only fail in known ways — pickling rejects the payload
        # (PicklingError, or TypeError/AttributeError for lambdas,
        # locals and closures), the platform has no ``fork`` start
        # method (ValueError), or process creation itself fails
        # (OSError).  Anything else is a real bug and must propagate.
        pickle.dumps(fn)
        pickle.dumps(jobs)
        # fork keeps workers cheap and lets jobs reference module state
        # already imported in the parent; unavailable on some platforms.
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(processes=count)
    except (pickle.PicklingError, TypeError, AttributeError, ValueError, OSError) as exc:
        warnings.warn(
            f"parallel_map fell back to serial execution "
            f"({type(exc).__name__}: {exc}); results are identical but the "
            f"sweep runs on one core",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(job) for job in jobs]
    with pool:
        return pool.map(fn, jobs)
