"""Parallel experiment fan-out for sweeps and ablations.

Every Fig. 5 sweep point and every ablation configuration is an
independent simulation — the machines share no state, so the sweep is
embarrassingly parallel.  :func:`parallel_map` fans a job list out over
a ``multiprocessing`` pool and merges the results back **in input
order**, so a parallel sweep produces byte-identical output to a serial
one regardless of worker scheduling.

Determinism and safety rules:

* Results are ordered by input position (``Pool.map`` semantics), never
  by completion time.
* Job functions must be module-level (picklable); per-job arguments
  travel inside the job tuple.
* Any pool failure — unpicklable job, missing ``fork`` support,
  restricted environment — falls back to the serial loop, so callers
  never have to care whether parallelism is available.

Worker count resolution: explicit ``workers`` argument, then the
``FLICK_SWEEP_WORKERS`` environment variable, then ``os.cpu_count()``.
Set ``FLICK_SWEEP_WORKERS=1`` to force serial execution everywhere.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: argument > FLICK_SWEEP_WORKERS > cpu_count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("FLICK_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: Optional[int] = None,
) -> List[_R]:
    """Map ``fn`` over ``items``, fanned out over worker processes.

    Results come back in input order (deterministic merge).  With one
    worker, one item, or any pool failure the map runs serially in this
    process instead.
    """
    jobs = list(items)
    count = min(resolve_workers(workers), len(jobs))
    if count <= 1:
        return [fn(job) for job in jobs]
    try:
        # fork keeps workers cheap and lets jobs reference module state
        # already imported in the parent; unavailable on some platforms.
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=count) as pool:
            return pool.map(fn, jobs)
    except Exception:
        return [fn(job) for job in jobs]
