"""Table renderers: regenerate the paper's tables from measured results."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.workloads.graphs import PAPER_DATASETS

__all__ = [
    "render_table",
    "table1_system_spec",
    "table2_prior_work",
    "table3_roundtrips",
    "table4_bfs",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Plain-text table with aligned columns."""
    table = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(sep)
    for row in table[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table1_system_spec(cfg: FlickConfig = DEFAULT_CONFIG) -> str:
    """Table I: system specification (ours is the simulated twin)."""
    mm = cfg.memory_map
    rows = [
        ("Host System", f"simulated Xeon-class cores @ {cfg.host_clock_ghz:.1f} GHz "
                        f"(paper: Dual Xeon E5-2620v3)"),
        ("Host Memory", f"{mm.host_dram_size >> 30} GB simulated DRAM (paper: 64GB DDR4)"),
        ("NxP Platform", "simulated FPGA board (paper: NetFPGA SUME)"),
        ("NxP Memory", f"{mm.nxp_local_size >> 30} GB simulated DDR3 behind BAR0"),
        ("NxP Core", f"in-order scalar NISA core @ {cfg.nxp_clock_mhz:.0f} MHz "
                     f"(paper: RV64-I @ 200MHz)"),
        ("Interconnect", f"PCIe-like link, {cfg.pcie_oneway_ns:.0f} ns one-way, "
                         f"{cfg.pcie_bandwidth_gbps:.0f} Gbps (paper: PCIe 3.0 x8)"),
        ("Operating System", "simulated kernel w/ Flick hooks (paper: Linux 5.2.2)"),
        ("Toolchain", "FlickC compiler + FELF linker/loader (paper: GCC 8.3.0)"),
    ]
    return render_table(["Component", "Configuration"], rows, title="Table I: System Specification")


def table2_prior_work(flick_rt_us: float, prior: Optional[Dict] = None) -> str:
    """Table II: migration overheads of prior work vs measured Flick."""
    from repro.core.config import PRIOR_WORK

    prior = prior or PRIOR_WORK
    rows: List[Sequence[str]] = []
    for spec in prior.values():
        rows.append(
            (
                spec.name,
                spec.fast_cores,
                spec.slow_cores,
                spec.interconnect,
                f"~{spec.round_trip_ns / 1000:.0f}us",
                f"{spec.round_trip_ns / (flick_rt_us * 1000):.1f}x",
            )
        )
    rows.append(
        (
            "Flick (this repro)",
            "HISA @2.4GHz (sim)",
            "NISA @200MHz (sim)",
            "PCIe-like link",
            f"{flick_rt_us:.1f}us",
            "1.0x",
        )
    )
    return render_table(
        ["Work", "Fast Cores", "Slow Cores", "Interconnect", "Overhead", "vs Flick"],
        rows,
        title="Table II: Thread migration overhead, prior work vs Flick",
    )


def table3_roundtrips(h2n_us: float, n2h_us: float) -> str:
    """Table III: Flick round-trip overheads, measured vs paper."""
    rows = [
        ("Host-NxP-Host", f"{h2n_us:.1f}us", "18.3us"),
        ("NxP-Host-NxP", f"{n2h_us:.1f}us", "16.9us"),
    ]
    return render_table(
        ["Direction", "Measured (sim)", "Paper"],
        rows,
        title="Table III: Flick thread migration round trip overhead",
    )


def table4_bfs(results: Dict[str, Dict[str, float]], scale: int) -> str:
    """Table IV: BFS baseline vs Flick (scaled datasets).

    ``results[name] = {"baseline_s": ..., "flick_s": ...}`` measured on
    1/``scale`` synthetic graphs.
    """
    rows = []
    for key, measured in results.items():
        spec = PAPER_DATASETS[key]
        speedup = measured["baseline_s"] / measured["flick_s"]
        paper_speedup = spec.baseline_s / spec.flick_s
        rows.append(
            (
                spec.name,
                f"{spec.vertices // scale:,}",
                f"{spec.edges // scale:,}",
                f"{measured['baseline_s']:.3f}s",
                f"{measured['flick_s']:.3f}s",
                f"{speedup:.2f}x",
                f"{paper_speedup:.2f}x",
            )
        )
    return render_table(
        ["Dataset", "Vertices", "Edges", "Baseline", "Flick", "Speedup", "Paper speedup"],
        rows,
        title=f"Table IV: BFS execution time (synthetic graphs at 1/{scale} scale)",
    )
