"""Comparators: host-direct access, prior-work overheads, offload style."""

from repro.baselines.direct import direct_bfs, direct_pointer_chase
from repro.baselines.offload import (
    OffloadModel,
    flick_roundtrip_component_ns,
    offload_roundtrip_ns,
)
from repro.baselines.slow_migration import (
    FLICK_MEASURED_RT_NS,
    config_with_migration_rt,
    prior_work_config,
    prior_work_table,
)

__all__ = [
    "direct_pointer_chase",
    "direct_bfs",
    "OffloadModel",
    "offload_roundtrip_ns",
    "flick_roundtrip_component_ns",
    "config_with_migration_rt",
    "prior_work_config",
    "prior_work_table",
    "FLICK_MEASURED_RT_NS",
]
