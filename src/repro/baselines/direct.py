"""Host-direct baseline: no migration, the host reaches across PCIe.

This is the paper's baseline in Fig. 5 and Table IV: the thread stays on
the host CPU and every access to NxP-resident data is an uncached PCIe
read (~825 ns round trip).  The workload modules implement it as
``mode="host"``; these wrappers give it a first-class name.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import FlickConfig
from repro.workloads.bfs import BFSResult, run_bfs
from repro.workloads.graphs import GraphCSR
from repro.workloads.pointer_chase import PointerChasePoint, run_pointer_chase

__all__ = ["direct_pointer_chase", "direct_bfs"]


def direct_pointer_chase(
    accesses: int,
    calls: int = 10,
    cfg: Optional[FlickConfig] = None,
    inter_call_ns: float = 0.0,
) -> PointerChasePoint:
    """Pointer chase with the host traversing the list over PCIe."""
    return run_pointer_chase(
        accesses, calls=calls, mode="host", cfg=cfg, inter_call_ns=inter_call_ns
    )


def direct_bfs(graph: GraphCSR, cfg: Optional[FlickConfig] = None) -> BFSResult:
    """BFS with the host traversing the NxP-resident graph over PCIe."""
    return run_bfs(graph, mode="host", cfg=cfg)
