"""Offload-engine programming-style comparator (ablation).

Section II-B: without Flick, NxPs are driven like accelerators — the
host builds a job descriptor, rings a doorbell, and *busy-polls* for
completion.  That style skips the parts of Flick's path that exist to
keep the host core free (the NX fault, the ioctl, the context switch,
the interrupt and the wakeup), trading a blocked host core for latency.

This module prices both styles from the same config so the ablation
benchmark can show what Flick's transparency costs — and that the cost
is a few microseconds, not the orders of magnitude of prior work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_CONFIG, FlickConfig

__all__ = ["OffloadModel", "offload_roundtrip_ns", "flick_roundtrip_component_ns"]


@dataclass(frozen=True)
class OffloadModel:
    """Latency decomposition of one offload-style job round trip."""

    descriptor_build_ns: float
    doorbell_ns: float
    dma_to_device_ns: float
    device_dispatch_ns: float
    dma_to_host_ns: float
    host_poll_ns: float

    @property
    def total_ns(self) -> float:
        return (
            self.descriptor_build_ns
            + self.doorbell_ns
            + self.dma_to_device_ns
            + self.device_dispatch_ns
            + self.dma_to_host_ns
            + self.host_poll_ns
        )


def offload_roundtrip_ns(cfg: FlickConfig = DEFAULT_CONFIG) -> OffloadModel:
    """Offload-style null-job round trip (host core busy-polls)."""
    dma = cfg.dma_transfer_ns(cfg.descriptor_bytes)
    return OffloadModel(
        descriptor_build_ns=cfg.host_desc_build_ns,
        doorbell_ns=cfg.pcie_oneway_ns,  # posted MMIO write
        dma_to_device_ns=dma,
        device_dispatch_ns=cfg.nxp_poll_period_ns / 2.0
        + cfg.nxp_sched_dispatch_ns
        + cfg.nxp_context_switch_ns,
        dma_to_host_ns=cfg.nxp_desc_build_ns
        + cfg.nxp_context_switch_ns
        + cfg.nxp_dma_kick_ns
        + dma,
        host_poll_ns=cfg.nxp_poll_period_ns / 2.0,  # host completion-poll granule
    )


def flick_roundtrip_component_ns(cfg: FlickConfig = DEFAULT_CONFIG) -> dict:
    """Flick's host-NxP-host round trip as named components (sums to the
    calibrated ~18.3 us; useful for the breakdown ablation)."""
    dma = cfg.dma_transfer_ns(cfg.descriptor_bytes)
    return {
        "host page fault + redirect": cfg.host_page_fault_ns,
        "migration handler entry": cfg.host_handler_entry_ns,
        "ioctl + descriptor build": cfg.host_ioctl_entry_ns + cfg.host_desc_build_ns,
        "context switch away": cfg.host_context_switch_ns,
        "DMA kick + descriptor DMA": cfg.host_dma_kick_ns + dma,
        "NxP poll + dispatch + switch-in": cfg.nxp_poll_period_ns / 2.0
        + cfg.nxp_sched_dispatch_ns
        + cfg.nxp_context_switch_ns,
        "NxP return path (build + switch + kick + DMA)": cfg.nxp_desc_build_ns
        + cfg.nxp_context_switch_ns
        + cfg.nxp_dma_kick_ns
        + dma,
        "interrupt delivery + handler": cfg.host_irq_delivery_ns + cfg.host_irq_handler_ns,
        "wakeup to running": cfg.host_wakeup_ns,
        "ioctl return + handler return": cfg.host_ioctl_return_ns + cfg.host_handler_return_ns,
    }
