"""Prior-work comparators: high-overhead migration systems (Table II).

Prior heterogeneous-ISA migration systems pay hundreds of microseconds
per round trip for binary translation and stack/state transformation.
We emulate them by running the *same* Flick machine with an injected
per-crossing delay sized so the total round trip matches the published
overheads, letting every experiment (null call, Fig. 5 curves) compare
against them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import DEFAULT_CONFIG, PRIOR_WORK, FlickConfig, PriorWorkOverheads

__all__ = [
    "FLICK_MEASURED_RT_NS",
    "config_with_migration_rt",
    "prior_work_config",
    "prior_work_table",
]

#: Flick's own calibrated host-NxP-host round trip (Table III); the
#: injected delay tops the protocol up to the emulated system's total.
FLICK_MEASURED_RT_NS = 18_300.0


def config_with_migration_rt(
    target_rt_ns: float, base: Optional[FlickConfig] = None
) -> FlickConfig:
    """A config whose migration round trip totals ``target_rt_ns``.

    Used for Fig. 5's dashed "500 us" and "1 ms" curves and for the
    Table II comparators.  Targets below Flick's own round trip cannot
    be emulated (the protocol floor) and raise ``ValueError``.
    """
    base = base or DEFAULT_CONFIG
    injected = target_rt_ns - FLICK_MEASURED_RT_NS
    if injected < 0:
        raise ValueError(
            f"cannot emulate a {target_rt_ns}ns round trip: below Flick's "
            f"~{FLICK_MEASURED_RT_NS}ns protocol floor"
        )
    return base.with_overrides(injected_migration_rt_ns=injected)


def prior_work_config(name: str, base: Optional[FlickConfig] = None) -> FlickConfig:
    """Config emulating one of Table II's systems ('asplos12',
    'eurosys15', 'isca16', 'biglittle')."""
    spec = PRIOR_WORK[name]
    return config_with_migration_rt(spec.round_trip_ns, base)


@dataclass(frozen=True)
class ComparatorRow:
    key: str
    spec: PriorWorkOverheads
    flick_rt_ns: float

    @property
    def slowdown_vs_flick(self) -> float:
        return self.spec.round_trip_ns / self.flick_rt_ns


def prior_work_table(flick_rt_ns: float = FLICK_MEASURED_RT_NS) -> Dict[str, ComparatorRow]:
    """Table II rows with the Flick-relative factors (23x-38x)."""
    return {
        key: ComparatorRow(key=key, spec=spec, flick_rt_ns=flick_rt_ns)
        for key, spec in PRIOR_WORK.items()
    }
