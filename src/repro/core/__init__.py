"""Flick core: configuration, descriptors, migration runtimes, machine."""

from repro.core.config import DEFAULT_CONFIG, PRIOR_WORK, FlickConfig, MemoryMap
from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_H2N,
    DIR_N2H,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.errors import (
    DescriptorCorrupt,
    FlickError,
    NxpDeadError,
    ProcessCrash,
    ProtocolError,
    RingOverflow,
    RingPublishError,
    RingUnderflow,
    RingsNotAttached,
    UnhandledVector,
    VectorAlreadyClaimed,
    WorkloadHung,
)
from repro.core.health import HealthState, NxpHealth
from repro.core.machine import FlickMachine, ProgramOutcome
from repro.core.trace import MigrationTrace, Span, TraceEvent, TraceTruncated

__all__ = [
    "FlickConfig",
    "MemoryMap",
    "DEFAULT_CONFIG",
    "PRIOR_WORK",
    "MigrationDescriptor",
    "DESCRIPTOR_BYTES",
    "KIND_CALL",
    "KIND_RETURN",
    "DIR_H2N",
    "DIR_N2H",
    "FlickMachine",
    "ProgramOutcome",
    "MigrationTrace",
    "Span",
    "TraceEvent",
    "TraceTruncated",
    "FlickError",
    "ProtocolError",
    "RingOverflow",
    "RingUnderflow",
    "RingsNotAttached",
    "RingPublishError",
    "VectorAlreadyClaimed",
    "UnhandledVector",
    "DescriptorCorrupt",
    "NxpDeadError",
    "WorkloadHung",
    "ProcessCrash",
    "NxpHealth",
    "HealthState",
]
