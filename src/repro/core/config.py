"""Timing, sizing and memory-map configuration for the simulated machine.

Every latency in the Flick reproduction is a named constant here, so the
benchmarks can sweep them (ablations) and the calibration test can assert
that the *measured* simulated microbenchmarks land on the paper's
numbers:

* Table III: host-NxP-host null call ~= 18.3 us, NxP-host-NxP ~= 16.9 us
* Section V-A: the host page fault contributes ~= 0.7 us of that
* Section V: host -> NxP-storage word round trip ~= 825 ns,
  NxP -> local storage ~= 267 ns
* Fig. 5a: pointer-chase plateau ~= 2.6x (ratio of per-node costs)

Units: all times in **nanoseconds** (the simulator clock unit), sizes in
bytes, clocks in cycles-per-nanosecond via the ``*_cycle_ns`` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "FlickConfig",
    "MemoryMap",
    "PriorWorkOverheads",
    "DEFAULT_CONFIG",
    "PRIOR_WORK",
    "RING_SLOTS",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

PAGE_4K = 4 * KB
PAGE_2M = 2 * MB
PAGE_1G = 1 * GB

#: Slots in each inbound descriptor ring (both directions, every device).
#: FlickConfig.__post_init__ holds the hardened retry knobs to this.
RING_SLOTS = 16


@dataclass(frozen=True)
class MemoryMap:
    """The unified physical address map (host view, as in Fig. 3).

    The NxP local DRAM natively decodes at ``nxp_local_base`` on the NxP
    side, but is exposed to the host as a PCIe BAR at ``bar0_base``
    (assigned "dynamically" by the host).  The NxP TLB remap register
    makes the *host-view* BAR addresses work from the NxP by subtracting
    ``bar0_base - nxp_local_base``.
    """

    host_dram_base: int = 0x0
    host_dram_size: int = 2 * GB
    bar0_base: int = 0xA_0000_0000  # host-assigned BAR for NxP DRAM
    nxp_local_base: int = 0x8000_0000  # NxP-side native decode address
    nxp_local_size: int = 4 * GB
    nxp_bram_base: int = 0xB_0000_0000  # BAR for NxP on-chip stack BRAM
    nxp_bram_size: int = 16 * MB
    mmio_base: int = 0xC_0000_0000  # NxP control registers (DMA, TLB, ...)
    mmio_size: int = 64 * KB

    @property
    def bar0_remap_offset(self) -> int:
        """Value the host driver programs into the NxP TLB remap register."""
        return self.bar0_base - self.nxp_local_base

    def host_dram_contains(self, paddr: int) -> bool:
        return self.host_dram_base <= paddr < self.host_dram_base + self.host_dram_size

    def bar0_contains(self, paddr: int) -> bool:
        return self.bar0_base <= paddr < self.bar0_base + self.nxp_local_size

    def bram_contains(self, paddr: int) -> bool:
        return self.nxp_bram_base <= paddr < self.nxp_bram_base + self.nxp_bram_size

    def mmio_contains(self, paddr: int) -> bool:
        return self.mmio_base <= paddr < self.mmio_base + self.mmio_size


@dataclass(frozen=True)
class FlickConfig:
    """All tunable parameters of the simulated heterogeneous-ISA machine."""

    # ---- clocks (Table I: Xeon E5-2620v3 @2.4 GHz, RV64-I @200 MHz) ----
    host_clock_ghz: float = 2.4
    nxp_clock_mhz: float = 200.0

    # ---- raw memory / interconnect latencies (Section V) ----------------
    host_dram_ns: float = 90.0           # host core -> host DRAM (random)
    host_cached_mem_ns: float = 4.0      # host load/store, cache-filtered avg
    host_ifetch_ns: float = 0.0          # host fetch (perfect I-cache model)
    nxp_to_local_write_ns: float = 240.0  # NxP posted write to local DRAM
    nxp_local_dram_ns: float = 225.0     # NxP DRAM service time (no TLB)
    nxp_bram_ns: float = 10.0            # NxP on-chip stack BRAM
    pcie_oneway_ns: float = 360.0        # one-way PCIe 3.0 x8 transaction
    pcie_bandwidth_gbps: float = 62.0    # ~7.75 GB/s usable
    # host load from BAR0 = 2 * pcie_oneway + nxp_local_dram service
    # => ~825 ns round trip (paper: "approximately 825ns")
    # NxP load from local DRAM = nxp_local_dram + tlb/arbiter overhead
    nxp_mem_pipeline_ns: float = 42.0    # NxP LSU + TLB-hit + arbiter
    # => ~267 ns (paper: "approximately 267ns")

    # ---- TLB / MMU -------------------------------------------------------
    tlb_entries: int = 16                # per I-TLB and D-TLB (Section IV-A)
    tlb_hit_ns: float = 5.0              # one NxP cycle
    mmu_walk_levels: int = 4             # x86-64 4-level tables
    mmu_walk_step_ns: float = 830.0      # one PT read across PCIe (per level)
    mmu_walker_overhead_ns: float = 400.0  # MicroBlaze firmware per walk

    # ---- caches ----------------------------------------------------------
    nxp_icache_lines: int = 256
    nxp_icache_line_bytes: int = 64
    nxp_icache_hit_ns: float = 5.0
    nxp_dcache_lines: int = 128
    nxp_dcache_line_bytes: int = 64

    # ---- host-side migration path (Section IV-B1) ------------------------
    host_page_fault_ns: float = 700.0      # NX fault -> handler redirect (0.7us)
    host_handler_entry_ns: float = 650.0   # user handler prologue + arg gather
    host_stack_alloc_ns: float = 2600.0    # first-migration NxP stack setup
    host_ioctl_entry_ns: float = 1800.0    # syscall + task_struct collection
    host_desc_build_ns: float = 300.0      # pack host->NxP call descriptor
    host_context_switch_ns: float = 1800.0  # deschedule (TASK_KILLABLE) + sched
    host_dma_kick_ns: float = 250.0        # scheduler-side DMA trigger
    host_irq_delivery_ns: float = 2300.0   # MSI -> host IRQ handler entry
    host_irq_handler_ns: float = 600.0     # IRQ handler body (find PID)
    host_wakeup_ns: float = 3750.0         # wake_up -> running on a core
    host_ioctl_return_ns: float = 700.0    # syscall exit back to user handler
    host_handler_return_ns: float = 300.0  # handler epilogue / hijacked return
    host_call_dispatch_ns: float = 250.0   # host handler calling target fn

    # ---- NxP-side migration path (Section IV-B2) --------------------------
    nxp_poll_period_ns: float = 600.0      # DMA status-register poll loop
    nxp_sched_dispatch_ns: float = 650.0   # read descriptor, pick thread
    nxp_context_switch_ns: float = 900.0   # switch to/from thread stack
    nxp_call_dispatch_ns: float = 250.0    # handler calling target fn
    nxp_fault_entry_ns: float = 500.0      # NxP exception -> migration handler
    nxp_desc_build_ns: float = 450.0       # pack NxP->host descriptor
    nxp_dma_kick_ns: float = 200.0         # NxP scheduler DMA trigger

    # ---- runtime services ----------------------------------------------
    malloc_service_ns: float = 150.0       # per-region allocator stub call

    # ---- DMA descriptor engine -------------------------------------------
    dma_setup_ns: float = 350.0
    descriptor_bytes: int = 128            # one burst carries a descriptor

    # ---- placement sizes ---------------------------------------------------
    nxp_stack_bytes: int = 64 * KB
    host_stack_bytes: int = 1 * MB

    # ---- host topology -----------------------------------------------------
    # Host cores in the scheduler pool.  The paper's machine has more,
    # but two is enough for every single-process microbenchmark; the
    # serving harness raises it to model a multi-core front end.
    host_cores: int = 2

    # ---- NxP topology (docs/FLEET.md) --------------------------------------
    # Number of PCIe-attached NxP devices on this machine.  1 (the
    # paper's system, and the default) takes the exact single-device
    # code paths and is pinned bit-identical to the pre-fleet behavior
    # by tests/core/test_multi_nxp.py.  N > 1 builds one descriptor-ring
    # pair, DMA engine, IRQ vector, BRAM slice, scheduler and health
    # machine per device, all sharing one PCIe link (natural contention).
    nxp_count: int = 1
    # Session-placement policy for N > 1: which device an h2n migration
    # session is routed to.  One of repro.os.placement.POLICIES:
    # "static" | "round_robin" | "least_loaded" | "locality".
    placement_policy: str = "static"

    # ---- memory map --------------------------------------------------------
    memory_map: MemoryMap = field(default_factory=MemoryMap)

    # ---- emulated prior-work overhead injection (Table II / Fig. 5) -------
    # When > 0, every migration (each direction) is padded so that a full
    # round trip costs at least this much, emulating binary-translation /
    # state-transformation systems.
    injected_migration_rt_ns: float = 0.0

    # ---- wall-clock fast paths (docs/PERFORMANCE.md) -----------------------
    # Each toggle trades interpreter/event-loop overhead for wall-clock
    # speed without changing simulated time or stat counters; the parity
    # tests in tests/core/test_fastpath_parity.py hold them to that.
    decode_cache: bool = True          # PC-keyed decoded-instruction cache
    translation_fast_path: bool = True  # flat page-granular host translations
    engine_fast_path: bool = True      # DES zero-delay now-queue

    # ---- tracing-JIT tier (docs/PERFORMANCE.md) ----------------------------
    # Hot straight-line/loop superblocks detected by per-entry-PC backedge
    # counters are compiled into flat micro-op lists that execute without
    # generator dispatch, charging the exact per-pause time sequence in
    # one consolidated sleep_until per region (collapsed pauses are
    # credited to the DES event counter, so event counts stay
    # tier-comparable).  Any condition the compiled form cannot express —
    # page fault, NX transition, env call, code-generation invalidation,
    # slow (cross-PCIe) memory route — bails out to the interpreter at a
    # precise architectural state.  Pinned bit-identical (retval, sim ns,
    # stats, event count) by tests/core/test_jit_parity.py.
    jit_enabled: bool = True           # tracing-JIT superblock tier
    jit_hot_threshold: int = 20        # backedge hits before compilation
    jit_max_superblock: int = 64       # max instructions per superblock

    # ---- metrics layer (docs/OBSERVABILITY.md) -----------------------------
    # Gauges and histograms (the derived-metrics tier of StatRegistry):
    # per-leg latency histograms, scheduler queue-depth gauges.  Pure
    # observation — enabled/disabled is pinned bit-identical in retval,
    # simulated ns, base stats and DES event count by
    # tests/core/test_metrics_parity.py.  Counters and accumulators
    # (the base tier) are always on.
    metrics: bool = True

    # ---- request-scoped causal tracing (docs/OBSERVABILITY.md) -------------
    # When on, MigrationTrace decorates every span/event emitted by a
    # task with a registered trace context (``trace.set_context``) with
    # ``trace_id`` + ``span_id``/``parent_span_id`` linkage, placement
    # decisions emit ``placement`` events, and protocol spans carry the
    # serving device index.  Pure observation: attrs never feed timing,
    # and with the knob off the emitting code paths are byte-identical
    # to pre-context behavior (tests/core/test_trace_context.py).
    trace_context: bool = False

    # ---- hosted-mode op batching (docs/PERFORMANCE.md) ---------------------
    # Hosted bodies may issue runs of timed ops between yield points;
    # ``hosted_batch_ops`` lets those runs collapse into one consolidated
    # timed yield of up to ``hosted_batch_size`` ops.  Batching is pinned
    # bit-identical to the per-op path (retval, simulated ns, stat
    # counters) by tests/core/test_hosted_batching.py; only the DES
    # event count changes (one timed event per batch instead of per
    # flush-threshold crossing).
    hosted_batch_ops: bool = True      # collapse same-run hosted ops
    hosted_batch_size: int = 256       # max ops per consolidated yield

    # ---- fault injection + hardened migration (docs/ROBUSTNESS.md) ---------
    # ``faults`` is a tuple of repro.sim.faults.FaultRule; non-empty arms
    # the FaultInjector AND the hardened protocol paths (sequence numbers,
    # watchdogs, bounded retry, health tracking).  Empty (the default)
    # leaves the exact pre-hardening code paths — pinned bit-identical by
    # tests/core/test_fault_parity.py.  ``fault_seed`` feeds each rule's
    # private RNG so chaos runs replay deterministically.
    faults: tuple = ()
    fault_seed: int = 0
    # Watchdog on each h2n session leg (DMA kick -> wake), in sim ns.
    # Must exceed the longest legitimate NxP residency of the workloads
    # under test or false trips burn retries (idempotent, but wasteful).
    migration_watchdog_ns: float = 500_000.0
    # Bounded retry with deterministic exponential backoff: after a
    # watchdog trip the leg is retransmitted up to ``migration_retry_limit``
    # times, waiting base * factor**attempt between sends.
    migration_retry_limit: int = 3
    migration_backoff_base_ns: float = 20_000.0
    migration_backoff_factor: float = 2.0
    # Health state machine: this many *consecutive* exhausted legs moves
    # the NxP healthy -> suspect -> dead.  Keep
    # (migration_retry_limit + 1) * nxp_dead_threshold <= ring slots (16)
    # so a dying session can never overflow the inbound descriptor ring.
    nxp_dead_threshold: int = 3
    # Dead-NxP degradation: NISA functions execute on the host instead.
    # Each emulated NISA instruction costs this many host cycles
    # (interpreted mode scales the fallback interpreter's CostModel;
    # hosted mode scales compute charges); memory reaches NxP-resident
    # data across PCIe at the normal host-port cost.
    host_fallback_penalty: float = 20.0
    host_fallback_entry_ns: float = 5_000.0  # switch into the emulation path

    # ---- overload protection + self-healing (docs/ROBUSTNESS.md) -----------
    # All knobs below default *off*; at the defaults every code path is
    # byte-identical to the pre-robustness behavior (pinned by
    # tests/core/test_fault_parity.py / test_multi_nxp.py, the
    # ``machine.hardened`` precedent).
    #
    # Admission control: max migration sessions in flight per NxP device
    # before new requests are shed (``AdmissionRejected``) or — with
    # brownout on — routed to the host-fallback path instead of queueing.
    # 0 = unbounded (off).
    admission_queue_limit: int = 0
    # Brownout: instead of shedding, run over-limit / over-deadline-risk
    # calls on the host-fallback path (correct but degraded), freeing NxP
    # capacity for requests that can still meet their deadlines.
    brownout: bool = False
    # Deadline-risk margin for brownout: at migration entry, a task whose
    # remaining deadline budget is below this many ns browns out rather
    # than starting a session it is unlikely to finish in time.
    brownout_margin_ns: float = 0.0
    # Machine-wide retry budget: a deterministic token bucket (refilled
    # in sim time) consulted before *every* watchdog retransmit in both
    # interpreted and hosted modes.  An exhausted budget turns correlated
    # failures into host-fallback degradation instead of a retry storm on
    # the ring.  capacity 0 = unlimited (off).
    retry_budget_tokens: float = 0.0
    retry_budget_refill_per_ms: float = 0.0
    # Circuit breaker + device recovery: when on, DEAD is no longer
    # terminal — ``machine.revive_nxp(index)`` resets the device and
    # moves it DEAD -> RECOVERING; placement sends half-open probes (one
    # in flight at a time) and re-admits after this many consecutive
    # probe successes.  A flapping device re-trips the breaker and is
    # quarantined for base * factor**(trips-1) ns before the next probe.
    nxp_recovery: bool = False
    nxp_probe_successes: int = 3
    nxp_quarantine_base_ns: float = 1_000_000.0
    nxp_quarantine_factor: float = 2.0

    def __post_init__(self):
        # The hardened protocol's ring-capacity invariant (previously
        # only a comment next to nxp_dead_threshold): a dying session
        # can enqueue up to (retry_limit + 1) descriptors per leg for
        # nxp_dead_threshold legs before the device is declared dead, so
        # that product must fit in the 16-slot inbound descriptor ring.
        worst_case = (self.migration_retry_limit + 1) * self.nxp_dead_threshold
        if worst_case > RING_SLOTS:
            raise ValueError(
                "ring-capacity invariant violated: "
                f"(migration_retry_limit + 1) * nxp_dead_threshold = "
                f"({self.migration_retry_limit} + 1) * {self.nxp_dead_threshold} "
                f"= {worst_case} exceeds the {RING_SLOTS}-slot inbound "
                "descriptor ring; a dying session could overflow it"
            )

    # -- derived helpers -----------------------------------------------------

    @property
    def host_cycle_ns(self) -> float:
        return 1.0 / self.host_clock_ghz

    @property
    def nxp_cycle_ns(self) -> float:
        return 1000.0 / self.nxp_clock_mhz

    @property
    def host_to_bar_read_ns(self) -> float:
        """Host load from NxP DRAM through the BAR (paper: ~825 ns)."""
        return 2 * self.pcie_oneway_ns + self.nxp_local_dram_ns - 120.0

    @property
    def nxp_to_local_read_ns(self) -> float:
        """NxP load from its local DRAM, TLB hit (paper: ~267 ns)."""
        return self.nxp_local_dram_ns + self.nxp_mem_pipeline_ns

    @property
    def nxp_to_host_read_ns(self) -> float:
        """NxP load from host DRAM across PCIe."""
        return 2 * self.pcie_oneway_ns + self.host_dram_ns

    @property
    def pcie_ns_per_byte(self) -> float:
        return 8.0 / self.pcie_bandwidth_gbps

    def dma_transfer_ns(self, nbytes: int) -> float:
        """Latency of one burst DMA of ``nbytes`` across PCIe."""
        return self.dma_setup_ns + self.pcie_oneway_ns + nbytes * self.pcie_ns_per_byte

    def host_cycles(self, n: int) -> float:
        return n * self.host_cycle_ns

    def nxp_cycles(self, n: int) -> float:
        return n * self.nxp_cycle_ns

    def with_overrides(self, **kwargs) -> "FlickConfig":
        """Return a copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = FlickConfig()


@dataclass(frozen=True)
class PriorWorkOverheads:
    """Reported migration round-trip overheads from Table II."""

    name: str
    fast_cores: str
    slow_cores: str
    interconnect: str
    round_trip_ns: float


PRIOR_WORK: Dict[str, PriorWorkOverheads] = {
    "asplos12": PriorWorkOverheads(
        "ASPLOS'12", "MIPS @2GHz", "ARM @833MHz", "Not Considered", 600_000.0
    ),
    "eurosys15": PriorWorkOverheads(
        "EuroSys'15", "Xeon E5-2695 @2.4GHz", "Xeon Phi 3120A @1.1GHz", "PCIe", 700_000.0
    ),
    "isca16": PriorWorkOverheads(
        "ISCA'16", "Xeon E5-2640 @2.5GHz", "ARM Cortex R7 @750MHz", "PCIe Gen3 x4", 430_000.0
    ),
    "biglittle": PriorWorkOverheads(
        "ARM Big-LITTLE", "ARM Cortex A15 @1.8GHz", "ARM Cortex A7", "Onchip Network", 22_000.0
    ),
}
