"""Migration descriptors — the wire format of an ISA-crossing call.

Section IV-B: the ioctl() packages the target address, arguments, PTBR
(CR3), PID and the thread's NxP stack pointer into a *call descriptor*;
the whole descriptor crosses PCIe in **one DMA burst** (128 bytes).
Return descriptors carry the return value back.

Layout (little-endian, 16 x u64 = 128 bytes):

======  =====================================================
word 0  magic (0x464C4943 "FLIC") | kind << 32 | direction << 40
word 1  pid
word 2  target address (calls) / 0
word 3  return value (returns) / 0
word 4  argc
word 5..10  args[0..5]
word 11 CR3 (page-table base the NxP MMU must use)
word 12 NxP stack pointer (current, for context switch-in)
word 13 sequence number (hardened protocol: retransmit dedup/replay)
word 14 reserved
word 15 checksum (u64 sum of words 0..14)
======  =====================================================

The checksum is verified on every :meth:`MigrationDescriptor.unpack`;
a mismatch (or bad magic / out-of-range argc) raises
:class:`repro.core.errors.DescriptorCorrupt`, which the hardened
receive paths catch to discard the descriptor and let the sender's
watchdog retransmit it.  ``DescriptorCorrupt`` subclasses
``ValueError``, so pre-hardening callers are unaffected.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.core.errors import DescriptorCorrupt

__all__ = ["MigrationDescriptor", "KIND_CALL", "KIND_RETURN", "DIR_H2N", "DIR_N2H", "DESCRIPTOR_BYTES"]

MAGIC = 0x464C4943  # "FLIC"
KIND_CALL = 1
KIND_RETURN = 2
DIR_H2N = 1  # host -> NxP
DIR_N2H = 2  # NxP -> host

DESCRIPTOR_BYTES = 128
_MAX_ARGS = 6
_U64 = (1 << 64) - 1


@dataclass
class MigrationDescriptor:
    kind: int
    direction: int
    pid: int
    target: int = 0
    retval: int = 0
    args: List[int] = field(default_factory=list)
    cr3: int = 0
    nxp_sp: int = 0
    seq: int = 0  # hardened-protocol sequence number (0 when unarmed)

    def __post_init__(self) -> None:
        if self.kind not in (KIND_CALL, KIND_RETURN):
            raise ValueError(f"bad descriptor kind {self.kind}")
        if self.direction not in (DIR_H2N, DIR_N2H):
            raise ValueError(f"bad descriptor direction {self.direction}")
        if len(self.args) > _MAX_ARGS:
            raise ValueError(f"descriptors carry at most {_MAX_ARGS} args")

    @property
    def is_call(self) -> bool:
        return self.kind == KIND_CALL

    @property
    def is_return(self) -> bool:
        return self.kind == KIND_RETURN

    def pack(self) -> bytes:
        words = [0] * 16
        words[0] = MAGIC | (self.kind << 32) | (self.direction << 40)
        words[1] = self.pid & _U64
        words[2] = self.target & _U64
        words[3] = self.retval & _U64
        words[4] = len(self.args)
        for i, arg in enumerate(self.args):
            words[5 + i] = arg & _U64
        words[11] = self.cr3 & _U64
        words[12] = self.nxp_sp & _U64
        words[13] = self.seq & _U64
        words[15] = sum(words[:15]) & _U64
        return struct.pack("<16Q", *words)

    @classmethod
    def unpack(cls, raw: bytes) -> "MigrationDescriptor":
        if len(raw) < DESCRIPTOR_BYTES:
            raise DescriptorCorrupt(f"descriptor too short: {len(raw)} bytes")
        words = struct.unpack("<16Q", raw[:DESCRIPTOR_BYTES])
        if sum(words[:15]) & _U64 != words[15]:
            raise DescriptorCorrupt(
                f"descriptor checksum mismatch (stored {words[15]:#x})"
            )
        if words[0] & 0xFFFF_FFFF != MAGIC:
            raise DescriptorCorrupt(f"bad descriptor magic {words[0]:#x}")
        kind = (words[0] >> 32) & 0xFF
        direction = (words[0] >> 40) & 0xFF
        argc = words[4]
        if argc > _MAX_ARGS:
            raise DescriptorCorrupt(f"descriptor argc {argc} out of range")
        return cls(
            kind=kind,
            direction=direction,
            pid=words[1],
            target=words[2],
            retval=words[3],
            args=list(words[5 : 5 + argc]),
            cr3=words[11],
            nxp_sp=words[12],
            seq=words[13],
        )
