"""Typed exception hierarchy for the Flick protocol stack.

Before this module the protocol raised bare ``RuntimeError``/``ValueError``
/``KeyError`` for conditions that the hardened migration path needs to
catch *precisely* (a corrupt descriptor must be discarded and retried; a
ring overflow must abort the run).  Every class below also inherits the
builtin exception its call site historically raised, so existing callers
(and tests) that catch the broad type keep working unchanged.

Taxonomy
--------

``FlickError``
    Root of everything this package raises deliberately.
``ProtocolError``
    Migration-protocol faults: descriptor transport, rings, vectors.
``RingOverflow`` / ``RingUnderflow`` / ``RingsNotAttached`` / ``RingPublishError``
    Descriptor-ring misuse (``interconnect.dma``), all ``RuntimeError``
    for backward compatibility.
``VectorAlreadyClaimed`` / ``UnhandledVector``
    Interrupt-controller registration/delivery faults
    (``interconnect.interrupt``); ``ValueError``/``KeyError`` compatible.
``DescriptorCorrupt``
    A migration descriptor failed its wire-format checks (bad magic,
    argc out of range, checksum mismatch); ``ValueError`` compatible.
``MigrationTimeout``
    A watchdog expired on one leg of a migration session (internal —
    the bounded-retry loop consumes it).
``NxpDeadError``
    The NxP health state machine declared the device dead; the host
    handler catches this and degrades to local emulation.
``AdmissionRejected``
    Deadline-aware admission control shed a request instead of queueing
    it (over-deadline at admission, or every admission queue full with
    brownout off); the serving harness records it as typed load shedding.
``LoadError``
    The loader rejected an executable image (e.g. a misaligned ``@nxp``
    segment that would break vaddr→paddr page congruence);
    ``ValueError`` compatible.
``WorkloadHung``
    A bounded chaos run hit its sim-time budget without terminating.
``ProcessCrash``
    A fault that is *not* a migration trigger (a real segfault).
    Historically defined in ``repro.os.kernel`` and still re-exported
    there; it now carries the faulting PC and the originating fault.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "FlickError",
    "ProtocolError",
    "RingOverflow",
    "RingUnderflow",
    "RingsNotAttached",
    "RingPublishError",
    "VectorAlreadyClaimed",
    "UnhandledVector",
    "DescriptorCorrupt",
    "MigrationTimeout",
    "NxpDeadError",
    "AdmissionRejected",
    "LoadError",
    "WorkloadHung",
    "ProcessCrash",
    "WATCHDOG_EXPIRED",
]


class FlickError(Exception):
    """Root of all deliberate Flick-reproduction exceptions."""


class ProtocolError(FlickError):
    """A migration-protocol-level fault (transport, rings, vectors)."""


class RingOverflow(ProtocolError, RuntimeError):
    """A producer claimed a slot in a full descriptor ring."""


class RingUnderflow(ProtocolError, RuntimeError):
    """A consumer popped from an empty descriptor ring."""


class RingsNotAttached(ProtocolError, RuntimeError):
    """The DMA engine was kicked before ``attach_rings``."""


class RingPublishError(ProtocolError, RuntimeError):
    """``publish`` was called with no claimed in-flight slot."""


class VectorAlreadyClaimed(ProtocolError, ValueError):
    """Two handlers tried to register the same interrupt vector."""


class UnhandledVector(ProtocolError, KeyError):
    """An interrupt was raised on a vector with no registered handler."""

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0] if self.args else ""


class DescriptorCorrupt(ProtocolError, ValueError):
    """A migration descriptor failed magic/argc/checksum verification."""


class MigrationTimeout(ProtocolError):
    """A sim-time watchdog expired on one migration-session leg."""


class NxpDeadError(FlickError):
    """The NxP health machine declared the device dead mid-protocol.

    Raised out of the bounded-retry send path once
    ``FlickConfig.nxp_dead_threshold`` consecutive legs have failed; the
    host migration handler catches it and degrades to host-side
    emulation of the NISA callee.
    """

    def __init__(self, task, reason: str = "NxP unresponsive"):
        self.task = task
        super().__init__(f"{getattr(task, 'name', task)}: {reason}")


class AdmissionRejected(FlickError):
    """Admission control shed a request instead of queueing it.

    Raised by :meth:`repro.core.machine.FlickMachine.admit_request` when
    a request's deadline has already expired at admission time, or when
    every per-device admission queue is at ``admission_queue_limit`` and
    brownout is off.  ``reason`` is one of ``"deadline"`` / ``"queue_full"``
    / ``"quarantine"`` so shed accounting can attribute the rejection.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"admission rejected ({reason})" + (f": {detail}" if detail else ""))


class LoadError(FlickError, ValueError):
    """The loader rejected an executable image.

    Raised when a segment violates an invariant the runtime depends on —
    today that is an ``@nxp`` segment whose vaddr is not page-aligned,
    which would break the vaddr→paddr congruence the per-page NX marking
    (and therefore migration triggering) relies on.
    """


class WorkloadHung(FlickError):
    """A bounded run exhausted its sim-time budget without terminating."""


class ProcessCrash(FlickError):
    """A fault that is *not* a migration trigger (a real segfault).

    ``pc`` is the program counter of the faulting instruction when the
    crash site knows it; ``fault`` is the originating low-level
    exception (e.g. a :class:`repro.memory.paging.PageFault`), kept for
    programmatic inspection of the access kind.
    """

    def __init__(self, task, reason: str, pc: Optional[int] = None, fault=None):
        self.task = task
        self.reason = reason
        self.pc = pc
        self.fault = fault
        super().__init__(f"{getattr(task, 'name', task)}: {reason}")


#: Sentinel delivered through a task's wake event when the leg watchdog
#: expires before the migration interrupt arrives.  Identity-compared.
WATCHDOG_EXPIRED = object()
