"""NxP health state machine: healthy → suspect → dead.

The hardened migration path (docs/ROBUSTNESS.md) needs a single answer
to one question before every ISA-crossing call: *is the device still
worth talking to?*  This module keeps that answer.

Semantics
---------

* Every migration-session leg that completes (a descriptor went out and
  its answer came back) reports :meth:`NxpHealth.record_success`, which
  resets the machine to ``HEALTHY``.
* Every leg that exhausts its bounded retries reports
  :meth:`NxpHealth.record_failure`.  The first failure moves the
  machine to ``SUSPECT``; after ``threshold`` *consecutive* failures it
  latches ``DEAD``.
* ``DEAD`` is terminal for the simulated machine's lifetime: the host
  runtime stops sending descriptors entirely and degrades new
  NISA calls to host-side emulation (:class:`NxpDeadError` triggers the
  switch; subsequent calls check :attr:`NxpHealth.dead` up front and
  never touch the wire).

State changes are counted in the stat registry and recorded as trace
events; steady-state success paths emit nothing, so an armed-but-quiet
fault configuration stays bit-identical in base stats to a run without
the hardening layer (pinned by ``tests/core/test_fault_parity.py``).
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["HealthState", "NxpHealth"]


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


class NxpHealth:
    """Tracks consecutive migration-leg failures for one NxP device."""

    def __init__(self, threshold: int, stats=None, trace=None):
        if threshold < 1:
            raise ValueError(f"dead threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.stats = stats
        self.trace = trace
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.total_failures = 0
        self.transitions = 0  # real state *changes*, not re-entries

    @property
    def dead(self) -> bool:
        return self.state is HealthState.DEAD

    def record_success(self) -> HealthState:
        """A leg completed; a dead device stays dead (no flapping)."""
        if self.state is HealthState.DEAD:
            return self.state
        if self.state is HealthState.SUSPECT:
            self._transition(HealthState.HEALTHY)
        self.consecutive_failures = 0
        return self.state

    def record_failure(self) -> HealthState:
        """A leg exhausted its retries; returns the resulting state."""
        if self.state is HealthState.DEAD:
            return self.state
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.stats is not None:
            self.stats.count("health.leg_failure")
        if self.consecutive_failures >= self.threshold:
            self._transition(HealthState.DEAD)
        else:
            self._transition(HealthState.SUSPECT)
        return self.state

    def force_dead(self, reason: str = "forced") -> HealthState:
        """Administratively latch ``DEAD`` (e.g. a chaos kill of this
        device); idempotent and terminal like an organic death."""
        if self.state is not HealthState.DEAD:
            self._transition(HealthState.DEAD)
            if self.trace is not None:
                self.trace.record("health_forced", reason=reason)
        return self.state

    def _transition(self, new: HealthState) -> None:
        if new is self.state:
            # Re-entering the current state (a suspect->suspect failure
            # storm) is not a transition: emitting stats/trace here would
            # inflate ``health.transitions`` once fleets aggregate
            # per-device health.
            return
        old, self.state = self.state, new
        self.transitions += 1
        if self.stats is not None:
            self.stats.count(f"health.transition.{new.value}")
            self.stats.count("health.transitions")
        if self.trace is not None:
            self.trace.record("health", state=new.value, prev=old.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NxpHealth {self.state.value} "
            f"fails={self.consecutive_failures}/{self.threshold}>"
        )
