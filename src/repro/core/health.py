"""NxP health state machine: healthy → suspect → dead (→ recovering).

The hardened migration path (docs/ROBUSTNESS.md) needs a single answer
to one question before every ISA-crossing call: *is the device still
worth talking to?*  This module keeps that answer, plus the machine-wide
retry budget the watchdog retransmit path consults.

Semantics
---------

* Every migration-session leg that completes (a descriptor went out and
  its answer came back) reports :meth:`NxpHealth.record_success`, which
  resets the machine to ``HEALTHY``.
* Every leg that exhausts its bounded retries reports
  :meth:`NxpHealth.record_failure`.  The first failure moves the
  machine to ``SUSPECT``; after ``threshold`` *consecutive* failures it
  latches ``DEAD``.
* Without device recovery (``FlickConfig.nxp_recovery`` off, the
  default) ``DEAD`` is terminal for the simulated machine's lifetime:
  the host runtime stops sending descriptors entirely and degrades new
  NISA calls to host-side emulation (:class:`NxpDeadError` triggers the
  switch; subsequent calls check :attr:`NxpHealth.dead` up front and
  never touch the wire).
* With recovery on, ``DEAD`` becomes a tripped circuit breaker:
  ``machine.revive_nxp(index)`` resets the device and calls
  :meth:`NxpHealth.begin_recovery`, moving it to ``RECOVERING``.
  Placement then sends *half-open probes* (one in-flight session at a
  time); ``probe_target`` consecutive probe successes re-close the
  breaker (``HEALTHY``), while a probe failure re-trips it and
  quarantines the device for ``quarantine_base_ns *
  quarantine_factor**(retrips - 1)`` ns — a flapping device backs off
  exponentially instead of oscillating.

State changes are counted in the stat registry and recorded as trace
events; steady-state success paths emit nothing, so an armed-but-quiet
fault configuration stays bit-identical in base stats to a run without
the hardening layer (pinned by ``tests/core/test_fault_parity.py``).
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["HealthState", "NxpHealth", "RetryBudget"]


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"
    RECOVERING = "recovering"


class NxpHealth:
    """Tracks consecutive migration-leg failures for one NxP device."""

    def __init__(
        self,
        threshold: int,
        stats=None,
        trace=None,
        recovery: bool = False,
        probe_target: int = 3,
        quarantine_base_ns: float = 1_000_000.0,
        quarantine_factor: float = 2.0,
    ):
        if threshold < 1:
            raise ValueError(f"dead threshold must be >= 1, got {threshold}")
        if recovery and probe_target < 1:
            raise ValueError(f"probe target must be >= 1, got {probe_target}")
        self.threshold = threshold
        self.stats = stats
        self.trace = trace
        self.recovery = recovery
        self.probe_target = probe_target
        self.quarantine_base_ns = quarantine_base_ns
        self.quarantine_factor = quarantine_factor
        self.state = HealthState.HEALTHY
        self.consecutive_failures = 0
        self.total_failures = 0
        self.transitions = 0  # real state *changes*, not re-entries
        self.probe_successes = 0  # consecutive, while RECOVERING
        self.trips = 0  # entries into DEAD (breaker trips)
        self.retrips = 0  # trips out of RECOVERING (flaps)
        self.quarantine_until_ns = 0.0

    @property
    def dead(self) -> bool:
        return self.state is HealthState.DEAD

    @property
    def recovering(self) -> bool:
        return self.state is HealthState.RECOVERING

    def record_success(self) -> HealthState:
        """A leg completed; a dead device stays dead (no flapping)."""
        if self.state is HealthState.DEAD:
            return self.state
        if self.state is HealthState.RECOVERING:
            self.probe_successes += 1
            if self.stats is not None:
                self.stats.count("health.probe_success")
            if self.probe_successes >= self.probe_target:
                self._transition(HealthState.HEALTHY)
                self.probe_successes = 0
            self.consecutive_failures = 0
            return self.state
        if self.state is HealthState.SUSPECT:
            self._transition(HealthState.HEALTHY)
        self.consecutive_failures = 0
        return self.state

    def record_failure(self, now: float = 0.0) -> HealthState:
        """A leg exhausted its retries; returns the resulting state.

        ``now`` (sim ns) only matters while ``RECOVERING``: a failed
        half-open probe re-trips the breaker and starts the exponential
        quarantine clock from that instant.
        """
        if self.state is HealthState.DEAD:
            return self.state
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.stats is not None:
            self.stats.count("health.leg_failure")
        if self.state is HealthState.RECOVERING:
            # Half-open probes get no grace: one failure re-trips.
            self._retrip(now)
            return self.state
        if self.consecutive_failures >= self.threshold:
            self._trip()
        else:
            self._transition(HealthState.SUSPECT)
        return self.state

    def force_dead(self, reason: str = "forced") -> HealthState:
        """Administratively latch ``DEAD`` (e.g. a chaos kill of this
        device); idempotent, and terminal unless recovery is on."""
        if self.state is not HealthState.DEAD:
            if self.state is HealthState.RECOVERING:
                self.retrips += 1
            self._trip()
            if self.trace is not None:
                self.trace.record("health_forced", reason=reason)
        return self.state

    def begin_recovery(self, now: float) -> HealthState:
        """DEAD → RECOVERING (the breaker goes half-open).

        Refuses while the quarantine window from a previous re-trip is
        still open, so a flapping device cannot be hammered back in.
        """
        if not self.recovery:
            raise ValueError("device recovery is off (FlickConfig.nxp_recovery)")
        if self.state is not HealthState.DEAD:
            raise ValueError(f"cannot begin recovery from {self.state.value}")
        if now < self.quarantine_until_ns:
            raise ValueError(
                f"device quarantined until {self.quarantine_until_ns:.0f} ns "
                f"(now {now:.0f} ns)"
            )
        self.probe_successes = 0
        self.consecutive_failures = 0
        self._transition(HealthState.RECOVERING)
        return self.state

    def _trip(self) -> None:
        self.trips += 1
        self._transition(HealthState.DEAD)

    def _retrip(self, now: float) -> None:
        """A recovering device failed its probe: trip again, back off."""
        self.retrips += 1
        self.probe_successes = 0
        self.quarantine_until_ns = now + self.quarantine_base_ns * (
            self.quarantine_factor ** (self.retrips - 1)
        )
        if self.stats is not None:
            self.stats.count("health.retrip")
        self._trip()

    def _transition(self, new: HealthState) -> None:
        if new is self.state:
            # Re-entering the current state (a suspect->suspect failure
            # storm) is not a transition: emitting stats/trace here would
            # inflate ``health.transitions`` once fleets aggregate
            # per-device health.
            return
        old, self.state = self.state, new
        self.transitions += 1
        if self.stats is not None:
            self.stats.count(f"health.transition.{new.value}")
            self.stats.count("health.transitions")
        if self.trace is not None:
            self.trace.record("health", state=new.value, prev=old.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NxpHealth {self.state.value} "
            f"fails={self.consecutive_failures}/{self.threshold}>"
        )


class RetryBudget:
    """Machine-wide token bucket for watchdog retransmits, in sim time.

    Consulted before *every* retransmit in both interpreted and hosted
    modes (``_ioctl_hardened`` twins).  Refill is a pure function of the
    simulated clock — ``tokens += (now - last) * refill_per_ns``, capped
    at ``capacity`` — so identical seeds replay identical grant/deny
    sequences at any ``parallel_map`` worker count.  A denied take makes
    the leg behave as if the device were declared dead: the caller
    degrades to host fallback instead of storming the ring.
    """

    def __init__(self, capacity: float, refill_per_ms: float, stats=None):
        if capacity <= 0:
            raise ValueError(f"retry budget capacity must be > 0, got {capacity}")
        self.capacity = float(capacity)
        self.refill_per_ns = refill_per_ms / 1e6
        self.tokens = float(capacity)
        self.last_refill_ns = 0.0
        self.stats = stats
        self.granted = 0
        self.denied = 0

    def take(self, now: float) -> bool:
        """Spend one token (returns True) or report exhaustion (False)."""
        if now > self.last_refill_ns:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self.last_refill_ns) * self.refill_per_ns,
            )
            self.last_refill_ns = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            if self.stats is not None:
                self.stats.count("retry_budget.granted")
            return True
        self.denied += 1
        if self.stats is not None:
            self.stats.count("retry_budget.denied")
        return False
