"""Host-side execution: thread driver + Flick user-space migration handler.

Mirrors Listing 1 of the paper.  A thread always starts on the host.
When its host core fetches NxP-ISA instructions, the NX fault hands
control to :meth:`_migrate_call_to_nxp` — the user-space migration
handler — which packages the hijacked call into a descriptor, performs
the ``ioctl(MIGRATE_AND_SUSPEND)``, and sleeps until the migration
interrupt wakes it.  While awake it loops servicing *NxP-to-host* call
descriptors (the paper's ``while (nxp_to_host_call)``) until the final
return descriptor arrives, then returns the value as if the hijacked
call had executed locally — the caller never knows the thread left.

The handler is reentrant: a host function called *from* the NxP may
itself call NxP functions; each nesting level is simply a deeper Python
frame of ``_step_loop``/``_migrate_call_to_nxp``, exactly as each level
in the paper occupies a deeper stack frame of the real handler.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_H2N,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.stubs import STUB_PCS, service_stub
from repro.isa.base import IllegalInstruction, IsaFault, MisalignedFetch
from repro.isa.interpreter import (
    CostModel,
    EnvCall,
    Halted,
    Interpreter,
    ReturnToRuntime,
)
from repro.memory.paging import PageFault
from repro.os.kernel import ProcessCrash, _ThreadExit
from repro.os.loader import HOST_STACK_TOP
from repro.os.task import Task, TaskState
from repro.sim.engine import Event

__all__ = ["HostThread"]


class HostThread:
    """Drives one task's execution on the host cores."""

    def __init__(self, machine, task: Task, port):
        self.machine = machine
        self.sim = machine.sim
        self.cfg = machine.cfg
        self.kernel = machine.kernel
        self.task = task
        self.cpu = Interpreter(
            "hisa",
            self.sim,
            port,
            CostModel(machine.cfg.host_cycle_ns, ipc=3.0),
            stats=machine.stats,
            name=f"host.{task.name}",
            decode_cache=machine.cfg.decode_cache,
        )
        self.core = None
        self.result: Optional[int] = None
        self.finished_at: Optional[float] = None
        self._staging: Optional[int] = None  # host DRAM descriptor buffer

    # -- thread entry ------------------------------------------------------------

    def thread_main(self, entry: int, args: List[int]) -> Generator:
        """DES process: run the program's entry function to completion."""
        task = self.task
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        self.machine.trace.record("thread_start", pid=task.pid, target=entry)
        self.machine.trace.begin("thread", pid=task.pid, target=entry)
        yield from self.cpu.setup_call(entry, args, sp=HOST_STACK_TOP - 64)
        try:
            retval = yield from self._step_loop()
        except _ThreadExit as exit_request:
            retval = exit_request.code
        finally:
            task.state = TaskState.DONE
            if self.core is not None:
                self.machine.cores.release(self.core)
                self.core = None
        self.result = retval
        self.finished_at = self.sim.now
        task.process.exit_code = retval
        self.machine.trace.record("thread_done", pid=task.pid)
        self.machine.trace.end("thread", pid=task.pid)
        return retval

    # -- the step loop (one per nesting level) ------------------------------------

    def _step_loop(self) -> Generator:
        cpu = self.cpu
        step = cpu.step
        stub_pcs = STUB_PCS
        while True:
            if cpu.pc in stub_pcs:
                yield from service_stub(self.machine, self.task, cpu)
                continue
            try:
                yield from step()
            except PageFault as fault:
                if fault.kind == PageFault.NX_VIOLATION and fault.is_exec:
                    self.kernel.classify_exec_fault(self.task, fault, running_on="hisa")
                    retval = yield from self._migrate_call_to_nxp(fault.vaddr)
                    yield from self._hijacked_return(retval)
                elif (
                    fault.kind == PageFault.NOT_PRESENT
                    and self.task.process.lazy_heap is not None
                    and self.task.process.lazy_heap.covers(fault.vaddr)
                ):
                    # Minor fault: demand-page the heap and retry the
                    # instruction (same dispatcher as the NX migration
                    # hook -- it is all one page-fault handler).
                    yield from self.task.process.lazy_heap.service_fault(
                        self.task, fault.vaddr
                    )
                else:
                    raise ProcessCrash(self.task, f"host {fault}")
            except EnvCall:
                code, value = cpu.get_args(2)
                result = self.kernel.service_syscall(self.task, code, value)
                cpu.regs.write(cpu.abi.ret_reg, result or 0)
            except ReturnToRuntime as ret:
                return ret.retval
            except Halted:
                return 0
            except (MisalignedFetch, IllegalInstruction) as fault:
                raise ProcessCrash(self.task, f"host fetch fault: {fault}")
            except IsaFault as fault:
                raise ProcessCrash(self.task, f"host fault: {fault}")

    def _hijacked_return(self, retval: int) -> Generator:
        """Return from the hijacked call site as if it ran locally."""
        cpu = self.cpu
        raw = yield from cpu.port.load(cpu.sp, 8)
        cpu.sp = cpu.sp + 8
        cpu.pc = int.from_bytes(raw, "little")
        cpu.regs.write(cpu.abi.ret_reg, retval)

    # -- Listing 1: the host migration handler --------------------------------------

    def _migrate_call_to_nxp(self, target: int) -> Generator:
        task = self.task
        cfg = self.cfg
        # NX fault entry + kernel redirect to the user-space handler
        # (measured at ~0.7us in the paper).
        yield self.sim.timeout(cfg.host_page_fault_ns)
        task.faulting_target = target
        yield self.sim.timeout(cfg.host_handler_entry_ns)
        session_start = self.sim.now
        self.machine.trace.record("h2n_call_start", pid=task.pid, target=target)
        self.machine.trace.begin("h2n_session", pid=task.pid, target=target)

        if task.nxp_stack_base is None:  # first migration: allocate NxP stack
            yield self.sim.timeout(cfg.host_stack_alloc_ns)
            task.nxp_stack_base = self.machine.alloc_nxp_stack()
            task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
            self.machine.trace.record("nxp_stack_alloc", pid=task.pid, addr=task.nxp_stack_base)

        args = self.cpu.get_args(6)
        desc = MigrationDescriptor(
            kind=KIND_CALL,
            direction=DIR_H2N,
            pid=task.pid,
            target=target,
            args=args,
            cr3=task.process.cr3,
            nxp_sp=task.nxp_sp,
        )
        inbound = yield from self._ioctl_migrate_and_suspend(desc)

        # The paper's while (nxp_to_host_call) loop.
        while inbound.is_call:
            task.nxp_sp = inbound.nxp_sp  # thread's NxP stack advanced
            yield self.sim.timeout(cfg.host_ioctl_return_ns)
            self.machine.trace.record("n2h_call_exec", pid=task.pid, target=inbound.target)
            self.machine.trace.begin("n2h_host_exec", pid=task.pid, target=inbound.target)
            host_retval = yield from self._call_host_function(inbound.target, inbound.args)
            self.machine.trace.end("n2h_host_exec", pid=task.pid)
            ret_desc = MigrationDescriptor(
                kind=KIND_RETURN,
                direction=DIR_H2N,
                pid=task.pid,
                retval=host_retval,
                cr3=task.process.cr3,
                nxp_sp=task.nxp_sp,
            )
            inbound = yield from self._ioctl_migrate_and_suspend(ret_desc)

        # Return migration: resume at the original call site.
        yield self.sim.timeout(cfg.host_ioctl_return_ns)
        yield self.sim.timeout(cfg.host_handler_return_ns)
        self.machine.stats.observe(
            "latency.h2n_session_ns", self.sim.now - session_start
        )
        self.machine.trace.record("h2n_call_done", pid=task.pid, target=target)
        self.machine.trace.end("h2n_session", pid=task.pid)
        return inbound.retval

    def _call_host_function(self, target: int, args: List[int]) -> Generator:
        """Execute an NxP-requested host function (nested level)."""
        yield self.sim.timeout(self.cfg.host_call_dispatch_ns)
        yield from self.cpu.setup_call(target, list(args))  # keep current stack
        return (yield from self._step_loop())

    # -- the ioctl(MIGRATE_AND_SUSPEND) path -------------------------------------------

    def _ioctl_migrate_and_suspend(self, desc: MigrationDescriptor) -> Generator:
        task = self.task
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            # Emulate prior work's per-crossing binary-translation /
            # state-transformation cost (Table II / Fig. 5 baselines).
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        if self._staging is None:
            self._staging = self.machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        self.machine.phys.write(self._staging, desc.pack())

        # Suspend (TASK_KILLABLE) and context switch away.  The migration
        # flag defers the DMA kick until *after* the switch (Section IV-D).
        task.state = TaskState.SUSPENDED
        task.migration_pending = True
        wake = Event(self.sim, name=f"{task.name}.wake")
        task.wake_event = wake
        yield self.sim.timeout(cfg.host_context_switch_ns)
        self.machine.cores.release(self.core)
        self.core = None

        yield self.sim.timeout(cfg.host_dma_kick_ns)
        task.migration_pending = False
        self.machine.trace.record("dma_h2n", pid=task.pid, kind=desc.kind)
        self.sim.spawn(
            self.machine.dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES, pid=task.pid),
            name=f"dma-h2n-{task.name}",
        )

        inbound = yield wake  # the IRQ handler wakes us
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        return inbound
