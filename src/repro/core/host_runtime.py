"""Host-side execution: thread driver + Flick user-space migration handler.

Mirrors Listing 1 of the paper.  A thread always starts on the host.
When its host core fetches NxP-ISA instructions, the NX fault hands
control to :meth:`_migrate_call_to_nxp` — the user-space migration
handler — which packages the hijacked call into a descriptor, performs
the ``ioctl(MIGRATE_AND_SUSPEND)``, and sleeps until the migration
interrupt wakes it.  While awake it loops servicing *NxP-to-host* call
descriptors (the paper's ``while (nxp_to_host_call)``) until the final
return descriptor arrives, then returns the value as if the hijacked
call had executed locally — the caller never knows the thread left.

The handler is reentrant: a host function called *from* the NxP may
itself call NxP functions; each nesting level is simply a deeper Python
frame of ``_step_loop``/``_migrate_call_to_nxp``, exactly as each level
in the paper occupies a deeper stack frame of the real handler.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_H2N,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.errors import WATCHDOG_EXPIRED, NxpDeadError
from repro.core.ports import FallbackMemoryPort
from repro.core.stubs import STUB_PCS, service_stub
from repro.isa.base import IllegalInstruction, IsaFault, MisalignedFetch
from repro.isa.interpreter import (
    CostModel,
    EnvCall,
    Halted,
    Interpreter,
    ReturnToRuntime,
)
from repro.memory.paging import PageFault
from repro.os.kernel import ProcessCrash, _ThreadExit
from repro.os.loader import HOST_STACK_TOP
from repro.os.task import Task, TaskState
from repro.sim.engine import Event

__all__ = ["HostThread"]


class HostThread:
    """Drives one task's execution on the host cores."""

    def __init__(self, machine, task: Task, port):
        self.machine = machine
        self.sim = machine.sim
        self.cfg = machine.cfg
        self.kernel = machine.kernel
        self.task = task
        self.cpu = Interpreter(
            "hisa",
            self.sim,
            port,
            CostModel(machine.cfg.host_cycle_ns, ipc=3.0),
            stats=machine.stats,
            name=f"host.{task.name}",
            decode_cache=machine.cfg.decode_cache,
            jit=machine.cfg.jit_enabled,
            jit_hot_threshold=machine.cfg.jit_hot_threshold,
            jit_max_superblock=machine.cfg.jit_max_superblock,
            trace=machine.trace,
        )
        self.core = None
        self.proc = None  # sim Process handle, set by FlickMachine.spawn
        self.result: Optional[int] = None
        self.finished_at: Optional[float] = None
        self._staging: Optional[int] = None  # host DRAM descriptor buffer
        self._fallback_cpu: Optional[Interpreter] = None  # degraded-mode NISA emulator

    # -- thread entry ------------------------------------------------------------

    def thread_main(self, entry: int, args: List[int]) -> Generator:
        """DES process: run the program's entry function to completion."""
        task = self.task
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        self.machine.trace.record("thread_start", pid=task.pid, target=entry)
        self.machine.trace.begin("thread", pid=task.pid, target=entry)
        yield from self.cpu.setup_call(entry, args, sp=HOST_STACK_TOP - 64)
        try:
            retval = yield from self._step_loop()
        except _ThreadExit as exit_request:
            retval = exit_request.code
        finally:
            task.state = TaskState.DONE
            if self.core is not None:
                self.machine.cores.release(self.core)
                self.core = None
        self.result = retval
        self.finished_at = self.sim.now
        task.process.exit_code = retval
        self.machine.trace.record("thread_done", pid=task.pid)
        self.machine.trace.end("thread", pid=task.pid)
        return retval

    # -- the step loop (one per nesting level) ------------------------------------

    def _step_loop(self) -> Generator:
        cpu = self.cpu
        step = cpu.step
        stub_pcs = STUB_PCS
        while True:
            if cpu.pc in stub_pcs:
                yield from service_stub(self.machine, self.task, cpu)
                continue
            try:
                yield from step()
            except PageFault as fault:
                if fault.kind == PageFault.NX_VIOLATION and fault.is_exec:
                    self.kernel.classify_exec_fault(self.task, fault, running_on="hisa")
                    retval = yield from self._migrate_call_to_nxp(fault.vaddr)
                    yield from self._hijacked_return(retval)
                elif (
                    fault.kind == PageFault.NOT_PRESENT
                    and self.task.process.lazy_heap is not None
                    and self.task.process.lazy_heap.covers(fault.vaddr)
                ):
                    # Minor fault: demand-page the heap and retry the
                    # instruction (same dispatcher as the NX migration
                    # hook -- it is all one page-fault handler).
                    yield from self.task.process.lazy_heap.service_fault(
                        self.task, fault.vaddr
                    )
                else:
                    raise ProcessCrash(
                        self.task,
                        f"unexpected host page fault at pc={cpu.pc:#x}: "
                        f"{fault.access_kind} access to {fault.vaddr:#x} ({fault.kind})",
                        pc=cpu.pc,
                        fault=fault,
                    )
            except EnvCall:
                code, value = cpu.get_args(2)
                result = self.kernel.service_syscall(self.task, code, value)
                cpu.regs.write(cpu.abi.ret_reg, result or 0)
            except ReturnToRuntime as ret:
                return ret.retval
            except Halted:
                return 0
            except (MisalignedFetch, IllegalInstruction) as fault:
                raise ProcessCrash(
                    self.task, f"host fetch fault at pc={cpu.pc:#x}: {fault}", pc=cpu.pc
                )
            except IsaFault as fault:
                raise ProcessCrash(
                    self.task, f"host fault at pc={cpu.pc:#x}: {fault}", pc=cpu.pc
                )

    def _hijacked_return(self, retval: int) -> Generator:
        """Return from the hijacked call site as if it ran locally."""
        cpu = self.cpu
        raw = yield from cpu.port.load(cpu.sp, 8)
        cpu.sp = cpu.sp + 8
        cpu.pc = int.from_bytes(raw, "little")
        cpu.regs.write(cpu.abi.ret_reg, retval)

    # -- Listing 1: the host migration handler --------------------------------------

    def _migrate_call_to_nxp(self, target: int) -> Generator:
        task = self.task
        cfg = self.cfg
        # NX fault entry + kernel redirect to the user-space handler
        # (measured at ~0.7us in the paper).
        yield self.sim.timeout(cfg.host_page_fault_ns)
        task.faulting_target = target
        yield self.sim.timeout(cfg.host_handler_entry_ns)
        session_start = self.sim.now
        self.machine.trace.record("h2n_call_start", pid=task.pid, target=target)
        self.machine.trace.begin("h2n_session", pid=task.pid, target=target)

        if self.machine.multi_nxp:
            retval = yield from self._migrate_call_multi(target, session_start)
            return retval

        if task.nxp_stack_base is None:  # first migration: allocate NxP stack
            yield self.sim.timeout(cfg.host_stack_alloc_ns)
            task.nxp_stack_base = self.machine.alloc_nxp_stack()
            task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
            self.machine.trace.record("nxp_stack_alloc", pid=task.pid, addr=task.nxp_stack_base)

        args = self.cpu.get_args(6)
        machine = self.machine
        if machine.hardened and (
            machine.health.dead or task.pid in machine.fused_pids
        ):
            # The NxP was already declared dead — or this pid burned the
            # retry budget and is fused to host execution (a stale reply
            # to its abandoned leg may still be in flight, and must find
            # no armed wait).  Don't even try the wire.
            retval = yield from self._fallback_execute(target, args, session_start)
            return retval
        if cfg.brownout and self._brownout_risk():
            # Overload brownout: run degraded-but-correct on the host
            # instead of queueing a session unlikely to meet its
            # deadline (docs/ROBUSTNESS.md).
            retval = yield from self._fallback_execute(target, args, session_start)
            return retval
        desc = MigrationDescriptor(
            kind=KIND_CALL,
            direction=DIR_H2N,
            pid=task.pid,
            target=target,
            args=args,
            cr3=task.process.cr3,
            nxp_sp=task.nxp_sp,
        )
        try:
            inbound = yield from self._ioctl_migrate_and_suspend(desc)
        except NxpDeadError:
            # The opening call leg never reached the device; no NxP
            # state exists for this session, so it can be re-run whole
            # on the host at the degradation penalty.
            retval = yield from self._fallback_execute(target, args, session_start)
            return retval

        # The paper's while (nxp_to_host_call) loop.
        while inbound.is_call:
            task.nxp_sp = inbound.nxp_sp  # thread's NxP stack advanced
            yield self.sim.timeout(cfg.host_ioctl_return_ns)
            self.machine.trace.record("n2h_call_exec", pid=task.pid, target=inbound.target)
            self.machine.trace.begin("n2h_host_exec", pid=task.pid, target=inbound.target)
            host_retval = yield from self._call_host_function(inbound.target, inbound.args)
            self.machine.trace.end("n2h_host_exec", pid=task.pid)
            ret_desc = MigrationDescriptor(
                kind=KIND_RETURN,
                direction=DIR_H2N,
                pid=task.pid,
                retval=host_retval,
                cr3=task.process.cr3,
                nxp_sp=task.nxp_sp,
            )
            try:
                inbound = yield from self._ioctl_migrate_and_suspend(ret_desc)
            except NxpDeadError:
                # Mid-ladder death: the thread's suspended NxP frames
                # (and any state the NISA callee built there) are gone.
                # There is no correct way to resume — this is a crash,
                # which the chaos invariant accepts as terminal.
                raise ProcessCrash(
                    task,
                    "NxP died mid-migration-session (suspended NxP frames lost)",
                )

        # Return migration: resume at the original call site.
        yield self.sim.timeout(cfg.host_ioctl_return_ns)
        yield self.sim.timeout(cfg.host_handler_return_ns)
        self.machine.stats.observe(
            "latency.h2n_session_ns", self.sim.now - session_start
        )
        self.machine.trace.record("h2n_call_done", pid=task.pid, target=target)
        self.machine.trace.end("h2n_session", pid=task.pid)
        return inbound.retval

    def _migrate_call_multi(self, target: int, session_start: float) -> Generator:
        """Multi-NxP twin of the session body above (docs/FLEET.md).

        The placement layer picks one device per *session*; every leg of
        the session (the opening call, the reentrant ladder, the final
        return) goes to that device, because descriptor sequence
        numbers, replay caches and the thread's suspended NxP frames are
        per-device state.  An opening leg that raises
        :class:`NxpDeadError` is re-placed on the next live device (no
        NxP state exists yet, so the call can be restarted whole); with
        every device tried or down the call degrades to host-fallback
        emulation.  Mid-ladder death stays a :class:`ProcessCrash`,
        exactly as on a single-NxP machine.
        """
        task = self.task
        cfg = self.cfg
        machine = self.machine
        args = self.cpu.get_args(6)
        tried = set()
        while True:
            if task.pid in machine.fused_pids:
                # Retry-budget fuse (see the single-NxP entry check):
                # stale replies route by pid, not device, so a fused pid
                # must not wait on *any* device.
                retval = yield from self._fallback_execute(target, args, session_start)
                return retval
            device = machine.placement.pick(task, exclude=frozenset(tried))
            if device is None:
                retval = yield from self._fallback_execute(target, args, session_start)
                return retval
            if cfg.brownout and self._brownout_risk(device):
                retval = yield from self._fallback_execute(target, args, session_start)
                return retval
            if machine.trace.context_enabled:
                # Label the session span with the device serving it (the
                # last annotation wins on failover re-placement).
                machine.trace.annotate(
                    "h2n_session", pid=task.pid,
                    device=device.index, device_label=f"nxp{device.index}",
                )

            if task.nxp_stack_base is None:  # first migration: allocate NxP stack
                yield self.sim.timeout(cfg.host_stack_alloc_ns)
                task.nxp_stack_base = machine.alloc_nxp_stack(device=device)
                task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
                task.nxp_device = device.index
                machine.trace.record(
                    "nxp_stack_alloc", pid=task.pid, addr=task.nxp_stack_base
                )

            desc = MigrationDescriptor(
                kind=KIND_CALL,
                direction=DIR_H2N,
                pid=task.pid,
                target=target,
                args=args,
                cr3=task.process.cr3,
                nxp_sp=task.nxp_sp,
            )
            device.outstanding += 1
            try:
                inbound = yield from self._ioctl_migrate_and_suspend(desc, device=device)
            except NxpDeadError:
                device.outstanding -= 1
                tried.add(device.index)
                continue
            except BaseException:
                device.outstanding -= 1
                raise

            try:
                while inbound.is_call:
                    task.nxp_sp = inbound.nxp_sp  # thread's NxP stack advanced
                    yield self.sim.timeout(cfg.host_ioctl_return_ns)
                    machine.trace.record(
                        "n2h_call_exec", pid=task.pid, target=inbound.target
                    )
                    machine.trace.begin(
                        "n2h_host_exec", pid=task.pid, target=inbound.target
                    )
                    host_retval = yield from self._call_host_function(
                        inbound.target, inbound.args
                    )
                    machine.trace.end("n2h_host_exec", pid=task.pid)
                    ret_desc = MigrationDescriptor(
                        kind=KIND_RETURN,
                        direction=DIR_H2N,
                        pid=task.pid,
                        retval=host_retval,
                        cr3=task.process.cr3,
                        nxp_sp=task.nxp_sp,
                    )
                    try:
                        inbound = yield from self._ioctl_migrate_and_suspend(
                            ret_desc, device=device
                        )
                    except NxpDeadError:
                        raise ProcessCrash(
                            task,
                            "NxP died mid-migration-session "
                            "(suspended NxP frames lost)",
                        )
                yield self.sim.timeout(cfg.host_ioctl_return_ns)
                yield self.sim.timeout(cfg.host_handler_return_ns)
            finally:
                device.outstanding -= 1
            machine.stats.observe(
                "latency.h2n_session_ns", self.sim.now - session_start
            )
            machine.trace.record("h2n_call_done", pid=task.pid, target=target)
            machine.trace.end("h2n_session", pid=task.pid)
            return inbound.retval

    def _call_host_function(self, target: int, args: List[int]) -> Generator:
        """Execute an NxP-requested host function (nested level)."""
        yield self.sim.timeout(self.cfg.host_call_dispatch_ns)
        yield from self.cpu.setup_call(target, list(args))  # keep current stack
        return (yield from self._step_loop())

    def _brownout_risk(self, device=None) -> bool:
        """Should this call brown out to host fallback instead of
        queueing?  Only consulted when ``cfg.brownout`` is on.

        Two triggers: the task's remaining deadline budget is below
        ``brownout_margin_ns`` (a session started now would likely
        finish late), or the target admission queue is already at
        ``admission_queue_limit`` (queueing behind it only grows the
        backlog).
        """
        cfg = self.cfg
        machine = self.machine
        deadline = getattr(self.task, "deadline_ns", None)
        if deadline is not None and deadline - self.sim.now < cfg.brownout_margin_ns:
            machine.stats.count("brownout.deadline_risk")
            return True
        limit = cfg.admission_queue_limit
        if limit:
            if device is not None:
                over = device.outstanding >= limit
            else:
                over = machine.admitted_inflight > machine.admission_capacity()
            if over:
                machine.stats.count("brownout.queue_full")
                return True
        return False

    # -- the ioctl(MIGRATE_AND_SUSPEND) path -------------------------------------------

    def _ioctl_migrate_and_suspend(
        self, desc: MigrationDescriptor, device=None
    ) -> Generator:
        if self.machine.hardened:
            result = yield from self._ioctl_hardened(desc, device=device)
            return result
        task = self.task
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            # Emulate prior work's per-crossing binary-translation /
            # state-transformation cost (Table II / Fig. 5 baselines).
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        if self._staging is None:
            self._staging = self.machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        self.machine.phys.write(self._staging, desc.pack())

        # Suspend (TASK_KILLABLE) and context switch away.  The migration
        # flag defers the DMA kick until *after* the switch (Section IV-D).
        task.state = TaskState.SUSPENDED
        task.migration_pending = True
        wake = Event(self.sim, name=f"{task.name}.wake")
        task.wake_event = wake
        yield self.sim.timeout(cfg.host_context_switch_ns)
        self.machine.cores.release(self.core)
        self.core = None

        yield self.sim.timeout(cfg.host_dma_kick_ns)
        task.migration_pending = False
        self.machine.trace.record("dma_h2n", pid=task.pid, kind=desc.kind)
        dma = self.machine.dma if device is None else device.dma
        self.sim.spawn(
            dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES, pid=task.pid),
            name=f"dma-h2n-{task.name}",
        )

        inbound = yield wake  # the IRQ handler wakes us
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        return inbound

    # -- hardened protocol (active only when a fault plan is armed) ---------------

    def _ioctl_hardened(self, desc: MigrationDescriptor, device=None) -> Generator:
        """``ioctl(MIGRATE_AND_SUSPEND)`` with watchdog + bounded retry.

        Each *leg* (one h2n descriptor and the n2h answer that wakes us)
        gets a sim-time watchdog.  On expiry the descriptor is resent —
        same sequence number, so the NxP side deduplicates or replays
        its cached response — with deterministic exponential backoff
        between attempts.  ``migration_retry_limit + 1`` consecutive
        expiries are one *leg failure*; ``nxp_dead_threshold`` of those
        flips the health machine to DEAD and raises
        :class:`NxpDeadError` for the caller to degrade.
        """
        task = self.task
        cfg = self.cfg
        machine = self.machine
        health = machine.health if device is None else device.health
        dma = machine.dma if device is None else device.dma
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        task.h2n_seq += 1
        desc.seq = task.h2n_seq
        if self._staging is None:
            self._staging = machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        machine.phys.write(self._staging, desc.pack())

        task.state = TaskState.SUSPENDED
        task.migration_pending = True
        yield self.sim.timeout(cfg.host_context_switch_ns)
        machine.cores.release(self.core)
        self.core = None

        sends = 0
        while True:
            for attempt in range(cfg.migration_retry_limit + 1):
                if sends and machine.retry_budget is not None:
                    # Machine-wide retry budget: every retransmit (any
                    # attempt after the first send of this seq) must win
                    # a token, or the leg degrades like a dead device —
                    # correlated failures fall back instead of storming
                    # the ring (docs/ROBUSTNESS.md).
                    if not machine.retry_budget.take(self.sim.now):
                        machine.trace.record(
                            "retry_budget_denied", pid=task.pid, seq=desc.seq
                        )
                        # Fuse the pid: a reply to the leg being
                        # abandoned may still arrive, and it would be
                        # mis-delivered to this pid's next wait.
                        machine.fused_pids.add(task.pid)
                        self.core = yield from machine.cores.acquire(task.name)
                        task.state = TaskState.RUNNING
                        raise NxpDeadError(task, "retry budget exhausted")
                sends += 1
                wake = Event(self.sim, name=f"{task.name}.wake.s{desc.seq}a{attempt}")
                task.wake_event = wake
                yield self.sim.timeout(cfg.host_dma_kick_ns)
                task.migration_pending = False
                machine.trace.record(
                    "dma_h2n", pid=task.pid, kind=desc.kind, attempt=attempt
                )
                if attempt:
                    machine.stats.count("migration.retry")
                    machine.trace.record("retry", pid=task.pid, seq=desc.seq, attempt=attempt)
                self.sim.spawn(
                    dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES, pid=task.pid),
                    name=f"dma-h2n-{task.name}-a{attempt}",
                )
                self._spawn_watchdog(wake, cfg.migration_watchdog_ns)
                inbound = yield wake
                if inbound is not WATCHDOG_EXPIRED:
                    health.record_success()
                    self.core = yield from machine.cores.acquire(task.name)
                    task.state = TaskState.RUNNING
                    return inbound
                task.wake_event = None
                machine.stats.count("migration.watchdog_trip")
                machine.trace.record(
                    "watchdog_trip", pid=task.pid, seq=desc.seq, attempt=attempt
                )
                backoff = cfg.migration_backoff_base_ns * (
                    cfg.migration_backoff_factor ** attempt
                )
                yield self.sim.timeout(backoff)
                if device is not None and health is not None and health.dead:
                    # Multi-NxP only: the device was latched DEAD under
                    # us (a chaos kill) — don't burn the remaining
                    # retries against known-dead silicon; surface the
                    # error so the session is re-placed immediately.
                    self.core = yield from machine.cores.acquire(task.name)
                    task.state = TaskState.RUNNING
                    raise NxpDeadError(task)
            health.record_failure(self.sim.now)
            if health.dead:
                # The thread resumes on a host core to run the fallback
                # (or to crash): reacquire before surfacing the error.
                self.core = yield from machine.cores.acquire(task.name)
                task.state = TaskState.RUNNING
                raise NxpDeadError(task)
            # SUSPECT: keep trying — a transient stall may clear.

    def _spawn_watchdog(self, wake: Event, timeout_ns: float) -> None:
        def watchdog(sim):
            yield sim.timeout(timeout_ns)
            if not wake.triggered:
                wake.trigger(WATCHDOG_EXPIRED)

        self.sim.spawn(watchdog(self.sim), name=f"watchdog-{self.task.name}")

    # -- degraded mode: host-side NISA emulation ----------------------------------

    def _fallback_execute(self, target: int, args: List[int], session_start: float) -> Generator:
        """Run the NISA callee on the host via a penalized interpreter.

        The dead NxP can no longer execute anything, but the NISA text
        and the thread's NxP stack window are still mapped in the shared
        address space, so the host can *emulate* the callee: a second
        interpreter over a :class:`FallbackMemoryPort` (inverted NX
        sense, like the NxP MMU) at ``host_fallback_penalty`` times the
        host cycle time — emulation, not native issue.  NxP-resident
        data (BRAM stack, BAR0 windows) is reached over PCIe, adding the
        natural placement penalty on top.
        """
        task = self.task
        cfg = self.cfg
        machine = self.machine
        machine.stats.count("degraded.calls")
        machine.trace.record("degraded_call", pid=task.pid, target=target)
        if machine.trace.context_enabled:
            machine.trace.annotate("h2n_session", pid=task.pid, fallback=True)
        # Runtime check + emulator setup on entry to the degraded path.
        yield self.sim.timeout(cfg.host_fallback_entry_ns)
        if self._fallback_cpu is None:
            port = FallbackMemoryPort(
                self.sim,
                cfg,
                machine.phys,
                machine.link,
                task.process.page_tables,
                stats=machine.stats,
            )
            self._fallback_cpu = Interpreter(
                "nisa",
                self.sim,
                port,
                CostModel(cfg.host_cycle_ns * cfg.host_fallback_penalty, ipc=1.0),
                stats=machine.stats,
                name=f"fallback.{task.name}",
                decode_cache=cfg.decode_cache,
                jit=cfg.jit_enabled,
                jit_hot_threshold=cfg.jit_hot_threshold,
                jit_max_superblock=cfg.jit_max_superblock,
                trace=machine.trace,
            )
        retval = yield from self._run_fallback(target, args)
        machine.stats.observe("latency.degraded_session_ns", self.sim.now - session_start)
        machine.trace.record("degraded_done", pid=task.pid, target=target)
        machine.trace.end("h2n_session", pid=task.pid)
        return retval

    def _run_fallback(self, target: int, args: List[int]) -> Generator:
        """The fallback twin of the NxP's ``_run_thread`` loop.

        A fetch that faults under the inverted NX sense (or misaligns /
        fails to decode) is NISA code calling back into host code; where
        the live NxP would emit a call-migration descriptor, the
        emulator just runs the host function *inline* on this thread's
        real host interpreter, then replays the NxP's return dispatch
        (pc <- ra, retval in a0) on the emulated register file.
        """
        task = self.task
        fcpu = self._fallback_cpu
        machine = self.machine
        yield from fcpu.setup_call(target, list(args), sp=task.nxp_sp)
        stub_pcs = STUB_PCS
        while True:
            if fcpu.pc in stub_pcs:
                yield from service_stub(machine, task, fcpu)
                continue
            try:
                yield from fcpu.step()
            except ReturnToRuntime as ret:
                task.nxp_sp = fcpu.sp
                return ret.retval
            except PageFault as fault:
                if fault.kind == PageFault.NX_VIOLATION and fault.is_exec:
                    self.kernel.classify_exec_fault(task, fault, running_on="nisa")
                    yield from self._fallback_host_call(fault.vaddr)
                    continue
                if (
                    fault.kind == PageFault.NOT_PRESENT
                    and task.process.lazy_heap is not None
                    and task.process.lazy_heap.covers(fault.vaddr)
                ):
                    yield from task.process.lazy_heap.service_fault(task, fault.vaddr)
                    continue
                raise ProcessCrash(
                    task,
                    f"fallback page fault at pc={fcpu.pc:#x}: "
                    f"{fault.access_kind} access to {fault.vaddr:#x} ({fault.kind})",
                    pc=fcpu.pc,
                    fault=fault,
                )
            except MisalignedFetch as fault:
                self.kernel.classify_exec_fault(
                    task, PageFault(fault.pc, PageFault.NX_VIOLATION, is_exec=True), "nisa"
                )
                yield from self._fallback_host_call(fault.pc)
            except IllegalInstruction as fault:
                self.kernel.classify_exec_fault(
                    task, PageFault(fault.pc, PageFault.NX_VIOLATION, is_exec=True), "nisa"
                )
                yield from self._fallback_host_call(fault.pc)
            except EnvCall:
                code, value = fcpu.get_args(2)
                result = self.kernel.service_syscall(task, code, value)
                fcpu.regs.write(fcpu.abi.ret_reg, result or 0)
            except Halted:
                task.nxp_sp = fcpu.sp
                return 0
            except IsaFault as fault:
                raise ProcessCrash(
                    task, f"fallback fault at pc={fcpu.pc:#x}: {fault}", pc=fcpu.pc
                )

    def _fallback_host_call(self, target: int) -> Generator:
        """Nested HISA call out of emulated NISA code, executed inline."""
        fcpu = self._fallback_cpu
        task = self.task
        host_args = fcpu.get_args(6)
        saved_regs = fcpu.regs.snapshot()
        task.nxp_sp = fcpu.sp  # deeper fallback levels stack below us
        self.machine.trace.record("degraded_n2h_call", pid=task.pid, target=target)
        host_ret = yield from self._call_host_function(target, host_args)
        # The host function may itself have re-entered the fallback
        # emulator (NxP still dead); restore our register file and
        # replay the NxP's return dispatch.
        fcpu.regs.restore(saved_regs)
        fcpu.pc = fcpu.regs.read(fcpu.abi.link_reg)
        fcpu.regs.write(fcpu.abi.ret_reg, host_ret)
