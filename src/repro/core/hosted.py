"""Hosted (timing-model) execution mode for large workloads.

The interpreted mode runs real FlickC binaries instruction by
instruction — perfect for protocol correctness and the null-call
microbenchmark, but a pure-Python interpreter cannot chew through the
millions of memory accesses of the pointer-chase sweep (Fig. 5) or BFS
(Table IV).

Hosted mode keeps the *entire migration machinery real* — descriptors,
staging buffers, the DMA engine, rings, interrupts, kernel wakeups, the
NxP dispatch loop, every latency constant — and replaces only the
*function bodies* with Python generators that issue accesses against the
same simulated memory system:

* ``ctx.load``/``ctx.store`` translate through the process page tables
  (and, on the NxP side, through a real 16-entry TLB object with modeled
  walk costs) and touch the same :class:`PhysicalMemory` bytes;
* per-access latencies come from the same :class:`FlickConfig` table;
  they are *accumulated* and emitted as consolidated timeouts so the
  event queue stays small;
* ``yield from ctx.call(name, ...)`` performs a full Flick migration
  when the callee's ISA differs from the current side.

A parity test pins the hosted null-call round trip to the interpreted
one, so the two modes cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.core.config import FlickConfig
from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_H2N,
    DIR_N2H,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.machine import FlickMachine
from repro.core.ports import TranslationCache
from repro.memory.tlb import TLB
from repro.os.loader import create_address_space
from repro.os.task import Task, TaskState
from repro.sim.engine import Event

__all__ = ["HostedProgram", "HostedMachine", "HostedFunction", "HostedOutcome"]

HOSTED_TEXT_BASE = 0x6000_0000
_FLUSH_THRESHOLD_NS = 50_000.0


@dataclass
class HostedFunction:
    name: str
    isa: str  # "hisa" | "nisa"
    body: Callable  # generator function: body(ctx, *args) -> retval
    addr: int = 0


class HostedProgram:
    """A registry of timing-model functions, each pinned to an ISA."""

    def __init__(self) -> None:
        self.functions: Dict[str, HostedFunction] = {}
        self.by_addr: Dict[int, HostedFunction] = {}

    def register(self, name: str, isa: str, body: Callable) -> HostedFunction:
        if isa not in ("hisa", "nisa"):
            raise ValueError(f"bad isa {isa!r}")
        if name in self.functions:
            raise ValueError(f"duplicate hosted function {name!r}")
        fn = HostedFunction(name, isa, body, addr=HOSTED_TEXT_BASE + 0x1000 * len(self.functions))
        self.functions[name] = fn
        self.by_addr[fn.addr] = fn
        return fn

    def host(self, name: Optional[str] = None):
        """Decorator: register a host-side body."""

        def wrap(body):
            self.register(name or body.__name__, "hisa", body)
            return body

        return wrap

    def nxp(self, name: Optional[str] = None):
        """Decorator: register an NxP-side body."""

        def wrap(body):
            self.register(name or body.__name__, "nisa", body)
            return body

        return wrap


class HostedContext:
    """Timed operations available to a hosted body on one side."""

    def __init__(self, executor, side: str):
        self._executor = executor
        self.side = side  # "host" | "nxp"
        self.machine = executor.machine
        self.cfg: FlickConfig = executor.machine.cfg
        self._pending_ns = 0.0

    # -- time accumulation --------------------------------------------------

    def charge(self, ns: float) -> None:
        self._pending_ns += ns

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` on the current core's clock."""
        cfg = self.cfg
        if self.side == "host":
            self.charge(cycles * cfg.host_cycle_ns / 3.0)  # superscalar host
        else:
            self.charge(cycles * cfg.nxp_cycle_ns)

    def flush(self) -> Generator:
        if self._pending_ns > 0:
            pending, self._pending_ns = self._pending_ns, 0.0
            yield self.machine.sim.timeout(pending)

    def maybe_flush(self) -> Generator:
        if self._pending_ns >= _FLUSH_THRESHOLD_NS:
            yield from self.flush()

    # -- memory ---------------------------------------------------------------

    def load(self, vaddr: int, nbytes: int = 8) -> int:
        self.charge(self._executor.access_latency(self.side, vaddr, write=False))
        paddr = self._executor.translate(vaddr)
        return int.from_bytes(self.machine.phys.read(paddr, nbytes), "little")

    def store(self, vaddr: int, value: int, nbytes: int = 8) -> None:
        self.charge(self._executor.access_latency(self.side, vaddr, write=True))
        paddr = self._executor.translate(vaddr)
        self.machine.phys.write(paddr, (value & (1 << (8 * nbytes)) - 1).to_bytes(nbytes, "little"))

    # -- calls ------------------------------------------------------------------

    def call(self, name: str, *args) -> Generator:
        """Call another hosted function; migrates when ISAs differ."""
        yield from self.flush()
        return (yield from self._executor.dispatch_call(self, name, list(args)))


class HostedOutcome:
    def __init__(self, retval, sim_time_ns, machine):
        self.retval = retval
        self.sim_time_ns = sim_time_ns
        self.machine = machine
        self.stats = machine.stats.snapshot()

    @property
    def sim_time_us(self) -> float:
        return self.sim_time_ns / 1000.0

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ns / 1e9


class HostedMachine:
    """Runs a :class:`HostedProgram` on a real :class:`FlickMachine`
    substrate (DMA, interrupts, kernel, latencies) with timing-model
    function bodies."""

    def __init__(
        self,
        program: HostedProgram,
        cfg: Optional[FlickConfig] = None,
        nxp_segments: Optional[List[tuple]] = None,
    ):
        """``nxp_segments``: optional [(vbase, size), ...] windows the
        NxP translates with base+limit segments instead of the TLB — the
        paper's cited alternative for killing TLB misses entirely
        (Section III-A, refs [16, 17])."""
        self.program = program
        self.machine = FlickMachine(cfg) if cfg is not None else FlickMachine()
        self.nxp_segments = list(nxp_segments or [])
        self.sim = self.machine.sim
        self.cfg = self.machine.cfg
        self.process = create_address_space(self.machine, name="hosted")
        self.machine.kernel.register_process(self.process)
        for fn in program.functions.values():
            self.process.add_exec_range(fn.addr, 0x1000, fn.isa)
        self._tcache = TranslationCache(
            self.process.page_tables, fast=self.cfg.translation_fast_path
        )
        # NxP-side translation state: a real TLB object with analytic
        # walk costs (so huge-page behaviour and the 16-entry capacity
        # are preserved without per-access DES events).
        self._nxp_dtlb = TLB("hosted.nxp.dtlb", self.cfg.tlb_entries, stats=self.machine.stats)
        self._nxp_dtlb.program_remap(
            self.cfg.memory_map.bar0_base,
            self.cfg.memory_map.nxp_local_size,
            self.cfg.memory_map.bar0_remap_offset,
        )
        self._nxp_engine = _HostedNxpEngine(self)
        self._task: Optional[Task] = None
        self._thread: Optional[_HostedHostThread] = None

    # -- shared helpers used by contexts -------------------------------------------

    def translate(self, vaddr: int) -> int:
        return vaddr + self._tcache.entry(vaddr)[0]

    def access_latency(self, side: str, vaddr: int, write: bool) -> float:
        cfg = self.cfg
        mm = cfg.memory_map
        if side == "host":
            paddr = self.translate(vaddr)
            if mm.host_dram_contains(paddr):
                return cfg.host_cached_mem_ns
            if mm.bram_contains(paddr):
                return 2 * cfg.pcie_oneway_ns + cfg.nxp_bram_ns
            if write:
                return cfg.pcie_oneway_ns + 8 * cfg.pcie_ns_per_byte  # posted
            return cfg.host_to_bar_read_ns
        # NxP side: segment windows bypass the TLB entirely (O(1)
        # base+limit check in the memory pipeline).
        for seg_base, seg_size in self.nxp_segments:
            if seg_base <= vaddr < seg_base + seg_size:
                self.machine.stats.count("hosted.nxp.segment_hit")
                paddr = self.process.page_tables.translate(vaddr).paddr
                if mm.bram_contains(paddr):
                    return cfg.nxp_bram_ns
                if mm.bar0_contains(paddr):
                    return cfg.nxp_to_local_write_ns if write else cfg.nxp_to_local_read_ns
                return (
                    cfg.pcie_oneway_ns + 8 * cfg.pcie_ns_per_byte
                    if write
                    else cfg.nxp_to_host_read_ns
                )
        # Otherwise: real TLB lookup, analytic walk cost on miss.
        entry = self._nxp_dtlb.lookup(vaddr)
        if entry is None:
            tr = self.process.page_tables.translate(vaddr)
            walk_cost = (
                cfg.mmu_walker_overhead_ns
                + len(self.process.page_tables.walk_entry_addrs(vaddr)) * cfg.mmu_walk_step_ns
            )
            entry = self._nxp_dtlb.insert(tr)
            base = walk_cost
        else:
            base = cfg.tlb_hit_ns
        paddr = entry.paddr_for(vaddr)
        route, _local = self._nxp_dtlb.route(paddr)
        if mm.bram_contains(paddr):
            return base + cfg.nxp_bram_ns
        if route == "local":
            return base + (cfg.nxp_to_local_write_ns if write else cfg.nxp_to_local_read_ns)
        if write:
            return base + cfg.pcie_oneway_ns + 8 * cfg.pcie_ns_per_byte
        return base + cfg.nxp_to_host_read_ns

    def dispatch_call(self, ctx: HostedContext, name: str, args: List[int]) -> Generator:
        fn = self.program.functions[name]
        same_side = (fn.isa == "hisa") == (ctx.side == "host")
        if same_side:
            ctx.compute(6)  # plain call/ret overhead
            return (yield from self.run_body(fn, args, ctx.side))
        if ctx.side == "host":
            return (yield from self._thread.migrate_call_to_nxp(fn, args))
        return (yield from self._nxp_engine.migrate_call_to_host(fn, args))

    def run_body(self, fn: HostedFunction, args: List[int], side: str) -> Generator:
        ctx = HostedContext(self, side)
        retval = yield from fn.body(ctx, *args)
        yield from ctx.flush()
        return retval if retval is not None else 0

    # -- lifecycle -------------------------------------------------------------------

    def run(self, entry: str, args=(), reset_time: bool = False) -> HostedOutcome:
        """Run ``entry`` (a host-side hosted function) to completion."""
        fn = self.program.functions[entry]
        if fn.isa != "hisa":
            raise ValueError("hosted entry functions start on the host")
        task = Task(self.process, name=f"hosted.t{len(self.machine.threads)}")
        self.machine.kernel.register_task(task)
        self._task = task
        thread = _HostedHostThread(self, task)
        self._thread = thread
        self._nxp_engine.start()
        start = self.sim.now
        self.sim.spawn(thread.thread_main(fn, list(args)), name=task.name)
        self.sim.run()
        if thread.finished_at is None:
            raise RuntimeError("hosted program did not finish")
        return HostedOutcome(thread.result, thread.finished_at - start, self.machine)


class _HostedHostThread:
    """Hosted twin of :class:`repro.core.host_runtime.HostThread` —
    identical protocol charges, Python bodies instead of HISA code."""

    def __init__(self, hosted: HostedMachine, task: Task):
        self.hosted = hosted
        self.machine = hosted.machine
        self.sim = hosted.sim
        self.cfg = hosted.cfg
        self.task = task
        self.core = None
        self.result = None
        self.finished_at = None
        self._staging: Optional[int] = None

    def thread_main(self, fn: HostedFunction, args: List[int]) -> Generator:
        task = self.task
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        retval = yield from self.hosted.run_body(fn, args, "host")
        task.state = TaskState.DONE
        self.machine.cores.release(self.core)
        self.core = None
        self.result = retval
        self.finished_at = self.sim.now
        return retval

    # Mirrors HostThread._migrate_call_to_nxp (same charges, same order).
    def migrate_call_to_nxp(self, fn: HostedFunction, args: List[int]) -> Generator:
        task = self.task
        cfg = self.cfg
        yield self.sim.timeout(cfg.host_page_fault_ns)
        yield self.sim.timeout(cfg.host_handler_entry_ns)
        self.machine.trace.record("h2n_call_start", pid=task.pid, target=fn.addr)
        if task.nxp_stack_base is None:
            yield self.sim.timeout(cfg.host_stack_alloc_ns)
            task.nxp_stack_base = self.machine.alloc_nxp_stack()
            task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
        desc = MigrationDescriptor(
            kind=KIND_CALL, direction=DIR_H2N, pid=task.pid, target=fn.addr,
            args=args[:6], cr3=task.process.cr3, nxp_sp=task.nxp_sp,
        )
        inbound = yield from self._ioctl_migrate_and_suspend(desc)
        while inbound.is_call:
            task.nxp_sp = inbound.nxp_sp
            yield self.sim.timeout(cfg.host_ioctl_return_ns)
            yield self.sim.timeout(cfg.host_call_dispatch_ns)
            target_fn = self.hosted.program.by_addr[inbound.target]
            host_retval = yield from self.hosted.run_body(target_fn, inbound.args, "host")
            ret_desc = MigrationDescriptor(
                kind=KIND_RETURN, direction=DIR_H2N, pid=task.pid,
                retval=host_retval, cr3=task.process.cr3, nxp_sp=task.nxp_sp,
            )
            inbound = yield from self._ioctl_migrate_and_suspend(ret_desc)
        yield self.sim.timeout(cfg.host_ioctl_return_ns)
        yield self.sim.timeout(cfg.host_handler_return_ns)
        self.machine.trace.record("h2n_call_done", pid=task.pid, target=fn.addr)
        return inbound.retval

    def _ioctl_migrate_and_suspend(self, desc: MigrationDescriptor) -> Generator:
        task = self.task
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        if self._staging is None:
            self._staging = self.machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        self.machine.phys.write(self._staging, desc.pack())
        task.state = TaskState.SUSPENDED
        wake = Event(self.sim, name=f"{task.name}.wake")
        task.wake_event = wake
        yield self.sim.timeout(cfg.host_context_switch_ns)
        self.machine.cores.release(self.core)
        self.core = None
        yield self.sim.timeout(cfg.host_dma_kick_ns)
        self.sim.spawn(
            self.machine.dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES),
            name=f"dma-h2n-{task.name}",
        )
        inbound = yield wake
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        return inbound


class _HostedNxpEngine:
    """Hosted twin of :class:`NxpPlatform`: dispatch loop + migrations."""

    def __init__(self, hosted: HostedMachine):
        self.hosted = hosted
        self.machine = hosted.machine
        self.sim = hosted.sim
        self.cfg = hosted.cfg
        self._proc = None
        self._staging: Optional[List[int]] = None
        self._staging_idx = 0
        # Per-pid LIFO of (return event) for bodies parked awaiting a
        # host function's return (nesting-safe).
        self._parked: Dict[int, List[Event]] = {}
        self._idle: Optional[Event] = None  # body finished/parked handshake

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.sim.spawn(self._dispatcher(), name="hosted-nxp-sched")

    def _dispatcher(self) -> Generator:
        ring = self.machine.nxp_ring
        while True:
            if ring.pending == 0:
                yield self.machine.dma.nxp_arrival.get()
                yield self.sim.timeout(self.cfg.nxp_poll_period_ns / 2.0)
                if ring.pending == 0:
                    continue
            dispatch_start = self.sim.now
            yield self.sim.timeout(self.cfg.nxp_sched_dispatch_ns)
            slot = ring.pop_addr()
            desc = MigrationDescriptor.unpack(self.machine.phys.read(slot, DESCRIPTOR_BYTES))
            yield self.sim.timeout(self.cfg.nxp_context_switch_ns)
            idle = Event(self.sim, name="nxp.idle")
            self._idle = idle
            if desc.is_call:
                fn = self.hosted.program.by_addr[desc.target]
                task = self.machine.kernel.task_by_pid(desc.pid)
                self.sim.spawn(self._run_call(task, fn, desc.args), name=f"nxp-body-{fn.name}")
            else:
                # Resume the most recently parked body for this pid.
                stack = self._parked.get(desc.pid)
                if not stack:
                    raise RuntimeError("hosted: return descriptor with no parked body")
                stack.pop().trigger((desc.retval, idle))
            yield idle  # core is busy until the body parks or finishes
            self.machine.stats.sample("nxp.busy_ns", self.sim.now - dispatch_start)

    def _run_call(self, task: Task, fn: HostedFunction, args) -> Generator:
        retval = yield from self.hosted.run_body(fn, list(args), "nxp")
        # Return migration (mirrors NxpPlatform._return_migration).
        yield self.sim.timeout(self.cfg.nxp_desc_build_ns)
        desc = MigrationDescriptor(
            kind=KIND_RETURN, direction=DIR_N2H, pid=task.pid,
            retval=retval, cr3=task.process.cr3, nxp_sp=task.nxp_sp or 0,
        )
        yield from self._send_to_host(desc)
        # Hand the core back to the dispatcher.  self._idle is always the
        # event the dispatcher armed for the *current* activation, which
        # under LIFO nesting is exactly the one waiting on this body.
        self._idle.trigger()

    def migrate_call_to_host(self, fn: HostedFunction, args: List[int]) -> Generator:
        """A nxp-side body calls a host function (NxP-to-host migration)."""
        task = self.hosted._task
        cfg = self.cfg
        yield self.sim.timeout(cfg.nxp_fault_entry_ns)
        yield self.sim.timeout(cfg.nxp_desc_build_ns)
        desc = MigrationDescriptor(
            kind=KIND_CALL, direction=DIR_N2H, pid=task.pid, target=fn.addr,
            args=args[:6], cr3=task.process.cr3, nxp_sp=task.nxp_sp or 0,
        )
        resume = Event(self.sim, name="nxp.body.resume")
        self._parked.setdefault(task.pid, []).append(resume)
        yield from self._send_to_host(desc)
        self._idle.trigger()  # hand the NxP core back to the dispatcher
        retval, idle = yield resume  # woken by a host->NxP return descriptor
        self._idle = idle
        return retval

    def _send_to_host(self, desc: MigrationDescriptor) -> Generator:
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        if self._staging is None:
            self._staging = [
                self.machine.bram_phys.alloc(DESCRIPTOR_BYTES, align=64) for _ in range(8)
            ]
        buf = self._staging[self._staging_idx]
        self._staging_idx = (self._staging_idx + 1) % len(self._staging)
        self.machine.phys.write(buf, desc.pack())
        yield self.sim.timeout(cfg.nxp_context_switch_ns)
        yield self.sim.timeout(cfg.nxp_dma_kick_ns)
        self.sim.spawn(
            self.machine.dma.push_to_host(buf, DESCRIPTOR_BYTES), name="dma-n2h-hosted"
        )
