"""Hosted (timing-model) execution mode for large workloads.

The interpreted mode runs real FlickC binaries instruction by
instruction — perfect for protocol correctness and the null-call
microbenchmark, but a pure-Python interpreter cannot chew through the
millions of memory accesses of the pointer-chase sweep (Fig. 5) or BFS
(Table IV).

Hosted mode keeps the *entire migration machinery real* — descriptors,
staging buffers, the DMA engine, rings, interrupts, kernel wakeups, the
NxP dispatch loop, every latency constant — and replaces only the
*function bodies* with Python generators that issue accesses against the
same simulated memory system:

* ``ctx.load``/``ctx.store`` translate through the process page tables
  (and, on the NxP side, through a real 16-entry TLB object with modeled
  walk costs) and touch the same :class:`PhysicalMemory` bytes;
* per-access latencies come from the same :class:`FlickConfig` table;
  they are *accumulated* and emitted as consolidated timed yields so the
  event queue stays small;
* ``yield from ctx.call(name, ...)`` performs a full Flick migration
  when the callee's ISA differs from the current side.

A parity test pins the hosted null-call round trip to the interpreted
one, so the two modes cannot drift.

Charge accounting (the batch accumulator, docs/PERFORMANCE.md):
pending time is held in **integer femtoseconds**, so charging a run of
``n`` same-cost ops with one multiply is *exactly* equal to ``n``
individual charges — integer addition is associative where float
addition is not.  Flushes sleep to an **absolute** instant
(``anchor + charged``), so where the flush boundaries fall cannot move
the clock by even an ulp: batched and unbatched execution produce
bit-identical simulated time, return values and stat counters, and only
the DES event count (one timed event per consolidated yield) differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.core.config import FlickConfig
from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_H2N,
    DIR_N2H,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.errors import (
    WATCHDOG_EXPIRED,
    DescriptorCorrupt,
    NxpDeadError,
    ProcessCrash,
    WorkloadHung,
)
from repro.core.machine import FlickMachine
from repro.core.ports import TranslationCache
from repro.memory.tlb import TLB
from repro.os.loader import create_address_space
from repro.os.task import Task, TaskState
from repro.sim.engine import Deadlock, Event

__all__ = ["HostedProgram", "HostedMachine", "HostedFunction", "HostedOutcome"]

HOSTED_TEXT_BASE = 0x6000_0000
_FLUSH_THRESHOLD_NS = 50_000.0

# Pending charges are accumulated in integer femtoseconds (1 ns =
# 10**6 fs): exact, associative, and fine enough that quantizing a
# sub-cycle charge loses < 1e-6 ns.
_FS_PER_NS = 1_000_000
_NS_PER_FS = 1e-6
_FLUSH_THRESHOLD_FS = int(_FLUSH_THRESHOLD_NS) * _FS_PER_NS


@dataclass
class HostedFunction:
    name: str
    isa: str  # "hisa" | "nisa"
    body: Callable  # generator function: body(ctx, *args) -> retval
    addr: int = 0


class HostedProgram:
    """A registry of timing-model functions, each pinned to an ISA."""

    def __init__(self) -> None:
        self.functions: Dict[str, HostedFunction] = {}
        self.by_addr: Dict[int, HostedFunction] = {}

    def register(self, name: str, isa: str, body: Callable) -> HostedFunction:
        if isa not in ("hisa", "nisa"):
            raise ValueError(f"bad isa {isa!r}")
        if name in self.functions:
            raise ValueError(f"duplicate hosted function {name!r}")
        fn = HostedFunction(name, isa, body, addr=HOSTED_TEXT_BASE + 0x1000 * len(self.functions))
        self.functions[name] = fn
        self.by_addr[fn.addr] = fn
        return fn

    def host(self, name: Optional[str] = None):
        """Decorator: register a host-side body."""

        def wrap(body):
            self.register(name or body.__name__, "hisa", body)
            return body

        return wrap

    def nxp(self, name: Optional[str] = None):
        """Decorator: register an NxP-side body."""

        def wrap(body):
            self.register(name or body.__name__, "nisa", body)
            return body

        return wrap


class HostedContext:
    """Timed operations available to a hosted body on one side.

    Charges accumulate in an integer-femtosecond batch accumulator and
    are emitted as consolidated timed yields.  Between two yield points
    a body may issue any number of ``load``/``store``/``compute`` ops
    (a *run*); :attr:`batch_ops` is the run length the workloads use,
    and :attr:`need_flush` is the cheap (no generator) boundary check.
    The flush target is the absolute instant ``anchor + charged``, so
    chunking cannot drift the clock — see the module docstring.
    """

    def __init__(self, executor, side: str):
        self._executor = executor
        self.side = side  # "host" | "nxp" | "fallback" (degraded NISA emulation)
        self.machine = executor.machine
        self.cfg: FlickConfig = executor.machine.cfg
        self._sim = executor.machine.sim
        # Batch accumulator state: all charges since ``_anchor`` (the
        # sim time the context last observed), and how much of that has
        # already been emitted as timed yields.
        self._anchor: float = self._sim.now
        self._charged_fs: int = 0
        self._flushed_fs: int = 0
        cfg = self.cfg
        #: ops per consolidated run in the hosted workload bodies
        #: (1 disables batching: one boundary check per op).
        self.batch_ops: int = cfg.hosted_batch_size if cfg.hosted_batch_ops else 1
        #: The _HostedNxpEngine running this nxp-side body — multi-NxP
        #: routing state so nested calls stay on the session's device;
        #: always None on host-side contexts and single-NxP machines.
        self.engine = None

    # -- time accumulation --------------------------------------------------

    def charge(self, ns: float) -> None:
        self._charged_fs += round(ns * _FS_PER_NS)

    def charge_run(self, ns: float, count: int) -> None:
        """Charge ``count`` ops of ``ns`` each — exactly equal to
        ``count`` individual :meth:`charge` calls (integer arithmetic)."""
        self._charged_fs += round(ns * _FS_PER_NS) * count

    def _cycle_ns(self, cycles: int) -> float:
        cfg = self.cfg
        if self.side == "host":
            return cycles * cfg.host_cycle_ns / 3.0  # superscalar host
        if self.side == "fallback":
            # Degraded mode: the host core *emulates* NISA ops serially
            # at the configured per-op penalty (no superscalar credit).
            return cycles * cfg.host_cycle_ns * cfg.host_fallback_penalty
        return cycles * cfg.nxp_cycle_ns

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` on the current core's clock."""
        self._charged_fs += round(self._cycle_ns(cycles) * _FS_PER_NS)

    def compute_run(self, cycles: int, count: int) -> None:
        """Charge ``count`` same-cost compute steps of ``cycles`` each."""
        self._charged_fs += round(self._cycle_ns(cycles) * _FS_PER_NS) * count

    @property
    def pending_ns(self) -> float:
        """Charged-but-not-yet-flushed time, in nanoseconds."""
        return (self._charged_fs - self._flushed_fs) * _NS_PER_FS

    @property
    def need_flush(self) -> bool:
        """True when pending time crossed the consolidation threshold.

        A plain boolean — the per-run boundary check — so the no-flush
        case costs no generator machinery."""
        return self._charged_fs - self._flushed_fs >= _FLUSH_THRESHOLD_FS

    def flush(self) -> Generator:
        """Drain every pending femtosecond as one timed yield.

        The sleep target is absolute (``anchor + charged``), computed
        from the chunk-independent cumulative charge, and the drain is
        exact by construction: no residue survives, however the charges
        were batched."""
        if self._charged_fs > self._flushed_fs:
            target = self._anchor + self._charged_fs * _NS_PER_FS
            self._flushed_fs = self._charged_fs
            yield self._sim.sleep_until(target)
        assert self._flushed_fs == self._charged_fs, "flush left residue"

    def maybe_flush(self) -> Generator:
        if self._charged_fs - self._flushed_fs >= _FLUSH_THRESHOLD_FS:
            yield from self.flush()

    def _reanchor(self) -> None:
        """Re-base the accumulator after externally advanced sim time
        (a dispatched call); pending charges are carried, not dropped."""
        pending = self._charged_fs - self._flushed_fs
        self._anchor = self._sim.now
        self._charged_fs = pending
        self._flushed_fs = 0

    # -- memory ---------------------------------------------------------------

    def load(self, vaddr: int, nbytes: int = 8) -> int:
        executor = self._executor
        self._charged_fs += round(
            executor.access_latency(self.side, vaddr, write=False) * _FS_PER_NS
        )
        paddr = executor.translate(vaddr)
        phys = self.machine.phys
        if nbytes == 8:
            return phys.read_u64(paddr)
        return int.from_bytes(phys.read(paddr, nbytes), "little")

    def store(self, vaddr: int, value: int, nbytes: int = 8) -> None:
        executor = self._executor
        self._charged_fs += round(
            executor.access_latency(self.side, vaddr, write=True) * _FS_PER_NS
        )
        paddr = executor.translate(vaddr)
        self.machine.phys.write(paddr, (value & (1 << (8 * nbytes)) - 1).to_bytes(nbytes, "little"))

    def chase(self, vaddr: int, count: int, compute_cycles: int = 0) -> int:
        """Follow a chain of ``count`` dependent pointer loads, charging
        ``compute_cycles`` per hop — the batched kernel for linked-data
        traversals (Fig. 5's inner loop).

        Per hop this performs exactly the ops of ``load`` + ``compute``
        in the same order — same access-latency model (TLB state
        included), same translations, same stat counters — with the
        loop-invariant lookups hoisted out of the hot loop.
        """
        executor = self._executor
        entry = executor._tcache.entry
        phys = self.machine.phys
        read_u64 = phys.read_u64
        step_fs = round(self._cycle_ns(compute_cycles) * _FS_PER_NS) if compute_cycles else 0
        charged = self._charged_fs
        node = vaddr
        bram_lo, bram_hi = executor._bram_lo, executor._bram_hi
        # Inline replica of MemoryRegion.read_u64's single-page branch,
        # keyed on the last RAM region touched; anything else (region
        # switch, page straddle, MMIO) falls back to phys.read_u64.
        region_lo, region_hi = 0, -1
        region_base = 0
        region_pages: Dict[int, bytearray] = {}
        if self.side != "nxp":  # host, or fallback emulation on a host core
            # access_latency's host branch, unrolled: translate, then
            # three bounds checks pick a precomputed fs constant (same
            # float sums, same round, so the charge is bit-identical).
            dram_lo, dram_hi = executor._host_dram_lo, executor._host_dram_hi
            fs_cached = round(executor._lat_host_cached * _FS_PER_NS) + step_fs
            fs_bram = round(executor._lat_host_bram * _FS_PER_NS) + step_fs
            fs_bar = round(executor._lat_host_bar_read * _FS_PER_NS) + step_fs
            for _ in range(count):
                paddr = node + entry(node)[0]
                if dram_lo <= paddr < dram_hi:
                    charged += fs_cached
                elif bram_lo <= paddr < bram_hi:
                    charged += fs_bram
                else:
                    charged += fs_bar
                if region_lo <= paddr <= region_hi:
                    offset = paddr - region_base
                    in_page = offset & 4095
                    if in_page <= 4088:
                        page = region_pages.get(offset >> 12)
                        node = (
                            int.from_bytes(page[in_page : in_page + 8], "little")
                            if page is not None
                            else 0
                        )
                        continue
                    node = read_u64(paddr)
                    continue
                node = read_u64(paddr)
                region = phys.region_for(paddr, 8)
                pages = getattr(region, "_pages", None)
                if pages is not None:
                    region_base = region_lo = region.base
                    region_hi = region.base + region.size - 8
                    region_pages = pages
            self._charged_fs = charged
            return node
        # NxP side.  Inline the front-entry TLB hit (the hot-page case)
        # with the exact bookkeeping access_latency performs — stamp
        # bump, lru_stamp, hit counter; move-to-front is a no-op at
        # index 0 — and precomputed hit+route fs constants built from
        # the same float sums access_latency returns.  Anything else
        # (front-entry miss, segment windows configured) takes the
        # reference access_latency call unchanged.
        latency = executor.access_latency
        dtlb = executor._nxp_dtlb
        entries = dtlb._entries  # mutated in place by lookup/insert/flush
        hit_counter = dtlb._c_hit
        remap = dtlb.remap
        remap_lo = remap.bar_base
        remap_hi = remap.bar_base + remap.size if remap.size > 0 else remap.bar_base
        fs_hit_bram = round((executor._lat_tlb_hit + executor._lat_nxp_bram) * _FS_PER_NS) + step_fs
        fs_hit_local = round((executor._lat_tlb_hit + executor._lat_nxp_local_read) * _FS_PER_NS) + step_fs
        fs_hit_host = round((executor._lat_tlb_hit + executor._lat_nxp_host_read) * _FS_PER_NS) + step_fs
        fast_ok = not executor.nxp_segments
        for _ in range(count):
            e = entries[0] if (fast_ok and entries) else None
            if e is not None and e.vbase <= node < e.vbase + e.page_size:
                dtlb._stamp += 1
                e.lru_stamp = dtlb._stamp
                hit_counter.value += 1
                paddr = e.pbase | (node - e.vbase)
                if bram_lo <= paddr < bram_hi:
                    charged += fs_hit_bram
                elif remap_lo <= paddr < remap_hi:
                    charged += fs_hit_local
                else:
                    charged += fs_hit_host
                if region_lo <= paddr <= region_hi:
                    offset = paddr - region_base
                    in_page = offset & 4095
                    if in_page <= 4088:
                        page = region_pages.get(offset >> 12)
                        node = (
                            int.from_bytes(page[in_page : in_page + 8], "little")
                            if page is not None
                            else 0
                        )
                        continue
                    node = read_u64(paddr)
                    continue
                node = read_u64(paddr)
                region = phys.region_for(paddr, 8)
                pages = getattr(region, "_pages", None)
                if pages is not None:
                    region_base = region_lo = region.base
                    region_hi = region.base + region.size - 8
                    region_pages = pages
            else:
                charged += round(latency("nxp", node, False) * _FS_PER_NS) + step_fs
                node = read_u64(node + entry(node)[0])
        self._charged_fs = charged
        return node

    # -- calls ------------------------------------------------------------------

    def call(self, name: str, *args) -> Generator:
        """Call another hosted function; migrates when ISAs differ."""
        yield from self.flush()
        result = yield from self._executor.dispatch_call(self, name, list(args))
        self._reanchor()
        return result


class HostedOutcome:
    def __init__(self, retval, sim_time_ns, machine):
        self.retval = retval
        self.sim_time_ns = sim_time_ns
        self.machine = machine
        self.stats = machine.stats.snapshot()

    @property
    def sim_time_us(self) -> float:
        return self.sim_time_ns / 1000.0

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ns / 1e9


class HostedMachine:
    """Runs a :class:`HostedProgram` on a real :class:`FlickMachine`
    substrate (DMA, interrupts, kernel, latencies) with timing-model
    function bodies."""

    def __init__(
        self,
        program: HostedProgram,
        cfg: Optional[FlickConfig] = None,
        nxp_segments: Optional[List[tuple]] = None,
    ):
        """``nxp_segments``: optional [(vbase, size), ...] windows the
        NxP translates with base+limit segments instead of the TLB — the
        paper's cited alternative for killing TLB misses entirely
        (Section III-A, refs [16, 17])."""
        self.program = program
        self.machine = FlickMachine(cfg) if cfg is not None else FlickMachine()
        self.nxp_segments = list(nxp_segments or [])
        self.sim = self.machine.sim
        self.cfg = self.machine.cfg
        self.process = create_address_space(self.machine, name="hosted")
        self.machine.kernel.register_process(self.process)
        for fn in program.functions.values():
            self.process.add_exec_range(fn.addr, 0x1000, fn.isa)
        self._tcache = TranslationCache(
            self.process.page_tables, fast=self.cfg.translation_fast_path
        )
        # NxP-side translation state: a real TLB object with analytic
        # walk costs (so huge-page behaviour and the 16-entry capacity
        # are preserved without per-access DES events).
        self._nxp_dtlb = TLB("hosted.nxp.dtlb", self.cfg.tlb_entries, stats=self.machine.stats)
        self._nxp_dtlb.program_remap(
            self.cfg.memory_map.bar0_base,
            self.cfg.memory_map.nxp_local_size,
            self.cfg.memory_map.bar0_remap_offset,
        )
        if self.machine.multi_nxp:
            self._nxp_engines = [
                _HostedNxpEngine(self, device=dev) for dev in self.machine.devices
            ]
            # revive_nxp must reset/restart the hosted dispatcher, not
            # the (never-started) interpreted platform it shadows.
            for dev, engine in zip(self.machine.devices, self._nxp_engines):
                dev.hosted_engine = engine
        else:
            self._nxp_engines = [_HostedNxpEngine(self)]
        self._nxp_engine = self._nxp_engines[0]
        self._task: Optional[Task] = None
        self._thread: Optional[_HostedHostThread] = None
        # Hot-path latency constants.  FlickConfig is frozen, so these
        # derived values cannot change after construction; hoisting them
        # out of access_latency (where several are @property recomputes)
        # is a pure wall-clock optimization.
        cfg = self.cfg
        mm = cfg.memory_map
        self._host_dram_lo = mm.host_dram_base
        self._host_dram_hi = mm.host_dram_base + mm.host_dram_size
        self._bram_lo = mm.nxp_bram_base
        self._bram_hi = mm.nxp_bram_base + mm.nxp_bram_size
        self._lat_host_cached = cfg.host_cached_mem_ns
        self._lat_host_bram = 2 * cfg.pcie_oneway_ns + cfg.nxp_bram_ns
        self._lat_posted_write = cfg.pcie_oneway_ns + 8 * cfg.pcie_ns_per_byte
        self._lat_host_bar_read = cfg.host_to_bar_read_ns
        self._lat_tlb_hit = cfg.tlb_hit_ns
        self._lat_nxp_bram = cfg.nxp_bram_ns
        self._lat_nxp_local_write = cfg.nxp_to_local_write_ns
        self._lat_nxp_local_read = cfg.nxp_to_local_read_ns
        self._lat_nxp_host_read = cfg.nxp_to_host_read_ns

    # -- shared helpers used by contexts -------------------------------------------

    def translate(self, vaddr: int) -> int:
        return vaddr + self._tcache.entry(vaddr)[0]

    def access_latency(self, side: str, vaddr: int, write: bool) -> float:
        if side != "nxp":  # host, or degraded-mode emulation on a host core
            paddr = vaddr + self._tcache.entry(vaddr)[0]
            if self._host_dram_lo <= paddr < self._host_dram_hi:
                return self._lat_host_cached
            if self._bram_lo <= paddr < self._bram_hi:
                return self._lat_host_bram
            if write:
                return self._lat_posted_write  # posted
            return self._lat_host_bar_read
        # NxP side: segment windows bypass the TLB entirely (O(1)
        # base+limit check in the memory pipeline).
        if self.nxp_segments:
            cfg = self.cfg
            mm = cfg.memory_map
            for seg_base, seg_size in self.nxp_segments:
                if seg_base <= vaddr < seg_base + seg_size:
                    self.machine.stats.count("hosted.nxp.segment_hit")
                    paddr = self.process.page_tables.translate(vaddr).paddr
                    if mm.bram_contains(paddr):
                        return cfg.nxp_bram_ns
                    if mm.bar0_contains(paddr):
                        return cfg.nxp_to_local_write_ns if write else cfg.nxp_to_local_read_ns
                    return (
                        cfg.pcie_oneway_ns + 8 * cfg.pcie_ns_per_byte
                        if write
                        else cfg.nxp_to_host_read_ns
                    )
        # Otherwise: real TLB lookup, analytic walk cost on miss.
        dtlb = self._nxp_dtlb
        entry = dtlb.lookup(vaddr)
        if entry is None:
            cfg = self.cfg
            tr = self.process.page_tables.translate(vaddr)
            walk_cost = (
                cfg.mmu_walker_overhead_ns
                + len(self.process.page_tables.walk_entry_addrs(vaddr)) * cfg.mmu_walk_step_ns
            )
            entry = dtlb.insert(tr)
            base = walk_cost
        else:
            base = self._lat_tlb_hit
        paddr = entry.pbase | (vaddr - entry.vbase)
        if self._bram_lo <= paddr < self._bram_hi:
            return base + self._lat_nxp_bram
        remap = dtlb.remap
        if remap.size > 0 and remap.bar_base <= paddr < remap.bar_base + remap.size:
            return base + (self._lat_nxp_local_write if write else self._lat_nxp_local_read)
        if write:
            return base + self._lat_posted_write
        return base + self._lat_nxp_host_read

    def dispatch_call(self, ctx: HostedContext, name: str, args: List[int]) -> Generator:
        fn = self.program.functions[name]
        if ctx.side == "fallback":
            # Degraded mode: NISA callees stay in the emulator; HISA
            # callees run natively on this (host) core — the NxP is
            # dead, so nothing ever migrates to it.
            ctx.compute(6)
            side = "fallback" if fn.isa == "nisa" else "host"
            return (yield from self.run_body(fn, args, side))
        same_side = (fn.isa == "hisa") == (ctx.side == "host")
        if same_side:
            ctx.compute(6)  # plain call/ret overhead
            return (yield from self.run_body(fn, args, ctx.side, engine=ctx.engine))
        if ctx.side == "host":
            return (yield from self._thread.migrate_call_to_nxp(fn, args))
        engine = ctx.engine or self._nxp_engine
        return (yield from engine.migrate_call_to_host(fn, args))

    def run_body(
        self, fn: HostedFunction, args: List[int], side: str, engine=None
    ) -> Generator:
        ctx = HostedContext(self, side)
        ctx.engine = engine
        retval = yield from fn.body(ctx, *args)
        yield from ctx.flush()
        return retval if retval is not None else 0

    # -- lifecycle -------------------------------------------------------------------

    def run(
        self, entry: str, args=(), reset_time: bool = False, until: Optional[float] = None
    ) -> HostedOutcome:
        """Run ``entry`` (a host-side hosted function) to completion.

        With ``until``, the run is bounded in sim time (chaos runs): a
        program still unfinished at the bound — or idle before it with
        nothing left to wake it — raises :class:`WorkloadHung` instead
        of blocking forever on a dead device.
        """
        fn = self.program.functions[entry]
        if fn.isa != "hisa":
            raise ValueError("hosted entry functions start on the host")
        task = Task(self.process, name=f"hosted.t{len(self.machine.threads)}")
        self.machine.kernel.register_task(task)
        self._task = task
        thread = _HostedHostThread(self, task)
        self._thread = thread
        for engine in self._nxp_engines:
            engine.start()
        start = self.sim.now
        self.sim.spawn(thread.thread_main(fn, list(args)), name=task.name)
        if until is None:
            self.sim.run()
            if thread.finished_at is None:
                raise RuntimeError("hosted program did not finish")
        else:
            try:
                self.sim.run(until=until)
            except Deadlock:
                # The dispatcher (and any parked body) is always a live
                # process, so every bounded run ends in Deadlock once
                # the queue drains; it only matters if the thread is
                # still unfinished.
                pass
            if thread.finished_at is None:
                raise WorkloadHung(
                    f"hosted program did not finish within {until} ns "
                    f"(t={self.sim.now} ns)"
                )
        return HostedOutcome(thread.result, thread.finished_at - start, self.machine)


class _HostedHostThread:
    """Hosted twin of :class:`repro.core.host_runtime.HostThread` —
    identical protocol charges, Python bodies instead of HISA code."""

    def __init__(self, hosted: HostedMachine, task: Task):
        self.hosted = hosted
        self.machine = hosted.machine
        self.sim = hosted.sim
        self.cfg = hosted.cfg
        self.task = task
        self.core = None
        self.result = None
        self.finished_at = None
        self._staging: Optional[int] = None

    def thread_main(self, fn: HostedFunction, args: List[int]) -> Generator:
        task = self.task
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        self.machine.trace.record("thread_start", pid=task.pid, target=fn.addr)
        self.machine.trace.begin("thread", pid=task.pid, target=fn.addr)
        retval = yield from self.hosted.run_body(fn, args, "host")
        task.state = TaskState.DONE
        self.machine.trace.record("thread_done", pid=task.pid)
        self.machine.trace.end("thread", pid=task.pid)
        self.machine.cores.release(self.core)
        self.core = None
        self.result = retval
        self.finished_at = self.sim.now
        return retval

    # Mirrors HostThread._migrate_call_to_nxp (same charges, same order).
    def migrate_call_to_nxp(self, fn: HostedFunction, args: List[int]) -> Generator:
        task = self.task
        cfg = self.cfg
        yield self.sim.timeout(cfg.host_page_fault_ns)
        yield self.sim.timeout(cfg.host_handler_entry_ns)
        session_start = self.sim.now
        self.machine.trace.record("h2n_call_start", pid=task.pid, target=fn.addr)
        self.machine.trace.begin("h2n_session", pid=task.pid, target=fn.addr)
        if self.machine.multi_nxp:
            retval = yield from self._migrate_call_multi(fn, args, session_start)
            return retval
        if task.nxp_stack_base is None:
            yield self.sim.timeout(cfg.host_stack_alloc_ns)
            task.nxp_stack_base = self.machine.alloc_nxp_stack()
            task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
            self.machine.trace.record("nxp_stack_alloc", pid=task.pid, addr=task.nxp_stack_base)
        machine = self.machine
        if machine.hardened and (
            machine.health.dead or task.pid in machine.fused_pids
        ):
            # Dead device, or a pid fused to host execution after a
            # retry-budget denial (see HostThread: a stale reply to its
            # abandoned leg must find no armed wait).
            retval = yield from self._fallback_call(fn, args, session_start)
            return retval
        if cfg.brownout and self._brownout_risk():
            # Overload brownout: degraded-but-correct host execution
            # instead of queueing (mirrors HostThread).
            retval = yield from self._fallback_call(fn, args, session_start)
            return retval
        desc = MigrationDescriptor(
            kind=KIND_CALL, direction=DIR_H2N, pid=task.pid, target=fn.addr,
            args=args[:6], cr3=task.process.cr3, nxp_sp=task.nxp_sp,
        )
        try:
            inbound = yield from self._ioctl_migrate_and_suspend(desc)
        except NxpDeadError:
            retval = yield from self._fallback_call(fn, args, session_start)
            return retval
        while inbound.is_call:
            task.nxp_sp = inbound.nxp_sp
            yield self.sim.timeout(cfg.host_ioctl_return_ns)
            self.machine.trace.record("n2h_call_exec", pid=task.pid, target=inbound.target)
            self.machine.trace.begin("n2h_host_exec", pid=task.pid, target=inbound.target)
            yield self.sim.timeout(cfg.host_call_dispatch_ns)
            target_fn = self.hosted.program.by_addr[inbound.target]
            host_retval = yield from self.hosted.run_body(target_fn, inbound.args, "host")
            self.machine.trace.end("n2h_host_exec", pid=task.pid)
            ret_desc = MigrationDescriptor(
                kind=KIND_RETURN, direction=DIR_H2N, pid=task.pid,
                retval=host_retval, cr3=task.process.cr3, nxp_sp=task.nxp_sp,
            )
            try:
                inbound = yield from self._ioctl_migrate_and_suspend(ret_desc)
            except NxpDeadError:
                raise ProcessCrash(
                    task,
                    "NxP died mid-migration-session (suspended NxP frames lost)",
                )
        yield self.sim.timeout(cfg.host_ioctl_return_ns)
        yield self.sim.timeout(cfg.host_handler_return_ns)
        self.machine.stats.observe(
            "latency.h2n_session_ns", self.sim.now - session_start
        )
        self.machine.trace.record("h2n_call_done", pid=task.pid, target=fn.addr)
        self.machine.trace.end("h2n_session", pid=task.pid)
        return inbound.retval

    def _migrate_call_multi(
        self, fn: HostedFunction, args: List[int], session_start: float
    ) -> Generator:
        """Hosted twin of HostThread._migrate_call_multi: one device per
        session, opening-leg failover, host-fallback when all are down."""
        task = self.task
        cfg = self.cfg
        machine = self.machine
        tried = set()
        while True:
            if task.pid in machine.fused_pids:
                # Retry-budget fuse: stale replies route by pid, not
                # device, so a fused pid must not wait on any device.
                retval = yield from self._fallback_call(fn, args, session_start)
                return retval
            device = machine.placement.pick(task, exclude=frozenset(tried))
            if device is None:
                retval = yield from self._fallback_call(fn, args, session_start)
                return retval
            if cfg.brownout and self._brownout_risk(device):
                retval = yield from self._fallback_call(fn, args, session_start)
                return retval
            if machine.trace.context_enabled:
                # Label the session span with the device serving it (the
                # last annotation wins on failover re-placement).
                machine.trace.annotate(
                    "h2n_session", pid=task.pid,
                    device=device.index, device_label=f"nxp{device.index}",
                )

            if task.nxp_stack_base is None:
                yield self.sim.timeout(cfg.host_stack_alloc_ns)
                task.nxp_stack_base = machine.alloc_nxp_stack(device=device)
                task.nxp_sp = task.nxp_stack_base + cfg.nxp_stack_bytes
                task.nxp_device = device.index
                machine.trace.record(
                    "nxp_stack_alloc", pid=task.pid, addr=task.nxp_stack_base
                )

            desc = MigrationDescriptor(
                kind=KIND_CALL, direction=DIR_H2N, pid=task.pid, target=fn.addr,
                args=args[:6], cr3=task.process.cr3, nxp_sp=task.nxp_sp,
            )
            device.outstanding += 1
            try:
                inbound = yield from self._ioctl_migrate_and_suspend(desc, device=device)
            except NxpDeadError:
                device.outstanding -= 1
                tried.add(device.index)
                continue
            except BaseException:
                device.outstanding -= 1
                raise

            try:
                while inbound.is_call:
                    task.nxp_sp = inbound.nxp_sp
                    yield self.sim.timeout(cfg.host_ioctl_return_ns)
                    machine.trace.record(
                        "n2h_call_exec", pid=task.pid, target=inbound.target
                    )
                    machine.trace.begin(
                        "n2h_host_exec", pid=task.pid, target=inbound.target
                    )
                    yield self.sim.timeout(cfg.host_call_dispatch_ns)
                    target_fn = self.hosted.program.by_addr[inbound.target]
                    host_retval = yield from self.hosted.run_body(
                        target_fn, inbound.args, "host"
                    )
                    machine.trace.end("n2h_host_exec", pid=task.pid)
                    ret_desc = MigrationDescriptor(
                        kind=KIND_RETURN, direction=DIR_H2N, pid=task.pid,
                        retval=host_retval, cr3=task.process.cr3, nxp_sp=task.nxp_sp,
                    )
                    try:
                        inbound = yield from self._ioctl_migrate_and_suspend(
                            ret_desc, device=device
                        )
                    except NxpDeadError:
                        raise ProcessCrash(
                            task,
                            "NxP died mid-migration-session "
                            "(suspended NxP frames lost)",
                        )
                yield self.sim.timeout(cfg.host_ioctl_return_ns)
                yield self.sim.timeout(cfg.host_handler_return_ns)
            finally:
                device.outstanding -= 1
            machine.stats.observe(
                "latency.h2n_session_ns", self.sim.now - session_start
            )
            machine.trace.record("h2n_call_done", pid=task.pid, target=fn.addr)
            machine.trace.end("h2n_session", pid=task.pid)
            return inbound.retval

    def _ioctl_migrate_and_suspend(
        self, desc: MigrationDescriptor, device=None
    ) -> Generator:
        if self.machine.hardened:
            result = yield from self._ioctl_hardened(desc, device=device)
            return result
        task = self.task
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        if self._staging is None:
            self._staging = self.machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        self.machine.phys.write(self._staging, desc.pack())
        task.state = TaskState.SUSPENDED
        wake = Event(self.sim, name=f"{task.name}.wake")
        task.wake_event = wake
        yield self.sim.timeout(cfg.host_context_switch_ns)
        self.machine.cores.release(self.core)
        self.core = None
        yield self.sim.timeout(cfg.host_dma_kick_ns)
        self.machine.trace.record("dma_h2n", pid=task.pid, kind=desc.kind)
        dma = self.machine.dma if device is None else device.dma
        self.sim.spawn(
            dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES, pid=task.pid),
            name=f"dma-h2n-{task.name}",
        )
        inbound = yield wake
        self.core = yield from self.machine.cores.acquire(task.name)
        task.state = TaskState.RUNNING
        return inbound

    # Hosted twin of HostThread._ioctl_hardened (see host_runtime.py for
    # the watchdog/retry/health semantics — same loop, same constants).
    def _ioctl_hardened(self, desc: MigrationDescriptor, device=None) -> Generator:
        task = self.task
        cfg = self.cfg
        machine = self.machine
        health = machine.health if device is None else device.health
        dma = machine.dma if device is None else device.dma
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        yield self.sim.timeout(cfg.host_ioctl_entry_ns)
        yield self.sim.timeout(cfg.host_desc_build_ns)
        task.h2n_seq += 1
        desc.seq = task.h2n_seq
        if self._staging is None:
            self._staging = machine.host_phys.alloc(DESCRIPTOR_BYTES, align=64)
        machine.phys.write(self._staging, desc.pack())
        task.state = TaskState.SUSPENDED
        yield self.sim.timeout(cfg.host_context_switch_ns)
        machine.cores.release(self.core)
        self.core = None
        sends = 0
        while True:
            for attempt in range(cfg.migration_retry_limit + 1):
                if sends and machine.retry_budget is not None:
                    # Machine-wide retry budget: every send after the
                    # first must buy a token, else degrade to fallback
                    # instead of storming the ring (docs/ROBUSTNESS.md).
                    if not machine.retry_budget.take(self.sim.now):
                        machine.trace.record(
                            "retry_budget_denied", pid=task.pid, seq=desc.seq
                        )
                        # Fuse the pid: a stale reply to the abandoned
                        # leg must not wake this pid's next wait.
                        machine.fused_pids.add(task.pid)
                        self.core = yield from machine.cores.acquire(task.name)
                        task.state = TaskState.RUNNING
                        raise NxpDeadError(task, "retry budget exhausted")
                sends += 1
                wake = Event(self.sim, name=f"{task.name}.wake.s{desc.seq}a{attempt}")
                task.wake_event = wake
                yield self.sim.timeout(cfg.host_dma_kick_ns)
                machine.trace.record(
                    "dma_h2n", pid=task.pid, kind=desc.kind, attempt=attempt
                )
                if attempt:
                    machine.stats.count("migration.retry")
                    machine.trace.record("retry", pid=task.pid, seq=desc.seq, attempt=attempt)
                self.sim.spawn(
                    dma.push_to_nxp(self._staging, DESCRIPTOR_BYTES, pid=task.pid),
                    name=f"dma-h2n-{task.name}-a{attempt}",
                )
                self._spawn_watchdog(wake, cfg.migration_watchdog_ns)
                inbound = yield wake
                if inbound is not WATCHDOG_EXPIRED:
                    health.record_success()
                    self.core = yield from machine.cores.acquire(task.name)
                    task.state = TaskState.RUNNING
                    return inbound
                task.wake_event = None
                machine.stats.count("migration.watchdog_trip")
                machine.trace.record(
                    "watchdog_trip", pid=task.pid, seq=desc.seq, attempt=attempt
                )
                backoff = cfg.migration_backoff_base_ns * (
                    cfg.migration_backoff_factor ** attempt
                )
                yield self.sim.timeout(backoff)
                if device is not None and health is not None and health.dead:
                    # Multi-NxP chaos kill latched DEAD under us; surface
                    # immediately so the session is re-placed.
                    self.core = yield from machine.cores.acquire(task.name)
                    task.state = TaskState.RUNNING
                    raise NxpDeadError(task)
            health.record_failure(self.sim.now)
            if health.dead:
                self.core = yield from machine.cores.acquire(task.name)
                task.state = TaskState.RUNNING
                raise NxpDeadError(task)

    def _spawn_watchdog(self, wake: Event, timeout_ns: float) -> None:
        def watchdog(sim):
            yield sim.timeout(timeout_ns)
            if not wake.triggered:
                wake.trigger(WATCHDOG_EXPIRED)

        self.sim.spawn(watchdog(self.sim), name=f"watchdog-{self.task.name}")

    # Hosted twin of HostThread._brownout_risk (same triggers, same
    # counters — see host_runtime.py).
    def _brownout_risk(self, device=None) -> bool:
        cfg = self.cfg
        machine = self.machine
        deadline = getattr(self.task, "deadline_ns", None)
        if deadline is not None and deadline - self.sim.now < cfg.brownout_margin_ns:
            machine.stats.count("brownout.deadline_risk")
            return True
        limit = cfg.admission_queue_limit
        if limit:
            if device is not None:
                over = device.outstanding >= limit
            else:
                over = machine.admitted_inflight > machine.admission_capacity()
            if over:
                machine.stats.count("brownout.queue_full")
                return True
        return False

    def _fallback_call(self, fn: HostedFunction, args: List[int], session_start: float) -> Generator:
        """Degraded mode: run the NISA body in the ``"fallback"`` context
        (penalized host emulation) instead of migrating to the dead NxP."""
        task = self.task
        machine = self.machine
        machine.stats.count("degraded.calls")
        machine.trace.record("degraded_call", pid=task.pid, target=fn.addr)
        if machine.trace.context_enabled:
            machine.trace.annotate("h2n_session", pid=task.pid, fallback=True)
        yield self.sim.timeout(self.cfg.host_fallback_entry_ns)
        retval = yield from self.hosted.run_body(fn, args, "fallback")
        machine.stats.observe("latency.degraded_session_ns", self.sim.now - session_start)
        machine.trace.record("degraded_done", pid=task.pid, target=fn.addr)
        machine.trace.end("h2n_session", pid=task.pid)
        return retval


class _HostedNxpEngine:
    """Hosted twin of :class:`NxpPlatform`: dispatch loop + migrations.

    ``device`` is ``None`` on a single-NxP machine (the engine uses the
    machine singletons — the exact pre-fleet paths); a multi-NxP hosted
    machine runs one engine per :class:`NxpDevice`, bound to its ring,
    DMA engine and BRAM slice.
    """

    def __init__(self, hosted: HostedMachine, device=None):
        self.hosted = hosted
        self._device = device
        self.machine = hosted.machine
        self.sim = hosted.sim
        self.cfg = hosted.cfg
        self._proc = None
        self._staging: Optional[List[int]] = None
        self._staging_idx = 0
        # Per-pid LIFO of (return event) for bodies parked awaiting a
        # host function's return (nesting-safe).
        self._parked: Dict[int, List[Event]] = {}
        self._idle: Optional[Event] = None  # body finished/parked handshake
        # Hardened-protocol state (idempotent replay), mirrors NxpPlatform.
        # (The outbound n2h sequence counter lives on the machine — it
        # must be monotonic per pid across all devices.)
        self._last_req_seq: Dict[int, int] = {}
        self._resp_cache: Dict[int, MigrationDescriptor] = {}
        self._resp_ready: Dict[int, bool] = {}

    def start(self) -> None:
        if self._proc is None:
            name = (
                "hosted-nxp-sched"
                if self._device is None
                else f"hosted-nxp-sched.{self._device.index}"
            )
            self._proc = self.sim.spawn(self._dispatcher(), name=name)

    def reset_device(self) -> None:
        """Hosted twin of NxpPlatform.reset_device: wipe replay state and
        let :meth:`start` respawn the dispatcher after a revive.  Ring
        pointers and the killed/draining flags are the machine's side of
        the reset (``FlickMachine.revive_nxp``); stale pre-kill arrivals
        are absorbed by the dispatcher's pending recheck.

        The dispatcher is forgotten only if it already exited — a kill
        can leave it parked on the arrival channel (no arrivals reach a
        dead device to wake it), and that parked process resumes as the
        revived device's dispatcher.  A second dispatcher beside it
        would double-pop the ring on the next doorbell."""
        self._last_req_seq.clear()
        self._resp_cache.clear()
        self._resp_ready.clear()
        if self._proc is not None and not self._proc.alive:
            self._proc = None

    def _dispatcher(self) -> Generator:
        dev = self._device
        ring = self.machine.nxp_ring if dev is None else dev.nxp_ring
        dma = self.machine.dma if dev is None else dev.dma
        while True:
            if dev is not None and dev.killed:
                return  # abrupt chaos kill: the scheduler silicon stops
            if ring.pending == 0:
                yield dma.nxp_arrival.get()
                if dev is not None and dev.killed:
                    return
                yield self.sim.timeout(self.cfg.nxp_poll_period_ns / 2.0)
                if ring.pending == 0:
                    continue
            dispatch_start = self.sim.now
            yield self.sim.timeout(self.cfg.nxp_sched_dispatch_ns)
            slot = ring.pop_addr()
            raw = self.machine.phys.read(slot, DESCRIPTOR_BYTES)
            if self.machine.hardened:
                desc = yield from self._hardened_admit(raw)
                if desc is None:
                    continue
            else:
                desc = MigrationDescriptor.unpack(raw)
            yield self.sim.timeout(self.cfg.nxp_context_switch_ns)
            idle = Event(self.sim, name="nxp.idle")
            self._idle = idle
            # Device index attr mirrors NxpPlatform: feeds per-device
            # utilization and causal trace labels; singleton = device 0.
            dev_index = 0 if dev is None else dev.index
            if desc.is_call:
                fn = self.hosted.program.by_addr[desc.target]
                task = self.machine.kernel.task_by_pid(desc.pid)
                self.machine.trace.record("nxp_dispatch_call", pid=desc.pid, target=desc.target)
                self.machine.trace.begin(
                    "nxp_resident", pid=desc.pid, entry="call", device=dev_index
                )
                self.sim.spawn(
                    self._run_call(task, fn, desc.args), name=f"nxp-body-{fn.name}"
                )
            else:
                # Resume the most recently parked body for this pid.
                stack = self._parked.get(desc.pid)
                if not stack:
                    raise RuntimeError("hosted: return descriptor with no parked body")
                self.machine.trace.record("nxp_dispatch_return", pid=desc.pid)
                self.machine.trace.begin(
                    "nxp_resident", pid=desc.pid, entry="return", device=dev_index
                )
                stack.pop().trigger((desc.retval, idle))
            yield idle  # core is busy until the body parks or finishes
            self.machine.stats.sample("nxp.busy_ns", self.sim.now - dispatch_start)

    def _run_call(self, task: Task, fn: HostedFunction, args) -> Generator:
        retval = yield from self.hosted.run_body(fn, list(args), "nxp", engine=self)
        # Return migration (mirrors NxpPlatform._return_migration).
        yield self.sim.timeout(self.cfg.nxp_desc_build_ns)
        desc = MigrationDescriptor(
            kind=KIND_RETURN, direction=DIR_N2H, pid=task.pid,
            retval=retval, cr3=task.process.cr3, nxp_sp=task.nxp_sp or 0,
        )
        yield from self._send_to_host(desc)
        self.machine.trace.record("n2h_return", pid=task.pid)
        self.machine.trace.end("nxp_resident", pid=task.pid, exit="return")
        # Hand the core back to the dispatcher.  self._idle is always the
        # event the dispatcher armed for the *current* activation, which
        # under LIFO nesting is exactly the one waiting on this body.
        self._idle.trigger()

    def migrate_call_to_host(self, fn: HostedFunction, args: List[int]) -> Generator:
        """A nxp-side body calls a host function (NxP-to-host migration)."""
        task = self.hosted._task
        cfg = self.cfg
        yield self.sim.timeout(cfg.nxp_fault_entry_ns)
        yield self.sim.timeout(cfg.nxp_desc_build_ns)
        desc = MigrationDescriptor(
            kind=KIND_CALL, direction=DIR_N2H, pid=task.pid, target=fn.addr,
            args=args[:6], cr3=task.process.cr3, nxp_sp=task.nxp_sp or 0,
        )
        resume = Event(self.sim, name="nxp.body.resume")
        self._parked.setdefault(task.pid, []).append(resume)
        yield from self._send_to_host(desc)
        self.machine.trace.record("n2h_call", pid=task.pid, target=fn.addr)
        self.machine.trace.end("nxp_resident", pid=task.pid, exit="call")
        self._idle.trigger()  # hand the NxP core back to the dispatcher
        retval, idle = yield resume  # woken by a host->NxP return descriptor
        self._idle = idle
        return retval

    # Hosted twin of NxpPlatform._hardened_admit: fault pulls, descriptor
    # integrity, and idempotent-replay dedup on the inbound (h2n) leg.
    def _hardened_admit(self, raw: bytes) -> Generator:
        machine = self.machine
        injector = machine.injector
        for rule in injector.pull("nxp"):
            if rule.kind == "nxp_crash":
                machine.stats.count("nxp.crashed")
                machine.trace.record("nxp_crash")
                yield from self._park_forever()
            if rule.kind == "nxp_hang" and rule.delay_ns > 0:
                machine.stats.count("nxp.stall")
                machine.trace.record("nxp_stall", delay_ns=rule.delay_ns)
                yield self.sim.timeout(rule.delay_ns)
                # Transient stall: the descriptor is lost but dedup state
                # is untouched, so the host's retransmit is processed fresh.
                return None
            if rule.kind == "nxp_hang":
                machine.stats.count("nxp.hung")
                machine.trace.record("nxp_hang")
                yield from self._park_forever()
        try:
            desc = MigrationDescriptor.unpack(raw)
        except DescriptorCorrupt as exc:
            machine.stats.count("nxp.desc_corrupt_discarded")
            machine.trace.record("desc_discard", where="nxp", reason=str(exc))
            return None
        last = self._last_req_seq.get(desc.pid, 0)
        if desc.seq <= last:
            if desc.seq == last and self._resp_ready.get(desc.pid):
                machine.stats.count("nxp.replay")
                machine.trace.record("replay", pid=desc.pid, seq=desc.seq)
                yield from self._retransmit_response(desc.pid)
            else:
                machine.stats.count("nxp.dup_discarded")
            return None
        self._last_req_seq[desc.pid] = desc.seq
        self._resp_ready[desc.pid] = False
        return desc

    def _park_forever(self) -> Generator:
        yield Event(self.sim, name="hosted-nxp.dead")  # never triggered

    def _retransmit_response(self, pid: int) -> Generator:
        desc = self._resp_cache.get(pid)
        if desc is not None:
            yield from self._push_desc(desc)

    def _send_to_host(self, desc: MigrationDescriptor) -> Generator:
        if self.machine.hardened:
            seq = self.machine.n2h_seq.get(desc.pid, 0) + 1
            self.machine.n2h_seq[desc.pid] = seq
            desc.seq = seq
            self._resp_cache[desc.pid] = desc
            self._resp_ready[desc.pid] = True
        yield from self._push_desc(desc)

    def _push_desc(self, desc: MigrationDescriptor) -> Generator:
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        dev = self._device
        if self._staging is None:
            bram = self.machine.bram_phys if dev is None else dev.bram
            self._staging = [
                bram.alloc(DESCRIPTOR_BYTES, align=64) for _ in range(8)
            ]
        buf = self._staging[self._staging_idx]
        self._staging_idx = (self._staging_idx + 1) % len(self._staging)
        self.machine.phys.write(buf, desc.pack())
        yield self.sim.timeout(cfg.nxp_context_switch_ns)
        yield self.sim.timeout(cfg.nxp_dma_kick_ns)
        dma = self.machine.dma if dev is None else dev.dma
        self.sim.spawn(
            dma.push_to_host(buf, DESCRIPTOR_BYTES, pid=desc.pid),
            name="dma-n2h-hosted",
        )
