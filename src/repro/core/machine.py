"""FlickMachine — the whole heterogeneous-ISA system, assembled.

This is the library's main entry point.  It builds the platform of
Table I in simulation — host cores, the PCIe-attached NxP (RISC-V-like
core, local DRAM behind BAR0, stack BRAM, DMA engine, programmable MMU)
— plus the modified OS, and exposes a compile-load-run API:

>>> from repro import FlickMachine
>>> machine = FlickMachine()
>>> outcome = machine.run_program('''
...     @nxp func near_data(x) { return x * 2; }
...     func main(a) { return near_data(a) + 1; }
... ''', args=[20])
>>> outcome.retval
41
>>> outcome.migrations  # one host->NxP->host round trip
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.descriptors import DESCRIPTOR_BYTES
from repro.core.host_runtime import HostThread
from repro.core.nxp_device import NxpDevice
from repro.core.nxp_platform import NxpPlatform
from repro.core.ports import HostMemoryPort
from repro.core.stubs import STUB_SYMBOLS
from repro.core.trace import MigrationTrace
from repro.interconnect.dma import DMAEngine, DescriptorRing
from repro.interconnect.interrupt import MIGRATION_VECTOR, InterruptController
from repro.interconnect.pcie import PCIeLink
from repro.memory.allocator import RegionAllocator
from repro.memory.physical import MemoryRegion, MMIORegion, PhysicalMemory
from repro.os.kernel import Kernel
from repro.os.loader import load_executable
from repro.os.scheduler import CorePool
from repro.os.task import Process, Task
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry
from repro.toolchain.felf import Executable
from repro.toolchain.flickc import compile_source
from repro.toolchain.linker import link

__all__ = ["FlickMachine", "ProgramOutcome", "signed_retval"]

MB = 1024 * 1024


def signed_retval(value: Optional[int]) -> Optional[int]:
    """Reinterpret a raw 64-bit register value as a signed integer.

    Both interpreters and the hosted descriptor path hand back the
    return register as an unsigned 64-bit word; every consumer that
    shows the value to a user (ProgramOutcome, the chaos probes, the
    serving harness) must apply the same two's-complement fixup or
    negative returns surface as huge positives.  ``None`` (no result
    yet) passes through, and already-signed values (hosted bodies that
    returned a plain negative int without a descriptor crossing) are
    left untouched — the fixup is idempotent.
    """
    if value is not None and value >= (1 << 63):
        return value - (1 << 64)
    return value


@dataclass
class ProgramOutcome:
    """Result of running one program to completion."""

    retval: int
    output: List[int]
    sim_time_ns: float
    migrations: int
    stats: Dict[str, float]
    process: Process
    #: True when at least one NISA call completed via host-fallback
    #: emulation because the NxP was declared dead (chaos runs only).
    degraded: bool = False

    @property
    def sim_time_us(self) -> float:
        return self.sim_time_ns / 1000.0


class FlickMachine:
    """A simulated host + NxP system running the Flick protocol."""

    def __init__(self, cfg: FlickConfig = DEFAULT_CONFIG, host_cores: Optional[int] = None):
        self.cfg = cfg
        if host_cores is None:
            host_cores = cfg.host_cores
        self.memory_map = cfg.memory_map
        self.sim = Simulator(fast_now_queue=cfg.engine_fast_path)
        self.stats = StatRegistry(metrics_enabled=cfg.metrics)
        self.trace = MigrationTrace(self.sim)
        self.trace.context_enabled = cfg.trace_context

        # -- physical memory ------------------------------------------------
        mm = self.memory_map
        self.phys = PhysicalMemory()
        self.phys.add_region(MemoryRegion("host_dram", mm.host_dram_base, mm.host_dram_size))
        self.phys.add_region(MemoryRegion("nxp_dram", mm.bar0_base, mm.nxp_local_size))
        self.phys.add_region(MemoryRegion("nxp_bram", mm.nxp_bram_base, mm.nxp_bram_size))
        self.mmio = MMIORegion("nxp_ctrl", mm.mmio_base, mm.mmio_size)
        self.phys.add_region(self.mmio)

        # -- physical allocators ----------------------------------------------
        # host DRAM: [16MB, 256MB) page-table frames, [256MB, end) general.
        self.frame_alloc = RegionAllocator("pt_frames", 16 * MB, 240 * MB)
        self.host_phys = RegionAllocator(
            "host_phys", 256 * MB, mm.host_dram_size - 256 * MB
        )
        self.nxp_phys = RegionAllocator("nxp_phys", mm.bar0_base, mm.nxp_local_size)
        self.bram_phys = RegionAllocator("bram_phys", mm.nxp_bram_base, mm.nxp_bram_size)

        # -- fault injection (tentpole of docs/ROBUSTNESS.md) -----------------
        # The injector exists ONLY when a fault plan is armed; with it
        # absent (the default), every hardened branch below is skipped
        # and the machine executes the exact pre-hardening code paths —
        # that is the faults-off parity contract.
        if cfg.faults:
            from repro.core.health import NxpHealth
            from repro.sim.faults import FaultInjector

            self.injector = FaultInjector(
                cfg.faults,
                seed=cfg.fault_seed,
                sim=self.sim,
                stats=self.stats,
                trace=self.trace,
            )
            self.health = self._build_health(cfg)
        else:
            self.injector = None
            self.health = None
        # -- overload protection (docs/ROBUSTNESS.md) -------------------------
        # Like the injector: the retry budget exists ONLY when its knob
        # is non-default, so budget-off runs skip every consult branch
        # and stay on the exact pre-budget code paths.
        if cfg.retry_budget_tokens > 0:
            from repro.core.health import RetryBudget

            self.retry_budget = RetryBudget(
                cfg.retry_budget_tokens,
                cfg.retry_budget_refill_per_ms,
                stats=self.stats,
            )
        else:
            self.retry_budget = None
        # Admission bookkeeping: requests admitted through
        # ``admit_request`` and not yet released.  Only touched when
        # ``admission_queue_limit`` is armed.
        self.admitted_inflight = 0
        # Pids fused to host-fallback execution after a retry-budget
        # denial.  A denial abandons an in-flight leg while the device
        # stays in service, so a late reply for that pid may still
        # arrive; fusing the pid guarantees no later wait exists for the
        # stale reply to wake (the kernel discards it as a late
        # delivery), mirroring how a DEAD latch makes abandonment safe.
        # Empty forever when the retry budget is unarmed.
        self.fused_pids: set = set()
        # Machine-wide outbound (n2h) sequence counters, keyed by pid.
        # One dict shared by every device: the host-side duplicate
        # filter compares against a single per-task high-water mark, so
        # replies must be monotonic per pid across the whole fleet —
        # per-device counters would collide the moment two devices both
        # answered the same process (round-robin placement does exactly
        # that).  Only advanced when the hardened protocol is armed.
        self.n2h_seq: Dict[int, int] = {}

        # -- interconnect -------------------------------------------------------
        self.link = PCIeLink(
            self.sim, cfg, self.phys, stats=self.stats, trace=self.trace,
            injector=self.injector,
        )
        self.irq = InterruptController(self.sim, cfg, stats=self.stats, trace=self.trace)

        # -- NxP devices (docs/FLEET.md) --------------------------------------
        # nxp_count == 1 (the default, and the paper's machine) takes the
        # exact pre-fleet construction below — singletons first, then a
        # pure-aliasing NxpDevice wrapper so placement/fleet code can
        # iterate machine.devices uniformly.  nxp_count > 1 builds one
        # ring pair / DMA engine / MSI vector / BRAM slice / health
        # machine per device, all sharing the one PCIe link above.
        if cfg.nxp_count < 1:
            raise ValueError(f"nxp_count must be >= 1, got {cfg.nxp_count}")
        self.multi_nxp = cfg.nxp_count > 1
        self.devices: List[NxpDevice] = []
        if not self.multi_nxp:
            self.dma = DMAEngine(
                self.sim, cfg, self.link, self.irq, stats=self.stats, trace=self.trace,
                injector=self.injector,
            )
            nxp_ring_base = self.bram_phys.alloc(16 * DESCRIPTOR_BYTES, align=4096)
            host_ring_base = self.host_phys.alloc(16 * DESCRIPTOR_BYTES, align=4096)
            self.nxp_ring = DescriptorRing(self.phys, nxp_ring_base, 16, DESCRIPTOR_BYTES)
            self.host_ring = DescriptorRing(self.phys, host_ring_base, 16, DESCRIPTOR_BYTES)
            self.dma.attach_rings(self.nxp_ring, self.host_ring)
            self.dma.register_mmio(self.mmio)
        else:
            self._build_devices(cfg)
        self.placement = None
        if self.multi_nxp:
            from repro.os.placement import PlacementLayer

            self.placement = PlacementLayer(self, cfg.placement_policy)

        # -- OS + platforms ---------------------------------------------------------
        self.cores = CorePool(self.sim, host_cores, stats=self.stats)
        self.kernel = Kernel(self.sim, cfg, self)
        if self.multi_nxp:
            for dev in self.devices:
                dev.platform = NxpPlatform(self, device=dev)
            self.nxp = self.devices[0].platform
        else:
            self.nxp = NxpPlatform(self)
            dev0 = NxpDevice(
                self, 0, MIGRATION_VECTOR, self.dma, self.nxp_ring,
                self.host_ring, self.bram_phys, self.health,
            )
            dev0.platform = self.nxp
            self.devices.append(dev0)
        self.threads: List[HostThread] = []
        self.runtime_symbols = dict(STUB_SYMBOLS)
        # Multi-ISA kernel modules (Section IV-D): segments shared by
        # every process created after loading; symbols linkable by user
        # programs compiled after loading.
        self.kernel_modules = []
        self.module_symbols: Dict[str, int] = {}
        self.module_isa_of_symbol: Dict[str, object] = {}

    def _build_devices(self, cfg: FlickConfig) -> None:
        """Multi-NxP construction: per-device rings/DMA/vector/BRAM/health.

        Device 0's BRAM slice starts at the BRAM base and allocates its
        inbound ring first, so its ring/staging/stack addresses coincide
        with the single-NxP layout.  The machine-level singleton handles
        (``dma``, ``nxp_ring``, ``host_ring``, ``bram_phys``, ``health``)
        are re-aliased to device 0 for any code that still reads them.
        """
        mm = self.memory_map
        n = cfg.nxp_count
        if n * 0x10 > mm.mmio_size:
            raise ValueError(f"MMIO window too small for {n} NxP devices")
        slice_bytes = mm.nxp_bram_size // n
        if slice_bytes < cfg.nxp_stack_bytes + 16 * DESCRIPTOR_BYTES:
            raise ValueError(f"BRAM too small to slice across {n} NxP devices")
        for i in range(n):
            bram = RegionAllocator(
                f"bram_phys.{i}", mm.nxp_bram_base + i * slice_bytes, slice_bytes
            )
            dma = DMAEngine(
                self.sim, cfg, self.link, self.irq, stats=self.stats,
                trace=self.trace, injector=self.injector,
                vector=MIGRATION_VECTOR + i,
            )
            nxp_ring_base = bram.alloc(16 * DESCRIPTOR_BYTES, align=4096)
            host_ring_base = self.host_phys.alloc(16 * DESCRIPTOR_BYTES, align=4096)
            nxp_ring = DescriptorRing(self.phys, nxp_ring_base, 16, DESCRIPTOR_BYTES)
            host_ring = DescriptorRing(self.phys, host_ring_base, 16, DESCRIPTOR_BYTES)
            dma.attach_rings(nxp_ring, host_ring)
            dma.register_mmio(self.mmio, base=i * 0x10)
            health = None
            if self.injector is not None:
                health = self._build_health(cfg)
            self.devices.append(
                NxpDevice(
                    self, i, MIGRATION_VECTOR + i, dma, nxp_ring, host_ring,
                    bram, health,
                )
            )
        dev0 = self.devices[0]
        self.dma = dev0.dma
        self.nxp_ring = dev0.nxp_ring
        self.host_ring = dev0.host_ring
        self.bram_phys = dev0.bram
        self.health = dev0.health

    def _build_health(self, cfg: FlickConfig):
        """One per-device health machine, with the breaker knobs wired."""
        from repro.core.health import NxpHealth

        return NxpHealth(
            cfg.nxp_dead_threshold,
            stats=self.stats,
            trace=self.trace,
            recovery=cfg.nxp_recovery,
            probe_target=cfg.nxp_probe_successes,
            quarantine_base_ns=cfg.nxp_quarantine_base_ns,
            quarantine_factor=cfg.nxp_quarantine_factor,
        )

    @property
    def hardened(self) -> bool:
        """True when a fault plan is armed (protocol hardening active)."""
        return self.injector is not None

    def jit_stats(self) -> Dict[str, float]:
        """Aggregate tracing-JIT counters across every core.

        Kept separate from :attr:`stats` on purpose: the JIT tier must
        be invisible to the parity-pinned stat snapshot (JIT-on and
        JIT-off runs compare bit-identical), so its observability rides
        in this sidecar instead — surfaced by ``python -m repro
        profile`` and the metrics report.
        """
        out: Dict[str, float] = {}
        engines = []
        for thread in self.threads:
            engines.append(getattr(thread.cpu, "_jit", None))
            fallback = getattr(thread, "_fallback_cpu", None)
            if fallback is not None:
                engines.append(getattr(fallback, "_jit", None))
        for dev in self.devices:
            engines.append(getattr(dev.platform.cpu, "_jit", None))
        for engine in engines:
            if engine is None:
                continue
            for key, value in engine.counters().items():
                out[key] = out.get(key, 0) + value
        return out

    # -- program lifecycle ----------------------------------------------------------

    def compile(self, source: str, entry: str = "main") -> Executable:
        """Compile FlickC source; links against the runtime symbols and
        any symbols exported by loaded kernel modules."""
        obj = compile_source(source)
        extra = dict(self.runtime_symbols)
        extra.update(self.module_symbols)
        return link([obj], entry_symbol=entry, extra_symbols=extra)

    def load_module(self, source: str, name: str, entry_symbol: str = "module_init"):
        """Load a multi-ISA kernel module (see repro.os.module)."""
        from repro.os.module import load_module

        return load_module(self, source, name, entry_symbol=entry_symbol)

    def load(self, exe: Executable, name: Optional[str] = None) -> Process:
        process = load_executable(self, exe, name=name)
        self.kernel.register_process(process)
        return process

    def spawn(self, process: Process, entry: Union[str, int] = "main", args=()) -> HostThread:
        """Create a thread running ``entry`` (symbol or address) on the host."""
        if isinstance(entry, str):
            entry_addr = process.symbols[entry]
        else:
            entry_addr = entry
        task = Task(process, name=f"{process.name}.t{len(self.threads)}")
        self.kernel.register_task(task)
        port = HostMemoryPort(
            self.sim, self.cfg, self.phys, self.link, process.page_tables, stats=self.stats
        )
        thread = HostThread(self, task, port)
        self.threads.append(thread)
        for dev in self.devices:
            dev.platform.start()
        # Keep the sim-process handle: callers that interleave many
        # threads (the serving harness) join on it with ``yield proc``.
        thread.proc = self.sim.spawn(
            thread.thread_main(entry_addr, list(args)), name=task.name
        )
        return thread

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until it quiesces (or until ``until`` ns).

        The NxP scheduler is event-driven when idle, so the event queue
        drains exactly when every spawned thread has finished (or is
        durably stuck, which we report).
        """
        if until is not None:
            self.sim.run(until=until)
            return
        self.sim.run()
        stuck = [t.task.name for t in self.threads if t.task.state.value != "done"]
        if stuck:
            raise RuntimeError(f"machine quiesced with unfinished threads: {stuck}")

    def run_program(
        self,
        source_or_exe: Union[str, Executable],
        entry: str = "main",
        args=(),
        name: Optional[str] = None,
    ) -> ProgramOutcome:
        """Compile (if needed), load, run to completion, and summarize."""
        exe = (
            self.compile(source_or_exe, entry=entry)
            if isinstance(source_or_exe, str)
            else source_or_exe
        )
        process = self.load(exe, name=name)
        thread = self.spawn(process, entry=entry, args=args)
        self.run()
        signed = signed_retval(thread.result)
        stats_snapshot = self.stats.snapshot()
        return ProgramOutcome(
            retval=signed,
            output=list(process.output),
            sim_time_ns=thread.finished_at if thread.finished_at is not None else self.sim.now,
            migrations=self.trace.count("h2n_call_done"),
            stats=stats_snapshot,
            process=process,
            degraded=bool(stats_snapshot.get("degraded.calls", 0)),
        )

    # -- optional kernel extensions ------------------------------------------------------

    def enable_lazy_heap(self, process: Process, size: int = 64 * MB) -> "LazyHeap":
        """Switch ``process`` to a demand-paged heap window.

        Subsequent ``alloc()`` calls in the program return addresses in
        an initially-unmapped window; the first touch of each page takes
        a minor fault serviced by the kernel (interpreted mode only).
        """
        from repro.memory.allocator import RegionAllocator
        from repro.os.demand_paging import LazyHeap

        vbase = 0x4000_0000_0000
        lazy = LazyHeap(self, process, vbase, size)
        process.lazy_heap = lazy
        process.host_heap = RegionAllocator("lazy_heap", vbase, size)
        return lazy

    # -- services used by the runtimes -------------------------------------------------

    def alloc_nxp_stack(self, device: Optional[NxpDevice] = None) -> int:
        """Allocate one thread's NxP stack from BRAM; returns its vaddr.

        ``device`` (multi-NxP only) selects whose BRAM slice backs the
        stack; the whole BRAM window is mapped in every address space,
        so the vaddr formula is slice-agnostic.
        """
        from repro.os.loader import NXP_STACK_VBASE

        alloc = self.bram_phys if device is None else device.bram
        paddr = alloc.alloc(self.cfg.nxp_stack_bytes, align=4096)
        return NXP_STACK_VBASE + (paddr - self.memory_map.nxp_bram_base)

    def release_nxp_stack(self, vaddr: int) -> None:
        """Return a finished thread's NxP stack to the BRAM allocator.

        BRAM is 16 MB and stacks are 64 KB, so a machine that never
        recycles them caps out near 250 migrating tasks over its whole
        lifetime.  The serving harness serves thousands of requests per
        run, each on a fresh task — it frees each stack once the task
        is done.  Only call this for tasks that can never migrate again.
        """
        from repro.os.loader import NXP_STACK_VBASE

        paddr = self.memory_map.nxp_bram_base + (vaddr - NXP_STACK_VBASE)
        if self.multi_nxp:
            for dev in self.devices:
                if dev.bram.owns(paddr):
                    dev.bram.free(paddr)
                    return
            raise ValueError(f"NxP stack vaddr {vaddr:#x} owned by no device")
        self.bram_phys.free(paddr)

    def kill_nxp(self, index: int, mode: str = "abrupt") -> None:
        """Chaos hook: take NxP ``index`` out of service mid-run.

        ``mode="drain"`` only excludes the device from new-session
        placement; in-flight sessions complete normally (works with or
        without the hardened protocol).  ``mode="abrupt"`` additionally
        stops the device's scheduler and latches its health DEAD, so
        in-flight legs are recovered by the hardened watchdogs — it
        therefore *requires* an armed fault plan.
        """
        if not self.multi_nxp:
            raise ValueError("kill_nxp requires a multi-NxP machine (nxp_count > 1)")
        dev = self.devices[index]
        if mode == "drain":
            dev.draining = True
        elif mode == "abrupt":
            if not self.hardened:
                raise ValueError(
                    "abrupt kill needs the hardened protocol (arm a fault "
                    "plan, e.g. a never-firing rule) so watchdogs can "
                    "recover the killed device's in-flight legs"
                )
            dev.draining = True
            dev.killed = True
            if dev.health is not None:
                dev.health.force_dead("killed")
        else:
            raise ValueError(f"unknown kill mode {mode!r}")
        self.trace.record("nxp_kill", device=index, mode=mode)

    def revive_nxp(self, index: int) -> None:
        """Self-healing hook: bring NxP ``index`` back as a half-open
        probe target (docs/ROBUSTNESS.md).

        Resets the device — ring pointers, replay caches, scheduler —
        and moves its health DEAD → RECOVERING; placement re-admits it
        after ``nxp_probe_successes`` consecutive probe successes.
        Requires ``FlickConfig.nxp_recovery`` and the hardened protocol.
        Refuses (``ValueError``) while a re-tripped breaker's quarantine
        window is still open.
        """
        if not self.cfg.nxp_recovery:
            raise ValueError("device recovery is off (FlickConfig.nxp_recovery)")
        if not self.hardened:
            raise ValueError(
                "revive_nxp needs the hardened protocol (arm a fault plan, "
                "e.g. a never-firing rule) — recovery probes ride the "
                "watchdog/health machinery"
            )
        dev = self.devices[index]
        out_of_service = (
            dev.draining or dev.killed or (dev.health is not None and dev.health.dead)
        )
        if not out_of_service:
            raise ValueError(f"NxP {index} is in service; nothing to revive")
        # Health gate first: a quarantine refusal must leave the device
        # untouched (still out of service, state unchanged).
        if dev.health is not None and dev.health.dead:
            dev.health.begin_recovery(self.sim.now)
        dev.draining = False
        dev.killed = False
        # dev.outstanding is NOT reset: a session stranded by the kill
        # may still be mid-watchdog holding its slot, and every session
        # path decrements on exit — zeroing here would double-count the
        # release and pin the counter negative (probe_ready needs == 0).
        # Device reset: both descriptor rings back to empty (any stale
        # in-flight descriptors were already recovered by watchdogs) ...
        for ring in (dev.nxp_ring, dev.host_ring):
            ring.head = ring.tail = ring.reserved = 0
        # ... and the platform's hardened replay caches + scheduler, so
        # the revived device starts from a clean idempotency horizon.
        # A hosted machine runs _HostedNxpEngine dispatchers instead of
        # the interpreted platforms; it registers them as hosted_engine.
        engine = getattr(dev, "hosted_engine", None) or dev.platform
        engine.reset_device()
        self.stats.count("nxp.revived")
        self.trace.record("nxp_revive", device=index)
        engine.start()

    # -- admission control (docs/ROBUSTNESS.md) -----------------------------

    def admission_capacity(self) -> int:
        """Total admission slots: ``admission_queue_limit`` per in-service
        device (0 = unbounded)."""
        limit = self.cfg.admission_queue_limit
        if not limit:
            return 0
        serving = sum(1 for dev in self.devices if dev.alive or dev.probe_ready)
        return limit * max(serving, 1)

    def admit_request(self, deadline_at: Optional[float] = None) -> None:
        """Front-door admission check for one serving request.

        Raises :class:`AdmissionRejected` when the request's deadline has
        already expired, or when every per-device admission queue is full
        and brownout is off (with brownout on, over-limit requests are
        admitted and the migration layer routes them to host fallback).
        On success the request holds one admission slot until
        :meth:`admission_release`.
        """
        from repro.core.errors import AdmissionRejected

        if deadline_at is not None and self.sim.now >= deadline_at:
            self.stats.count("admission.shed.deadline")
            raise AdmissionRejected(
                "deadline", f"expired {self.sim.now - deadline_at:.0f} ns ago"
            )
        capacity = self.admission_capacity()
        if capacity:
            if self.admitted_inflight >= capacity and not self.cfg.brownout:
                self.stats.count("admission.shed.queue")
                raise AdmissionRejected(
                    "queue_full", f"{self.admitted_inflight}/{capacity} in flight"
                )
            self.admitted_inflight += 1

    def admission_release(self) -> None:
        """Return one admission slot (request finished or browned out)."""
        if self.cfg.admission_queue_limit:
            self.admitted_inflight -= 1
