"""One NxP device slot of a multi-NxP machine (docs/FLEET.md).

A :class:`~repro.core.machine.FlickMachine` built with
``cfg.nxp_count > 1`` owns one :class:`NxpDevice` per PCIe-attached NxP.
Each device bundles the per-device hardware a single-NxP machine keeps
as machine singletons:

* a descriptor-ring pair (NxP inbound in the device's BRAM slice, host
  inbound in host DRAM),
* a DMA engine raising its own MSI vector (``MIGRATION_VECTOR + i``)
  with STATUS registers at MMIO offset ``i * 0x10``,
* a BRAM slice allocator (stacks + staging buffers for this device),
* an :class:`~repro.core.health.NxpHealth` machine when faults are
  armed, and
* the device's :class:`~repro.core.nxp_platform.NxpPlatform` scheduler.

All devices share one PCIe link, so concurrent descriptor traffic
serializes there — the natural contention model.  The single-NxP
machine also wraps its singletons in one ``NxpDevice`` so placement and
fleet code iterate ``machine.devices`` uniformly, but that wrapper is
pure aliasing: single-NxP execution never consults it.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NxpDevice"]


class NxpDevice:
    """Hardware + health bundle for one NxP of a (multi-)NxP machine."""

    def __init__(self, machine, index: int, vector: int, dma, nxp_ring,
                 host_ring, bram, health=None):
        self.machine = machine
        self.index = index
        self.vector = vector
        self.dma = dma
        self.nxp_ring = nxp_ring
        self.host_ring = host_ring
        self.bram = bram  # RegionAllocator over this device's BRAM slice
        self.health = health  # NxpHealth, or None when faults are unarmed
        self.platform = None  # NxpPlatform, attached by the machine
        #: Migration sessions currently routed to this device (opened by
        #: the host runtime, closed when the session's final return
        #: lands).  The ``least_loaded`` placement policy reads this.
        self.outstanding = 0
        #: Placement stops routing *new* sessions here (chaos "drain"
        #: kill); in-flight sessions complete normally.
        self.draining = False
        #: The device stopped responding entirely (chaos "abrupt" kill):
        #: its scheduler exits and in-flight legs are recovered by the
        #: hardened protocol's watchdogs.
        self.killed = False

    @property
    def alive(self) -> bool:
        """Eligible for unrestricted new-session placement.

        A ``RECOVERING`` device is *not* alive — the half-open breaker
        admits it probe-by-probe via :attr:`probe_ready` instead.
        """
        if self.draining or self.killed:
            return False
        if self.health is None:
            return True
        return not self.health.dead and not self.health.recovering

    @property
    def probe_ready(self) -> bool:
        """Half-open breaker: a ``RECOVERING`` device accepts exactly one
        in-flight probe session at a time (docs/ROBUSTNESS.md)."""
        if self.draining or self.killed or self.health is None:
            return False
        return self.health.recovering and self.outstanding == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "down"
        return (
            f"<NxpDevice {self.index} {state} "
            f"outstanding={self.outstanding} vector={self.vector:#x}>"
        )
