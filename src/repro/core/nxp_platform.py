"""The NxP platform: scheduler, migration handler and core (Listing 2).

The NxP scheduler is a bare-metal loop on the NxP core (the paper boots
it from a tiny ROM through a pre-loaded I-TLB entry): it polls the DMA
status register, and for every inbound descriptor either *calls* the
requested function on a thread's NxP stack, or *resumes* a thread that
was suspended mid-migration.

Outbound migrations mirror Listing 2:

* a NISA function finishing -> **return migration** (NxP-to-host return
  descriptor, DMA, host interrupt);
* a NISA function fetching host-ISA bytes -> the inverted-NX page fault
  (or the misaligned/illegal fetch the variable-length HISA encoding
  causes) -> **call migration** with the faulting address as the target.

Reentrancy is handled with a per-thread stack of saved register
contexts: each nested call level pushes one snapshot, exactly as each
level of the paper's handler occupies one more frame of the thread's
NxP stack.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.descriptors import (
    DESCRIPTOR_BYTES,
    DIR_N2H,
    KIND_CALL,
    KIND_RETURN,
    MigrationDescriptor,
)
from repro.core.errors import DescriptorCorrupt
from repro.core.ports import NxpMemoryPort
from repro.core.stubs import STUB_PCS, service_stub
from repro.isa.base import IllegalInstruction, IsaFault, MisalignedFetch
from repro.isa.interpreter import (
    CostModel,
    EnvCall,
    Halted,
    Interpreter,
    ReturnToRuntime,
)
from repro.memory.mmu import PageWalker
from repro.memory.paging import PageFault, PageTables
from repro.os.kernel import ProcessCrash
from repro.os.task import CpuContext, Task
from repro.sim.engine import Event

__all__ = ["NxpPlatform"]


class NxpPlatform:
    """One NxP core + its TLBs/MMU/caches + the polling scheduler.

    ``device`` is ``None`` on a single-NxP machine (the platform uses
    the machine's singleton ring/DMA/BRAM — the exact pre-fleet paths);
    a multi-NxP machine passes this platform's
    :class:`~repro.core.nxp_device.NxpDevice`, whose ring/DMA/BRAM are
    used instead.  Stat names stay the legacy ``nxp.*`` on every
    device, so multi-NxP counters aggregate across the fleet of cores.
    """

    def __init__(self, machine, device=None):
        self.machine = machine
        self._device = device
        self.sim = machine.sim
        self.cfg = machine.cfg
        self.current_tables: Optional[PageTables] = None
        self.walker = PageWalker(
            self.sim, self.cfg, lambda: self.current_tables, stats=machine.stats, name="nxp.mmu"
        )
        self.port = NxpMemoryPort(
            self.sim,
            self.cfg,
            machine.phys,
            machine.link,
            self.walker,
            stats=machine.stats,
            tables_provider=lambda: self.current_tables,
        )
        self.cpu = Interpreter(
            "nisa",
            self.sim,
            self.port,
            CostModel(self.cfg.nxp_cycle_ns, ipc=1.0),
            stats=machine.stats,
            name="nxp.core",
            decode_cache=self.cfg.decode_cache,
            jit=self.cfg.jit_enabled,
            jit_hot_threshold=self.cfg.jit_hot_threshold,
            jit_max_superblock=self.cfg.jit_max_superblock,
            trace=machine.trace,
        )
        self._staging: Optional[int] = None
        self._proc = None
        # Hardened-protocol state (advanced only when faults are armed):
        # per-pid inbound dedup and the outbound replay cache that lets a
        # retransmitted request be answered without re-executing it.
        # (The outbound sequence counter itself lives on the machine —
        # it must be monotonic per pid across all devices.)
        self._last_req_seq: dict = {}
        self._resp_cache: dict = {}
        self._resp_ready: dict = {}

    def start(self) -> None:
        """Boot the scheduler (idempotent)."""
        if self._proc is None:
            name = (
                "nxp-scheduler"
                if self._device is None
                else f"nxp-scheduler.{self._device.index}"
            )
            self._proc = self.sim.spawn(self._scheduler(), name=name)

    def reset_device(self) -> None:
        """Device-reset half of ``machine.revive_nxp`` (docs/ROBUSTNESS.md).

        Clears the hardened replay caches — the revived silicon has no
        memory of pre-kill sequence numbers, and the per-pid dedup
        horizon rebuilds from the next fresh descriptor.  Ring pointers
        and the killed/draining flags are the machine's side of the
        reset.

        The scheduler process is forgotten only if it already exited.
        A kill can leave it *parked* on the arrival channel (it checks
        ``killed`` after waking, and a dead device gets no arrivals to
        wake it) — that parked process resumes as the revived device's
        scheduler.  Spawning a second one next to it would double-pop
        the ring on the next doorbell (RingUnderflow).
        """
        self._last_req_seq.clear()
        self._resp_cache.clear()
        self._resp_ready.clear()
        if self._proc is not None and not self._proc.alive:
            self._proc = None

    # -- the polling scheduler --------------------------------------------------

    def _scheduler(self) -> Generator:
        dev = self._device
        ring = self.machine.nxp_ring if dev is None else dev.nxp_ring
        dma = self.machine.dma if dev is None else dev.dma
        status_addr = self.cfg.memory_map.mmio_base + (
            0x00 if dev is None else dev.index * 0x10
        )
        while True:
            if dev is not None and dev.killed:
                # Abruptly-killed device (chaos): the scheduler silicon
                # stops.  In-flight host legs are recovered by their
                # watchdogs; this process simply exits so the sim can
                # quiesce.
                return
            if ring.pending == 0:
                # Architecturally the scheduler spins on the DMA STATUS
                # register; the simulation sleeps until the next arrival
                # and charges half a poll period (the mean discovery
                # delay of a free-running poll loop).
                yield dma.nxp_arrival.get()
                if dev is not None and dev.killed:
                    return
                yield self.sim.timeout(self.cfg.nxp_poll_period_ns / 2.0)
                if self.machine.phys.read_u64(status_addr) == 0:
                    continue  # stale wakeup: descriptor already consumed
            dispatch_start = self.sim.now
            yield self.sim.timeout(self.cfg.nxp_sched_dispatch_ns)
            slot = ring.pop_addr()
            raw = self.machine.phys.read(slot, DESCRIPTOR_BYTES)
            if self.machine.hardened:
                desc = yield from self._hardened_admit(raw)
                if desc is None:
                    continue
            else:
                desc = MigrationDescriptor.unpack(raw)
            task = self.machine.kernel.task_by_pid(desc.pid)
            self._switch_address_space(task, desc.cr3)
            yield self.sim.timeout(self.cfg.nxp_context_switch_ns)

            # Which device's core this residency runs on: the singleton
            # platform is device 0.  The attr feeds per-device
            # utilization (analysis/metrics.py) and causal trace labels.
            dev_index = 0 if dev is None else dev.index
            if desc.is_call:
                self.machine.trace.record("nxp_dispatch_call", pid=desc.pid, target=desc.target)
                self.machine.trace.begin(
                    "nxp_resident", pid=desc.pid, entry="call", device=dev_index
                )
                yield from self.cpu.setup_call(desc.target, desc.args, sp=desc.nxp_sp)
            else:
                self.machine.trace.record("nxp_dispatch_return", pid=desc.pid)
                self.machine.trace.begin(
                    "nxp_resident", pid=desc.pid, entry="return", device=dev_index
                )
                if not task.nxp_context_stack:
                    raise ProcessCrash(task, "return descriptor with no suspended NxP context")
                ctx = task.nxp_context_stack.pop()
                self.cpu.regs.restore(ctx.regs)
                # Simulated return from the (hijacked) JAL: pc <- ra,
                # return value in a0.
                self.cpu.pc = self.cpu.regs.read(self.cpu.abi.link_reg)
                self.cpu.regs.write(self.cpu.abi.ret_reg, desc.retval)

            yield from self._run_thread(task)
            self.machine.stats.sample("nxp.busy_ns", self.sim.now - dispatch_start)

    # -- hardened intake (active only when a fault plan is armed) -----------------

    def _hardened_admit(self, raw: bytes) -> Generator:
        """Gate one popped descriptor through faults, checksum and dedup.

        Returns the descriptor to dispatch, or ``None`` when it was
        consumed here (dropped, discarded, or answered from the replay
        cache).  A permanently hung/crashed NxP parks the scheduler on
        a never-triggered event — from the host's perspective the
        device simply stops answering, which is exactly what the
        watchdog/health machinery must detect.
        """
        machine = self.machine
        for rule in machine.injector.pull("nxp"):
            if rule.kind == "nxp_crash":
                machine.stats.count("nxp.crashed")
                machine.trace.record("nxp_crash")
                yield from self._park_forever()
            elif rule.kind == "nxp_hang":
                if rule.delay_ns > 0:
                    # Transient stall: the in-flight descriptor is lost,
                    # but the device recovers — dedup state untouched so
                    # the sender's retransmit is processed fresh.
                    machine.stats.count("nxp.stall")
                    machine.trace.record("nxp_stall", delay_ns=rule.delay_ns)
                    yield self.sim.timeout(rule.delay_ns)
                    return None
                machine.stats.count("nxp.hung")
                machine.trace.record("nxp_hang")
                yield from self._park_forever()
        try:
            desc = MigrationDescriptor.unpack(raw)
        except DescriptorCorrupt:
            machine.stats.count("nxp.desc_corrupt_discarded")
            machine.trace.record("desc_discard", reason="corrupt", side="nxp")
            return None
        last = self._last_req_seq.get(desc.pid, 0)
        if desc.seq <= last:
            if desc.seq == last and self._resp_ready.get(desc.pid):
                # Retransmit of a request already answered: the answer
                # (or its interrupt) was lost in flight — replay it.
                machine.stats.count("nxp.replay")
                machine.trace.record("replay", pid=desc.pid, seq=desc.seq)
                yield from self._retransmit_response(desc.pid)
            else:
                # Duplicate of the request currently being processed
                # (or an ancient straggler): nothing to do yet.
                machine.stats.count("nxp.dup_discarded")
            return None
        self._last_req_seq[desc.pid] = desc.seq
        self._resp_ready[desc.pid] = False
        return desc

    def _park_forever(self) -> Generator:
        yield Event(self.sim, name="nxp.dead")  # never triggered

    def _retransmit_response(self, pid: int) -> Generator:
        desc = self._resp_cache.get(pid)
        if desc is None:
            return
        task = self.machine.kernel.task_by_pid(pid)
        yield from self._push_desc(task, desc)

    def _switch_address_space(self, task: Task, cr3: int) -> None:
        tables = task.process.page_tables
        if cr3 and tables.cr3 != cr3:
            raise ProcessCrash(task, f"descriptor CR3 {cr3:#x} != process CR3 {tables.cr3:#x}")
        if self.current_tables is not tables:
            self.current_tables = tables
            self.port.flush_tlbs()
            # The decode cache is keyed by virtual PC; a different
            # address space may map different code at the same PCs.
            self.cpu.invalidate_decode_cache()
            self.machine.stats.count("nxp.address_space_switch")

    # -- thread execution until it leaves the NxP ----------------------------------

    def _run_thread(self, task: Task) -> Generator:
        cpu = self.cpu
        step = cpu.step
        stub_pcs = STUB_PCS
        while True:
            if cpu.pc in stub_pcs:
                yield from service_stub(self.machine, task, cpu)
                continue
            try:
                yield from step()
            except ReturnToRuntime as ret:
                yield from self._return_migration(task, ret.retval)
                return
            except PageFault as fault:
                if fault.kind == PageFault.NX_VIOLATION and fault.is_exec:
                    self.machine.kernel.classify_exec_fault(task, fault, running_on="nisa")
                    yield from self._call_migration(task, fault.vaddr, trigger="nx")
                    return
                raise ProcessCrash(
                    task,
                    f"unexpected nxp page fault at pc={cpu.pc:#x}: "
                    f"{fault.access_kind} access to {fault.vaddr:#x} ({fault.kind})",
                    pc=cpu.pc,
                    fault=fault,
                )
            except MisalignedFetch as fault:
                # Variable-length HISA code rarely sits 8-aligned: treat
                # as a migration request if it points at host text.
                self.machine.kernel.classify_exec_fault(
                    task, PageFault(fault.pc, PageFault.NX_VIOLATION, is_exec=True), "nisa"
                )
                yield from self._call_migration(task, fault.pc, trigger="misaligned")
                return
            except IllegalInstruction as fault:
                self.machine.kernel.classify_exec_fault(
                    task, PageFault(fault.pc, PageFault.NX_VIOLATION, is_exec=True), "nisa"
                )
                yield from self._call_migration(task, fault.pc, trigger="illegal")
                return
            except EnvCall:
                code, value = cpu.get_args(2)
                result = self.machine.kernel.service_syscall(task, code, value)
                cpu.regs.write(cpu.abi.ret_reg, result or 0)
            except Halted:
                yield from self._return_migration(task, 0)
                return
            except IsaFault as fault:
                raise ProcessCrash(
                    task, f"nxp fault at pc={cpu.pc:#x}: {fault}", pc=cpu.pc
                )

    # -- outbound migrations (Listing 2) ----------------------------------------------

    def _return_migration(self, task: Task, retval: int) -> Generator:
        cfg = self.cfg
        yield self.sim.timeout(cfg.nxp_desc_build_ns)
        task.nxp_sp = self.cpu.sp
        desc = MigrationDescriptor(
            kind=KIND_RETURN,
            direction=DIR_N2H,
            pid=task.pid,
            retval=retval,
            cr3=task.process.cr3,
            nxp_sp=self.cpu.sp,
        )
        yield from self._send_to_host(task, desc)
        self.machine.trace.record("n2h_return", pid=task.pid)
        self.machine.trace.end("nxp_resident", pid=task.pid, exit="return")

    def _call_migration(self, task: Task, target: int, trigger: str) -> Generator:
        cfg = self.cfg
        yield self.sim.timeout(cfg.nxp_fault_entry_ns)
        self.machine.stats.count(f"nxp.migrate_trigger.{trigger}")
        args = self.cpu.get_args(6)
        # Save this nesting level's context; it resumes on the matching
        # return descriptor.
        task.nxp_context_stack.append(
            CpuContext(regs=self.cpu.regs.snapshot(), pc=target)
        )
        task.nxp_sp = self.cpu.sp
        yield self.sim.timeout(cfg.nxp_desc_build_ns)
        desc = MigrationDescriptor(
            kind=KIND_CALL,
            direction=DIR_N2H,
            pid=task.pid,
            target=target,
            args=args,
            cr3=task.process.cr3,
            nxp_sp=self.cpu.sp,
        )
        yield from self._send_to_host(task, desc)
        self.machine.trace.record("n2h_call", pid=task.pid, target=target)
        self.machine.trace.end("nxp_resident", pid=task.pid, exit="call")

    def _send_to_host(self, task: Task, desc: MigrationDescriptor) -> Generator:
        if self.machine.hardened:
            # Stamp the per-pid n2h sequence and remember the descriptor:
            # if this answer (or its IRQ) is lost, the host's retransmit
            # of the matching request replays it from the cache.  The
            # counter is machine-wide (not per device) so replies stay
            # monotonic per pid across the whole fleet.
            seq = self.machine.n2h_seq.get(task.pid, 0) + 1
            self.machine.n2h_seq[task.pid] = seq
            desc.seq = seq
            self._resp_cache[task.pid] = desc
            self._resp_ready[task.pid] = True
        yield from self._push_desc(task, desc)

    def _push_desc(self, task: Task, desc: MigrationDescriptor) -> Generator:
        cfg = self.cfg
        if cfg.injected_migration_rt_ns:
            # Prior-work overhead emulation (see host_runtime counterpart).
            yield self.sim.timeout(cfg.injected_migration_rt_ns / 2.0)
        dev = self._device
        if self._staging is None:
            # A small rotating pool so a burst in flight is never
            # overwritten by the next outbound descriptor.
            bram = self.machine.bram_phys if dev is None else dev.bram
            self._staging = [
                bram.alloc(DESCRIPTOR_BYTES, align=64) for _ in range(8)
            ]
            self._staging_idx = 0
        buf = self._staging[self._staging_idx]
        self._staging_idx = (self._staging_idx + 1) % len(self._staging)
        self.machine.phys.write(buf, desc.pack())
        yield self.sim.timeout(cfg.nxp_context_switch_ns)  # back to scheduler
        yield self.sim.timeout(cfg.nxp_dma_kick_ns)
        dma = self.machine.dma if dev is None else dev.dma
        self.sim.spawn(
            dma.push_to_host(buf, DESCRIPTOR_BYTES, pid=task.pid),
            name=f"dma-n2h-{task.name}",
        )
