"""Memory ports: how each core's loads/stores/fetches reach memory.

The *same* virtual address resolves through the *same* page tables on
both sides (Fig. 1), but the cost differs radically by core and by
physical target — that asymmetry is the entire premise of Flick:

================  ======================  ==========================
access            host core               NxP core
================  ======================  ==========================
host DRAM         cached, ~ns             PCIe read, ~0.8 us
NxP DRAM (BAR0)   PCIe read, ~825 ns      local, ~267 ns (TLB hit)
NxP stack BRAM    PCIe read               on-chip, ~10 ns
translation       hardware-invisible      16-entry TLBs + timed
                  (charged 0, cached)     cross-PCIe table walk
================  ======================  ==========================

The host port enforces the normal NX sense on instruction fetch; the
NxP port enforces the *inverted* sense (Section IV-B2) and additionally
faults on misaligned/illegal fetches, which its interpreter raises
naturally when it wanders into HISA bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from repro.core.config import FlickConfig
from repro.interconnect.pcie import PCIeLink
from repro.memory.cache import Cache, CacheableFilter
from repro.memory.mmu import PageWalker
from repro.memory.paging import PageFault, PageTables, Translation
from repro.memory.physical import PhysicalMemory
from repro.memory.tlb import TLB
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["HostMemoryPort", "FallbackMemoryPort", "NxpMemoryPort", "TranslationCache"]


class TranslationCache:
    """A software-side memo of recent translations (models the host's
    hardware TLB being effectively free at our timescale).  Invalidated
    whenever the page tables change (generation counter).

    With ``fast`` (default), :meth:`entry` serves hits from one flat
    dict keyed by the 4 KB frame number.  Each value is a reusable
    ``(paddr - vaddr, writable, nx)`` tuple, so a hit is a single probe
    with zero allocation — huge pages simply populate one flat entry per
    4 KB frame actually touched.  With ``fast=False`` every lookup goes
    through the legacy coarsest-first 3-probe path.  Neither path yields
    or counts stats, so the toggle cannot affect simulated results.
    """

    def __init__(self, tables: PageTables, fast: bool = True):
        self.tables = tables
        self.fast = fast
        self._cache: Dict[int, Translation] = {}
        self._flat: Dict[int, Tuple[int, bool, bool]] = {}
        self._generation = tables.generation

    def _sync(self) -> None:
        if self._generation != self.tables.generation:
            self._cache.clear()
            self._flat.clear()
            self._generation = self.tables.generation

    def entry(self, vaddr: int) -> Tuple[int, bool, bool]:
        """Return ``(paddr - vaddr, writable, nx)`` for the page holding
        ``vaddr`` — the allocation-free hot path used by the ports."""
        if self._generation != self.tables.generation:
            self._cache.clear()
            self._flat.clear()
            self._generation = self.tables.generation
        if self.fast:
            key = vaddr >> 12
            e = self._flat.get(key)
            if e is None:
                tr = self.tables.translate(vaddr)
                e = (tr.paddr - vaddr, tr.writable, tr.nx)
                self._flat[key] = e
            return e
        tr = self._probe(vaddr)
        return (tr.paddr - vaddr, tr.writable, tr.nx)

    def translate(self, vaddr: int) -> Translation:
        self._sync()
        return self._probe(vaddr)

    def _probe(self, vaddr: int) -> Translation:
        # Probe coarsest-first so huge pages hit with one lookup.
        for bits in (30, 21, 12):
            key = vaddr >> bits
            tr = self._cache.get((bits << 56) | key)
            if tr is not None and tr.page_base_vaddr <= vaddr < tr.page_base_vaddr + tr.page_size:
                return Translation(
                    vaddr=vaddr,
                    paddr=tr.page_base_paddr | (vaddr - tr.page_base_vaddr),
                    page_size=tr.page_size,
                    writable=tr.writable,
                    user=tr.user,
                    nx=tr.nx,
                )
        tr = self.tables.translate(vaddr)
        bits = {1 << 30: 30, 1 << 21: 21, 1 << 12: 12}[tr.page_size]
        self._cache[(bits << 56) | (vaddr >> bits)] = tr
        return tr


class HostMemoryPort:
    """A host core's view of one process's address space."""

    #: NX sense enforced on instruction fetch: pages whose NX bit equals
    #: this value are executable through this port.  The JIT tier's
    #: trace compiler validates code pages against it (repro.isa.jit).
    exec_nx_sense = False

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        phys: PhysicalMemory,
        link: PCIeLink,
        tables: PageTables,
        stats: Optional[StatRegistry] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.phys = phys
        self.link = link
        self.tables = tables
        self.mm = cfg.memory_map
        self.stats = stats or StatRegistry()
        self.tcache = TranslationCache(tables, fast=cfg.translation_fast_path)
        self._c_load = self.stats.counter("host.load")
        self._c_load_pcie = self.stats.counter("host.load_pcie")
        self._c_store = self.stats.counter("host.store")
        self._c_store_pcie = self.stats.counter("host.store_pcie")
        # Timeout objects are immutable; reusing one per fixed latency
        # avoids an allocation on every access.
        self._pause_cached_mem = sim.timeout(cfg.host_cached_mem_ns)

    @property
    def code_generation(self) -> int:
        """Validity token for decoded-instruction caches built over this
        port (see :class:`repro.isa.interpreter.Interpreter`)."""
        return self.tables.code_generation

    def fetch(self, vaddr: int, nbytes: int) -> Generator:
        delta, _writable, nx = self.tcache.entry(vaddr)
        if nx:
            # The Flick trigger: host fetched NxP-ISA (or data) pages.
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        if self.cfg.host_ifetch_ns:
            yield self.sim.timeout(self.cfg.host_ifetch_ns)
        return self.phys.read(vaddr + delta, nbytes)

    def fetch_check(self, vaddr: int, nbytes: int) -> Generator:
        """Charge exactly what :meth:`fetch` charges — same faults, same
        timed yields, same stats — without reading the bytes.  Used by
        the decoded-instruction cache to keep fetch timing and NX
        semantics bit-identical while skipping re-decode."""
        _delta, _writable, nx = self.tcache.entry(vaddr)
        if nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        if self.cfg.host_ifetch_ns:
            yield self.sim.timeout(self.cfg.host_ifetch_ns)

    def fetch_check_sync(self, vaddr: int, nbytes: int) -> bool:
        """Synchronous :meth:`fetch_check`: performs the full check and
        returns True when no simulated time is due (the default host
        model has a free I-fetch), else returns False having done
        nothing so the caller falls back to the generator path."""
        if self.cfg.host_ifetch_ns:
            return False
        _delta, _writable, nx = self.tcache.entry(vaddr)
        if nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        return True

    def load(self, vaddr: int, nbytes: int) -> Generator:
        delta, _writable, _nx = self.tcache.entry(vaddr)
        paddr = vaddr + delta
        self._c_load.value += 1
        if self.mm.host_dram_contains(paddr):
            yield self._pause_cached_mem
            return self.phys.read(paddr, nbytes)
        # BAR access: a real non-posted PCIe read.
        self._c_load_pcie.value += 1
        service = self.cfg.nxp_local_dram_ns - 120.0
        if self.mm.bram_contains(paddr):
            service = self.cfg.nxp_bram_ns
        data = yield from self.link.read(paddr, nbytes, service_ns=service)
        return data

    def store(self, vaddr: int, data: bytes) -> Generator:
        delta, writable, _nx = self.tcache.entry(vaddr)
        if not writable:
            raise PageFault(vaddr, PageFault.WRITE_PROTECT, is_write=True)
        paddr = vaddr + delta
        self._c_store.value += 1
        self.tables.note_code_store(vaddr, len(data))
        if self.mm.host_dram_contains(paddr):
            yield self._pause_cached_mem
            self.phys.write(paddr, data)
            return
        self._c_store_pcie.value += 1
        yield from self.link.write(paddr, data, posted=True)


class FallbackMemoryPort(HostMemoryPort):
    """A host core *emulating the NISA* after the NxP died (degraded mode).

    The host-side fallback interpreter executes NxP-ISA code, so its
    fetch path must apply the **inverted** NX sense the NxP MMU would
    (Section IV-B2): NX-set pages hold NISA code and execute normally,
    NX-clear pages are host code and fault — which the fallback loop
    turns into a nested host call.  Data accesses are unchanged from the
    host port; NxP-resident data (BRAM stack, BAR0 windows) is reached
    over PCIe at host cost, which is part of the degradation penalty.
    """

    exec_nx_sense = True  # inverted: NX-set pages are the executable ones

    def fetch(self, vaddr: int, nbytes: int) -> Generator:
        delta, _writable, nx = self.tcache.entry(vaddr)
        if not nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        if self.cfg.host_ifetch_ns:
            yield self.sim.timeout(self.cfg.host_ifetch_ns)
        return self.phys.read(vaddr + delta, nbytes)

    def fetch_check(self, vaddr: int, nbytes: int) -> Generator:
        _delta, _writable, nx = self.tcache.entry(vaddr)
        if not nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        if self.cfg.host_ifetch_ns:
            yield self.sim.timeout(self.cfg.host_ifetch_ns)

    def fetch_check_sync(self, vaddr: int, nbytes: int) -> bool:
        if self.cfg.host_ifetch_ns:
            return False
        _delta, _writable, nx = self.tcache.entry(vaddr)
        if not nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        return True


class NxpMemoryPort:
    """The NxP core's memory pipeline: TLBs + walker + caches + routing."""

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        phys: PhysicalMemory,
        link: PCIeLink,
        walker: PageWalker,
        stats: Optional[StatRegistry] = None,
        tables_provider: Optional[Callable[[], Optional[PageTables]]] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.phys = phys
        self.link = link
        self.walker = walker
        self.tables_provider = tables_provider
        self.mm = cfg.memory_map
        self.stats = stats or StatRegistry()
        self._c_fetch = self.stats.counter("nxp.fetch")
        self._c_load = self.stats.counter("nxp.load")
        self._c_load_local = self.stats.counter("nxp.load_local")
        self._c_load_pcie = self.stats.counter("nxp.load_pcie")
        self._c_store = self.stats.counter("nxp.store")
        self._c_store_pcie = self.stats.counter("nxp.store_pcie")
        self.itlb = TLB("nxp.itlb", cfg.tlb_entries, stats=self.stats)
        self.dtlb = TLB("nxp.dtlb", cfg.tlb_entries, stats=self.stats)
        self.icache = Cache(
            "nxp.icache", cfg.nxp_icache_lines, cfg.nxp_icache_line_bytes, stats=self.stats
        )
        self.dcache = Cache(
            "nxp.dcache", cfg.nxp_dcache_lines, cfg.nxp_dcache_line_bytes, stats=self.stats
        )
        self.cacheable = CacheableFilter()
        # Reusable Timeouts for the fixed latencies on the hot path
        # (immutable, so sharing one object per latency is safe).
        self._pause_tlb_hit = sim.timeout(cfg.tlb_hit_ns)
        self._pause_icache_hit = sim.timeout(cfg.nxp_icache_hit_ns)
        self._pause_bram = sim.timeout(cfg.nxp_bram_ns)
        self._pause_local_read = sim.timeout(cfg.nxp_to_local_read_ns)
        self._pause_local_write = sim.timeout(cfg.nxp_to_local_write_ns)
        # Program both TLB remap registers (what the host driver does).
        for tlb in (self.itlb, self.dtlb):
            tlb.program_remap(self.mm.bar0_base, self.mm.nxp_local_size, self.mm.bar0_remap_offset)

    # -- shared translate path ------------------------------------------------

    def _translate(self, tlb: TLB, vaddr: int, is_exec: bool) -> Generator:
        entry = tlb.lookup(vaddr)
        if entry is None:
            tr = yield from self.walker.walk(vaddr)  # raises PageFault if unmapped
            entry = tlb.insert(tr)
        else:
            yield self._pause_tlb_hit
        if is_exec and not entry.nx:
            # Inverted NX sense: host-ISA pages fault on the NxP.
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        return entry

    def flush_tlbs(self) -> None:
        """Flushed on context/address-space switch (CR3 change)."""
        self.itlb.flush()
        self.dtlb.flush()

    @property
    def code_generation(self) -> Optional[int]:
        """Validity token for decoded-instruction caches; ``None`` (cache
        disabled) when no address space is installed yet."""
        if self.tables_provider is None:
            return None
        tables = self.tables_provider()
        return tables.code_generation if tables is not None else None

    # -- port interface -----------------------------------------------------------

    def fetch(self, vaddr: int, nbytes: int) -> Generator:
        entry = yield from self._translate(self.itlb, vaddr, is_exec=True)
        paddr = entry.paddr_for(vaddr)
        self._c_fetch.value += 1
        if self.icache.access(paddr):
            yield self._pause_icache_hit
            return self.phys.read(paddr, nbytes)
        # I-cache miss: line fill from wherever the code lives (host DRAM
        # for both ISAs' text, per the placement policy).
        line = self.cfg.nxp_icache_line_bytes
        line_base = paddr & ~(line - 1)
        yield from self.link.read(line_base, line, service_ns=self.cfg.host_dram_ns)
        return self.phys.read(paddr, nbytes)

    def fetch_check(self, vaddr: int, nbytes: int) -> Generator:
        """Replay :meth:`fetch`'s exact timing, faults and stats (TLB,
        walker, I-cache, line fill) without returning the bytes; the
        decoded-instruction cache's re-decode bypass."""
        entry = yield from self._translate(self.itlb, vaddr, is_exec=True)
        paddr = entry.paddr_for(vaddr)
        self._c_fetch.value += 1
        if self.icache.access(paddr):
            yield self._pause_icache_hit
            return
        line = self.cfg.nxp_icache_line_bytes
        line_base = paddr & ~(line - 1)
        yield from self.link.read(line_base, line, service_ns=self.cfg.host_dram_ns)

    def fetch_check_fast(self, vaddr: int, nbytes: int):
        """:meth:`fetch_check` minus the generator overhead for the
        ITLB-hit + I-cache-hit case: all bookkeeping happens here,
        synchronously, and the caller receives the ``(tlb, icache)``
        pause pair to yield — one event each, the exact delays
        :meth:`fetch_check` would charge.  Any other case returns a
        generator that finishes the check (the probes already done are
        not repeated, so counters stay single-counted).

        Doing the bookkeeping before the pauses are charged is safe
        because this port is private to one core: no other process can
        observe the TLB/I-cache state between the probe and the yields.
        """
        entry = self.itlb.lookup(vaddr)
        if entry is None:
            return self._fetch_check_walk(vaddr)
        if not entry.nx:
            # Inverted NX sense (host-ISA pages fault on the NxP); the
            # fault must fire *after* the TLB-hit latency, as in
            # _translate, so it is raised from a timed continuation.
            return self._fetch_check_nx_fault(vaddr)
        paddr = entry.paddr_for(vaddr)
        self._c_fetch.value += 1
        if self.icache.access(paddr):
            return (self._pause_tlb_hit, self._pause_icache_hit)
        return self._fetch_check_fill(paddr)

    def _fetch_check_walk(self, vaddr: int) -> Generator:
        # ITLB miss (already counted by the probe): walk, insert, then
        # the tail of fetch_check.
        tr = yield from self.walker.walk(vaddr)
        entry = self.itlb.insert(tr)
        if not entry.nx:
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        paddr = entry.paddr_for(vaddr)
        self._c_fetch.value += 1
        if self.icache.access(paddr):
            yield self._pause_icache_hit
            return
        line = self.cfg.nxp_icache_line_bytes
        line_base = paddr & ~(line - 1)
        yield from self.link.read(line_base, line, service_ns=self.cfg.host_dram_ns)

    def _fetch_check_nx_fault(self, vaddr: int) -> Generator:
        yield self._pause_tlb_hit
        raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)

    def _fetch_check_fill(self, paddr: int) -> Generator:
        # ITLB hit, I-cache miss (both already recorded): charge the
        # TLB-hit latency, then the line fill.
        yield self._pause_tlb_hit
        line = self.cfg.nxp_icache_line_bytes
        line_base = paddr & ~(line - 1)
        yield from self.link.read(line_base, line, service_ns=self.cfg.host_dram_ns)

    def load(self, vaddr: int, nbytes: int) -> Generator:
        entry = yield from self._translate(self.dtlb, vaddr, is_exec=False)
        paddr = entry.paddr_for(vaddr)
        route, local_paddr = self.dtlb.route(paddr)
        self._c_load.value += 1
        if self.mm.bram_contains(paddr):
            yield self._pause_bram
            return self.phys.read(paddr, nbytes)
        if route == "local":
            # Cacheable windows are registered in host-view (BAR)
            # addresses, the canonical physical space of this model.
            if self.cacheable.cacheable(paddr) and self.dcache.access(paddr):
                yield self._pause_icache_hit
            else:
                yield self._pause_local_read
            self._c_load_local.value += 1
            return self.phys.read(paddr, nbytes)
        # Cross-PCIe read of host memory.
        self._c_load_pcie.value += 1
        data = yield from self.link.read(paddr, nbytes, service_ns=self.cfg.host_dram_ns)
        return data

    def store(self, vaddr: int, data: bytes) -> Generator:
        entry = yield from self._translate(self.dtlb, vaddr, is_exec=False)
        if not entry.writable:
            raise PageFault(vaddr, PageFault.WRITE_PROTECT, is_write=True)
        paddr = entry.paddr_for(vaddr)
        route, local_paddr = self.dtlb.route(paddr)
        self._c_store.value += 1
        if self.tables_provider is not None:
            tables = self.tables_provider()
            if tables is not None:
                tables.note_code_store(vaddr, len(data))
        if self.mm.bram_contains(paddr):
            yield self._pause_bram
            self.phys.write(paddr, data)
            return
        if route == "local":
            if self.cacheable.cacheable(paddr):
                self.dcache.invalidate_range(paddr, len(data))
            yield self._pause_local_write
            self.phys.write(paddr, data)
            return
        self._c_store_pcie.value += 1
        yield from self.link.write(paddr, data, posted=True)
