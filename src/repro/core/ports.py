"""Memory ports: how each core's loads/stores/fetches reach memory.

The *same* virtual address resolves through the *same* page tables on
both sides (Fig. 1), but the cost differs radically by core and by
physical target — that asymmetry is the entire premise of Flick:

================  ======================  ==========================
access            host core               NxP core
================  ======================  ==========================
host DRAM         cached, ~ns             PCIe read, ~0.8 us
NxP DRAM (BAR0)   PCIe read, ~825 ns      local, ~267 ns (TLB hit)
NxP stack BRAM    PCIe read               on-chip, ~10 ns
translation       hardware-invisible      16-entry TLBs + timed
                  (charged 0, cached)     cross-PCIe table walk
================  ======================  ==========================

The host port enforces the normal NX sense on instruction fetch; the
NxP port enforces the *inverted* sense (Section IV-B2) and additionally
faults on misaligned/illegal fetches, which its interpreter raises
naturally when it wanders into HISA bytes.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.config import FlickConfig
from repro.interconnect.pcie import PCIeLink
from repro.memory.cache import Cache, CacheableFilter
from repro.memory.mmu import PageWalker
from repro.memory.paging import PageFault, PageTables, Translation
from repro.memory.physical import PhysicalMemory
from repro.memory.tlb import TLB
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["HostMemoryPort", "NxpMemoryPort", "TranslationCache"]


class TranslationCache:
    """A software-side memo of recent translations (models the host's
    hardware TLB being effectively free at our timescale).  Invalidated
    whenever the page tables change (generation counter)."""

    def __init__(self, tables: PageTables):
        self.tables = tables
        self._cache: Dict[int, Translation] = {}
        self._generation = tables.generation

    def translate(self, vaddr: int) -> Translation:
        if self._generation != self.tables.generation:
            self._cache.clear()
            self._generation = self.tables.generation
        # Probe coarsest-first so huge pages hit with one lookup.
        for bits in (30, 21, 12):
            key = vaddr >> bits
            tr = self._cache.get((bits << 56) | key)
            if tr is not None and tr.page_base_vaddr <= vaddr < tr.page_base_vaddr + tr.page_size:
                return Translation(
                    vaddr=vaddr,
                    paddr=tr.page_base_paddr | (vaddr - tr.page_base_vaddr),
                    page_size=tr.page_size,
                    writable=tr.writable,
                    user=tr.user,
                    nx=tr.nx,
                )
        tr = self.tables.translate(vaddr)
        bits = {1 << 30: 30, 1 << 21: 21, 1 << 12: 12}[tr.page_size]
        self._cache[(bits << 56) | (vaddr >> bits)] = tr
        return tr


class HostMemoryPort:
    """A host core's view of one process's address space."""

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        phys: PhysicalMemory,
        link: PCIeLink,
        tables: PageTables,
        stats: Optional[StatRegistry] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.phys = phys
        self.link = link
        self.tables = tables
        self.mm = cfg.memory_map
        self.stats = stats or StatRegistry()
        self.tcache = TranslationCache(tables)

    def fetch(self, vaddr: int, nbytes: int) -> Generator:
        tr = self.tcache.translate(vaddr)
        if tr.nx:
            # The Flick trigger: host fetched NxP-ISA (or data) pages.
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        if self.cfg.host_ifetch_ns:
            yield self.sim.timeout(self.cfg.host_ifetch_ns)
        return self.phys.read(tr.paddr, nbytes)

    def load(self, vaddr: int, nbytes: int) -> Generator:
        tr = self.tcache.translate(vaddr)
        paddr = tr.paddr
        self.stats.count("host.load")
        if self.mm.host_dram_contains(paddr):
            yield self.sim.timeout(self.cfg.host_cached_mem_ns)
            return self.phys.read(paddr, nbytes)
        # BAR access: a real non-posted PCIe read.
        self.stats.count("host.load_pcie")
        service = self.cfg.nxp_local_dram_ns - 120.0
        if self.mm.bram_contains(paddr):
            service = self.cfg.nxp_bram_ns
        data = yield from self.link.read(paddr, nbytes, service_ns=service)
        return data

    def store(self, vaddr: int, data: bytes) -> Generator:
        tr = self.tcache.translate(vaddr)
        if not tr.writable:
            raise PageFault(vaddr, PageFault.WRITE_PROTECT, is_write=True)
        paddr = tr.paddr
        self.stats.count("host.store")
        if self.mm.host_dram_contains(paddr):
            yield self.sim.timeout(self.cfg.host_cached_mem_ns)
            self.phys.write(paddr, data)
            return
        self.stats.count("host.store_pcie")
        yield from self.link.write(paddr, data, posted=True)


class NxpMemoryPort:
    """The NxP core's memory pipeline: TLBs + walker + caches + routing."""

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        phys: PhysicalMemory,
        link: PCIeLink,
        walker: PageWalker,
        stats: Optional[StatRegistry] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.phys = phys
        self.link = link
        self.walker = walker
        self.mm = cfg.memory_map
        self.stats = stats or StatRegistry()
        self.itlb = TLB("nxp.itlb", cfg.tlb_entries, stats=self.stats)
        self.dtlb = TLB("nxp.dtlb", cfg.tlb_entries, stats=self.stats)
        self.icache = Cache(
            "nxp.icache", cfg.nxp_icache_lines, cfg.nxp_icache_line_bytes, stats=self.stats
        )
        self.dcache = Cache(
            "nxp.dcache", cfg.nxp_dcache_lines, cfg.nxp_dcache_line_bytes, stats=self.stats
        )
        self.cacheable = CacheableFilter()
        # Program both TLB remap registers (what the host driver does).
        for tlb in (self.itlb, self.dtlb):
            tlb.program_remap(self.mm.bar0_base, self.mm.nxp_local_size, self.mm.bar0_remap_offset)

    # -- shared translate path ------------------------------------------------

    def _translate(self, tlb: TLB, vaddr: int, is_exec: bool) -> Generator:
        entry = tlb.lookup(vaddr)
        if entry is None:
            tr = yield from self.walker.walk(vaddr)  # raises PageFault if unmapped
            entry = tlb.insert(tr)
        else:
            yield self.sim.timeout(self.cfg.tlb_hit_ns)
        if is_exec and not entry.nx:
            # Inverted NX sense: host-ISA pages fault on the NxP.
            raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        return entry

    def flush_tlbs(self) -> None:
        """Flushed on context/address-space switch (CR3 change)."""
        self.itlb.flush()
        self.dtlb.flush()

    # -- port interface -----------------------------------------------------------

    def fetch(self, vaddr: int, nbytes: int) -> Generator:
        entry = yield from self._translate(self.itlb, vaddr, is_exec=True)
        paddr = entry.paddr_for(vaddr)
        self.stats.count("nxp.fetch")
        if self.icache.access(paddr):
            yield self.sim.timeout(self.cfg.nxp_icache_hit_ns)
            return self.phys.read(paddr, nbytes)
        # I-cache miss: line fill from wherever the code lives (host DRAM
        # for both ISAs' text, per the placement policy).
        line = self.cfg.nxp_icache_line_bytes
        line_base = paddr & ~(line - 1)
        yield from self.link.read(line_base, line, service_ns=self.cfg.host_dram_ns)
        return self.phys.read(paddr, nbytes)

    def load(self, vaddr: int, nbytes: int) -> Generator:
        entry = yield from self._translate(self.dtlb, vaddr, is_exec=False)
        paddr = entry.paddr_for(vaddr)
        route, local_paddr = self.dtlb.route(paddr)
        self.stats.count("nxp.load")
        if self.mm.bram_contains(paddr):
            yield self.sim.timeout(self.cfg.nxp_bram_ns)
            return self.phys.read(paddr, nbytes)
        if route == "local":
            # Cacheable windows are registered in host-view (BAR)
            # addresses, the canonical physical space of this model.
            if self.cacheable.cacheable(paddr) and self.dcache.access(paddr):
                yield self.sim.timeout(self.cfg.nxp_icache_hit_ns)
            else:
                yield self.sim.timeout(self.cfg.nxp_to_local_read_ns)
            self.stats.count("nxp.load_local")
            return self.phys.read(paddr, nbytes)
        # Cross-PCIe read of host memory.
        self.stats.count("nxp.load_pcie")
        data = yield from self.link.read(paddr, nbytes, service_ns=self.cfg.host_dram_ns)
        return data

    def store(self, vaddr: int, data: bytes) -> Generator:
        entry = yield from self._translate(self.dtlb, vaddr, is_exec=False)
        if not entry.writable:
            raise PageFault(vaddr, PageFault.WRITE_PROTECT, is_write=True)
        paddr = entry.paddr_for(vaddr)
        route, local_paddr = self.dtlb.route(paddr)
        self.stats.count("nxp.store")
        if self.mm.bram_contains(paddr):
            yield self.sim.timeout(self.cfg.nxp_bram_ns)
            self.phys.write(paddr, data)
            return
        if route == "local":
            if self.cacheable.cacheable(paddr):
                self.dcache.invalidate_range(paddr, len(data))
            yield self.sim.timeout(self.cfg.nxp_to_local_write_ns)
            self.phys.write(paddr, data)
            return
        self.stats.count("nxp.store_pcie")
        yield from self.link.write(paddr, data, posted=True)
