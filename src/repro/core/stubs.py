"""Runtime stubs: the per-region memory allocators (Section III-D).

The linker binds ``alloc``/``free`` calls to ``__host_malloc`` /
``__nxp_malloc`` (chosen by the *calling* function's ISA), and those
symbols resolve to fixed addresses in a reserved window.  When a core's
PC reaches a stub address, the runtime services the request natively —
the moral equivalent of a vDSO call into the libc allocator — and
returns to the caller using that ISA's convention.  Host allocations
come from the process's host-DRAM heap; NxP allocations from the NxP
local DRAM window, so data lands close to the core that asked for it.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Tuple

from repro.isa.interpreter import Interpreter
from repro.os.task import Task

__all__ = ["STUB_BASE", "STUB_SYMBOLS", "STUB_PCS", "is_stub", "service_stub"]

STUB_BASE = 0x7F00_0000
STUB_SYMBOLS: Dict[str, int] = {
    "__host_malloc": STUB_BASE + 0x000,
    "__nxp_malloc": STUB_BASE + 0x100,
    "__host_free": STUB_BASE + 0x200,
    "__nxp_free": STUB_BASE + 0x300,
}
_BY_ADDR = {addr: name for name, addr in STUB_SYMBOLS.items()}

#: The stub PCs as a set — step loops test membership per instruction,
#: so they hoist this into a local instead of calling :func:`is_stub`.
STUB_PCS = frozenset(_BY_ADDR)


def is_stub(pc: int) -> bool:
    return pc in _BY_ADDR


def service_stub(machine, task: Task, cpu: Interpreter) -> Generator:
    """Service the stub call at ``cpu.pc`` and return to the caller."""
    name = _BY_ADDR[cpu.pc]
    yield machine.sim.timeout(machine.cfg.malloc_service_ns)
    machine.stats.count(f"stub.{name}")
    process = task.process

    if name.endswith("malloc"):
        (size,) = cpu.get_args(1)
        heap = process.host_heap if name == "__host_malloc" else process.nxp_heap
        result = heap.alloc(max(int(size), 8), align=16)
    else:
        (addr,) = cpu.get_args(1)
        heap = process.host_heap if name == "__host_free" else process.nxp_heap
        heap.free(addr)
        result = 0

    cpu.regs.write(cpu.abi.ret_reg, result)
    # Return to the caller per the ISA's convention.
    if cpu.abi.link_reg is not None:
        cpu.pc = cpu.regs.read(cpu.abi.link_reg)
    else:
        raw = yield from cpu.port.load(cpu.sp, 8)
        cpu.sp = cpu.sp + 8
        cpu.pc = int.from_bytes(raw, "little")
