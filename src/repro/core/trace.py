"""Structured observability for the simulated Flick machine.

The trace layer is how the reproduction's headline numbers are
*measured* (Table III's round-trip breakdown, Fig. 5's crossover
analysis), so it has to stay trustworthy under everything the machine
can do — concurrent migrating tasks, nested bidirectional calls, and
bounded buffers.  Three building blocks:

**Instant events** (:class:`TraceEvent`) — typed, timestamped points
with an explicit ``pid`` field (``None`` marks a *device-scoped* event
such as a PCIe transaction that belongs to no task).  Events live in a
bounded ring: when full, the *oldest* event is evicted and the eviction
is counted in :attr:`MigrationTrace.dropped` — truncation is queryable,
never silent, and downstream analyses refuse or warn instead of
computing on partial data.

**Spans** (:class:`Span`) — durations with a begin and an end.  Each
task pid owns a *span stack*: :meth:`MigrationTrace.begin` pushes,
:meth:`MigrationTrace.end` closes the innermost open span with a
matching name, so nested bidirectional migrations (host→NxP→host→NxP)
attribute correctly and two concurrent pids can never conflate.
Device-side work that may overlap arbitrarily (DMA bursts, interrupt
delivery) uses the stack-free handle API instead —
:meth:`MigrationTrace.open_span` / :meth:`MigrationTrace.close`.

**Exports** — :meth:`MigrationTrace.to_chrome` emits Chrome
``trace_event``-format JSON (load it in ``chrome://tracing`` or
Perfetto); completed spans become complete (``"ph": "X"``) events and
instants become instant (``"ph": "i"``) events, one track per pid.
``python -m repro trace`` and ``python -m repro profile`` expose this
on the command line.

Invariance contract: tracing *observes* simulated time, it never
charges it.  With tracing enabled or disabled (or ``detail`` on or
off), a workload's return value, simulated nanoseconds, stat counters
and DES event count are bit-identical — parity-tested in
``tests/core/test_trace_parity.py`` exactly like the PR-1/PR-2 fast
paths.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Deque, Dict, IO, List, Optional, Union

__all__ = [
    "TraceEvent",
    "Span",
    "MigrationTrace",
    "TraceTruncated",
    "EVENT_CATEGORIES",
]

#: Event taxonomy (docs/OBSERVABILITY.md): every known event/span name
#: maps to the subsystem that emits it.  Used as the ``cat`` field of
#: the Chrome export; unknown names fall back to "misc".
EVENT_CATEGORIES: Dict[str, str] = {
    # thread lifecycle (host runtime)
    "thread_start": "thread",
    "thread_done": "thread",
    "thread": "thread",
    # protocol point events (host runtime / NxP platform / hosted twins)
    "h2n_call_start": "protocol",
    "h2n_call_done": "protocol",
    "n2h_call": "protocol",
    "n2h_return": "protocol",
    "n2h_call_exec": "protocol",
    "nxp_dispatch_call": "protocol",
    "nxp_dispatch_return": "protocol",
    "nxp_stack_alloc": "protocol",
    "dma_h2n": "protocol",
    # protocol spans
    "h2n_session": "protocol",
    "nxp_resident": "protocol",
    "n2h_host_exec": "protocol",
    # kernel events
    "irq": "kernel",
    "task_wake": "kernel",
    "minor_fault": "kernel",
    # tracing-JIT tier (repro.isa.jit)
    "jit_compile": "jit",
    "jit_invalidate": "jit",
    # device-scoped events/spans (interconnect)
    "dma.h2n": "device",
    "dma.n2h": "device",
    "irq_raise": "device",
    "irq_deliver": "device",
    "pcie_read": "device",
    "pcie_write": "device",
    "pcie_burst": "device",
    # fault injection + hardened protocol (docs/ROBUSTNESS.md)
    "fault_inject": "fault",
    "watchdog_trip": "fault",
    "retry": "fault",
    "replay": "fault",
    "spurious_irq": "fault",
    "late_delivery": "fault",
    "late_wake": "fault",
    "desc_discard": "fault",
    "nxp_stall": "fault",
    "nxp_hang": "fault",
    "nxp_crash": "fault",
    "health": "fault",
    # degraded (host-fallback) execution
    "degraded_call": "degraded",
    "degraded_n2h_call": "degraded",
    "degraded_done": "degraded",
    # serving-traffic harness (repro.analysis.serving): one span per
    # request, arrival -> completion (queueing delay included)
    "serve_request": "serving",
    # fleet placement decisions (repro.os.placement), emitted only when
    # trace-context propagation is on (docs/OBSERVABILITY.md)
    "placement": "placement",
    "nxp_kill": "fault",
}


class TraceTruncated(RuntimeError):
    """An analysis refused to run on a trace that dropped events."""


@dataclass(frozen=True)
class TraceEvent:
    """One instant event: a timestamped point with a task scope.

    ``pid`` is ``None`` for device-scoped events; task-scoped emitters
    always set it so per-pid analyses never have to guess.
    """

    time: float
    name: str
    pid: Optional[int]
    attrs: Dict[str, Any]

    def __repr__(self) -> str:
        kv = " ".join(f"{k}={v:#x}" if isinstance(v, int) and k in ("target", "addr")
                      else f"{k}={v}" for k, v in self.attrs.items())
        pid = f"pid={self.pid} " if self.pid is not None else ""
        return f"[{self.time / 1000.0:10.3f}us] {self.name} {pid}{kv}".rstrip()


@dataclass
class Span:
    """A named duration on one task's (or the device's) timeline."""

    name: str
    pid: Optional[int]
    start: float
    end: Optional[float] = None
    depth: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:
        end = f"{self.end / 1000.0:.3f}us" if self.end is not None else "..."
        pid = f" pid={self.pid}" if self.pid is not None else ""
        return f"<span {self.name}{pid} [{self.start / 1000.0:.3f}us..{end}] depth={self.depth}>"


class MigrationTrace:
    """Bounded event ring + per-task span stacks with drop accounting.

    The event ring keeps the most recent ``limit`` events; completed
    spans keep the most recent ``span_limit``.  Evictions increment
    :attr:`dropped` / :attr:`spans_dropped` so consumers can tell a
    complete trace from a windowed one (:attr:`truncated`).
    """

    def __init__(self, sim, limit: int = 100_000, span_limit: int = 100_000):
        self.sim = sim
        self.limit = limit
        self.span_limit = span_limit
        self.enabled = True
        #: opt-in device-level detail (per-transaction PCIe events);
        #: off by default so interpreted hot loops stay fast.
        self.detail = False
        self._events: Deque[TraceEvent] = deque()
        self._finished_spans: Deque[Span] = deque()
        self._stacks: Dict[Optional[int], List[Span]] = {}
        self._open_handles: List[Span] = []  # stack-free device spans
        self.dropped = 0
        self.spans_dropped = 0
        #: lifecycle violations: a handle closed twice, or a close on a
        #: handle this trace never tracked (evicted or foreign).  Always
        #: a bug in the emitter — surfaced in exports, never silent.
        self.span_anomalies = 0
        #: request-scoped causal tracing (docs/OBSERVABILITY.md): when
        #: enabled, every span/event emitted by a pid with a registered
        #: context is decorated with ``trace_id`` plus ``span_id`` /
        #: ``parent_span_id`` linkage.  Purely observational — attrs
        #: never feed timing — and off by default so untraced runs stay
        #: byte-for-byte on the pre-context code paths.
        self.context_enabled = False
        self._contexts: Dict[int, Dict[str, Any]] = {}
        self._context_roots: Dict[int, Optional[int]] = {}
        self._span_seq = 0

    # -- trace-context propagation -------------------------------------------

    def set_context(
        self,
        pid: int,
        trace_id: str,
        root_span_id: Optional[int] = None,
        **extra,
    ) -> None:
        """Register a causal context for ``pid``: all spans and events it
        emits from now on carry ``trace_id`` (+ any ``extra`` attrs).
        ``root_span_id`` is the parent of the pid's outermost spans —
        typically the ``serve_request`` span the pid is serving."""
        if not self.context_enabled:
            return
        self._contexts[pid] = {"trace_id": trace_id, **extra}
        self._context_roots[pid] = root_span_id

    def clear_context(self, pid: int) -> None:
        self._contexts.pop(pid, None)
        self._context_roots.pop(pid, None)

    def next_span_id(self) -> int:
        """Allocate a span id for externally-rooted spans (e.g. the
        serving harness's ``serve_request`` roots)."""
        self._span_seq += 1
        return self._span_seq

    def get_context(self, pid: Optional[int]) -> Optional[Dict[str, Any]]:
        if pid is None:
            return None
        return self._contexts.get(pid)

    def annotate(self, name: str, pid: Optional[int] = None, **attrs) -> Optional[Span]:
        """Attach attrs to the innermost *open* span named ``name`` on
        ``pid``'s stack (e.g. the device index once placement picks one).
        Returns the span, or None if no such span is open."""
        if not self.enabled:
            return None
        stack = self._stacks.get(pid)
        if stack:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].name == name:
                    stack[i].attrs.update(attrs)
                    return stack[i]
        for span in reversed(self._open_handles):
            if span.name == name and span.pid == pid:
                span.attrs.update(attrs)
                return span
        return None

    def _decorate(self, pid: Optional[int], attrs: Dict[str, Any], *, span: bool) -> None:
        """Merge ``pid``'s causal context into ``attrs`` (in place).

        Spans additionally get a fresh ``span_id`` and the innermost
        enclosing open span's id (or the context's root span) as
        ``parent_span_id``.  Explicit attrs win over context attrs so
        emitters can override.
        """
        ctx = self._contexts.get(pid) if pid is not None else None
        if ctx is None:
            if span and "trace_id" in attrs:
                # Externally-rooted span (a pid-less serving root that
                # passed its trace_id explicitly): id it, no parent.
                attrs.setdefault("span_id", self.next_span_id())
            return
        for key, value in ctx.items():
            attrs.setdefault(key, value)
        if span:
            attrs.setdefault("span_id", self.next_span_id())
            parent = self._innermost_open(pid)
            if parent is not None:
                parent_id = parent.attrs.get("span_id")
            else:
                parent_id = self._context_roots.get(pid)
            if parent_id is not None:
                attrs.setdefault("parent_span_id", parent_id)

    def _innermost_open(self, pid: Optional[int]) -> Optional[Span]:
        if pid is None:
            return None
        stack = self._stacks.get(pid)
        if stack:
            return stack[-1]
        for span in reversed(self._open_handles):
            if span.pid == pid:
                return span
        return None

    # -- instant events ------------------------------------------------------

    def record(self, name: str, pid: Optional[int] = None, **attrs) -> None:
        """Append one instant event (ring-bounded, drops counted)."""
        if not self.enabled:
            return
        if self.context_enabled:
            self._decorate(pid, attrs, span=False)
        if len(self._events) >= self.limit:
            self._events.popleft()
            self.dropped += 1
        self._events.append(TraceEvent(self.sim.now, name, pid, attrs))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def truncated(self) -> bool:
        """True when the ring evicted anything: analyses over
        :attr:`events` would see a window, not the whole run."""
        return self.dropped > 0 or self.spans_dropped > 0

    def names(self) -> List[str]:
        return [e.name for e in self._events]

    def filter(self, name: str) -> List[TraceEvent]:
        return [e for e in self._events if e.name == name]

    def count(self, name: str) -> int:
        return sum(1 for e in self._events if e.name == name)

    # -- spans ---------------------------------------------------------------

    def begin(self, name: str, pid: Optional[int] = None, **attrs) -> Optional[Span]:
        """Open a span on ``pid``'s span stack (LIFO nesting)."""
        if not self.enabled:
            return None
        if self.context_enabled:
            self._decorate(pid, attrs, span=True)
        stack = self._stacks.setdefault(pid, [])
        span = Span(name, pid, self.sim.now, depth=len(stack), attrs=attrs)
        stack.append(span)
        return span

    def end(self, name: str, pid: Optional[int] = None, **attrs) -> Optional[Span]:
        """Close the innermost open span named ``name`` on ``pid``'s stack.

        Searching from the top keeps protocol spans robust even if an
        unrelated span was left open deeper on the stack.
        """
        if not self.enabled:
            return None
        stack = self._stacks.get(pid)
        if not stack:
            return None
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].name == name:
                span = stack.pop(i)
                span.end = self.sim.now
                span.attrs.update(attrs)
                self._finish(span)
                return span
        return None

    def open_span(self, name: str, pid: Optional[int] = None, **attrs) -> Optional[Span]:
        """Open a stack-free span (device work that may overlap freely);
        close it with :meth:`close` on the returned handle."""
        if not self.enabled:
            return None
        if self.context_enabled:
            self._decorate(pid, attrs, span=True)
        span = Span(name, pid, self.sim.now, attrs=attrs)
        self._open_handles.append(span)
        return span

    def close(self, span: Optional[Span], **attrs) -> Optional[Span]:
        """Close a span handle from :meth:`open_span` (None-safe).

        A double close, or a close on a handle this trace is not
        tracking (evicted, or from another trace), increments
        :attr:`span_anomalies` — both mean the emitter's span lifecycle
        is broken, which would silently corrupt every duration-derived
        metric if it just passed.
        """
        if span is None:
            return None
        if span.end is not None:
            self.span_anomalies += 1
            return span
        try:
            self._open_handles.remove(span)
        except ValueError:
            # Not a handle we are tracking: close it anyway (the caller
            # holds a real Span and the duration is still meaningful)
            # but flag the lifecycle violation.
            self.span_anomalies += 1
        span.end = self.sim.now
        span.attrs.update(attrs)
        self._finish(span)
        return span

    def _finish(self, span: Span) -> None:
        if len(self._finished_spans) >= self.span_limit:
            self._finished_spans.popleft()
            self.spans_dropped += 1
        self._finished_spans.append(span)

    def finished_spans(
        self, name: Optional[str] = None, pid: Optional[int] = None
    ) -> List[Span]:
        """Completed spans, optionally filtered by name and/or pid."""
        return [
            s
            for s in self._finished_spans
            if (name is None or s.name == name) and (pid is None or s.pid == pid)
        ]

    def open_spans(self, pid: Optional[int] = None) -> List[Span]:
        """Spans begun but not yet ended (stacked and handle-based)."""
        out: List[Span] = []
        for stack_pid, stack in self._stacks.items():
            if pid is None or stack_pid == pid:
                out.extend(stack)
        out.extend(s for s in self._open_handles if pid is None or s.pid == pid)
        return out

    def spans(
        self, start_name: str, end_name: str, pid: Optional[int] = None
    ) -> List[float]:
        """Durations between matched start/end event pairs, paired
        **per pid** with a stack (so concurrent tasks never conflate and
        nested sessions pair innermost-first).

        Warns loudly when the event ring dropped anything: pairs whose
        start was evicted are silently incomplete.
        """
        if self.dropped:
            import warnings

            warnings.warn(
                f"trace ring dropped {self.dropped} events; span pairing over "
                f"a truncated trace may be incomplete",
                RuntimeWarning,
                stacklevel=2,
            )
        out: List[float] = []
        open_starts: Dict[Optional[int], List[float]] = {}
        for e in self._events:
            if pid is not None and e.pid != pid:
                continue
            if e.name == start_name:
                open_starts.setdefault(e.pid, []).append(e.time)
            elif e.name == end_name:
                starts = open_starts.get(e.pid)
                if starts:
                    out.append(e.time - starts.pop())
        return out

    # -- exports -------------------------------------------------------------

    def to_chrome(self, extra_events: Optional[List[dict]] = None) -> dict:
        """Build a Chrome ``trace_event``-format dict (JSON-serializable).

        Completed spans become complete events (``ph: "X"``), open spans
        become begin events (``ph: "B"``), instants become instant
        events (``ph: "i"``).  Timestamps are microseconds as the format
        requires; device-scoped entries (pid ``None``) land on pid 0's
        "device" track.  ``extra_events`` lets analyses append derived
        entries (e.g. per-phase spans from ``repro.analysis.breakdown``).
        """
        trace_events: List[dict] = []
        for span in self._finished_spans:
            trace_events.append(
                {
                    "name": span.name,
                    "cat": EVENT_CATEGORIES.get(span.name, "misc"),
                    "ph": "X",
                    "ts": span.start / 1000.0,
                    "dur": (span.end - span.start) / 1000.0,
                    "pid": span.pid if span.pid is not None else 0,
                    "tid": span.pid if span.pid is not None else 0,
                    "args": _jsonable_attrs(span.attrs),
                }
            )
        open_spans = self.open_spans()
        for span in open_spans:
            # Unfinished at export: a hung device leg or a request still
            # in flight.  Marked so a viewer (and the census) can tell
            # them from spans that merely lost their end to truncation.
            trace_events.append(
                {
                    "name": span.name,
                    "cat": EVENT_CATEGORIES.get(span.name, "misc"),
                    "ph": "B",
                    "ts": span.start / 1000.0,
                    "pid": span.pid if span.pid is not None else 0,
                    "tid": span.pid if span.pid is not None else 0,
                    "args": {**_jsonable_attrs(span.attrs), "unfinished": True},
                }
            )
        for event in self._events:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": EVENT_CATEGORIES.get(event.name, "misc"),
                    "ph": "i",
                    "s": "t",
                    "ts": event.time / 1000.0,
                    "pid": event.pid if event.pid is not None else 0,
                    "tid": event.pid if event.pid is not None else 0,
                    "args": _jsonable_attrs(event.attrs),
                }
            )
        if extra_events:
            trace_events.extend(extra_events)
        trace_events.sort(key=lambda e: e["ts"])
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "dropped_events": self.dropped,
                "dropped_spans": self.spans_dropped,
                "truncated": self.truncated,
                "open_spans": len(open_spans),
                "span_anomalies": self.span_anomalies,
            },
        }

    def export_chrome(
        self, dst: Union[str, IO[str]], extra_events: Optional[List[dict]] = None
    ) -> dict:
        """Serialize :meth:`to_chrome` to a path or file object."""
        doc = self.to_chrome(extra_events=extra_events)
        if hasattr(dst, "write"):
            json.dump(doc, dst, indent=1)
        else:
            with open(dst, "w") as handle:
                json.dump(doc, handle, indent=1)
        return doc

    # -- rendering -----------------------------------------------------------

    def render(self, limit: int = 50) -> str:
        lines = [repr(e) for e in islice(self._events, limit)]
        if len(self._events) > limit:
            lines.append(f"... {len(self._events) - limit} more events")
        if self.dropped:
            lines.append(f"!!! ring dropped {self.dropped} older events (truncated trace)")
        open_count = len(self.open_spans())
        if open_count:
            lines.append(f"!!! {open_count} span(s) still open (unfinished work or a hung leg)")
        if self.span_anomalies:
            lines.append(f"!!! {self.span_anomalies} span lifecycle anomalies (double/foreign close)")
        return "\n".join(lines)


def _jsonable_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {
        k: v if isinstance(v, (int, float, str, bool)) or v is None else repr(v)
        for k, v in attrs.items()
    }
