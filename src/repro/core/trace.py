"""Migration trace: a timeline of Flick protocol events.

Used by tests to assert protocol ordering (Fig. 2's (a)-(g) sequence)
and by examples to show the migration dance to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TraceEvent", "MigrationTrace"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    name: str
    attrs: Dict[str, Any]

    def __repr__(self) -> str:
        kv = " ".join(f"{k}={v:#x}" if isinstance(v, int) and k in ("target", "addr")
                      else f"{k}={v}" for k, v in self.attrs.items())
        return f"[{self.time / 1000.0:10.3f}us] {self.name} {kv}"


class MigrationTrace:
    """Bounded in-memory event log."""

    def __init__(self, sim, limit: int = 100_000):
        self.sim = sim
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.enabled = True

    def record(self, name: str, **attrs) -> None:
        if not self.enabled or len(self.events) >= self.limit:
            return
        self.events.append(TraceEvent(self.sim.now, name, attrs))

    def names(self) -> List[str]:
        return [e.name for e in self.events]

    def filter(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def count(self, name: str) -> int:
        return sum(1 for e in self.events if e.name == name)

    def spans(self, start_name: str, end_name: str) -> List[float]:
        """Durations between consecutive start/end event pairs."""
        out: List[float] = []
        start_time: Optional[float] = None
        for e in self.events:
            if e.name == start_name and start_time is None:
                start_time = e.time
            elif e.name == end_name and start_time is not None:
                out.append(e.time - start_time)
                start_time = None
        return out

    def render(self, limit: int = 50) -> str:
        lines = [repr(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
