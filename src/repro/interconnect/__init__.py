"""PCIe-like interconnect: link model, descriptor DMA engine, interrupts."""

from repro.interconnect.dma import DMAEngine, DescriptorRing
from repro.interconnect.interrupt import MIGRATION_VECTOR, InterruptController
from repro.interconnect.pcie import PCIeLink

__all__ = [
    "PCIeLink",
    "DMAEngine",
    "DescriptorRing",
    "InterruptController",
    "MIGRATION_VECTOR",
]
