"""The NxP platform's descriptor DMA engine (Section IV-B).

Flick transfers each migration descriptor in **one PCIe burst** instead of
many MMIO stores — that is one of the reasons its round trip beats prior
work.  The same engine serves both directions:

* host → NxP: the (modified) Linux scheduler kicks the engine *after*
  suspending the thread; the descriptor lands in an NxP-local inbound
  ring, and a **status register** (polled by the NxP scheduler) counts
  pending descriptors.
* NxP → host: the NxP scheduler kicks the engine; the descriptor lands in
  a host-DRAM inbound ring and the engine raises the migration interrupt.

MMIO register map (offsets within the platform's control window):

====== ==========================
0x00   STATUS: pending inbound descriptor count (NxP side, read to poll)
0x08   HOST_STATUS: pending inbound count on the host side
0x10   (reserved for SRC/DST/LEN of a general-purpose channel)
====== ==========================

Fault-injection sites (docs/ROBUSTNESS.md): an armed
:class:`repro.sim.faults.FaultInjector` is consulted once per transfer.
``dma_delay`` stalls the engine before the burst; ``dma_drop`` occupies
the wire for the full transfer time but never claims a ring slot,
publishes, or signals arrival; ``dma_corrupt`` lands the burst and then
flips one deterministic byte in the slot (caught by the descriptor
checksum on the consumer side); ``irq_loss``/``irq_spurious`` suppress
or duplicate the NxP→host migration interrupt.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import FlickConfig
from repro.core.errors import (
    RingOverflow,
    RingPublishError,
    RingsNotAttached,
    RingUnderflow,
)
from repro.interconnect.interrupt import MIGRATION_VECTOR, InterruptController
from repro.interconnect.pcie import PCIeLink
from repro.memory.physical import MMIORegion
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["DMAEngine", "DescriptorRing"]


class DescriptorRing:
    """A one-producer/one-consumer descriptor ring in simulated memory."""

    def __init__(self, phys, base: int, slots: int, slot_bytes: int):
        self.phys = phys
        self.base = base
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.head = 0  # next slot the consumer reads
        self.tail = 0  # next published (consumer-visible) slot
        self.reserved = 0  # next slot a producer may claim

    @property
    def pending(self) -> int:
        return self.tail - self.head

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.slots) * self.slot_bytes

    def claim_addr(self) -> int:
        """Reserve the next slot for an in-flight transfer.

        Claiming before the burst starts (and publishing only when it
        completes) is what keeps concurrent producers from clobbering
        one another's descriptors.
        """
        if self.reserved - self.head >= self.slots:
            raise RingOverflow("descriptor ring overflow")
        addr = self.slot_addr(self.reserved)
        self.reserved += 1
        return addr

    def publish(self) -> None:
        """Make the oldest claimed slot visible to the consumer.

        Transfers on the serialized link complete in claim order, so a
        single tail pointer suffices.
        """
        if self.tail >= self.reserved:
            raise RingPublishError("publish without a claimed slot")
        self.tail += 1

    def push_addr(self) -> int:
        """Claim + publish in one step (synchronous producers/tests)."""
        addr = self.claim_addr()
        self.publish()
        return addr

    def pop_addr(self) -> int:
        if not self.pending:
            raise RingUnderflow("descriptor ring underflow")
        addr = self.slot_addr(self.head)
        self.head += 1
        return addr


class DMAEngine:
    """Burst-copies descriptors between host DRAM and NxP local memory."""

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        link: PCIeLink,
        irq: InterruptController,
        stats: Optional[StatRegistry] = None,
        trace=None,
        injector=None,
        vector: int = MIGRATION_VECTOR,
    ):
        self.sim = sim
        self.cfg = cfg
        self.link = link
        self.irq = irq
        self.stats = stats or StatRegistry()
        self.trace = trace  # optional MigrationTrace for device-level spans
        self.injector = injector  # optional FaultInjector (None = unarmed)
        #: MSI vector this engine raises on n2h delivery.  The single-NxP
        #: machine keeps MIGRATION_VECTOR; a multi-NxP machine gives
        #: device ``i`` the vector ``MIGRATION_VECTOR + i``.
        self.vector = vector
        #: index of the NxP device this engine serves — MIGRATION_VECTOR
        #: is device 0's vector, so the offset recovers the index on
        #: both single- and multi-NxP machines.  Used only to label
        #: transfer spans when trace-context propagation is on.
        self.device_index = vector - MIGRATION_VECTOR
        self.nxp_inbound: Optional[DescriptorRing] = None
        self.host_inbound: Optional[DescriptorRing] = None
        # Completion notification for the NxP side.  Hardware-wise the
        # NxP scheduler discovers arrivals by polling the STATUS
        # register; the simulation sleeps on this channel instead and
        # charges the poll-quantization delay on wakeup, so idle polling
        # does not flood the event queue.
        self.nxp_arrival = sim.channel("dma.nxp_arrival")

    def attach_rings(self, nxp_inbound: DescriptorRing, host_inbound: DescriptorRing) -> None:
        self.nxp_inbound = nxp_inbound
        self.host_inbound = host_inbound

    def register_mmio(self, mmio: MMIORegion, base: int = 0x00) -> None:
        """Register this engine's STATUS words.  ``base`` strides the
        register pair for multi-NxP machines (device ``i`` at
        ``i * 0x10``); the single-device map stays at 0x00/0x08."""
        mmio.register(base + 0x00, read=self._read_status)
        mmio.register(base + 0x08, read=self._read_host_status)

    def _read_status(self) -> int:
        return self.nxp_inbound.pending if self.nxp_inbound else 0

    def _read_host_status(self) -> int:
        return self.host_inbound.pending if self.host_inbound else 0

    # -- fault hooks -------------------------------------------------------------

    def _pull_dma_faults(self, direction: str):
        """Returns ``(delay_ns, dropped, corrupt_rule)`` for one transfer."""
        delay_ns, dropped, corrupt = 0.0, False, None
        for rule in self.injector.pull("dma", direction=direction):
            if rule.kind == "dma_delay":
                delay_ns += rule.delay_ns
            elif rule.kind == "dma_drop":
                dropped = True
            elif rule.kind == "dma_corrupt":
                corrupt = rule
        return delay_ns, dropped, corrupt

    def _corrupt_slot(self, dst: int, nbytes: int, rule) -> None:
        offset = self.injector.corrupt_offset(rule, nbytes)
        raw = bytearray(self.link.phys.read(dst, nbytes))
        raw[offset] ^= 0xFF
        self.link.phys.write(dst, bytes(raw))
        self.stats.count("fault.dma_corrupt_applied")
        if self.trace is not None:
            self.trace.record("fault_inject_detail", site="dma", offset=offset)

    # -- transfers ---------------------------------------------------------------

    def push_to_nxp(self, src_paddr: int, nbytes: int, pid: Optional[int] = None) -> Generator:
        """Burst a descriptor from host DRAM into the NxP inbound ring.

        The NxP scheduler's poll of the STATUS register sees the new
        pending count only after the burst completes.  ``pid`` (when the
        caller knows it) attributes the transfer span to a task; bursts
        may overlap, so the span uses the stack-free handle API.
        """
        if self.nxp_inbound is None:
            raise RingsNotAttached("rings not attached")
        if self.injector is not None:
            delay_ns, dropped, corrupt = self._pull_dma_faults("h2n")
            if delay_ns:
                yield self.sim.timeout(delay_ns)
            if dropped:
                # The wire carries the burst; nothing lands, no slot is
                # claimed, the consumer never learns of it.
                yield from self.link.burst(src_paddr, 0, nbytes, deliver=False)
                return
        else:
            corrupt = None
        dst = self.nxp_inbound.claim_addr()
        self.stats.count("dma.to_nxp")
        trace = self.trace
        span = None
        if trace is not None:
            if trace.context_enabled:
                span = trace.open_span(
                    "dma.h2n", pid=pid, bytes=nbytes,
                    device=self.device_index,
                    device_label=f"nxp{self.device_index}",
                )
            else:
                span = trace.open_span("dma.h2n", pid=pid, bytes=nbytes)
        t0 = self.sim.now
        yield from self.link.burst(src_paddr, dst, nbytes)
        self.stats.observe("latency.dma.h2n_ns", self.sim.now - t0)
        if trace is not None:
            trace.close(span)
        if corrupt is not None:
            self._corrupt_slot(dst, nbytes, corrupt)
        self.nxp_inbound.publish()
        self.nxp_arrival.put(True)

    def push_to_host(
        self,
        src_paddr: int,
        nbytes: int,
        interrupt: bool = True,
        pid: Optional[int] = None,
    ) -> Generator:
        """Burst a descriptor from NxP memory into the host inbound ring,
        then (optionally) raise the migration interrupt."""
        if self.host_inbound is None:
            raise RingsNotAttached("rings not attached")
        irq_lost, spurious = False, 0
        if self.injector is not None:
            delay_ns, dropped, corrupt = self._pull_dma_faults("n2h")
            if delay_ns:
                yield self.sim.timeout(delay_ns)
            if dropped:
                yield from self.link.burst(src_paddr, 0, nbytes, deliver=False)
                return
            for rule in self.injector.pull("irq", direction="n2h"):
                if rule.kind == "irq_loss":
                    irq_lost = True
                elif rule.kind == "irq_spurious":
                    spurious += 1
        else:
            corrupt = None
        dst = self.host_inbound.claim_addr()
        self.stats.count("dma.to_host")
        trace = self.trace
        span = None
        if trace is not None:
            if trace.context_enabled:
                span = trace.open_span(
                    "dma.n2h", pid=pid, bytes=nbytes,
                    device=self.device_index,
                    device_label=f"nxp{self.device_index}",
                )
            else:
                span = trace.open_span("dma.n2h", pid=pid, bytes=nbytes)
        t0 = self.sim.now
        yield from self.link.burst(src_paddr, dst, nbytes)
        self.stats.observe("latency.dma.n2h_ns", self.sim.now - t0)
        if trace is not None:
            trace.close(span)
        if corrupt is not None:
            self._corrupt_slot(dst, nbytes, corrupt)
        self.host_inbound.publish()
        if interrupt:
            for _ in range(spurious):
                # A duplicate MSI with no descriptor behind it: the
                # hardened IRQ handler must drain/dedup around it.
                self.irq.raise_irq(self.vector, payload=None)
            if irq_lost:
                self.stats.count("fault.irq_loss_applied")
            else:
                self.irq.raise_irq(self.vector, payload=dst)
