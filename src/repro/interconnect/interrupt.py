"""MSI-style interrupt delivery from the NxP platform to the host.

Flick's return path (Section IV-B) ends with the DMA engine raising a
host interrupt whose handler finds the suspended thread by PID and wakes
it.  This module models vectoring and delivery latency; the kernel
registers the actual handler.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.config import FlickConfig
from repro.core.errors import UnhandledVector, VectorAlreadyClaimed
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["InterruptController", "MIGRATION_VECTOR"]

MIGRATION_VECTOR = 0x42  # the vector the Flick kernel module claims


class InterruptController:
    """Routes device interrupts to registered kernel handlers.

    ``raise_irq`` is callable from any simulated context; the handler
    runs as its own process after the modeled delivery latency (MSI write
    + APIC + IDT dispatch), so the device side never blocks on it.
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        stats: Optional[StatRegistry] = None,
        trace=None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.stats = stats or StatRegistry()
        self.trace = trace  # optional MigrationTrace for delivery spans
        self._handlers: Dict[int, Callable[[Any], Any]] = {}

    def register(self, vector: int, handler: Callable[[Any], Any]) -> None:
        """Register ``handler`` for ``vector``.

        The handler may be a plain callable or a generator function
        (taking the payload) — generator handlers run as timed processes.
        """
        if vector in self._handlers:
            raise VectorAlreadyClaimed(f"vector {vector:#x} already claimed")
        self._handlers[vector] = handler

    def unregister(self, vector: int) -> None:
        self._handlers.pop(vector, None)

    def raise_irq(self, vector: int, payload: Any = None) -> None:
        handler = self._handlers.get(vector)
        if handler is None:
            raise UnhandledVector(f"unhandled interrupt vector {vector:#x}")
        self.stats.count(f"irq.{vector:#x}")
        trace = self.trace
        span = None
        if trace is not None:
            trace.record("irq_raise", vector=vector)
            # Deliveries of distinct vectors may overlap: handle API.
            span = trace.open_span("irq_deliver", vector=vector)

        raised_at = self.sim.now

        def delivery(sim: Simulator):
            yield sim.timeout(self.cfg.host_irq_delivery_ns)
            self.stats.observe("latency.irq_deliver_ns", sim.now - raised_at)
            if trace is not None:
                trace.close(span)
            result = handler(payload)
            if result is not None and hasattr(result, "send"):
                yield sim.spawn(result, name=f"irq-handler-{vector:#x}")

        self.sim.spawn(delivery(self.sim), name=f"irq-{vector:#x}")
