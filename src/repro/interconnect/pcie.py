"""PCIe-like system interconnect model.

The paper's platform (Table I) connects the FPGA NxP to the host over
PCIe 3.0 x8.  Three properties of that link drive Flick's design and are
what this model captures:

* **latency** — a host load from NxP DRAM takes ~825 ns round trip and an
  NxP load from host DRAM is similarly expensive; this is why data and
  thread placement matter (Section III-D),
* **bandwidth** — large transfers amortize; Flick uses one burst DMA for
  the whole migration descriptor instead of many MMIO words,
* **no cache coherence** — the link carries reads/writes but no snoops,
  which is why `.data/.bss` stay host-side and the NxP D-cache may only
  cache local windows.

The link serializes transactions: a transfer occupies the link for its
wire time (bytes / bandwidth); propagation adds fixed one-way latency.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import FlickConfig
from repro.memory.physical import PhysicalMemory
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["PCIeLink"]


class PCIeLink:
    """A latency/bandwidth/occupancy model of the host-NxP link."""

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        phys: PhysicalMemory,
        stats: Optional[StatRegistry] = None,
        trace=None,
        injector=None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.phys = phys
        self.stats = stats or StatRegistry()
        # Per-transaction trace events are opt-in (trace.detail): the
        # interpreted hot loops issue one transaction per remote access.
        self.trace = trace
        self.injector = injector  # optional repro.sim.faults.FaultInjector
        self._link_free_at = 0.0
        # Link-flap fault state: no transfer may start before this
        # instant.  Stays 0.0 (and branchless-equivalent) when unarmed.
        self._down_until = 0.0

    def _detail(self, name: str, nbytes: int) -> None:
        trace = self.trace
        if trace is not None and trace.detail:
            trace.record(name, bytes=nbytes)

    # -- occupancy ------------------------------------------------------------

    def _occupy(self, wire_ns: float) -> Generator:
        """Wait for the link, then hold it for ``wire_ns``.

        The reservation is made *atomically at call time* (before any
        yield): concurrent transfers arriving at the same instant each
        see the previous one's reservation and queue behind it rather
        than overlapping on the wire.
        """
        start = max(self.sim.now, self._link_free_at)
        if self._down_until > start:  # link flap: wait out the outage
            start = self._down_until
        self._link_free_at = start + wire_ns
        queue_wait = start - self.sim.now
        if queue_wait > 0:
            self.stats.sample("pcie.queue_wait_ns", queue_wait)
        yield self.sim.timeout(queue_wait + wire_ns)

    def _check_flap(self) -> None:
        """Fault hook: a firing ``pcie_flap`` rule takes the link down."""
        if self.injector is None:
            return
        for rule in self.injector.pull("pcie"):
            if rule.kind == "pcie_flap":
                down_until = self.sim.now + rule.down_ns
                if down_until > self._down_until:
                    self._down_until = down_until
                self.stats.count("fault.pcie_flap_applied")

    def _wire_time(self, nbytes: int) -> float:
        return nbytes * self.cfg.pcie_ns_per_byte

    # -- transactions -----------------------------------------------------------

    def read(self, paddr: int, nbytes: int, service_ns: float) -> Generator:
        """Non-posted read: request + completion cross the link.

        ``service_ns`` is the far-side memory/device service time.
        Returns the bytes read.
        """
        self.stats.count("pcie.read")
        self._detail("pcie_read", nbytes)
        if self.injector is not None:
            self._check_flap()
        yield from self._occupy(self._wire_time(16))  # request TLP header
        yield self.sim.timeout(self.cfg.pcie_oneway_ns)  # propagate request
        yield self.sim.timeout(service_ns)  # far side services it
        yield self.sim.timeout(self.cfg.pcie_oneway_ns)  # completion returns
        yield from self._occupy(self._wire_time(nbytes))
        return self.phys.read(paddr, nbytes)

    def write(self, paddr: int, data: bytes, posted: bool = True) -> Generator:
        """Posted write: fire-and-forget from the initiator's view."""
        self.stats.count("pcie.write")
        self._detail("pcie_write", len(data))
        if self.injector is not None:
            self._check_flap()
        yield from self._occupy(self._wire_time(len(data) + 16))
        yield self.sim.timeout(self.cfg.pcie_oneway_ns)
        self.phys.write(paddr, data)
        if not posted:
            yield self.sim.timeout(self.cfg.pcie_oneway_ns)

    def burst(self, src: int, dst: int, nbytes: int, deliver: bool = True) -> Generator:
        """One DMA burst moving ``nbytes`` from ``src`` to ``dst``.

        Models a single engine-driven transfer: setup, one propagation,
        and wire time for the payload.  Data moves functionally at the
        end of the transfer.  ``deliver=False`` (the ``dma_drop`` fault
        model) burns the identical link time but never lands the bytes
        — the wire was occupied, the far side saw nothing.
        """
        self.stats.count("pcie.burst")
        self.stats.sample("pcie.burst_bytes", nbytes)
        self._detail("pcie_burst", nbytes)
        if self.injector is not None:
            self._check_flap()
        yield self.sim.timeout(self.cfg.dma_setup_ns)
        yield from self._occupy(self._wire_time(nbytes + 32))
        yield self.sim.timeout(self.cfg.pcie_oneway_ns)
        if deliver:
            self.phys.write(dst, self.phys.read(src, nbytes))

    # -- convenience round-trip latencies (match Section V measurements) -------

    def host_read_nxp_word(self, paddr: int) -> Generator:
        """Host core load from BAR0 (NxP DRAM): ~825 ns round trip."""
        data = yield from self.read(
            paddr, 8, service_ns=self.cfg.nxp_local_dram_ns - 120.0
        )
        return int.from_bytes(data, "little")

    def nxp_read_host_word(self, paddr: int) -> Generator:
        """NxP core load from host DRAM across the link."""
        data = yield from self.read(paddr, 8, service_ns=self.cfg.host_dram_ns)
        return int.from_bytes(data, "little")
