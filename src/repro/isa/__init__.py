"""The two toy ISAs (HISA host / NISA NxP), assemblers, interpreters."""

from repro.isa.base import (
    ABI,
    IllegalInstruction,
    Instruction,
    IsaFault,
    MisalignedFetch,
    Op,
    RegisterFile,
    Relocation,
    Sym,
)
from repro.isa.hisa import HISA_ABI
from repro.isa.nisa import NISA_ABI
from repro.isa.assembler import AsmError, assemble, parse
from repro.isa.interpreter import (
    CostModel,
    EnvCall,
    Halted,
    Interpreter,
    RUNTIME_RETURN_ADDR,
    ReturnToRuntime,
)

__all__ = [
    "Op",
    "Instruction",
    "Sym",
    "Relocation",
    "RegisterFile",
    "ABI",
    "IsaFault",
    "MisalignedFetch",
    "IllegalInstruction",
    "HISA_ABI",
    "NISA_ABI",
    "assemble",
    "parse",
    "AsmError",
    "Interpreter",
    "CostModel",
    "EnvCall",
    "Halted",
    "ReturnToRuntime",
    "RUNTIME_RETURN_ADDR",
]
