"""Two-ISA text assembler.

Accepts the usual ``label:`` / ``mnemonic operands ; comment`` syntax and
produces :class:`~repro.isa.base.Instruction` lists, or fully encoded
bytes plus relocations via :func:`assemble`.

The same front-end serves both ISAs; per-ISA tables supply register
names and operand shapes.  Pseudo-instructions:

* ``la rd, sym`` — load a symbol's absolute address: expands to
  ``li``+``lih`` on NISA (abs32lo/abs32hi relocations) and to a single
  ``movabs`` (abs64) on HISA.
* ``call sym`` — on NISA becomes ``jal ra, sym``; HISA has a real CALL.
* ``li`` on HISA is an alias of ``mov rd, imm``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa import hisa, nisa
from repro.isa.base import Instruction, Op, Relocation, Sym

__all__ = ["parse", "assemble", "AsmError"]


class AsmError(Exception):
    """A syntax or operand error, annotated with the source line."""

    def __init__(self, lineno: int, line: str, message: str):
        self.lineno = lineno
        super().__init__(f"line {lineno}: {message}  [{line.strip()}]")


_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\((\w+)\)$")
_INT_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|\d+)$")


def _parse_int(text: str) -> int:
    return int(text, 0)


class _IsaTable:
    def __init__(self, name: str, reg_number, abi):
        self.name = name
        self.reg_number = reg_number
        self.abi = abi


_TABLES = {
    "nisa": _IsaTable("nisa", nisa.reg_number, nisa.NISA_ABI),
    "hisa": _IsaTable("hisa", hisa.reg_number, hisa.HISA_ABI),
}

_NISA_ALU3 = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV, "rem": Op.REM,
    "and": Op.AND, "or": Op.OR, "xor": Op.XOR, "shl": Op.SHL, "shr": Op.SHR,
    "sar": Op.SAR, "slt": Op.SLT, "sltu": Op.SLTU, "seq": Op.SEQ, "sne": Op.SNE,
}
_HISA_ALU2 = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV, "rem": Op.REM,
    "and": Op.AND, "or": Op.OR, "xor": Op.XOR, "shl": Op.SHL, "shr": Op.SHR,
    "sar": Op.SAR,
}
_LOADS = {"ld": Op.LD, "lw": Op.LW, "lbu": Op.LBU}
_STORES = {"st": Op.ST, "sw": Op.SW, "sb": Op.SB}
_NISA_BRANCHES = {"beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE}
_HISA_JCC = {"je": "eq", "jne": "ne", "jl": "lt", "jge": "ge", "jle": "le", "jg": "gt"}


def _operand(table: _IsaTable, text: str, lineno: int, line: str):
    """Classify an operand: register index, integer, memory, or symbol."""
    text = text.strip()
    mem = _MEM_RE.match(text)
    if mem:
        disp = _parse_int(mem.group(1)) if mem.group(1) else 0
        try:
            base = table.reg_number(mem.group(2))
        except ValueError as exc:
            raise AsmError(lineno, line, str(exc))
        return ("mem", disp, base)
    if _INT_RE.match(text):
        return ("imm", _parse_int(text))
    try:
        return ("reg", table.reg_number(text))
    except ValueError:
        pass
    if re.match(r"^[A-Za-z_.$][\w.$]*$", text):
        return ("sym", Sym(text))
    raise AsmError(lineno, line, f"cannot parse operand {text!r}")


def _split_operands(rest: str) -> List[str]:
    return [p.strip() for p in rest.split(",")] if rest.strip() else []


def parse(text: str, isa: str) -> List[Instruction]:
    """Parse assembly ``text`` for ``isa`` ('nisa' or 'hisa')."""
    if isa not in _TABLES:
        raise ValueError(f"unknown isa {isa!r}")
    table = _TABLES[isa]
    insts: List[Instruction] = []
    pending_label: Optional[str] = None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while True:
            m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$", line)
            if not m:
                break
            if pending_label is not None:
                insts.append(Instruction(Op.NOP, label=pending_label))
            pending_label = m.group(1)
            line = m.group(2).strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        ops = _split_operands(parts[1] if len(parts) > 1 else "")
        decoded = [_operand(table, o, lineno, raw_line) for o in ops]

        emitted = _build(table, mnemonic, decoded, lineno, raw_line)
        for inst in emitted:
            if pending_label is not None:
                inst.label = pending_label
                pending_label = None
            insts.append(inst)

    if pending_label is not None:
        insts.append(Instruction(Op.NOP, label=pending_label))
    return insts


def _need(decoded, kinds, lineno, line, mnemonic):
    if len(decoded) != len(kinds):
        raise AsmError(lineno, line, f"{mnemonic} expects {len(kinds)} operands")
    for d, allowed in zip(decoded, kinds):
        if d[0] not in allowed:
            raise AsmError(lineno, line, f"{mnemonic}: bad operand kind {d[0]}")
    return decoded


def _build(table, mnemonic, decoded, lineno, line) -> List[Instruction]:
    isa = table.name
    I = Instruction

    if mnemonic in ("nop",):
        return [I(Op.NOP)]
    if mnemonic in ("halt", "hlt"):
        return [I(Op.HALT)]
    if mnemonic in ("ecall", "syscall"):
        return [I(Op.ECALL)]
    if mnemonic == "ret":
        return [I(Op.RET)]

    if mnemonic == "la":
        (_, rd), (_, sym) = _need(decoded, [("reg",), ("sym",)], lineno, line, "la")
        if isa == "nisa":
            return [I(Op.LI, rd=rd, imm=sym), I(Op.LIH, rd=rd, imm=sym)]
        return [I(Op.LI, rd=rd, imm=sym)]

    if mnemonic in ("li", "lih", "movabs"):
        op = Op.LIH if mnemonic == "lih" else Op.LI
        (_, rd), val = _need(decoded, [("reg",), ("imm", "sym")], lineno, line, mnemonic)
        return [I(op, rd=rd, imm=val[1])]

    if mnemonic == "mov":
        (_, rd), src = _need(decoded, [("reg",), ("reg", "imm", "sym")], lineno, line, "mov")
        if src[0] == "reg":
            return [I(Op.MOV, rd=rd, rs1=src[1])]
        return [I(Op.LI, rd=rd, imm=src[1])]

    if mnemonic in _LOADS:
        (_, rd), (_, disp, base) = _need(decoded, [("reg",), ("mem",)], lineno, line, mnemonic)
        return [I(_LOADS[mnemonic], rd=rd, rs1=base, imm=disp)]
    if mnemonic in _STORES:
        (_, src), (_, disp, base) = _need(decoded, [("reg",), ("mem",)], lineno, line, mnemonic)
        return [I(_STORES[mnemonic], rs1=base, rs2=src, imm=disp)]

    if mnemonic == "push":
        ((_, rd),) = _need(decoded, [("reg",)], lineno, line, "push")
        return [I(Op.PUSH, rd=rd)]
    if mnemonic == "pop":
        ((_, rd),) = _need(decoded, [("reg",)], lineno, line, "pop")
        return [I(Op.POP, rd=rd)]

    if mnemonic in ("j", "jmp"):
        (target,) = _need(decoded, [("sym", "imm")], lineno, line, mnemonic)
        return [I(Op.J, imm=target[1])]
    if mnemonic == "jal":
        (target,) = _need(decoded, [("sym", "imm")], lineno, line, "jal")
        return [I(Op.JAL, rd=table.abi.link_reg or 0, imm=target[1])]
    if mnemonic == "jalr":
        ((_, rs1),) = _need(decoded, [("reg",)], lineno, line, "jalr")
        return [I(Op.JALR, rd=table.abi.link_reg or 0, rs1=rs1, imm=0)]
    if mnemonic == "call":
        (target,) = _need(decoded, [("sym", "imm", "reg")], lineno, line, "call")
        if target[0] == "reg":
            return [I(Op.CALLR, rs1=target[1])]
        return [I(Op.CALL, imm=target[1])]

    if isa == "nisa":
        if mnemonic in _NISA_ALU3:
            (_, rd), (_, rs1), rs2 = _need(
                decoded, [("reg",), ("reg",), ("reg", "imm")], lineno, line, mnemonic
            )
            if rs2[0] == "imm":
                if mnemonic == "add":
                    return [I(Op.ADDI, rd=rd, rs1=rs1, imm=rs2[1])]
                raise AsmError(lineno, line, f"NISA {mnemonic} needs register operands")
            return [I(_NISA_ALU3[mnemonic], rd=rd, rs1=rs1, rs2=rs2[1])]
        if mnemonic == "addi":
            (_, rd), (_, rs1), (_, imm) = _need(
                decoded, [("reg",), ("reg",), ("imm",)], lineno, line, "addi"
            )
            return [I(Op.ADDI, rd=rd, rs1=rs1, imm=imm)]
        if mnemonic in _NISA_BRANCHES:
            (_, rs1), (_, rs2), target = _need(
                decoded, [("reg",), ("reg",), ("sym", "imm")], lineno, line, mnemonic
            )
            return [I(_NISA_BRANCHES[mnemonic], rs1=rs1, rs2=rs2, imm=target[1])]
    else:  # hisa
        if mnemonic in _HISA_ALU2:
            (_, rd), src = _need(decoded, [("reg",), ("reg", "imm")], lineno, line, mnemonic)
            if src[0] == "reg":
                return [I(_HISA_ALU2[mnemonic], rd=rd, rs1=src[1])]
            return [I(_HISA_ALU2[mnemonic], rd=rd, imm=src[1])]
        if mnemonic == "cmp":
            (_, a), b = _need(decoded, [("reg",), ("reg", "imm")], lineno, line, "cmp")
            if b[0] == "reg":
                return [I(Op.CMP, rd=a, rs1=b[1])]
            return [I(Op.CMP, rd=a, imm=b[1])]
        if mnemonic in _HISA_JCC:
            (target,) = _need(decoded, [("sym", "imm")], lineno, line, mnemonic)
            return [I(Op.JCC, cond=_HISA_JCC[mnemonic], imm=target[1])]

    raise AsmError(lineno, line, f"unknown {isa} mnemonic {mnemonic!r}")


def assemble(text: str, isa: str) -> Tuple[bytes, List[Relocation], Dict[str, int]]:
    """Parse and encode; returns (code bytes, relocations, label offsets)."""
    insts = parse(text, isa)
    if isa == "nisa":
        return nisa.encode_program(insts)
    return hisa.encode_program(insts)
