"""Common ISA infrastructure: operations, instructions, faults, ABIs.

The reproduction defines two toy ISAs that deliberately mirror the
paper's platform asymmetry (x86-64 host, RV64 NxP):

* **HISA** ("host ISA") — variable-length encoding (1–11 bytes),
  16 registers, two-operand CISC style, condition flags, hardware
  CALL/RET push/pop through the stack.
* **NISA** ("NxP ISA") — fixed 8-byte encoding, 32 registers with a
  hardwired zero register, three-operand RISC style, link-register
  calls.

Why toy encodings?  Migration correctness depends on the *differences*
between ISAs (encodings, calling conventions, alignment rules), not on
x86 fidelity.  HISA's variable-length, byte-aligned code even lets us
reproduce the paper's second NxP-side migration trigger: a NISA core
fetching HISA bytes usually takes a *misaligned instruction address*
exception before it can even decode (Section IV-B2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

__all__ = [
    "Op",
    "Sym",
    "Instruction",
    "Relocation",
    "RegisterFile",
    "ABI",
    "IsaFault",
    "MisalignedFetch",
    "IllegalInstruction",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "MASK64",
]

MASK64 = (1 << 64) - 1


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_signed(value: int) -> int:
    return sign_extend(value, 64)


def to_unsigned(value: int) -> int:
    return value & MASK64


class Op(enum.IntEnum):
    """Semantic operations shared by both ISAs (each encodes its own subset).

    An ``IntEnum`` so member hashing and equality are C-level int
    operations — Op-keyed dict/set lookups sit on the interpreter's
    per-instruction path.  Mnemonics live in :attr:`mnemonic`.
    """

    # ALU, three-operand on NISA / two-operand on HISA
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    SAR = enum.auto()
    SLT = enum.auto()
    SLTU = enum.auto()
    SEQ = enum.auto()
    SNE = enum.auto()
    ADDI = enum.auto()
    # data movement
    LI = enum.auto()          # rd = sign-extended imm32
    LIH = enum.auto()        # rd = (rd & 0xFFFFFFFF) | imm32 << 32
    MOV = enum.auto()
    # memory
    LD = enum.auto()          # 8-byte load
    LW = enum.auto()          # 4-byte load, zero-extended
    LBU = enum.auto()        # 1-byte load, zero-extended
    ST = enum.auto()
    SW = enum.auto()
    SB = enum.auto()
    # control flow
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JALR = enum.auto()
    CALL = enum.auto()      # HISA: push return address; NISA assembler alias of JAL
    CALLR = enum.auto()    # indirect call through a register
    RET = enum.auto()
    PUSH = enum.auto()      # HISA only
    POP = enum.auto()        # HISA only
    CMP = enum.auto()        # HISA only: set flags
    JCC = enum.auto()        # HISA only: conditional jump on flags (cond in imm2)
    # system
    ECALL = enum.auto()
    NOP = enum.auto()
    HALT = enum.auto()

    @property
    def mnemonic(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Sym:
    """A symbolic operand resolved at link time."""

    name: str
    addend: int = 0

    def __repr__(self) -> str:
        if self.addend:
            return f"Sym({self.name}+{self.addend:#x})"
        return f"Sym({self.name})"


Imm = Union[int, Sym]


@dataclass
class Instruction:
    """One assembly-level instruction (pre-encoding).

    ``cond`` is only used by HISA's JCC family ("eq", "ne", "lt", "ge",
    "le", "gt").
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[Imm] = None
    cond: Optional[str] = None
    label: Optional[str] = None  # attached label (definition site)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.mnemonic]
        for name in ("rd", "rs1", "rs2"):
            v = getattr(self, name)
            if v is not None:
                parts.append(f"{name}={v}")
        if self.imm is not None:
            parts.append(f"imm={self.imm}")
        if self.cond:
            parts.append(f"cond={self.cond}")
        return f"<{' '.join(parts)}>"


@dataclass(frozen=True)
class Relocation:
    """A patch the linker must apply inside encoded code.

    ``kind`` values:

    * ``abs64``   — write the symbol's absolute 64-bit address
    * ``abs32lo`` — low 32 bits of the absolute address
    * ``abs32hi`` — high 32 bits of the absolute address
    * ``rel32``   — 32-bit PC-relative displacement (from ``pc_base``
      bytes *after* the start of the instruction)
    """

    offset: int          # byte offset of the patch field within the section
    symbol: Sym
    kind: str
    pc_base: int = 0     # offset of the *next* instruction, for rel32


class IsaFault(Exception):
    """Base class for architectural faults raised during execution."""

    def __init__(self, pc: int, message: str):
        self.pc = pc
        super().__init__(message)


class MisalignedFetch(IsaFault):
    """NISA fetched from a non-8-byte-aligned PC (e.g. HISA code)."""

    def __init__(self, pc: int):
        super().__init__(pc, f"misaligned instruction fetch at {pc:#x}")


class IllegalInstruction(IsaFault):
    """Undecodable opcode for the executing ISA."""

    def __init__(self, pc: int, opcode: int):
        self.opcode = opcode
        super().__init__(pc, f"illegal opcode {opcode:#x} at {pc:#x}")


class RegisterFile:
    """A bank of 64-bit registers; index 0 may be hardwired to zero."""

    def __init__(self, count: int, zero_reg: Optional[int] = None):
        self.count = count
        self.zero_reg = zero_reg
        self._regs = [0] * count

    def read(self, idx: int) -> int:
        if not 0 <= idx < self.count:
            raise IndexError(f"register x{idx} out of range")
        if idx == self.zero_reg:
            return 0
        return self._regs[idx]

    def write(self, idx: int, value: int) -> None:
        if not 0 <= idx < self.count:
            raise IndexError(f"register x{idx} out of range")
        if idx == self.zero_reg:
            return
        self._regs[idx] = value & MASK64

    def snapshot(self) -> List[int]:
        return list(self._regs)

    def restore(self, values: Sequence[int]) -> None:
        if len(values) != self.count:
            raise ValueError("register snapshot size mismatch")
        self._regs = [v & MASK64 for v in values]


@dataclass(frozen=True)
class ABI:
    """Calling convention of one ISA."""

    name: str
    reg_count: int
    arg_regs: Sequence[int]     # argument registers, in order
    ret_reg: int                # return-value register
    sp_reg: int                 # stack pointer
    link_reg: Optional[int]     # link register (None: stack-based return)
    zero_reg: Optional[int]     # hardwired zero (None: no zero register)
    stack_align: int = 16
    code_align: int = 1         # instruction alignment requirement

    def max_reg_args(self) -> int:
        return len(self.arg_regs)
