"""Disassemblers for HISA and NISA.

Developer tooling (and a decoding test oracle): renders encoded code
back to assembler-compatible text.  ``disassemble(code, isa)`` is
roundtrip-stable with :func:`repro.isa.assembler.assemble` for the
instruction forms the assembler can express.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.isa import hisa, nisa
from repro.isa.base import IllegalInstruction, Instruction, MisalignedFetch, Op

__all__ = ["disassemble", "format_instruction", "iter_instructions"]

_NISA_REG = {i: f"x{i}" for i in range(32)}
_NISA_REG.update({0: "zero", 1: "ra", 2: "sp", 5: "t0", 6: "t1", 7: "t2", 8: "fp"})
_NISA_REG.update({10 + i: f"a{i}" for i in range(8)})

_HISA_REG = {v: k for k, v in hisa.REG_NAMES.items()}

_LOAD_NAMES = {Op.LD: "ld", Op.LW: "lw", Op.LBU: "lbu"}
_STORE_NAMES = {Op.ST: "st", Op.SW: "sw", Op.SB: "sb"}
_JCC_NAMES = {"eq": "je", "ne": "jne", "lt": "jl", "ge": "jge", "le": "jle", "gt": "jg"}


def _reg(isa: str, idx: Optional[int]) -> str:
    table = _NISA_REG if isa == "nisa" else _HISA_REG
    return table.get(idx, f"r?{idx}")


def format_instruction(inst: Instruction, isa: str, pc: int = 0, length: int = 0) -> str:
    """Render one decoded instruction as assembly text."""
    op = inst.op
    r = lambda idx: _reg(isa, idx)

    if op is Op.NOP:
        return "nop"
    if op is Op.HALT:
        return "hlt" if isa == "hisa" else "halt"
    if op is Op.ECALL:
        return "syscall" if isa == "hisa" else "ecall"
    if op is Op.RET:
        return "ret"
    if op is Op.PUSH:
        return f"push {r(inst.rd)}"
    if op is Op.POP:
        return f"pop {r(inst.rd)}"
    if op is Op.CALLR:
        return f"call {r(inst.rs1)}"
    if op is Op.LI:
        return f"li {r(inst.rd)}, {inst.imm:#x}" if inst.imm and abs(inst.imm) > 255 else f"li {r(inst.rd)}, {inst.imm}"
    if op is Op.LIH:
        return f"lih {r(inst.rd)}, {inst.imm:#x}"
    if op is Op.MOV:
        return f"mov {r(inst.rd)}, {r(inst.rs1)}"
    if op is Op.ADDI:
        return f"addi {r(inst.rd)}, {r(inst.rs1)}, {inst.imm}"
    if op in _LOAD_NAMES:
        return f"{_LOAD_NAMES[op]} {r(inst.rd)}, {inst.imm}({r(inst.rs1)})"
    if op in _STORE_NAMES:
        return f"{_STORE_NAMES[op]} {r(inst.rs2)}, {inst.imm}({r(inst.rs1)})"
    if op is Op.CMP:
        if inst.imm is not None:
            return f"cmp {r(inst.rd)}, {inst.imm}"
        return f"cmp {r(inst.rd)}, {r(inst.rs1)}"
    if op is Op.JCC:
        target = pc + length + inst.imm
        return f"{_JCC_NAMES[inst.cond]} {target:#x}"
    if op is Op.J:
        return f"{'jmp' if isa == 'hisa' else 'j'} {pc + length + inst.imm:#x}"
    if op in (Op.JAL, Op.CALL):
        target = pc + length + inst.imm
        if isa == "nisa" and op is Op.JAL and inst.rd not in (None, 1):
            return f"jal x{inst.rd}, {target:#x}"
        return f"call {target:#x}"
    if op is Op.JALR:
        if inst.rd == 0 and inst.rs1 == 1:
            return "ret"
        return f"jalr {r(inst.rs1)}"
    # Three-operand ALU (NISA) or two-operand (HISA).
    name = op.mnemonic
    if isa == "nisa":
        return f"{name} {r(inst.rd)}, {r(inst.rs1)}, {r(inst.rs2)}"
    if inst.imm is not None:
        return f"{name} {r(inst.rd)}, {inst.imm}"
    return f"{name} {r(inst.rd)}, {r(inst.rs1)}"


def iter_instructions(code: bytes, isa: str, base: int = 0) -> Iterator[Tuple[int, Instruction, int]]:
    """Yield (pc, instruction, length) until the code ends or decoding fails."""
    pc = 0
    while pc < len(code):
        try:
            if isa == "nisa":
                inst, length = nisa.decode(code[pc : pc + nisa.INST_BYTES], base + pc)
            else:
                inst, length = hisa.decode(code[pc:], base + pc)
        except (IllegalInstruction, MisalignedFetch):
            return
        yield base + pc, inst, length
        pc += length


def disassemble(code: bytes, isa: str, base: int = 0) -> str:
    """Disassemble a code blob into addressed assembly listing."""
    if isa not in ("nisa", "hisa"):
        raise ValueError(f"unknown isa {isa!r}")
    lines: List[str] = []
    for pc, inst, length in iter_instructions(code, isa, base=base):
        raw = code[pc - base : pc - base + length]
        text = format_instruction(inst, isa, pc=pc, length=length)
        lines.append(f"{pc:#010x}:  {raw.hex():<20s}  {text}")
    return "\n".join(lines)
