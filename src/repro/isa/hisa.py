"""HISA — the host's x86-64-like ISA (variable-length, two-operand CISC).

Instructions are 1–10 bytes long and byte-aligned, like x86:

=================================  =======  =========================
form                               length   layout
=================================  =======  =========================
NOP / RET / SYSCALL / HLT          1        [op]
MOV/ALU/CMP reg,reg                2        [op][dst | src << 4]
CALL reg / PUSH / POP              2        [op][reg]
JMP/CALL/Jcc rel32                 5        [op][rel32]
MOV/ALU/CMP reg,imm32              6        [op][reg][imm32]
LD/ST reg,[base+disp32]            6        [op][reg | base << 4][disp32]
MOVABS reg,imm64                   10       [op][reg][imm64]
=================================  =======  =========================

All opcodes are < 0x80 so they are *invalid* NISA opcodes — combined
with byte (mis)alignment this is why a NISA core faults promptly when it
wanders into HISA code (the paper's misaligned-fetch migration trigger).

ABI (mirroring SysV x86-64): 16 registers; arguments in rdi, rsi, rdx,
rcx, r8, r9; return in rax; rsp is the stack pointer; CALL pushes the
return address and RET pops it (no link register).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.isa.base import (
    ABI,
    IllegalInstruction,
    Instruction,
    Op,
    Relocation,
    Sym,
    sign_extend,
)

__all__ = [
    "HISA_ABI",
    "encode",
    "decode",
    "encode_program",
    "inst_length",
    "REG_NAMES",
    "reg_number",
    "COND_CODES",
]

HISA_ABI = ABI(
    name="hisa",
    reg_count=16,
    arg_regs=(7, 6, 2, 1, 8, 9),  # rdi rsi rdx rcx r8 r9
    ret_reg=0,  # rax
    sp_reg=4,  # rsp
    link_reg=None,  # return address lives on the stack
    zero_reg=None,
    stack_align=16,
    code_align=1,
)

REG_NAMES: Dict[str, int] = {
    "rax": 0, "rcx": 1, "rdx": 2, "rbx": 3,
    "rsp": 4, "rbp": 5, "rsi": 6, "rdi": 7,
    "r8": 8, "r9": 9, "r10": 10, "r11": 11,
    "r12": 12, "r13": 13, "r14": 14, "r15": 15,
}


def reg_number(name: str) -> int:
    try:
        return REG_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown HISA register {name!r}") from None


# Opcode assignments (see module docstring for the format of each group).
_NOP, _HLT, _SYSCALL, _RET = 0x00, 0x61, 0x60, 0x53
_MOV_RR, _MOV_RI64, _MOV_RI32 = 0x01, 0x02, 0x03
_ALU_RR_BASE = 0x10  # + alu index
_ALU_RI_BASE = 0x20
_LD8, _LD4, _LD1 = 0x30, 0x31, 0x32
_ST8, _ST4, _ST1 = 0x34, 0x35, 0x36
_CMP_RR, _CMP_RI = 0x40, 0x41
_JCC_BASE = 0x48  # + condition index
_JMP, _CALL, _CALL_R = 0x50, 0x51, 0x52
_PUSH, _POP = 0x54, 0x55

_ALU_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SAR, Op.DIV, Op.REM]
_ALU_INDEX = {op: i for i, op in enumerate(_ALU_OPS)}

COND_CODES = ["eq", "ne", "lt", "ge", "le", "gt"]
_COND_INDEX = {c: i for i, c in enumerate(COND_CODES)}

_LOADS = {Op.LD: _LD8, Op.LW: _LD4, Op.LBU: _LD1}
_STORES = {Op.ST: _ST8, Op.SW: _ST4, Op.SB: _ST1}

_LEN_BY_OPCODE: Dict[int, int] = {}
for _code in (_NOP, _HLT, _SYSCALL, _RET):
    _LEN_BY_OPCODE[_code] = 1
for _code in [_MOV_RR, _CMP_RR, _CALL_R, _PUSH, _POP] + [
    _ALU_RR_BASE + i for i in range(len(_ALU_OPS))
]:
    _LEN_BY_OPCODE[_code] = 2
for _code in [_JMP, _CALL] + [_JCC_BASE + i for i in range(len(COND_CODES))]:
    _LEN_BY_OPCODE[_code] = 5
for _code in [_MOV_RI32, _CMP_RI, _LD8, _LD4, _LD1, _ST8, _ST4, _ST1] + [
    _ALU_RI_BASE + i for i in range(len(_ALU_OPS))
]:
    _LEN_BY_OPCODE[_code] = 6
_LEN_BY_OPCODE[_MOV_RI64] = 10


def _needs_imm64(imm) -> bool:
    if isinstance(imm, Sym):
        return True  # addresses may exceed 32 bits; use MOVABS + abs64
    return not (-(1 << 31) <= int(imm) < (1 << 31))


def inst_length(inst: Instruction) -> int:
    """Encoded length of ``inst`` in bytes (needed for label layout)."""
    op = inst.op
    if op in (Op.NOP, Op.HALT, Op.ECALL, Op.RET):
        return 1
    if op in (Op.PUSH, Op.POP, Op.CALLR):
        return 2
    if op in (Op.J, Op.CALL, Op.JCC):
        return 5
    if op in (Op.MOV, Op.LI):
        if inst.imm is None:
            return 2  # reg,reg
        return 10 if _needs_imm64(inst.imm) else 6
    if op in _ALU_INDEX or op is Op.CMP:
        return 2 if inst.imm is None else 6
    if op in _LOADS or op in _STORES:
        return 6
    raise ValueError(f"op {op} not encodable in HISA")


def encode(inst: Instruction, offset: int = 0, relocs: Optional[List[Relocation]] = None) -> bytes:
    """Encode one instruction at byte ``offset`` within its section."""
    if relocs is None:
        relocs = []
    op = inst.op
    length = inst_length(inst)

    def imm32(value, kind="rel32") -> int:
        if isinstance(value, Sym):
            relocs.append(Relocation(offset + length - 4, value, kind, pc_base=offset + length))
            return 0
        return sign_extend(int(value or 0), 32)

    if op is Op.NOP:
        return bytes([_NOP])
    if op is Op.HALT:
        return bytes([_HLT])
    if op is Op.ECALL:
        return bytes([_SYSCALL])
    if op is Op.RET:
        return bytes([_RET])
    if op is Op.PUSH:
        return bytes([_PUSH, inst.rd & 0xF])
    if op is Op.POP:
        return bytes([_POP, inst.rd & 0xF])
    if op is Op.CALLR:
        return bytes([_CALL_R, inst.rs1 & 0xF])
    if op is Op.J:
        return bytes([_JMP]) + struct.pack("<i", imm32(inst.imm))
    if op is Op.CALL:
        return bytes([_CALL]) + struct.pack("<i", imm32(inst.imm))
    if op is Op.JCC:
        code = _JCC_BASE + _COND_INDEX[inst.cond]
        return bytes([code]) + struct.pack("<i", imm32(inst.imm))
    if op in (Op.MOV, Op.LI):
        if inst.imm is None:
            return bytes([_MOV_RR, (inst.rd & 0xF) | ((inst.rs1 & 0xF) << 4)])
        if _needs_imm64(inst.imm):
            if isinstance(inst.imm, Sym):
                relocs.append(Relocation(offset + 2, inst.imm, "abs64"))
                value = 0
            else:
                value = int(inst.imm) & ((1 << 64) - 1)
            return bytes([_MOV_RI64, inst.rd & 0xF]) + struct.pack("<Q", value)
        return bytes([_MOV_RI32, inst.rd & 0xF]) + struct.pack(
            "<i", sign_extend(int(inst.imm), 32)
        )
    if op is Op.CMP:
        if inst.imm is None:
            return bytes([_CMP_RR, (inst.rd & 0xF) | ((inst.rs1 & 0xF) << 4)])
        return bytes([_CMP_RI, inst.rd & 0xF]) + struct.pack("<i", sign_extend(int(inst.imm), 32))
    if op in _ALU_INDEX:
        idx = _ALU_INDEX[op]
        if inst.imm is None:
            return bytes([_ALU_RR_BASE + idx, (inst.rd & 0xF) | ((inst.rs1 & 0xF) << 4)])
        return bytes([_ALU_RI_BASE + idx, inst.rd & 0xF]) + struct.pack(
            "<i", sign_extend(int(inst.imm), 32)
        )
    if op in _LOADS:
        mod = (inst.rd & 0xF) | ((inst.rs1 & 0xF) << 4)
        return bytes([_LOADS[op], mod]) + struct.pack("<i", sign_extend(int(inst.imm or 0), 32))
    if op in _STORES:
        mod = (inst.rs2 & 0xF) | ((inst.rs1 & 0xF) << 4)
        return bytes([_STORES[op], mod]) + struct.pack("<i", sign_extend(int(inst.imm or 0), 32))
    raise ValueError(f"op {op} not encodable in HISA")


def encode_program(insts: List[Instruction]) -> Tuple[bytes, List[Relocation], Dict[str, int]]:
    """Encode a program, resolving local labels (two passes for layout)."""
    offsets: List[int] = []
    labels: Dict[str, int] = {}
    pos = 0
    for inst in insts:
        offsets.append(pos)
        if inst.label is not None:
            if inst.label in labels:
                raise ValueError(f"duplicate label {inst.label!r}")
            labels[inst.label] = pos
        pos += inst_length(inst)

    code = bytearray()
    relocs: List[Relocation] = []
    branchy = (Op.J, Op.CALL, Op.JCC)
    for inst, off in zip(insts, offsets):
        patched = inst
        if isinstance(inst.imm, Sym) and inst.imm.name in labels and inst.op in branchy:
            target = labels[inst.imm.name] + inst.imm.addend
            rel = target - (off + inst_length(inst))
            patched = Instruction(
                inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                imm=rel, cond=inst.cond, label=inst.label,
            )
        code += encode(patched, offset=off, relocs=relocs)
    return bytes(code), relocs, labels


def decode(raw: bytes, pc: int) -> Tuple[Instruction, int]:
    """Decode the instruction starting at ``raw[0]``; returns (inst, length)."""
    if not raw:
        raise IllegalInstruction(pc, 0)
    opcode = raw[0]
    length = _LEN_BY_OPCODE.get(opcode)
    if length is None:
        raise IllegalInstruction(pc, opcode)
    if len(raw) < length:
        raise IllegalInstruction(pc, opcode)

    def mod() -> Tuple[int, int]:
        return raw[1] & 0xF, (raw[1] >> 4) & 0xF

    def i32(at: int) -> int:
        return struct.unpack("<i", raw[at : at + 4])[0]

    if opcode == _NOP:
        return Instruction(Op.NOP), 1
    if opcode == _HLT:
        return Instruction(Op.HALT), 1
    if opcode == _SYSCALL:
        return Instruction(Op.ECALL), 1
    if opcode == _RET:
        return Instruction(Op.RET), 1
    if opcode == _PUSH:
        return Instruction(Op.PUSH, rd=raw[1] & 0xF), 2
    if opcode == _POP:
        return Instruction(Op.POP, rd=raw[1] & 0xF), 2
    if opcode == _CALL_R:
        return Instruction(Op.CALLR, rs1=raw[1] & 0xF), 2
    if opcode == _JMP:
        return Instruction(Op.J, imm=i32(1)), 5
    if opcode == _CALL:
        return Instruction(Op.CALL, imm=i32(1)), 5
    if _JCC_BASE <= opcode < _JCC_BASE + len(COND_CODES):
        return Instruction(Op.JCC, cond=COND_CODES[opcode - _JCC_BASE], imm=i32(1)), 5
    if opcode == _MOV_RR:
        dst, src = mod()
        return Instruction(Op.MOV, rd=dst, rs1=src), 2
    if opcode == _MOV_RI64:
        return Instruction(Op.LI, rd=raw[1] & 0xF, imm=struct.unpack("<Q", raw[2:10])[0]), 10
    if opcode == _MOV_RI32:
        return Instruction(Op.LI, rd=raw[1] & 0xF, imm=i32(2)), 6
    if opcode == _CMP_RR:
        dst, src = mod()
        return Instruction(Op.CMP, rd=dst, rs1=src), 2
    if opcode == _CMP_RI:
        return Instruction(Op.CMP, rd=raw[1] & 0xF, imm=i32(2)), 6
    if _ALU_RR_BASE <= opcode < _ALU_RR_BASE + len(_ALU_OPS):
        dst, src = mod()
        return Instruction(_ALU_OPS[opcode - _ALU_RR_BASE], rd=dst, rs1=src), 2
    if _ALU_RI_BASE <= opcode < _ALU_RI_BASE + len(_ALU_OPS):
        return Instruction(_ALU_OPS[opcode - _ALU_RI_BASE], rd=raw[1] & 0xF, imm=i32(2)), 6
    if opcode in (_LD8, _LD4, _LD1):
        rd, base = mod()
        op = {_LD8: Op.LD, _LD4: Op.LW, _LD1: Op.LBU}[opcode]
        return Instruction(op, rd=rd, rs1=base, imm=i32(2)), 6
    if opcode in (_ST8, _ST4, _ST1):
        src, base = mod()
        op = {_ST8: Op.ST, _ST4: Op.SW, _ST1: Op.SB}[opcode]
        return Instruction(op, rs1=base, rs2=src, imm=i32(2)), 6
    raise IllegalInstruction(pc, opcode)
