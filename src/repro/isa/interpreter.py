"""Cycle-costed interpreters for HISA and NISA.

One :class:`Interpreter` instance animates one hardware core.  It is a
DES citizen: :meth:`step` is a generator that charges simulated time for
the instruction itself while the :class:`MemoryPort` charges for fetch,
load and store traffic (so a host core and an NxP core differ in both
clock speed *and* memory path).

Control leaves the interpreter through exceptions:

* :class:`repro.memory.paging.PageFault` — raised by the memory port on
  an NX instruction fetch; the OS turns this into a Flick migration.
* :class:`MisalignedFetch` / :class:`IllegalInstruction` — the NxP's
  extra migration triggers when it wanders into HISA code.
* :class:`EnvCall` — an ECALL/SYSCALL requesting an OS service.
* :class:`ReturnToRuntime` — the thread returned to the synthetic return
  address the runtime planted when it dispatched a function call
  (Listing 1/2's ``call_target_*_func``).
* :class:`Halted` — the program executed HALT.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Protocol

from repro.isa import hisa, nisa
from repro.isa.base import (
    ABI,
    Instruction,
    MASK64,
    Op,
    RegisterFile,
    IsaFault,
    to_signed,
)
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = [
    "Interpreter",
    "MemoryPort",
    "CostModel",
    "EnvCall",
    "ReturnToRuntime",
    "Halted",
    "RUNTIME_RETURN_ADDR",
]

# The synthetic return address the runtime plants so that a dispatched
# function's final RET hands control back to the migration machinery.
RUNTIME_RETURN_ADDR = 0x0000_7FFF_FFFF_F000


class MemoryPort(Protocol):
    """Timed memory interface a core executes against.

    Ports may additionally expose the decoded-instruction-cache contract:
    a ``fetch_check(vaddr, nbytes)`` generator charging exactly what
    ``fetch`` charges (same timed yields, same faults, same stats)
    without returning bytes, and a ``code_generation`` attribute that
    changes whenever code reachable through the port may have changed.
    Ports without both simply run uncached (e.g. the tests' FlatPort).
    """

    def fetch(self, vaddr: int, nbytes: int) -> Generator:  # pragma: no cover
        ...

    def load(self, vaddr: int, nbytes: int) -> Generator:  # pragma: no cover
        ...

    def store(self, vaddr: int, data: bytes) -> Generator:  # pragma: no cover
        ...


class EnvCall(Exception):
    """ECALL executed; the OS services it and may resume the thread."""

    def __init__(self, pc_after: int):
        self.pc_after = pc_after
        super().__init__(f"environment call (resume at {pc_after:#x})")


class ReturnToRuntime(Exception):
    """The dispatched function returned to the runtime's planted address."""

    def __init__(self, retval: int):
        self.retval = retval
        super().__init__(f"function returned {retval:#x} to runtime")


class Halted(Exception):
    """HALT executed."""


class CostModel:
    """Per-instruction time, before memory-port charges.

    ``ipc`` folds superscalar width into a simple divisor: the paper's
    Xeon retires several simple ops per cycle while the RV64-I soft core
    is scalar in-order.
    """

    _CYCLES: Dict[Op, int] = {
        Op.MUL: 3,
        Op.DIV: 20,
        Op.REM: 20,
        Op.BEQ: 2, Op.BNE: 2, Op.BLT: 2, Op.BGE: 2, Op.JCC: 2,
        Op.J: 1, Op.JAL: 2, Op.JALR: 3, Op.CALL: 3, Op.CALLR: 4, Op.RET: 3,
        Op.PUSH: 1, Op.POP: 1,
        Op.LD: 1, Op.LW: 1, Op.LBU: 1, Op.ST: 1, Op.SW: 1, Op.SB: 1,
        Op.ECALL: 10, Op.HALT: 1,
    }

    def __init__(self, cycle_ns: float, ipc: float = 1.0):
        if cycle_ns <= 0 or ipc <= 0:
            raise ValueError("cycle_ns and ipc must be positive")
        self.cycle_ns = cycle_ns
        self.ipc = ipc

    def cost_ns(self, op: Op) -> float:
        return self._CYCLES.get(op, 1) * self.cycle_ns / self.ipc


def _truncdiv(a: int, b: int) -> int:
    """C-style signed division (truncate toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _truncrem(a: int, b: int) -> int:
    return a - _truncdiv(a, b) * b


class Interpreter:
    """Executes one thread's instructions on one core."""

    def __init__(
        self,
        isa: str,
        sim: Simulator,
        port: MemoryPort,
        cost: CostModel,
        stats: Optional[StatRegistry] = None,
        name: str = "cpu",
        decode_cache: bool = True,
        jit: bool = False,
        jit_hot_threshold: int = 20,
        jit_max_superblock: int = 64,
        trace=None,
    ):
        if isa not in ("hisa", "nisa"):
            raise ValueError(f"unknown isa {isa!r}")
        self.isa = isa
        self.abi: ABI = hisa.HISA_ABI if isa == "hisa" else nisa.NISA_ABI
        self.sim = sim
        self.port = port
        self.cost = cost
        self.stats = stats or StatRegistry()
        self.name = name
        self.regs = RegisterFile(self.abi.reg_count, zero_reg=self.abi.zero_reg)
        self.pc = 0
        self.zf = False  # HISA flags
        self.sf_lt = False
        self._inst_counter = self.stats.counter(f"{name}.inst")
        # Decoded-instruction cache: pc -> (inst, length, two_part,
        # timeout).  Requires the port's fetch_check/code_generation
        # contract (see MemoryPort); validity is keyed off the port's
        # code_generation, so page-table changes and stores into
        # registered executable ranges invalidate it wholesale.
        self._decode_cache_enabled = bool(decode_cache) and hasattr(port, "fetch_check")
        self._decode_cache: Dict[int, tuple] = {}
        self._decode_gen: Optional[int] = None
        self._fetch_check_sync = (
            getattr(port, "fetch_check_sync", None) if self._decode_cache_enabled else None
        )
        self._fetch_check_fast = (
            getattr(port, "fetch_check_fast", None) if self._decode_cache_enabled else None
        )
        # Ops whose execution yields (memory traffic) on this ISA; the
        # rest run through the synchronous path without a generator.
        mem_ops = set(self._SIZED_LOADS) | set(self._SIZED_STORES)
        mem_ops |= {Op.CALL, Op.CALLR, Op.PUSH, Op.POP}
        if isa == "hisa":
            mem_ops.add(Op.RET)  # pops the return address off the stack
        self._gen_ops = frozenset(mem_ops)
        # Tracing-JIT tier (repro.isa.jit): hot backward-branch targets
        # compile to superblocks that bypass the per-instruction
        # generator machinery entirely.  None when disabled or the port
        # lacks the contracts the compiled executors need.
        self._jit = None
        if jit:
            from repro.isa.jit import JitEngine

            self._jit = JitEngine.for_interpreter(
                self, jit_hot_threshold, jit_max_superblock, trace
            )

    def invalidate_decode_cache(self) -> None:
        """Drop all cached decodes (e.g. on an address-space switch)."""
        self._decode_cache.clear()
        self._decode_gen = None
        if self._jit is not None:
            self._jit.invalidate("switch")

    # -- ABI helpers used by the runtime ---------------------------------------

    def set_args(self, args) -> None:
        if len(args) > len(self.abi.arg_regs):
            raise ValueError(
                f"{self.isa}: more than {len(self.abi.arg_regs)} register args unsupported"
            )
        for reg, value in zip(self.abi.arg_regs, args):
            self.regs.write(reg, value)

    def get_args(self, count: int):
        return [self.regs.read(r) for r in self.abi.arg_regs[:count]]

    @property
    def retval(self) -> int:
        return self.regs.read(self.abi.ret_reg)

    @property
    def sp(self) -> int:
        return self.regs.read(self.abi.sp_reg)

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs.write(self.abi.sp_reg, value)

    def setup_call(self, target: int, args, sp: Optional[int] = None) -> Generator:
        """Arrange the machine state to call ``target`` with ``args`` and
        return to the runtime (plants :data:`RUNTIME_RETURN_ADDR`)."""
        if sp is not None:
            self.sp = sp & ~(self.abi.stack_align - 1)
        self.set_args(args)
        if self.abi.link_reg is not None:
            self.regs.write(self.abi.link_reg, RUNTIME_RETURN_ADDR)
        else:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, RUNTIME_RETURN_ADDR.to_bytes(8, "little"))
        self.pc = target

    # -- execution ---------------------------------------------------------------

    def step(self) -> Generator:
        """Fetch, decode and execute one instruction.

        With the decode cache enabled (and a port exposing the
        fetch_check/code_generation contract), a PC seen before at the
        current code generation skips re-decode: ``fetch_check`` replays
        the exact fetch timing, faults and stats, so simulated results
        are bit-identical to the uncached path.
        """
        pc = self.pc
        if pc == RUNTIME_RETURN_ADDR:
            raise ReturnToRuntime(self.retval)

        port = self.port
        jit = self._jit
        if jit is not None:
            blk = jit._blocks.get(pc)
            if blk is not None:
                if blk.gen == port.code_generation:
                    yield from jit.execute(blk)
                    return
                jit.invalidate("codegen")

        gen = None
        cached = None
        if self._decode_cache_enabled:
            gen = port.code_generation
            if gen is not None:
                if gen != self._decode_gen:
                    self._decode_cache.clear()
                    self._decode_gen = gen
                cached = self._decode_cache.get(pc)

        if cached is not None:
            inst, length, two_part, pause, is_mem = cached
            sync = self._fetch_check_sync
            if sync is not None and sync(pc, 1 if two_part else length):
                # Fully checked with no simulated time due: skip the
                # generator machinery (a False return did nothing, so the
                # fallback below replays the check from scratch).
                if two_part:
                    sync(pc + 1, length - 1)
            elif two_part:
                yield from port.fetch_check(pc, 1)
                yield from port.fetch_check(pc + 1, length - 1)
            elif self._fetch_check_fast is not None:
                # The port resolved the common hit/hit case without a
                # generator and handed back the pauses to charge.
                r = self._fetch_check_fast(pc, length)
                if type(r) is tuple:
                    yield r[0]
                    yield r[1]
                else:
                    yield from r
            else:
                yield from port.fetch_check(pc, length)
        else:
            if self.isa == "nisa":
                raw = yield from port.fetch(pc, nisa.INST_BYTES)
                inst, length = nisa.decode(raw, pc)
                two_part = False
            else:
                head = yield from port.fetch(pc, 1)
                length = hisa._LEN_BY_OPCODE.get(head[0])
                if length is None:
                    from repro.isa.base import IllegalInstruction

                    raise IllegalInstruction(pc, head[0])
                if length == 1:
                    raw = head
                    two_part = False
                else:
                    # Trailing bytes are instruction bytes: route them
                    # through the fetch path (not the data-load path) so
                    # fetch/load stats and NX semantics stay truthful.
                    raw = head + (yield from port.fetch(pc + 1, length - 1))
                    two_part = True
                inst, length = hisa.decode(raw, pc)
            pause = self.sim.timeout(self.cost.cost_ns(inst.op))
            is_mem = inst.op in self._gen_ops
            # Insert only if no store/remap invalidated the code while
            # the fetch was suspended mid-flight.
            if gen is not None and port.code_generation == gen:
                self._decode_cache[pc] = (inst, length, two_part, pause, is_mem)

        self._inst_counter.value += 1
        yield pause
        # Most instructions touch no memory: execute them with a plain
        # call instead of spinning up an _execute generator; the class
        # is resolved once at decode, not per execution.
        if is_mem:
            yield from self._execute(inst, pc, length)
        elif not self._execute_sync(inst, pc, length):
            yield from self._execute(inst, pc, length)  # pragma: no cover
        # Backward control transfer: the hot-loop signal the JIT tier
        # keys compilation on (compilation itself is pure — no simulated
        # time, no stats — so noting it here cannot perturb parity).
        if jit is not None and self.pc < pc:
            jit.note_backedge(self.pc)

    def run(self, max_steps: int = 10_000_000) -> Generator:
        """Step until an exception transfers control out."""
        for _ in range(max_steps):
            yield from self.step()
        raise RuntimeError(f"{self.name}: exceeded {max_steps} steps")

    # -- semantics ----------------------------------------------------------------

    _SIZED_LOADS = {Op.LD: 8, Op.LW: 4, Op.LBU: 1}
    _SIZED_STORES = {Op.ST: 8, Op.SW: 4, Op.SB: 1}
    _ALU_OPS = frozenset(
        (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR,
         Op.XOR, Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU, Op.SEQ, Op.SNE)
    )

    def _execute_sync(self, inst: Instruction, pc: int, length: int) -> bool:
        """Execute ``inst`` when it needs no memory traffic (so no timed
        yields): updates ``self.pc`` and returns True.  Returns False —
        having done nothing — for ops the generator path must run."""
        op = inst.op
        regs = self.regs
        rs = regs.read
        next_pc = pc + length

        if op is Op.ADDI:
            regs.write(inst.rd, rs(inst.rs1) + inst.imm)
        elif op in self._ALU_OPS:
            if self.isa == "hisa":
                a = rs(inst.rd)
                b = inst.imm if inst.imm is not None else rs(inst.rs1)
                dest = inst.rd
            else:
                a = rs(inst.rs1)
                b = rs(inst.rs2)
                dest = inst.rd
            regs.write(dest, self._alu(op, a & MASK64, b & MASK64, pc))
        elif op is Op.MOV:
            regs.write(inst.rd, rs(inst.rs1))
        elif op is Op.LI:
            regs.write(inst.rd, inst.imm & MASK64)
        elif op is Op.CMP:
            a = to_signed(rs(inst.rd))
            b = to_signed(inst.imm) if inst.imm is not None else to_signed(rs(inst.rs1))
            self.zf = a == b
            self.sf_lt = a < b
        elif op is Op.JCC:
            if self._cond(inst.cond):
                next_pc = pc + length + inst.imm
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            a, b = to_signed(rs(inst.rs1)), to_signed(rs(inst.rs2))
            taken = {
                Op.BEQ: a == b,
                Op.BNE: a != b,
                Op.BLT: a < b,
                Op.BGE: a >= b,
            }[op]
            if taken:
                next_pc = pc + length + inst.imm
        elif op is Op.J:
            next_pc = pc + length + inst.imm
        elif op is Op.JAL:
            regs.write(inst.rd, pc + length)
            next_pc = pc + length + inst.imm
        elif op is Op.JALR:
            regs.write(inst.rd, pc + length)
            next_pc = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
        elif op is Op.LIH:
            regs.write(inst.rd, (rs(inst.rd) & 0xFFFF_FFFF) | ((inst.imm & 0xFFFF_FFFF) << 32))
        elif op is Op.RET and self.isa != "hisa":
            # encoded as JALR x0, ra on NISA; defensive fallback
            next_pc = rs(self.abi.link_reg)
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            self.pc = next_pc
            raise Halted()
        elif op is Op.ECALL:
            self.pc = next_pc
            raise EnvCall(next_pc)
        else:
            return False

        self.pc = next_pc
        return True

    def _execute(self, inst: Instruction, pc: int, length: int) -> Generator:
        """Memory-touching ops (the yield-free rest live in
        :meth:`_execute_sync`)."""
        op = inst.op
        regs = self.regs
        rs = regs.read
        next_pc = pc + length

        if op in self._SIZED_LOADS:
            size = self._SIZED_LOADS[op]
            addr = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
            data = yield from self.port.load(addr, size)
            regs.write(inst.rd, int.from_bytes(data, "little"))
        elif op in self._SIZED_STORES:
            size = self._SIZED_STORES[op]
            addr = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
            value = rs(inst.rs2) & ((1 << (8 * size)) - 1)
            yield from self.port.store(addr, value.to_bytes(size, "little"))
        elif op is Op.CALL:  # HISA: push return address
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, (pc + length).to_bytes(8, "little"))
            next_pc = pc + length + inst.imm
        elif op is Op.CALLR:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, (pc + length).to_bytes(8, "little"))
            next_pc = rs(inst.rs1)
        elif op is Op.RET:
            if self.isa == "hisa":
                data = yield from self.port.load(self.sp, 8)
                self.sp = self.sp + 8
                next_pc = int.from_bytes(data, "little")
            else:  # encoded as JALR x0, ra on NISA; defensive fallback
                next_pc = rs(self.abi.link_reg)
        elif op is Op.PUSH:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, rs(inst.rd).to_bytes(8, "little"))
        elif op is Op.POP:
            data = yield from self.port.load(self.sp, 8)
            self.sp = self.sp + 8
            regs.write(inst.rd, int.from_bytes(data, "little"))
        else:  # pragma: no cover - decoder prevents this
            raise IsaFault(pc, f"unimplemented op {op}")

        self.pc = next_pc

    def _alu(self, op: Op, a: int, b: int, pc: int) -> int:
        sa, sb = to_signed(a), to_signed(b)
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.DIV:
            if b == 0:
                raise IsaFault(pc, "division by zero")
            return _truncdiv(sa, sb) & MASK64
        if op is Op.REM:
            if b == 0:
                raise IsaFault(pc, "remainder by zero")
            return _truncrem(sa, sb) & MASK64
        if op is Op.AND:
            return a & b
        if op is Op.OR:
            return a | b
        if op is Op.XOR:
            return a ^ b
        if op is Op.SHL:
            return a << (b & 63)
        if op is Op.SHR:
            return a >> (b & 63)
        if op is Op.SAR:
            return (sa >> (b & 63)) & MASK64
        if op is Op.SLT:
            return int(sa < sb)
        if op is Op.SLTU:
            return int(a < b)
        if op is Op.SEQ:
            return int(a == b)
        if op is Op.SNE:
            return int(a != b)
        raise IsaFault(pc, f"bad ALU op {op}")  # pragma: no cover

    def _cond(self, cond: str) -> bool:
        return {
            "eq": self.zf,
            "ne": not self.zf,
            "lt": self.sf_lt,
            "ge": not self.sf_lt,
            "le": self.zf or self.sf_lt,
            "gt": not (self.zf or self.sf_lt),
        }[cond]
