"""Cycle-costed interpreters for HISA and NISA.

One :class:`Interpreter` instance animates one hardware core.  It is a
DES citizen: :meth:`step` is a generator that charges simulated time for
the instruction itself while the :class:`MemoryPort` charges for fetch,
load and store traffic (so a host core and an NxP core differ in both
clock speed *and* memory path).

Control leaves the interpreter through exceptions:

* :class:`repro.memory.paging.PageFault` — raised by the memory port on
  an NX instruction fetch; the OS turns this into a Flick migration.
* :class:`MisalignedFetch` / :class:`IllegalInstruction` — the NxP's
  extra migration triggers when it wanders into HISA code.
* :class:`EnvCall` — an ECALL/SYSCALL requesting an OS service.
* :class:`ReturnToRuntime` — the thread returned to the synthetic return
  address the runtime planted when it dispatched a function call
  (Listing 1/2's ``call_target_*_func``).
* :class:`Halted` — the program executed HALT.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Protocol

from repro.isa import hisa, nisa
from repro.isa.base import (
    ABI,
    Instruction,
    MASK64,
    Op,
    RegisterFile,
    IsaFault,
    to_signed,
)
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = [
    "Interpreter",
    "MemoryPort",
    "CostModel",
    "EnvCall",
    "ReturnToRuntime",
    "Halted",
    "RUNTIME_RETURN_ADDR",
]

# The synthetic return address the runtime plants so that a dispatched
# function's final RET hands control back to the migration machinery.
RUNTIME_RETURN_ADDR = 0x0000_7FFF_FFFF_F000


class MemoryPort(Protocol):
    """Timed memory interface a core executes against."""

    def fetch(self, vaddr: int, nbytes: int) -> Generator:  # pragma: no cover
        ...

    def load(self, vaddr: int, nbytes: int) -> Generator:  # pragma: no cover
        ...

    def store(self, vaddr: int, data: bytes) -> Generator:  # pragma: no cover
        ...


class EnvCall(Exception):
    """ECALL executed; the OS services it and may resume the thread."""

    def __init__(self, pc_after: int):
        self.pc_after = pc_after
        super().__init__(f"environment call (resume at {pc_after:#x})")


class ReturnToRuntime(Exception):
    """The dispatched function returned to the runtime's planted address."""

    def __init__(self, retval: int):
        self.retval = retval
        super().__init__(f"function returned {retval:#x} to runtime")


class Halted(Exception):
    """HALT executed."""


class CostModel:
    """Per-instruction time, before memory-port charges.

    ``ipc`` folds superscalar width into a simple divisor: the paper's
    Xeon retires several simple ops per cycle while the RV64-I soft core
    is scalar in-order.
    """

    _CYCLES: Dict[Op, int] = {
        Op.MUL: 3,
        Op.DIV: 20,
        Op.REM: 20,
        Op.BEQ: 2, Op.BNE: 2, Op.BLT: 2, Op.BGE: 2, Op.JCC: 2,
        Op.J: 1, Op.JAL: 2, Op.JALR: 3, Op.CALL: 3, Op.CALLR: 4, Op.RET: 3,
        Op.PUSH: 1, Op.POP: 1,
        Op.LD: 1, Op.LW: 1, Op.LBU: 1, Op.ST: 1, Op.SW: 1, Op.SB: 1,
        Op.ECALL: 10, Op.HALT: 1,
    }

    def __init__(self, cycle_ns: float, ipc: float = 1.0):
        if cycle_ns <= 0 or ipc <= 0:
            raise ValueError("cycle_ns and ipc must be positive")
        self.cycle_ns = cycle_ns
        self.ipc = ipc

    def cost_ns(self, op: Op) -> float:
        return self._CYCLES.get(op, 1) * self.cycle_ns / self.ipc


def _truncdiv(a: int, b: int) -> int:
    """C-style signed division (truncate toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _truncrem(a: int, b: int) -> int:
    return a - _truncdiv(a, b) * b


class Interpreter:
    """Executes one thread's instructions on one core."""

    def __init__(
        self,
        isa: str,
        sim: Simulator,
        port: MemoryPort,
        cost: CostModel,
        stats: Optional[StatRegistry] = None,
        name: str = "cpu",
    ):
        if isa not in ("hisa", "nisa"):
            raise ValueError(f"unknown isa {isa!r}")
        self.isa = isa
        self.abi: ABI = hisa.HISA_ABI if isa == "hisa" else nisa.NISA_ABI
        self.sim = sim
        self.port = port
        self.cost = cost
        self.stats = stats or StatRegistry()
        self.name = name
        self.regs = RegisterFile(self.abi.reg_count, zero_reg=self.abi.zero_reg)
        self.pc = 0
        self.zf = False  # HISA flags
        self.sf_lt = False

    # -- ABI helpers used by the runtime ---------------------------------------

    def set_args(self, args) -> None:
        if len(args) > len(self.abi.arg_regs):
            raise ValueError(
                f"{self.isa}: more than {len(self.abi.arg_regs)} register args unsupported"
            )
        for reg, value in zip(self.abi.arg_regs, args):
            self.regs.write(reg, value)

    def get_args(self, count: int):
        return [self.regs.read(r) for r in self.abi.arg_regs[:count]]

    @property
    def retval(self) -> int:
        return self.regs.read(self.abi.ret_reg)

    @property
    def sp(self) -> int:
        return self.regs.read(self.abi.sp_reg)

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs.write(self.abi.sp_reg, value)

    def setup_call(self, target: int, args, sp: Optional[int] = None) -> Generator:
        """Arrange the machine state to call ``target`` with ``args`` and
        return to the runtime (plants :data:`RUNTIME_RETURN_ADDR`)."""
        if sp is not None:
            self.sp = sp & ~(self.abi.stack_align - 1)
        self.set_args(args)
        if self.abi.link_reg is not None:
            self.regs.write(self.abi.link_reg, RUNTIME_RETURN_ADDR)
        else:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, RUNTIME_RETURN_ADDR.to_bytes(8, "little"))
        self.pc = target

    # -- execution ---------------------------------------------------------------

    def step(self) -> Generator:
        """Fetch, decode and execute one instruction."""
        pc = self.pc
        if pc == RUNTIME_RETURN_ADDR:
            raise ReturnToRuntime(self.retval)

        if self.isa == "nisa":
            raw = yield from self.port.fetch(pc, nisa.INST_BYTES)
            inst, length = nisa.decode(raw, pc)
        else:
            head = yield from self.port.fetch(pc, 1)
            length = hisa._LEN_BY_OPCODE.get(head[0])
            if length is None:
                from repro.isa.base import IllegalInstruction

                raise IllegalInstruction(pc, head[0])
            raw = head if length == 1 else head + (yield from self.port.load(pc + 1, length - 1))
            inst, length = hisa.decode(raw, pc)

        self.stats.count(f"{self.name}.inst")
        yield self.sim.timeout(self.cost.cost_ns(inst.op))
        yield from self._execute(inst, pc, length)

    def run(self, max_steps: int = 10_000_000) -> Generator:
        """Step until an exception transfers control out."""
        for _ in range(max_steps):
            yield from self.step()
        raise RuntimeError(f"{self.name}: exceeded {max_steps} steps")

    # -- semantics ----------------------------------------------------------------

    def _execute(self, inst: Instruction, pc: int, length: int) -> Generator:
        op = inst.op
        regs = self.regs
        next_pc = pc + length

        def rs(idx):
            return regs.read(idx)

        def srs(idx):
            return to_signed(regs.read(idx))

        if op in (Op.NOP,):
            pass
        elif op is Op.HALT:
            self.pc = next_pc
            raise Halted()
        elif op is Op.ECALL:
            self.pc = next_pc
            raise EnvCall(next_pc)
        elif op in (Op.LI,):
            regs.write(inst.rd, inst.imm & MASK64)
        elif op is Op.LIH:
            regs.write(inst.rd, (rs(inst.rd) & 0xFFFF_FFFF) | ((inst.imm & 0xFFFF_FFFF) << 32))
        elif op is Op.MOV:
            regs.write(inst.rd, rs(inst.rs1))
        elif op is Op.ADDI:
            regs.write(inst.rd, rs(inst.rs1) + inst.imm)
        elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR,
                    Op.XOR, Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU, Op.SEQ, Op.SNE):
            if self.isa == "hisa":
                a = rs(inst.rd)
                b = inst.imm if inst.imm is not None else rs(inst.rs1)
                dest = inst.rd
            else:
                a = rs(inst.rs1)
                b = rs(inst.rs2)
                dest = inst.rd
            regs.write(dest, self._alu(op, a & MASK64, b & MASK64, pc))
        elif op in (Op.LD, Op.LW, Op.LBU):
            size = {Op.LD: 8, Op.LW: 4, Op.LBU: 1}[op]
            addr = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
            data = yield from self.port.load(addr, size)
            regs.write(inst.rd, int.from_bytes(data, "little"))
        elif op in (Op.ST, Op.SW, Op.SB):
            size = {Op.ST: 8, Op.SW: 4, Op.SB: 1}[op]
            addr = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
            value = rs(inst.rs2) & ((1 << (8 * size)) - 1)
            yield from self.port.store(addr, value.to_bytes(size, "little"))
        elif op is Op.CMP:
            a = to_signed(rs(inst.rd))
            b = to_signed(inst.imm) if inst.imm is not None else srs(inst.rs1)
            self.zf = a == b
            self.sf_lt = a < b
        elif op is Op.JCC:
            if self._cond(inst.cond):
                next_pc = pc + length + inst.imm
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            a, b = srs(inst.rs1), srs(inst.rs2)
            taken = {
                Op.BEQ: a == b,
                Op.BNE: a != b,
                Op.BLT: a < b,
                Op.BGE: a >= b,
            }[op]
            if taken:
                next_pc = pc + length + inst.imm
        elif op is Op.J:
            next_pc = pc + length + inst.imm
        elif op is Op.JAL:
            regs.write(inst.rd, pc + length)
            next_pc = pc + length + inst.imm
        elif op is Op.JALR:
            regs.write(inst.rd, pc + length)
            next_pc = (rs(inst.rs1) + (inst.imm or 0)) & MASK64
        elif op is Op.CALL:  # HISA: push return address
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, (pc + length).to_bytes(8, "little"))
            next_pc = pc + length + inst.imm
        elif op is Op.CALLR:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, (pc + length).to_bytes(8, "little"))
            next_pc = rs(inst.rs1)
        elif op is Op.RET:
            if self.isa == "hisa":
                data = yield from self.port.load(self.sp, 8)
                self.sp = self.sp + 8
                next_pc = int.from_bytes(data, "little")
            else:  # encoded as JALR x0, ra on NISA; defensive fallback
                next_pc = rs(self.abi.link_reg)
        elif op is Op.PUSH:
            self.sp = self.sp - 8
            yield from self.port.store(self.sp, rs(inst.rd).to_bytes(8, "little"))
        elif op is Op.POP:
            data = yield from self.port.load(self.sp, 8)
            self.sp = self.sp + 8
            regs.write(inst.rd, int.from_bytes(data, "little"))
        else:  # pragma: no cover - decoder prevents this
            raise IsaFault(pc, f"unimplemented op {op}")

        self.pc = next_pc

    def _alu(self, op: Op, a: int, b: int, pc: int) -> int:
        sa, sb = to_signed(a), to_signed(b)
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.DIV:
            if b == 0:
                raise IsaFault(pc, "division by zero")
            return _truncdiv(sa, sb) & MASK64
        if op is Op.REM:
            if b == 0:
                raise IsaFault(pc, "remainder by zero")
            return _truncrem(sa, sb) & MASK64
        if op is Op.AND:
            return a & b
        if op is Op.OR:
            return a | b
        if op is Op.XOR:
            return a ^ b
        if op is Op.SHL:
            return a << (b & 63)
        if op is Op.SHR:
            return a >> (b & 63)
        if op is Op.SAR:
            return (sa >> (b & 63)) & MASK64
        if op is Op.SLT:
            return int(sa < sb)
        if op is Op.SLTU:
            return int(a < b)
        if op is Op.SEQ:
            return int(a == b)
        if op is Op.SNE:
            return int(a != b)
        raise IsaFault(pc, f"bad ALU op {op}")  # pragma: no cover

    def _cond(self, cond: str) -> bool:
        return {
            "eq": self.zf,
            "ne": not self.zf,
            "lt": self.sf_lt,
            "ge": not self.sf_lt,
            "le": self.zf or self.sf_lt,
            "gt": not (self.zf or self.sf_lt),
        }[cond]
