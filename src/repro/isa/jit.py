"""Tracing-JIT tier: hot-superblock compilation for the interpreters.

The interpreters in :mod:`repro.isa.interpreter` pay generator dispatch,
decode-cache probing and one DES event per timed pause for *every*
instruction.  That is the right shape for cold code, faults and the
migration protocol, but it caps the simulator at a few hundred thousand
instructions per wall second — far below what fleet- and workload-scale
experiments need.

This module adds a third execution tier above the decode cache:

1. **Hot detection** — every backward control transfer bumps a counter
   keyed by the branch *target* (the natural loop header).  When a
   target crosses ``jit_hot_threshold`` it is compiled.
2. **Superblock compilation** — starting at the hot entry PC, code is
   decoded *statically* through the pure translation path (page tables /
   translation cache, no simulated time, no stats) into a flat micro-op
   list: closures over pre-decoded operands for ALU/branch work, and
   inline fast-route handlers for memory accesses (host loads, stores
   and PUSH/POP stack traffic; NxP BRAM/local-window loads and stores).
   A trace is one-entry/multi-exit:
   conditional branches become guards whose taken edge restarts the
   loop (target == entry), jumps *within* the decoded region (the
   boolean-materialization pattern the compiler emits), or exits with a
   precise PC.  Compilation stops at anything the compiled form cannot
   express — calls/returns/indirect jumps, ECALL/HALT, NX-sense
   mismatches, unmapped pages, ``jit_max_superblock``.
3. **Execution** — the executor replays the interpreter's *exact*
   sequence of timed pauses arithmetically on a local accumulator
   (bit-identical float adds, in order), flushing with one exact
   ``sleep_until`` per loop iteration / region exit and crediting the
   collapsed pauses to :meth:`Simulator.credit_events`.  Stat counters
   are bumped through the same Counter objects the slow path uses.
   Anything unexpected — page fault, write-protect, IsaFault, TLB miss,
   I-cache miss, cross-PCIe route, code-generation change — either runs
   through the port's own engine path (slow memory routes) or bails out
   to the interpreter at a precise architectural state (``itp.pc`` at
   the faulting/next instruction, time flushed, counters settled).

Invalidation reuses the decoded-instruction-cache contract: every block
records the port ``code_generation`` it was compiled under and is
dropped wholesale when the generation moves (mapping changes, NX flips,
stores into registered executable ranges, address-space switches).  A
store *inside* a trace re-checks the generation immediately so
self-modifying code never runs one stale instruction.

The parity contract (tests/core/test_jit_parity.py): with the tier on
or off, a workload's return value, simulated nanoseconds, stat counters
and processed-DES-event count are bit-identical, in interpreted and
hosted modes, with and without an armed fault plan.

Known bound: a superblock applies architectural state eagerly within
one flush window (at most one loop iteration / ``jit_max_superblock``
instructions).  A *concurrent* simulated process that mutates code
mid-window is observed at the next flush boundary — the same guarantee
class as real hardware's cross-modifying-code rules.  Nothing in the
machine mutates code asynchronously today (code changes come from the
executing thread itself or happen at load time).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa import hisa, nisa
from repro.isa.base import MASK64, IllegalInstruction, MisalignedFetch, Op, to_signed
from repro.memory.paging import PageFault

__all__ = ["JitEngine", "Superblock", "BAILOUT_REASONS"]

# Micro-op kinds (tuple slot 0).
K_SIMPLE = 0  # (K, pc, cost_ns, fn | None)
K_GUARD = 1  # (K, pc, cost_ns, cond_fn, taken_pc, taken_idx)
K_LOOP = 2  # (K, pc, cost_ns, None) — close the loop back to entry
K_HLOAD = 3  # (K, pc, cost_ns, addr_fn, size, rd, next_pc)
K_HSTORE = 4  # (K, pc, cost_ns, addr_fn, size, value_fn, next_pc)
K_PUSH = 5  # (K, pc, cost_ns, rd, next_pc)
K_POP = 6  # (K, pc, cost_ns, rd, next_pc)
K_NLOAD = 7  # (K, pc, cost_ns, addr_fn, size, rd, next_pc)
K_NSTORE = 8  # (K, pc, cost_ns, addr_fn, size, value_fn, next_pc)

# K_GUARD taken_idx sentinels (taken_idx >= 0 is an intra-trace index).
LOOP_RESTART = -1
GUARD_EXIT = -2

#: Every reason :class:`JitEngine` counts under ``jit.bailouts.*``.
BAILOUT_REASONS = (
    "fault",        # page fault / IsaFault raised inside the block
    "codegen",      # code generation moved under a running/entered block
    "self_modify",  # a store inside the block hit registered code
    "itlb",         # NxP I-TLB probe missed (or NX sense flipped)
    "decode_error",  # bytes on an executable page failed to decode
)

_SIZED_LOADS = {Op.LD: 8, Op.LW: 4, Op.LBU: 1}
_SIZED_STORES = {Op.ST: 8, Op.SW: 4, Op.SB: 1}
_BRANCH_OPS = frozenset((Op.BEQ, Op.BNE, Op.BLT, Op.BGE))
#: Ops that always terminate a trace: control leaves through machinery
#: the compiled form cannot replay (calls/returns/indirect jumps, env
#: calls, halts).
_TERMINATORS = frozenset((Op.CALL, Op.CALLR, Op.RET, Op.JALR, Op.ECALL, Op.HALT))


class Superblock:
    """One compiled trace: a flat micro-op list with one entry."""

    __slots__ = ("entry", "gen", "ops", "exit_pc", "loop")

    def __init__(self, entry: int, gen: int, ops: List[tuple], exit_pc: int, loop: bool):
        self.entry = entry
        self.gen = gen
        self.ops = ops
        self.exit_pc = exit_pc  # pc when execution falls off the end
        self.loop = loop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "loop" if self.loop else "line"
        return f"<Superblock {kind} entry={self.entry:#x} n={len(self.ops)} gen={self.gen}>"


class JitEngine:
    """Per-interpreter trace cache: hot detection, compilation, execution.

    Created by :class:`repro.isa.interpreter.Interpreter` when the tier
    is enabled and the memory port supports it (see
    :meth:`for_interpreter`).  All bookkeeping lives in plain attributes
    — deliberately *outside* :class:`repro.sim.stats.StatRegistry`, so
    the tier stays invisible to the parity-pinned stat snapshot; the
    metrics layer and ``python -m repro profile`` surface them through
    :meth:`counters` instead.
    """

    def __init__(self, itp, style: str, hot_threshold: int, max_superblock: int, trace=None):
        self.itp = itp
        self.style = style  # "host" (hoisted free ifetch) | "nxp" (TLB replay)
        self.hot_threshold = max(1, int(hot_threshold))
        self.max_superblock = max(2, int(max_superblock))
        self.trace = trace
        self._counts: Dict[int, int] = {}
        self._blocks: Dict[int, Superblock] = {}
        self._cold: set = set()  # entries that failed to compile
        # Observability sidecar (not StatRegistry; see class docstring).
        self.compiled_blocks = 0
        self.block_exec_total = 0
        self.block_inst_total = 0
        self.block_sim_ns = 0.0
        self.invalidations = 0
        self.bailouts: Dict[str, int] = {}
        try:
            from repro.core.stubs import STUB_PCS

            self._stub_pcs = STUB_PCS
        except Exception:  # pragma: no cover - stubs always importable
            self._stub_pcs = frozenset()
        from repro.isa.interpreter import RUNTIME_RETURN_ADDR

        self._runtime_ret = RUNTIME_RETURN_ADDR

    # -- construction ------------------------------------------------------

    @staticmethod
    def for_interpreter(itp, hot_threshold: int, max_superblock: int, trace=None):
        """Build an engine for ``itp`` if its port supports the tier.

        Host-style ports (translation cache + synchronous physical
        memory, free I-fetch) get the hoisted-fetch executor; the NxP
        port gets the per-instruction TLB/I-cache replay executor.
        Ports without either contract (e.g. the tests' FlatPort) — or a
        host model with a non-zero I-fetch latency, which the hoisted
        executor cannot replay — run without a JIT.
        """
        port = itp.port
        if hasattr(port, "tcache") and hasattr(port, "phys"):
            if getattr(port.cfg, "host_ifetch_ns", 0.0):
                return None
            return JitEngine(itp, "host", hot_threshold, max_superblock, trace)
        if hasattr(port, "itlb") and hasattr(port, "icache"):
            return JitEngine(itp, "nxp", hot_threshold, max_superblock, trace)
        return None

    # -- hot detection -----------------------------------------------------

    def note_backedge(self, target: int) -> None:
        """Record one backward control transfer to ``target``; compile
        the superblock once the target crosses the hot threshold."""
        count = self._counts.get(target, 0) + 1
        self._counts[target] = count
        if count >= self.hot_threshold and target not in self._blocks and target not in self._cold:
            self._try_compile(target)

    def lookup(self, pc: int) -> Optional[Superblock]:
        return self._blocks.get(pc)

    def invalidate(self, reason: str) -> None:
        """Drop every compiled block (generation moved / address-space
        switch).  Hotness counters survive, so still-hot loops recompile
        on their next backedge."""
        if self._blocks or self._cold:
            self._blocks.clear()
            self._cold.clear()
            self.invalidations += 1
            if reason in BAILOUT_REASONS:
                self._note_bail(reason)
            if self.trace is not None:
                self.trace.record("jit_invalidate", reason=reason, cpu=self.itp.name)

    def _note_bail(self, reason: str) -> None:
        self.bailouts[reason] = self.bailouts.get(reason, 0) + 1

    def counters(self) -> Dict[str, float]:
        """Flat counter dict for the metrics layer / profile output."""
        out: Dict[str, float] = {
            "jit.compiled_blocks": self.compiled_blocks,
            "jit.block_exec_total": self.block_exec_total,
            "jit.block_inst_total": self.block_inst_total,
            "jit.block_sim_ns": self.block_sim_ns,
            "jit.invalidations": self.invalidations,
        }
        for reason, count in sorted(self.bailouts.items()):
            out[f"jit.bailouts.{reason}"] = count
        return out

    # -- compilation -------------------------------------------------------

    def _code_bytes(self, pc: int, nbytes: int) -> Optional[bytes]:
        """Read instruction bytes through the *pure* translation path —
        no simulated time, no stats — validating the port's NX fetch
        sense per page.  None when any byte is unmapped or on the wrong
        side of the NX fence (the trace simply ends before it)."""
        port = self.itp.port
        out = b""
        addr = pc
        remaining = nbytes
        if self.style == "host":
            sense = port.exec_nx_sense
            tcache = port.tcache
            phys = port.phys
            while remaining:
                try:
                    delta, _writable, nx = tcache.entry(addr)
                except PageFault:
                    return None
                if nx != sense:
                    return None
                take = min(remaining, 4096 - (addr & 4095))
                out += phys.read(addr + delta, take)
                addr += take
                remaining -= take
            return out
        tables = port.tables_provider() if port.tables_provider is not None else None
        if tables is None:
            return None
        while remaining:
            try:
                tr = tables.translate(addr)
            except PageFault:
                return None
            if not tr.nx:  # inverted sense: NX-set pages hold NISA code
                return None
            take = min(remaining, 4096 - (addr & 4095))
            out += port.phys.read(tr.paddr, take)
            addr += take
            remaining -= take
        return out

    def _decode_at(self, pc: int):
        """Statically decode the instruction at ``pc`` → (inst, length),
        or None when it cannot be proven decodable (trace ends)."""
        if self.itp.isa == "nisa":
            if pc % nisa.INST_BYTES:
                return None
            raw = self._code_bytes(pc, nisa.INST_BYTES)
            if raw is None:
                return None
            try:
                return nisa.decode(raw, pc)
            except (IllegalInstruction, MisalignedFetch):
                # Undecodable bytes on an executable page: legitimately
                # refuse to compile, but leave a sidecar mark — a storm
                # of these means the profile is steering the JIT at data.
                # Anything else (a TypeError, an IndexError in decode)
                # is an interpreter bug and must propagate.
                self._note_bail("decode_error")
                return None
        head = self._code_bytes(pc, 1)
        if head is None:
            return None
        length = hisa._LEN_BY_OPCODE.get(head[0])
        if length is None:
            return None
        raw = head if length == 1 else self._code_bytes(pc, length)
        if raw is None:
            return None
        try:
            return hisa.decode(raw, pc)
        except (IllegalInstruction, MisalignedFetch):
            self._note_bail("decode_error")
            return None

    def _try_compile(self, entry: int) -> None:
        block = self._compile(entry)
        if block is None:
            self._cold.add(entry)
            return
        self._blocks[entry] = block
        self.compiled_blocks += 1
        if self.trace is not None:
            self.trace.record(
                "jit_compile",
                pc=entry,
                size=len(block.ops),
                loop=block.loop,
                cpu=self.itp.name,
            )

    def _compile(self, entry: int) -> Optional[Superblock]:
        itp = self.itp
        port = itp.port
        gen = port.code_generation
        if gen is None:
            return None
        cost_ns = itp.cost.cost_ns
        zero_reg = itp.abi.zero_reg
        host_mem = self.style == "host"

        ops: List[list] = []  # mutable while guard targets resolve
        index_of: Dict[int, int] = {}  # decoded pc -> op index
        guards: List[int] = []
        pc = entry
        loop = False
        exit_pc = entry  # overwritten on every real exit
        while True:
            if len(ops) >= self.max_superblock:
                exit_pc = pc
                break
            if ops and pc == entry:
                # Control falls through to the entry: close the loop
                # with a synthetic (free) restart marker.
                ops.append([K_LOOP, pc, 0.0, None])
                loop = True
                break
            if pc in index_of or pc in self._stub_pcs or pc == self._runtime_ret:
                exit_pc = pc
                break
            decoded = self._decode_at(pc)
            if decoded is None:
                exit_pc = pc
                break
            inst, length = decoded
            op = inst.op
            nxt = pc + length
            if op in _TERMINATORS or (op is Op.JAL and inst.rd != zero_reg):
                exit_pc = pc
                break
            cost = cost_ns(op)
            if op in _BRANCH_OPS or op is Op.JCC:
                guards.append(len(ops))
                index_of[pc] = len(ops)
                ops.append(
                    [K_GUARD, pc, cost, self._compile_cond(inst), nxt + inst.imm, GUARD_EXIT]
                )
                pc = nxt
                continue
            if op is Op.J or (op is Op.JAL and inst.rd == zero_reg):
                target = nxt + inst.imm
                if target == entry:
                    ops.append([K_LOOP, pc, cost, None])
                    loop = True
                    break
                if target in index_of or target in self._stub_pcs or target == self._runtime_ret:
                    exit_pc = pc  # let the interpreter take the jump
                    break
                # Collapse the jump: charge it here, keep decoding at
                # its target (the next list element *is* the target op,
                # so linear fall-through reproduces the transfer).
                index_of[pc] = len(ops)
                ops.append([K_SIMPLE, pc, cost, None])
                pc = target
                continue
            if op in _SIZED_LOADS or op in _SIZED_STORES or op is Op.PUSH or op is Op.POP:
                if not host_mem:
                    if op is Op.PUSH or op is Op.POP:
                        # The NISA compiler spills through LD/ST, never
                        # PUSH/POP; no replay handler for them here.
                        exit_pc = pc
                        break
                    index_of[pc] = len(ops)
                    addr_fn = self._compile_addr(inst)
                    if op in _SIZED_LOADS:
                        ops.append(
                            [K_NLOAD, pc, cost, addr_fn, _SIZED_LOADS[op], inst.rd, nxt]
                        )
                    else:
                        size = _SIZED_STORES[op]
                        value_fn = self._compile_store_value(inst, size)
                        ops.append([K_NSTORE, pc, cost, addr_fn, size, value_fn, nxt])
                    pc = nxt
                    continue
                index_of[pc] = len(ops)
                if op is Op.PUSH:
                    ops.append([K_PUSH, pc, cost, inst.rd, nxt])
                elif op is Op.POP:
                    ops.append([K_POP, pc, cost, inst.rd, nxt])
                elif op in _SIZED_LOADS:
                    addr_fn = self._compile_addr(inst)
                    ops.append([K_HLOAD, pc, cost, addr_fn, _SIZED_LOADS[op], inst.rd, nxt])
                else:
                    size = _SIZED_STORES[op]
                    addr_fn = self._compile_addr(inst)
                    value_fn = self._compile_store_value(inst, size)
                    ops.append([K_HSTORE, pc, cost, addr_fn, size, value_fn, nxt])
                pc = nxt
                continue
            fn = self._compile_sync(inst, pc)
            if fn is _UNSUPPORTED:
                exit_pc = pc
                break
            index_of[pc] = len(ops)
            ops.append([K_SIMPLE, pc, cost, fn])
            pc = nxt
        if len(ops) < 2:
            return None
        # Resolve guard taken-edges: loop restart, a *forward* jump into
        # the decoded region, or a precise exit.  (Backward intra-trace
        # targets other than the entry would form a second loop inside
        # the trace without a flush point — those exit instead.)
        for gi in guards:
            guard = ops[gi]
            target = guard[4]
            if target == entry:
                guard[5] = LOOP_RESTART
                loop = True
            else:
                ti = index_of.get(target)
                guard[5] = ti if ti is not None and ti > gi else GUARD_EXIT
        return Superblock(entry, gen, [tuple(o) for o in ops], exit_pc, loop)

    # -- operand / semantics closures --------------------------------------

    def _compile_cond(self, inst):
        itp = self.itp
        r = itp.regs.read
        op = inst.op
        if op is Op.JCC:
            cond = inst.cond
            return lambda: itp._cond(cond)
        rs1, rs2 = inst.rs1, inst.rs2
        if op is Op.BEQ:
            return lambda: r(rs1) == r(rs2)
        if op is Op.BNE:
            return lambda: r(rs1) != r(rs2)
        if op is Op.BLT:
            return lambda: to_signed(r(rs1)) < to_signed(r(rs2))
        return lambda: to_signed(r(rs1)) >= to_signed(r(rs2))  # BGE

    def _compile_addr(self, inst):
        r = self.itp.regs.read
        rs1 = inst.rs1
        imm = inst.imm or 0
        if imm:
            return lambda: (r(rs1) + imm) & MASK64
        return lambda: r(rs1) & MASK64

    def _compile_store_value(self, inst, size: int):
        r = self.itp.regs.read
        rs2 = inst.rs2
        mask = (1 << (8 * size)) - 1
        return lambda: r(rs2) & mask

    def _compile_sync(self, inst, pc: int):
        """Closure with :meth:`Interpreter._execute_sync`'s exact
        semantics for one pre-decoded, PC-independent instruction."""
        itp = self.itp
        regs = itp.regs
        r = regs.read
        w = regs.write
        op = inst.op
        rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm
        hisa_mode = itp.isa == "hisa"

        if op is Op.ADDI:
            return lambda: w(rd, r(rs1) + imm)
        if op is Op.MOV:
            return lambda: w(rd, r(rs1))
        if op is Op.LI:
            value = imm & MASK64
            return lambda: w(rd, value)
        if op is Op.LIH:
            high = (imm & 0xFFFF_FFFF) << 32
            return lambda: w(rd, (r(rd) & 0xFFFF_FFFF) | high)
        if op is Op.NOP:
            return None
        if op is Op.CMP:
            if imm is not None:
                b = to_signed(imm)

                def fn():
                    a = to_signed(r(rd))
                    itp.zf = a == b
                    itp.sf_lt = a < b

            else:

                def fn():
                    a = to_signed(r(rd))
                    b = to_signed(r(rs1))
                    itp.zf = a == b
                    itp.sf_lt = a < b

            return fn
        if op in _ALU_FAST or op in _ALU_SLOW:
            if hisa_mode:
                if imm is not None:
                    b_const = imm & MASK64
                    if op in _ALU_FAST:
                        alu = _ALU_FAST[op]
                        return lambda: w(rd, alu(r(rd), b_const))
                    alu = itp._alu
                    return lambda: w(rd, alu(op, r(rd), b_const, pc))
                if op in _ALU_FAST:
                    alu = _ALU_FAST[op]
                    return lambda: w(rd, alu(r(rd), r(rs1)))
                alu = itp._alu
                return lambda: w(rd, alu(op, r(rd), r(rs1), pc))
            if op in _ALU_FAST:
                alu = _ALU_FAST[op]
                return lambda: w(rd, alu(r(rs1), r(rs2)))
            alu = itp._alu
            return lambda: w(rd, alu(op, r(rs1), r(rs2), pc))
        return _UNSUPPORTED

    # -- execution ---------------------------------------------------------

    def execute(self, block: Superblock):
        if self.style == "host":
            return self._exec_host(block)
        return self._exec_nxp(block)

    def _exec_host(self, block: Superblock):
        """Run one host-style superblock (generator; yields at most a
        few consolidated pauses plus any slow-route port traffic).

        The I-fetch NX checks are hoisted: compilation validated every
        code page against the port's NX sense, ``code_generation``
        equality (checked on entry by the interpreter and re-checked at
        every loop boundary and after every store) proves those checks
        still pass, and the default host model charges zero I-fetch
        time — so per-instruction fetch replay reduces to nothing.
        """
        itp = self.itp
        sim = itp.sim
        port = itp.port
        regs = itp.regs
        rread = regs.read
        rwrite = regs.write
        sp_reg = itp.abi.sp_reg
        tcache = port.tcache
        phys = port.phys
        mm = port.mm
        tables = port.tables
        cached_ns = port.cfg.host_cached_mem_ns
        c_load = port._c_load
        c_store = port._c_store
        counter = itp._inst_counter
        sleep_until = sim.sleep_until
        ops = block.ops
        nops = len(ops)
        gen = block.gen
        entry = block.entry

        self.block_exec_total += 1
        t = sim.now
        t0 = t
        pauses = 0
        n = 0
        i = 0
        while True:
            if i == nops:
                itp.pc = block.exit_pc
                break
            op = ops[i]
            kind = op[0]
            t += op[2]
            pauses += 1
            n += 1
            if kind == K_SIMPLE:
                fn = op[3]
                if fn is not None:
                    try:
                        fn()
                    except BaseException:
                        itp.pc = op[1]
                        counter.value += n
                        self.block_inst_total += n
                        self.block_sim_ns += t - t0
                        self._note_bail("fault")
                        sim.credit_events(pauses - 1)
                        yield sleep_until(t)
                        raise
                i += 1
            elif kind == K_GUARD:
                if op[3]():
                    idx = op[5]
                    if idx >= 0:
                        i = idx
                    elif idx == LOOP_RESTART:
                        counter.value += n
                        self.block_inst_total += n
                        self.block_sim_ns += t - t0
                        n = 0
                        sim.credit_events(pauses - 1)
                        yield sleep_until(t)
                        pauses = 0
                        t0 = t = sim.now
                        if port.code_generation != gen:
                            itp.pc = entry
                            self.invalidate("codegen")
                            return
                        i = 0
                    else:  # GUARD_EXIT
                        itp.pc = op[4]
                        break
                else:
                    i += 1
            elif kind == K_HLOAD:
                addr = op[3]()
                try:
                    e = tcache.entry(addr)
                except PageFault:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise
                paddr = addr + e[0]
                if mm.host_dram_contains(paddr):
                    c_load.value += 1
                    t += cached_ns
                    pauses += 1
                    rwrite(op[5], int.from_bytes(phys.read(paddr, op[4]), "little"))
                else:
                    # Cross-PCIe route: flush, then let the port charge
                    # the real link traffic (contention included).
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    n = 0
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                    data = yield from port.load(addr, op[4])
                    rwrite(op[5], int.from_bytes(data, "little"))
                    t0 = t = sim.now
                i += 1
            elif kind == K_HSTORE:
                addr = op[3]()
                try:
                    e = tcache.entry(addr)
                except PageFault:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise
                if not e[1]:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise PageFault(addr, PageFault.WRITE_PROTECT, is_write=True)
                paddr = addr + e[0]
                if mm.host_dram_contains(paddr):
                    c_store.value += 1
                    tables.note_code_store(addr, op[4])
                    t += cached_ns
                    pauses += 1
                    phys.write(paddr, op[5]().to_bytes(op[4], "little"))
                    if tables.code_generation != gen:
                        # Self-modifying store: the instruction is
                        # complete; exit before running stale code.
                        itp.pc = op[6]
                        self.invalidate("self_modify")
                        break
                else:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    n = 0
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                    yield from port.store(addr, op[5]().to_bytes(op[4], "little"))
                    t0 = t = sim.now
                    if tables.code_generation != gen:
                        itp.pc = op[6]
                        self.invalidate("self_modify")
                        break
                i += 1
            elif kind == K_PUSH:
                # Replays Interpreter._execute exactly: SP moves first,
                # so a faulting push leaves SP decremented, as the slow
                # path would.
                sp = (rread(sp_reg) - 8) & MASK64
                rwrite(sp_reg, sp)
                try:
                    e = tcache.entry(sp)
                except PageFault:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise
                if not e[1]:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise PageFault(sp, PageFault.WRITE_PROTECT, is_write=True)
                paddr = sp + e[0]
                data = rread(op[3]).to_bytes(8, "little")
                if mm.host_dram_contains(paddr):
                    c_store.value += 1
                    tables.note_code_store(sp, 8)
                    t += cached_ns
                    pauses += 1
                    phys.write(paddr, data)
                    if tables.code_generation != gen:
                        itp.pc = op[4]
                        self.invalidate("self_modify")
                        break
                else:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    n = 0
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                    yield from port.store(sp, data)
                    t0 = t = sim.now
                    if tables.code_generation != gen:
                        itp.pc = op[4]
                        self.invalidate("self_modify")
                        break
                i += 1
            elif kind == K_POP:
                sp = rread(sp_reg)
                try:
                    e = tcache.entry(sp)
                except PageFault:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    self._note_bail("fault")
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    raise
                paddr = sp + e[0]
                if mm.host_dram_contains(paddr):
                    c_load.value += 1
                    t += cached_ns
                    pauses += 1
                    value = int.from_bytes(phys.read(paddr, 8), "little")
                else:
                    itp.pc = op[1]
                    counter.value += n
                    self.block_inst_total += n
                    self.block_sim_ns += t - t0
                    n = 0
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                    data = yield from port.load(sp, 8)
                    value = int.from_bytes(data, "little")
                    t0 = t = sim.now
                rwrite(sp_reg, sp + 8)
                rwrite(op[3], value)
                i += 1
            else:  # K_LOOP
                if not op[2]:
                    # Synthetic fall-through marker, not an instruction:
                    # undo the blanket per-op charge applied above.
                    pauses -= 1
                    n -= 1
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                if pauses:
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                t0 = t = sim.now
                if port.code_generation != gen:
                    itp.pc = entry
                    self.invalidate("codegen")
                    return
                i = 0
        # Normal exit (fell off the end, guard taken, self-modify stop).
        counter.value += n
        self.block_inst_total += n
        self.block_sim_ns += t - t0
        if pauses:
            sim.credit_events(pauses - 1)
            yield sleep_until(t)

    def _exec_nxp(self, block: Superblock):
        """Run one NxP superblock, replaying the I-TLB/I-cache pipeline
        per instruction: the TLB and cache *mutate* on every access (LRU
        order, hit/miss/evict counters), so the replay calls the same
        objects the interpreter would — only the timed pauses are
        consolidated.  An I-TLB probe miss (or flipped NX sense) bails
        to the interpreter *before* any bookkeeping for the instruction,
        so the real lookup is counted exactly once.
        """
        itp = self.itp
        sim = itp.sim
        port = itp.port
        itlb = port.itlb
        icache = port.icache
        dtlb = port.dtlb
        dcache = port.dcache
        cacheable = port.cacheable
        mm = port.mm
        phys = port.phys
        provider = port.tables_provider
        c_fetch = port._c_fetch
        c_load = port._c_load
        c_load_local = port._c_load_local
        c_store = port._c_store
        cfg = port.cfg
        tlb_hit_ns = cfg.tlb_hit_ns
        icache_hit_ns = cfg.nxp_icache_hit_ns
        bram_ns = cfg.nxp_bram_ns
        local_read_ns = cfg.nxp_to_local_read_ns
        local_write_ns = cfg.nxp_to_local_write_ns
        rwrite = itp.regs.write
        counter = itp._inst_counter
        sleep_until = sim.sleep_until
        ops = block.ops
        nops = len(ops)
        gen = block.gen
        entry = block.entry

        self.block_exec_total += 1
        t = sim.now
        t0 = t
        pauses = 0
        n = 0
        i = 0
        while True:
            if i == nops:
                itp.pc = block.exit_pc
                break
            op = ops[i]
            kind = op[0]
            pc_i = op[1]
            cost = op[2]
            if kind == K_LOOP and not cost:
                # Synthetic fall-through marker: no instruction here.
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                if pauses:
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                t0 = t = sim.now
                if port.code_generation != gen:
                    itp.pc = entry
                    self.invalidate("codegen")
                    return
                i = 0
                continue
            # -- I-fetch replay (probe first: bail with nothing counted) --
            probed = itlb.probe(pc_i)
            if probed is None or not probed.nx:
                itp.pc = pc_i
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                self._note_bail("itlb")
                if pauses:
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                return
            fetched = itlb.lookup(pc_i)  # counted hit + LRU, as fetch would
            paddr = fetched.paddr_for(pc_i)
            c_fetch.value += 1
            if icache.access(paddr):
                t += tlb_hit_ns
                t += icache_hit_ns
                pauses += 2
            else:
                # I-cache miss: flush, then the port's own fill path
                # (TLB-hit pause + cross-PCIe line fill, all real events).
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                if pauses:
                    sim.credit_events(pauses - 1)
                    yield sleep_until(t)
                    pauses = 0
                yield from port._fetch_check_fill(paddr)
                t0 = t = sim.now
            n += 1
            t += cost
            pauses += 1
            if kind == K_SIMPLE:
                fn = op[3]
                if fn is not None:
                    try:
                        fn()
                    except BaseException:
                        itp.pc = pc_i
                        counter.value += n
                        self.block_inst_total += n
                        self.block_sim_ns += t - t0
                        self._note_bail("fault")
                        sim.credit_events(pauses - 1)
                        yield sleep_until(t)
                        raise
                i += 1
            elif kind == K_GUARD:
                if op[3]():
                    idx = op[5]
                    if idx >= 0:
                        i = idx
                    elif idx == LOOP_RESTART:
                        counter.value += n
                        self.block_inst_total += n
                        self.block_sim_ns += t - t0
                        n = 0
                        sim.credit_events(pauses - 1)
                        yield sleep_until(t)
                        pauses = 0
                        t0 = t = sim.now
                        if port.code_generation != gen:
                            itp.pc = entry
                            self.invalidate("codegen")
                            return
                        i = 0
                    else:  # GUARD_EXIT
                        itp.pc = op[4]
                        break
                else:
                    i += 1
            elif kind == K_NLOAD:
                addr = op[3]()
                size = op[4]
                hit = dtlb.probe(addr)
                if hit is not None:
                    paddr = hit.paddr_for(addr)
                    bram = mm.bram_contains(paddr)
                    if bram or dtlb.route(paddr)[0] == "local":
                        # Fast replay of port.load's BRAM / local-window
                        # routes: counted D-TLB hit, then the same route
                        # bookkeeping, with the pauses consolidated.
                        dtlb.lookup(addr)
                        t += tlb_hit_ns
                        c_load.value += 1
                        if bram:
                            t += bram_ns
                        else:
                            if cacheable.cacheable(paddr) and dcache.access(paddr):
                                t += icache_hit_ns
                            else:
                                t += local_read_ns
                            c_load_local.value += 1
                        pauses += 2
                        rwrite(op[5], int.from_bytes(phys.read(paddr, size), "little"))
                        i += 1
                        continue
                # D-TLB miss or cross-PCIe route: flush, then delegate
                # the whole access to the port (walker, link contention
                # and any page fault are real, at a precise pc).
                itp.pc = pc_i
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                sim.credit_events(pauses - 1)
                yield sleep_until(t)
                pauses = 0
                data = yield from port.load(addr, size)
                rwrite(op[5], int.from_bytes(data, "little"))
                t0 = t = sim.now
                i += 1
            elif kind == K_NSTORE:
                addr = op[3]()
                size = op[4]
                hit = dtlb.probe(addr)
                if hit is not None and hit.writable:
                    paddr = hit.paddr_for(addr)
                    bram = mm.bram_contains(paddr)
                    if bram or dtlb.route(paddr)[0] == "local":
                        dtlb.lookup(addr)
                        t += tlb_hit_ns
                        c_store.value += 1
                        if provider is not None:
                            tables = provider()
                            if tables is not None:
                                tables.note_code_store(addr, size)
                        data = op[5]().to_bytes(size, "little")
                        if bram:
                            t += bram_ns
                        else:
                            if cacheable.cacheable(paddr):
                                dcache.invalidate_range(paddr, size)
                            t += local_write_ns
                        pauses += 2
                        phys.write(paddr, data)
                        if port.code_generation != gen:
                            itp.pc = op[6]
                            self.invalidate("self_modify")
                            break
                        i += 1
                        continue
                # Miss, write-protect or cross-PCIe: flush, delegate;
                # port.store counts, pauses and faults exactly as the
                # interpreter's slow path would.
                itp.pc = pc_i
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                sim.credit_events(pauses - 1)
                yield sleep_until(t)
                pauses = 0
                yield from port.store(addr, op[5]().to_bytes(size, "little"))
                t0 = t = sim.now
                if port.code_generation != gen:
                    itp.pc = op[6]
                    self.invalidate("self_modify")
                    break
                i += 1
            else:  # K_LOOP with a real backedge jump instruction
                counter.value += n
                self.block_inst_total += n
                self.block_sim_ns += t - t0
                n = 0
                sim.credit_events(pauses - 1)
                yield sleep_until(t)
                pauses = 0
                t0 = t = sim.now
                if port.code_generation != gen:
                    itp.pc = entry
                    self.invalidate("codegen")
                    return
                i = 0
        counter.value += n
        self.block_inst_total += n
        self.block_sim_ns += t - t0
        if pauses:
            sim.credit_events(pauses - 1)
            yield sleep_until(t)


class _Unsupported:
    """Sentinel: :meth:`JitEngine._compile_sync` cannot express the op."""


_UNSUPPORTED = _Unsupported()


def _alu_add(a, b):
    return a + b


def _alu_sub(a, b):
    return a - b


def _alu_mul(a, b):
    return a * b


def _alu_and(a, b):
    return a & b


def _alu_or(a, b):
    return a | b


def _alu_xor(a, b):
    return a ^ b


#: Wrap-around ops inlined without the :meth:`Interpreter._alu` chain
#: (``RegisterFile.write`` masks to 64 bits, exactly like the slow path).
_ALU_FAST = {
    Op.ADD: _alu_add,
    Op.SUB: _alu_sub,
    Op.MUL: _alu_mul,
    Op.AND: _alu_and,
    Op.OR: _alu_or,
    Op.XOR: _alu_xor,
}

#: Everything else routes through ``Interpreter._alu`` for bit-exact
#: semantics (shifts, signed division faults, compare ops).
_ALU_SLOW = frozenset(
    (Op.DIV, Op.REM, Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU, Op.SEQ, Op.SNE)
)
