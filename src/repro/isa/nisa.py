"""NISA — the NxP's RISC-V-like ISA (fixed-length, load/store).

Encoding: every instruction is exactly **8 bytes**, little-endian:

======  ==========================================
byte 0  opcode (all NISA opcodes are >= 0x80)
byte 1  rd
byte 2  rs1
byte 3  rs2
4..7    imm32 (signed, little-endian)
======  ==========================================

PCs must be 8-byte aligned; fetching from a misaligned PC raises
:class:`MisalignedFetch`.  Because HISA instructions are byte-aligned and
variable length, a NISA core that falls into HISA code faults almost
immediately — the paper uses exactly this as a secondary migration
trigger (Section IV-B2).

ABI (mirroring RV64): 32 registers, ``x0`` hardwired zero, ``x1`` link
register (ra), ``x2`` stack pointer, arguments in ``x10..x17`` (a0..a7),
return value in ``x10``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.isa.base import (
    ABI,
    IllegalInstruction,
    Instruction,
    MisalignedFetch,
    Op,
    Relocation,
    Sym,
    sign_extend,
)

__all__ = ["NISA_ABI", "INST_BYTES", "encode", "decode", "encode_program", "REG_NAMES", "reg_number"]

INST_BYTES = 8

NISA_ABI = ABI(
    name="nisa",
    reg_count=32,
    arg_regs=tuple(range(10, 18)),  # a0..a7
    ret_reg=10,
    sp_reg=2,
    link_reg=1,
    zero_reg=0,
    stack_align=16,
    code_align=INST_BYTES,
)

# Opcode map.  NISA opcodes all have the top bit set so that HISA bytes
# (< 0x80) decode as illegal if a NISA core ever reaches them aligned.
_OPCODES: Dict[Op, int] = {
    Op.ADD: 0x80,
    Op.SUB: 0x81,
    Op.MUL: 0x82,
    Op.DIV: 0x83,
    Op.REM: 0x84,
    Op.AND: 0x85,
    Op.OR: 0x86,
    Op.XOR: 0x87,
    Op.SHL: 0x88,
    Op.SHR: 0x89,
    Op.SAR: 0x8A,
    Op.SLT: 0x8B,
    Op.SLTU: 0x8C,
    Op.SEQ: 0x8D,
    Op.SNE: 0x8E,
    Op.ADDI: 0x90,
    Op.LD: 0xA0,
    Op.LW: 0xA1,
    Op.LBU: 0xA2,
    Op.ST: 0xA4,
    Op.SW: 0xA5,
    Op.SB: 0xA6,
    Op.LI: 0xB0,
    Op.LIH: 0xB1,
    Op.MOV: 0xB2,
    Op.BEQ: 0xC0,
    Op.BNE: 0xC1,
    Op.BLT: 0xC2,
    Op.BGE: 0xC3,
    Op.J: 0xC8,
    Op.JAL: 0xC9,
    Op.JALR: 0xCA,
    Op.ECALL: 0xD0,
    Op.NOP: 0xE0,
    Op.HALT: 0xE1,
}
_REVERSE: Dict[int, Op] = {code: op for op, code in _OPCODES.items()}

# Register names: x0..x31 plus ABI aliases.
REG_NAMES: Dict[str, int] = {f"x{i}": i for i in range(32)}
REG_NAMES.update({"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4})
REG_NAMES.update({f"t{i}": 5 + i for i in range(3)})  # t0..t2 = x5..x7
REG_NAMES.update({"fp": 8, "s0": 8, "s1": 9})
REG_NAMES.update({f"a{i}": 10 + i for i in range(8)})  # a0..a7
REG_NAMES.update({f"s{i}": 16 + i for i in range(2, 10)})  # s2..s9 = x18..x25
REG_NAMES.update({f"t{i}": 25 + i for i in range(3, 7)})  # t3..t6 = x28..x31


def reg_number(name: str) -> int:
    try:
        return REG_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown NISA register {name!r}") from None


def _imm_value(imm, offset: int, relocs: List[Relocation], kind: str, pc_base: int) -> int:
    """Return the literal imm, or 0 while recording a relocation."""
    if isinstance(imm, Sym):
        relocs.append(Relocation(offset + 4, imm, kind, pc_base=pc_base))
        return 0
    return int(imm or 0)


def encode(inst: Instruction, offset: int = 0, relocs: Optional[List[Relocation]] = None) -> bytes:
    """Encode one instruction at byte ``offset`` within its section.

    Symbolic immediates append to ``relocs``.  ``LI``/``LIH`` with a
    symbol produce ``abs32lo``/``abs32hi`` relocations; ``JAL``/``J``
    and branches with a symbol produce ``rel32``.
    """
    if relocs is None:
        relocs = []
    op = inst.op
    if op in (Op.CALL,):
        op = Op.JAL  # assembler alias: call == jal ra, target
        inst = Instruction(Op.JAL, rd=NISA_ABI.link_reg, imm=inst.imm)
    if op in (Op.CALLR,):
        inst = Instruction(Op.JALR, rd=NISA_ABI.link_reg, rs1=inst.rs1, imm=0)
        op = Op.JALR
    if op in (Op.RET,):
        inst = Instruction(Op.JALR, rd=0, rs1=NISA_ABI.link_reg, imm=0)
        op = Op.JALR
    code = _OPCODES.get(op)
    if code is None:
        raise ValueError(f"op {op} not encodable in NISA")

    if isinstance(inst.imm, Sym):
        if op in (Op.LI,):
            kind = "abs32lo"
        elif op in (Op.LIH,):
            kind = "abs32hi"
        elif op in (Op.J, Op.JAL, Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            kind = "rel32"
        else:
            raise ValueError(f"symbolic imm not supported for NISA {op}")
        imm = _imm_value(inst.imm, offset, relocs, kind, pc_base=offset + INST_BYTES)
    else:
        imm = int(inst.imm or 0)

    return struct.pack(
        "<BBBBi",
        code,
        inst.rd or 0,
        inst.rs1 or 0,
        inst.rs2 or 0,
        sign_extend(imm, 32),
    )


def encode_program(insts: List[Instruction]) -> Tuple[bytes, List[Relocation], Dict[str, int]]:
    """Encode a list of instructions; returns (code, relocations, labels).

    Local labels (``inst.label``) are resolved to pc-relative immediates
    directly; unresolved symbols become relocations.
    """
    labels: Dict[str, int] = {}
    for i, inst in enumerate(insts):
        if inst.label is not None:
            if inst.label in labels:
                raise ValueError(f"duplicate label {inst.label!r}")
            labels[inst.label] = i * INST_BYTES

    code = bytearray()
    relocs: List[Relocation] = []
    for i, inst in enumerate(insts):
        patched = inst
        if isinstance(inst.imm, Sym) and inst.imm.name in labels and inst.op in (
            Op.J,
            Op.JAL,
            Op.CALL,
            Op.BEQ,
            Op.BNE,
            Op.BLT,
            Op.BGE,
        ):
            target = labels[inst.imm.name] + inst.imm.addend
            rel = target - (i * INST_BYTES + INST_BYTES)
            patched = Instruction(
                inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2, imm=rel, label=inst.label
            )
        code += encode(patched, offset=i * INST_BYTES, relocs=relocs)
    return bytes(code), relocs, labels


def decode(raw: bytes, pc: int) -> Tuple[Instruction, int]:
    """Decode 8 bytes fetched from an 8-aligned PC; returns (inst, 8)."""
    if pc % INST_BYTES:
        raise MisalignedFetch(pc)
    if len(raw) < INST_BYTES:
        raise IllegalInstruction(pc, raw[0] if raw else 0)
    opcode, rd, rs1, rs2, imm = struct.unpack("<BBBBi", raw[:INST_BYTES])
    op = _REVERSE.get(opcode)
    if op is None:
        raise IllegalInstruction(pc, opcode)
    if rd > 31 or rs1 > 31 or rs2 > 31:
        raise IllegalInstruction(pc, opcode)
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm), INST_BYTES
