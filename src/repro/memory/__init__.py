"""Memory subsystem: physical memory, paging, TLB, MMU, caches, allocators."""

from repro.memory.allocator import AllocatorError, OutOfMemory, RegionAllocator
from repro.memory.cache import Cache, CacheableFilter
from repro.memory.mmu import Hole, PageWalker
from repro.memory.paging import (
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    PageFault,
    PageTables,
    Translation,
)
from repro.memory.physical import BadAddress, MemoryRegion, MMIORegion, PhysicalMemory
from repro.memory.tlb import TLB, RemapWindow, TLBEntry

__all__ = [
    "RegionAllocator",
    "AllocatorError",
    "OutOfMemory",
    "Cache",
    "CacheableFilter",
    "PageWalker",
    "Hole",
    "PageTables",
    "PageFault",
    "Translation",
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
    "PhysicalMemory",
    "MemoryRegion",
    "MMIORegion",
    "BadAddress",
    "TLB",
    "TLBEntry",
    "RemapWindow",
]
