"""First-fit region allocators.

The paper gives each memory region its own allocator (Section III-D):
one for the host heap, one for the NxP-local heap, one carving NxP stack
blocks out of on-chip BRAM, and the kernel uses one to hand out physical
frames for page tables.  This module provides the single allocator class
they all instantiate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["RegionAllocator", "OutOfMemory", "AllocatorError"]


class AllocatorError(Exception):
    """Misuse of the allocator (double free, bad free address, ...)."""


class OutOfMemory(AllocatorError):
    """No free block large enough for the request."""


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class RegionAllocator:
    """First-fit allocator over ``[base, base + size)``.

    Keeps an ordered free list and a map of live allocations, merging
    adjacent free blocks on :meth:`free`.  All invariants (no overlap,
    containment, alignment) are cheap to check, which the property-based
    tests exploit.
    """

    def __init__(self, name: str, base: int, size: int):
        if size <= 0:
            raise ValueError(f"allocator {name!r} has non-positive size")
        self.name = name
        self.base = base
        self.size = size
        # Free list: ordered, disjoint (start, size) blocks.
        self._free: List[Tuple[int, int]] = [(base, size)]
        self._live: Dict[int, int] = {}  # addr -> size

    # -- allocation ----------------------------------------------------------

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns the address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two: {align}")
        for i, (start, block_size) in enumerate(self._free):
            aligned = _align_up(start, align)
            pad = aligned - start
            if block_size >= pad + size:
                # Split: [start, aligned) stays free, allocation, remainder free.
                del self._free[i]
                replacement = []
                if pad:
                    replacement.append((start, pad))
                tail = block_size - pad - size
                if tail:
                    replacement.append((aligned + size, tail))
                self._free[i:i] = replacement
                self._live[aligned] = size
                return aligned
        raise OutOfMemory(
            f"{self.name}: cannot allocate {size} bytes (align {align}); "
            f"free={self.free_bytes}"
        )

    def free(self, addr: int) -> None:
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocatorError(f"{self.name}: free of unallocated address {addr:#x}")
        # Insert in order and coalesce with neighbours.
        idx = 0
        while idx < len(self._free) and self._free[idx][0] < addr:
            idx += 1
        self._free.insert(idx, (addr, size))
        self._coalesce(max(idx - 1, 0))

    def _coalesce(self, start_idx: int) -> None:
        i = start_idx
        while i + 1 < len(self._free):
            a_start, a_size = self._free[i]
            b_start, b_size = self._free[i + 1]
            if a_start + a_size == b_start:
                self._free[i : i + 2] = [(a_start, a_size + b_size)]
            else:
                i += 1

    # -- introspection ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(size for _start, size in self._free)

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def live_blocks(self) -> Dict[int, int]:
        return dict(self._live)

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def allocation_size(self, addr: int) -> int:
        if addr not in self._live:
            raise AllocatorError(f"{self.name}: {addr:#x} is not a live allocation")
        return self._live[addr]

    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping is inconsistent."""
        blocks = sorted(
            [(a, s, "live") for a, s in self._live.items()]
            + [(a, s, "free") for a, s in self._free]
        )
        prev_end = self.base
        covered = 0
        for addr, size, _kind in blocks:
            assert addr >= self.base, "block below region base"
            assert addr + size <= self.base + self.size, "block beyond region end"
            assert addr >= prev_end, f"overlapping blocks at {addr:#x}"
            prev_end = addr + size
            covered += size
        assert covered <= self.size
        assert self.free_bytes + self.live_bytes <= self.size
