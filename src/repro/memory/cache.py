"""Set-associative cache models for the NxP core.

Section IV-A: the NxP I-cache is essential because NxP ``.text`` lives in
*host* memory (Section III-D) — every I-cache miss crosses PCIe.  The
D-cache may only be enabled for NxP-local regions that do not require
coherence with the host (PCIe has no snooping), which the
:class:`CacheableFilter` enforces.

These are bookkeeping models: they answer hit/miss and track stats; the
caller charges the appropriate latency.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.sim.stats import StatRegistry

__all__ = ["Cache", "CacheableFilter"]


class Cache:
    """An N-way set-associative cache with LRU replacement."""

    def __init__(
        self,
        name: str,
        total_lines: int,
        line_bytes: int,
        ways: int = 4,
        stats: Optional[StatRegistry] = None,
    ):
        if total_lines <= 0 or total_lines % ways:
            raise ValueError("total_lines must be a positive multiple of ways")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = total_lines // ways
        self.stats = stats or StatRegistry()
        # sets[i] = list of (tag, lru_stamp)
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(self.num_sets)]
        self._stamp = itertools.count(1)
        self._c_hit = self.stats.counter(f"{name}.hit")
        self._c_miss = self.stats.counter(f"{name}.miss")
        self._c_evict = self.stats.counter(f"{name}.evict")

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit.  Misses install the line."""
        set_idx, tag = self._locate(addr)
        cache_set = self._sets[set_idx]
        for i, (existing_tag, _stamp) in enumerate(cache_set):
            if existing_tag == tag:
                cache_set[i] = (tag, next(self._stamp))
                self._c_hit.value += 1
                return True
        self._c_miss.value += 1
        if len(cache_set) >= self.ways:
            victim = min(range(len(cache_set)), key=lambda i: cache_set[i][1])
            del cache_set[victim]
            self._c_evict.value += 1
        cache_set.append((tag, next(self._stamp)))
        return False

    def probe(self, addr: int) -> bool:
        """Non-mutating presence check (no LRU update, no stats)."""
        set_idx, tag = self._locate(addr)
        return any(t == tag for t, _ in self._sets[set_idx])

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats.count(f"{self.name}.flush")

    def invalidate_range(self, addr: int, length: int) -> None:
        first = addr // self.line_bytes
        last = (addr + max(length, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            set_idx = line % self.num_sets
            tag = line // self.num_sets
            self._sets[set_idx] = [
                (t, s) for t, s in self._sets[set_idx] if t != tag
            ]

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheableFilter:
    """Decides which physical ranges the NxP D-cache may cache.

    PCIe offers no coherence, so only NxP-local, host-invisible data may
    be cached (Section III-D / IV-A).  The host driver (or loader, for
    annotated NxP-local sections) registers cacheable windows here.
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[int, int]] = []

    def allow(self, base: int, size: int) -> None:
        self._windows.append((base, size))

    def cacheable(self, paddr: int) -> bool:
        return any(base <= paddr < base + size for base, size in self._windows)
