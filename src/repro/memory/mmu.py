"""The NxP's programmable MMU (page-table walker), Section IV-A.

On a TLB miss the NxP blocks while the MMU — a tiny microcontroller in
the paper's prototype — walks the x86-64 page tables *in host memory*,
one cross-PCIe read per level.  That is why TLB misses are expensive
(~4 x 830 ns + firmware overhead) and why the paper leans on 1 GB huge
pages: four entries then cover the whole 4 GB NxP data store.

Being programmable, the MMU also supports "holes": virtual ranges that
bypass translation entirely and map straight onto NxP-local physical
addresses (used for debugging and scratchpads in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.core.config import FlickConfig
from repro.memory.paging import PageFault, PageTables, Translation
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

__all__ = ["PageWalker", "Hole"]


@dataclass(frozen=True)
class Hole:
    """A translation-bypass window programmed into the MMU."""

    vbase: int
    size: int
    pbase: int

    def covers(self, vaddr: int) -> bool:
        return self.vbase <= vaddr < self.vbase + self.size

    def translate(self, vaddr: int) -> Translation:
        return Translation(
            vaddr=vaddr,
            paddr=self.pbase + (vaddr - self.vbase),
            page_size=self.size,
            writable=True,
            user=True,
            nx=True,  # holes hold NxP-side data/scratch, never host code
        )


class PageWalker:
    """Timed page-table walker; shared by the NxP's I-TLB and D-TLB.

    ``current_tables`` is a callable returning the page tables for the
    address space the NxP is currently executing in (it follows the PTBR
    that arrives in each migration descriptor).
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: FlickConfig,
        current_tables: Callable[[], Optional[PageTables]],
        stats: Optional[StatRegistry] = None,
        name: str = "mmu",
    ):
        self.sim = sim
        self.cfg = cfg
        self.current_tables = current_tables
        self.stats = stats or StatRegistry()
        self.name = name
        self.holes: List[Hole] = []

    # -- programmability ----------------------------------------------------

    def add_hole(self, vbase: int, size: int, pbase: int) -> None:
        for hole in self.holes:
            lo = max(vbase, hole.vbase)
            hi = min(vbase + size, hole.vbase + hole.size)
            if lo < hi:
                raise ValueError("overlapping MMU holes")
        self.holes.append(Hole(vbase, size, pbase))

    def hole_for(self, vaddr: int) -> Optional[Hole]:
        for hole in self.holes:
            if hole.covers(vaddr):
                return hole
        return None

    # -- the timed walk -------------------------------------------------------

    def walk(self, vaddr: int) -> Generator:
        """DES sub-process: yield timing for one walk; returns Translation.

        Raises :class:`PageFault` (after charging the time actually spent
        discovering the fault) when the address is unmapped.
        """
        hole = self.hole_for(vaddr)
        if hole is not None:
            self.stats.count(f"{self.name}.hole_hit")
            yield self.sim.timeout(self.cfg.tlb_hit_ns)
            return hole.translate(vaddr)

        tables = self.current_tables()
        if tables is None:
            raise PageFault(vaddr, PageFault.NOT_PRESENT)

        self.stats.count(f"{self.name}.walk")
        yield self.sim.timeout(self.cfg.mmu_walker_overhead_ns)
        try:
            entry_addrs = tables.walk_entry_addrs(vaddr)
        except PageFault:
            yield self.sim.timeout(self.cfg.mmu_walk_step_ns)
            raise
        # One cross-PCIe PTE read per level actually touched.
        for _addr in entry_addrs:
            yield self.sim.timeout(self.cfg.mmu_walk_step_ns)
            self.stats.count(f"{self.name}.pte_read")
        return tables.translate(vaddr)  # raises PageFault if leaf absent
