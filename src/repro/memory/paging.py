"""x86-64-style 4-level page tables, stored in simulated physical memory.

Flick's unified virtual memory works because the NxP MMU walks the
*host's* page tables (same PTBR/CR3, Fig. 1).  To reproduce that
faithfully, the tables here are real data structures living in the
simulated host DRAM: the software reference walk in :meth:`translate`
and the timed hardware walk in :class:`repro.memory.mmu.PageWalker` read
the same PTE words from the same physical addresses.

The entry format follows x86-64:

* bit 0   P  (present)
* bit 1   RW (writable)
* bit 2   US (user)
* bit 7   PS (huge page, at the PDPT level = 1 GB, PD level = 2 MB)
* bits 12..51  physical frame number
* bit 63  NX (no-execute) — the bit Flick repurposes to mark "this code
  belongs to the other ISA"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.memory.allocator import RegionAllocator
from repro.memory.physical import PhysicalMemory

__all__ = [
    "PageTables",
    "Translation",
    "PageFault",
    "PTE_P",
    "PTE_RW",
    "PTE_US",
    "PTE_PS",
    "PTE_NX",
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
]

PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024
PAGE_1G = 1024 * 1024 * 1024

PTE_P = 1 << 0
PTE_RW = 1 << 1
PTE_US = 1 << 2
PTE_PS = 1 << 7
PTE_NX = 1 << 63

_ADDR_MASK = 0x000F_FFFF_FFFF_F000  # bits 12..51
_LEVEL_SHIFTS = (39, 30, 21, 12)  # PML4, PDPT, PD, PT
_CANONICAL_BITS = 48


class PageFault(Exception):
    """A translation failure, mirroring the hardware fault the kernel sees."""

    NOT_PRESENT = "not_present"
    WRITE_PROTECT = "write_protect"
    NX_VIOLATION = "nx_violation"
    NON_CANONICAL = "non_canonical"

    def __init__(self, vaddr: int, kind: str, is_write: bool = False, is_exec: bool = False):
        self.vaddr = vaddr
        self.kind = kind
        self.is_write = is_write
        self.is_exec = is_exec
        super().__init__(f"page fault at {vaddr:#x} ({kind})")

    @property
    def access_kind(self) -> str:
        """The access that faulted, for crash diagnostics."""
        if self.is_exec:
            return "execute"
        if self.is_write:
            return "write"
        return "read"


@dataclass(frozen=True)
class Translation:
    """Result of a successful page walk."""

    vaddr: int
    paddr: int
    page_size: int
    writable: bool
    user: bool
    nx: bool

    @property
    def page_base_vaddr(self) -> int:
        return self.vaddr & ~(self.page_size - 1)

    @property
    def page_base_paddr(self) -> int:
        return self.paddr & ~(self.page_size - 1)


def _indices(vaddr: int) -> Tuple[int, int, int, int]:
    return tuple((vaddr >> shift) & 0x1FF for shift in _LEVEL_SHIFTS)  # type: ignore


def _is_canonical(vaddr: int) -> bool:
    return 0 <= vaddr < (1 << _CANONICAL_BITS)


class PageTables:
    """One address space's 4-level page-table tree.

    ``frame_alloc`` hands out 4 KB physical frames (from host DRAM) for
    the table pages themselves, exactly as a kernel's page allocator
    would.
    """

    def __init__(self, phys: PhysicalMemory, frame_alloc: RegionAllocator):
        self.phys = phys
        self.frame_alloc = frame_alloc
        #: bumped on every mapping change; consumers (software TLBs /
        #: per-port translation caches) use it to self-invalidate.
        self.generation = 0
        #: bumped whenever the *code* visible through this address space
        #: may have changed: any mapping change, plus stores that land in
        #: a registered executable range.  Decoded-instruction caches key
        #: their validity off this (see repro.isa.interpreter).
        self.code_generation = 0
        self._exec_ranges: List[Tuple[int, int]] = []
        self.cr3 = self._alloc_table_frame()

    # -- construction ----------------------------------------------------------

    def _alloc_table_frame(self) -> int:
        frame = self.frame_alloc.alloc(PAGE_4K, align=PAGE_4K)
        self.phys.write(frame, b"\x00" * PAGE_4K)
        return frame

    def _entry_addr(self, table_paddr: int, index: int) -> int:
        return table_paddr + index * 8

    def _walk_to_level(self, vaddr: int, target_level: int, create: bool) -> Optional[int]:
        """Return the physical address of the table at ``target_level``
        (0 = PML4 itself), creating intermediate tables if asked."""
        table = self.cr3
        idx = _indices(vaddr)
        for level in range(target_level):
            entry_addr = self._entry_addr(table, idx[level])
            entry = self.phys.read_u64(entry_addr)
            if not entry & PTE_P:
                if not create:
                    return None
                next_table = self._alloc_table_frame()
                self.phys.write_u64(entry_addr, (next_table & _ADDR_MASK) | PTE_P | PTE_RW | PTE_US)
                table = next_table
            else:
                if entry & PTE_PS:
                    raise ValueError(
                        f"cannot descend below a huge-page mapping at {vaddr:#x}"
                    )
                table = entry & _ADDR_MASK
        return table

    def map_page(
        self,
        vaddr: int,
        paddr: int,
        page_size: int = PAGE_4K,
        writable: bool = True,
        user: bool = True,
        nx: bool = False,
    ) -> None:
        """Install one mapping of ``page_size`` (4 KB, 2 MB or 1 GB)."""
        if page_size not in (PAGE_4K, PAGE_2M, PAGE_1G):
            raise ValueError(f"unsupported page size {page_size}")
        if vaddr % page_size or paddr % page_size:
            raise ValueError(
                f"vaddr {vaddr:#x} / paddr {paddr:#x} not {page_size}-aligned"
            )
        if not _is_canonical(vaddr):
            raise ValueError(f"non-canonical vaddr {vaddr:#x}")
        level = {PAGE_1G: 1, PAGE_2M: 2, PAGE_4K: 3}[page_size]
        table = self._walk_to_level(vaddr, level, create=True)
        entry_addr = self._entry_addr(table, _indices(vaddr)[level])
        flags = PTE_P
        if writable:
            flags |= PTE_RW
        if user:
            flags |= PTE_US
        if nx:
            flags |= PTE_NX
        if page_size != PAGE_4K:
            flags |= PTE_PS
        self.phys.write_u64(entry_addr, (paddr & _ADDR_MASK) | flags)
        self.generation += 1
        self.code_generation += 1

    def map_range(
        self,
        vaddr: int,
        paddr: int,
        length: int,
        page_size: int = PAGE_4K,
        writable: bool = True,
        user: bool = True,
        nx: bool = False,
    ) -> int:
        """Map ``length`` bytes with pages of ``page_size``; returns pages mapped."""
        if length <= 0:
            raise ValueError("length must be positive")
        count = 0
        offset = 0
        while offset < length:
            self.map_page(vaddr + offset, paddr + offset, page_size, writable, user, nx)
            offset += page_size
            count += 1
        return count

    def unmap_page(self, vaddr: int) -> None:
        entry_addr, _entry, _size = self._find_leaf(vaddr)
        self.phys.write_u64(entry_addr, 0)
        self.generation += 1
        self.code_generation += 1

    # -- NX manipulation (the extended mprotect() of Section IV-C3) -----------

    def set_nx(self, vaddr: int, nx: bool, length: int = PAGE_4K) -> int:
        """Set or clear the NX bit on every leaf covering the range.

        This is what the modified dynamic loader uses to mark
        ``.text.<nxp-isa>`` pages as migrate-on-execute.  Returns the
        number of leaf entries modified.
        """
        changed = 0
        addr = vaddr & ~(PAGE_4K - 1)
        end = vaddr + max(length, 1)
        while addr < end:
            entry_addr, entry, size = self._find_leaf(addr)
            if nx:
                entry |= PTE_NX
            else:
                entry &= ~PTE_NX
            self.phys.write_u64(entry_addr, entry)
            changed += 1
            addr = (addr & ~(size - 1)) + size
        self.generation += 1
        self.code_generation += 1
        return changed

    # -- code-change tracking (decoded-instruction cache support) --------------

    def note_exec_range(self, vaddr: int, size: int) -> None:
        """Register a virtual range holding executable code.

        Stores routed through the memory ports that overlap a registered
        range bump :attr:`code_generation` (self-modifying / JIT-style
        writes), invalidating any decoded-instruction cache built over
        this address space.
        """
        self._exec_ranges.append((vaddr, size))
        self.code_generation += 1

    def note_code_store(self, vaddr: int, nbytes: int) -> None:
        """Called by the ports on every store; bumps the code generation
        when the written range overlaps registered executable code."""
        end = vaddr + (nbytes if nbytes > 0 else 1)
        for base, size in self._exec_ranges:
            if vaddr < base + size and base < end:
                self.code_generation += 1
                return

    # -- translation -------------------------------------------------------------

    def _find_leaf(self, vaddr: int) -> Tuple[int, int, int]:
        """Return (entry physical address, entry value, page size) of the
        leaf mapping ``vaddr``; faults if unmapped."""
        if not _is_canonical(vaddr):
            raise PageFault(vaddr, PageFault.NON_CANONICAL)
        table = self.cr3
        idx = _indices(vaddr)
        sizes = (None, PAGE_1G, PAGE_2M, PAGE_4K)
        for level in range(4):
            entry_addr = self._entry_addr(table, idx[level])
            entry = self.phys.read_u64(entry_addr)
            if not entry & PTE_P:
                raise PageFault(vaddr, PageFault.NOT_PRESENT)
            if level == 3 or entry & PTE_PS:
                size = sizes[level] if level < 3 else PAGE_4K
                if size is None:
                    raise PageFault(vaddr, PageFault.NOT_PRESENT)
                return entry_addr, entry, size
            table = entry & _ADDR_MASK
        raise AssertionError("unreachable")

    def translate(self, vaddr: int) -> Translation:
        """Software reference walk; raises :class:`PageFault` if unmapped."""
        _entry_addr, entry, size = self._find_leaf(vaddr)
        base = entry & _ADDR_MASK & ~(size - 1)
        return Translation(
            vaddr=vaddr,
            paddr=base | (vaddr & (size - 1)),
            page_size=size,
            writable=bool(entry & PTE_RW),
            user=bool(entry & PTE_US),
            nx=bool(entry & PTE_NX),
        )

    def access(
        self,
        vaddr: int,
        is_write: bool = False,
        is_exec: bool = False,
        invert_nx: bool = False,
    ) -> Translation:
        """Translate and enforce permissions.

        ``invert_nx`` implements the NxP-side rule from Section IV-B2:
        on the NxP, executing a page whose NX bit is *clear* (i.e. host
        code) faults, while NX-set pages (NxP code) execute normally.
        """
        tr = self.translate(vaddr)
        if is_write and not tr.writable:
            raise PageFault(vaddr, PageFault.WRITE_PROTECT, is_write=True)
        if is_exec:
            exec_forbidden = (not tr.nx) if invert_nx else tr.nx
            if exec_forbidden:
                raise PageFault(vaddr, PageFault.NX_VIOLATION, is_exec=True)
        return tr

    # -- walker support ------------------------------------------------------------

    def walk_entry_addrs(self, vaddr: int) -> List[int]:
        """Physical addresses of the PTE words a hardware walker reads
        for ``vaddr`` (one per level until the leaf).  Used by the MMU
        model to charge one cross-PCIe read per level."""
        if not _is_canonical(vaddr):
            raise PageFault(vaddr, PageFault.NON_CANONICAL)
        addrs: List[int] = []
        table = self.cr3
        idx = _indices(vaddr)
        for level in range(4):
            entry_addr = self._entry_addr(table, idx[level])
            addrs.append(entry_addr)
            entry = self.phys.read_u64(entry_addr)
            if not entry & PTE_P or level == 3 or entry & PTE_PS:
                return addrs
            table = entry & _ADDR_MASK
        return addrs

    def mapped_leaves(self) -> Iterator[Tuple[int, Translation]]:
        """Iterate (vaddr, translation) over all present leaf mappings."""

        def recurse(table: int, level: int, vbase: int) -> Iterator[Tuple[int, Translation]]:
            sizes = (None, PAGE_1G, PAGE_2M, PAGE_4K)
            shift = _LEVEL_SHIFTS[level]
            for i in range(512):
                entry = self.phys.read_u64(self._entry_addr(table, i))
                if not entry & PTE_P:
                    continue
                vaddr = vbase | (i << shift)
                if level == 3 or entry & PTE_PS:
                    size = sizes[level] if level < 3 else PAGE_4K
                    yield vaddr, self.translate(vaddr)
                else:
                    yield from recurse(entry & _ADDR_MASK, level + 1, vaddr)

        yield from recurse(self.cr3, 0, 0)
