"""Physical memory: sparse byte-addressable regions plus MMIO dispatch.

The simulated machine has one *unified physical address space* (the host
view, Fig. 3 of the paper): host DRAM at 0x0, the NxP's 4 GB DRAM exposed
through BAR0, the NxP stack BRAM through another BAR, and a small MMIO
window for the NxP platform's control registers (DMA engine, TLB remap
register, doorbells).

Regions are *functional* stores — reads and writes here are instantaneous.
Timing is charged by whoever performs the access (a core model, the MMU
walker, or the DMA engine) using the latencies in
:class:`repro.core.config.FlickConfig`.  Backing storage is sparse
(4 KB pages allocated on first touch) so a 4 GB region costs nothing
until used.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["MemoryRegion", "MMIORegion", "PhysicalMemory", "BadAddress"]

_PAGE = 4096


class BadAddress(Exception):
    """Access to a physical address no region decodes."""


class MemoryRegion:
    """A sparse byte-addressable RAM region ``[base, base+size)``."""

    def __init__(self, name: str, base: int, size: int):
        if base % _PAGE:
            raise ValueError(f"region {name!r} base not page aligned: {base:#x}")
        if size <= 0:
            raise ValueError(f"region {name!r} has non-positive size")
        self.name = name
        self.base = base
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    def contains(self, paddr: int, nbytes: int = 1) -> bool:
        return self.base <= paddr and paddr + nbytes <= self.base + self.size

    def _page_for(self, offset: int, create: bool) -> Optional[bytearray]:
        idx = offset // _PAGE
        page = self._pages.get(idx)
        if page is None and create:
            page = bytearray(_PAGE)
            self._pages[idx] = page
        return page

    def read(self, paddr: int, nbytes: int) -> bytes:
        if not self.contains(paddr, nbytes):
            raise BadAddress(
                f"read [{paddr:#x}, +{nbytes}) outside region {self.name!r}"
            )
        offset = paddr - self.base
        in_page = offset % _PAGE
        if in_page + nbytes <= _PAGE:  # the common case: one page
            page = self._pages.get(offset // _PAGE)
            if page is None:
                return bytes(nbytes)
            return bytes(page[in_page : in_page + nbytes])
        out = bytearray(nbytes)
        done = 0
        while done < nbytes:
            in_page = offset % _PAGE
            chunk = min(nbytes - done, _PAGE - in_page)
            page = self._page_for(offset, create=False)
            if page is not None:
                out[done : done + chunk] = page[in_page : in_page + chunk]
            offset += chunk
            done += chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        if not self.contains(paddr, len(data)):
            raise BadAddress(
                f"write [{paddr:#x}, +{len(data)}) outside region {self.name!r}"
            )
        offset = paddr - self.base
        in_page = offset % _PAGE
        if in_page + len(data) <= _PAGE:
            page = self._page_for(offset, create=True)
            page[in_page : in_page + len(data)] = data
            return
        done = 0
        while done < len(data):
            in_page = offset % _PAGE
            chunk = min(len(data) - done, _PAGE - in_page)
            page = self._page_for(offset, create=True)
            page[in_page : in_page + chunk] = data[done : done + chunk]
            offset += chunk
            done += chunk

    def read_u64(self, paddr: int) -> int:
        """Single-call 8-byte little-endian read (the dominant access
        size on every hot path); falls back to :meth:`read` for
        page-straddling or out-of-range addresses."""
        offset = paddr - self.base
        in_page = offset & (_PAGE - 1)
        if 0 <= offset and in_page <= _PAGE - 8 and offset + 8 <= self.size:
            page = self._pages.get(offset >> 12)
            if page is None:
                return 0
            return int.from_bytes(page[in_page : in_page + 8], "little")
        return int.from_bytes(self.read(paddr, 8), "little")

    @property
    def touched_bytes(self) -> int:
        """Bytes of backing store actually allocated (diagnostics)."""
        return len(self._pages) * _PAGE


class MMIORegion:
    """A region whose reads/writes invoke registered register handlers.

    Registers are 8-byte aligned 64-bit words.  Unregistered offsets read
    as zero and ignore writes (matching typical device reserved space).
    """

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self._read_handlers: Dict[int, Callable[[], int]] = {}
        self._write_handlers: Dict[int, Callable[[int], None]] = {}

    def contains(self, paddr: int, nbytes: int = 1) -> bool:
        return self.base <= paddr and paddr + nbytes <= self.base + self.size

    def register(
        self,
        offset: int,
        read: Optional[Callable[[], int]] = None,
        write: Optional[Callable[[int], None]] = None,
    ) -> None:
        if offset % 8:
            raise ValueError(f"MMIO register offset must be 8-aligned: {offset:#x}")
        if read is not None:
            self._read_handlers[offset] = read
        if write is not None:
            self._write_handlers[offset] = write

    def read(self, paddr: int, nbytes: int) -> bytes:
        offset = (paddr - self.base) & ~0x7
        handler = self._read_handlers.get(offset)
        word = handler() if handler else 0
        raw = struct.pack("<Q", word & 0xFFFF_FFFF_FFFF_FFFF)
        start = paddr - self.base - offset
        return raw[start : start + nbytes]

    def write(self, paddr: int, data: bytes) -> None:
        offset = (paddr - self.base) & ~0x7
        handler = self._write_handlers.get(offset)
        if handler is None:
            return
        padded = bytes(data) + b"\x00" * (8 - len(data))
        handler(struct.unpack("<Q", padded[:8])[0])

    def read_u64(self, paddr: int) -> int:
        return int.from_bytes(self.read(paddr, 8), "little")


class PhysicalMemory:
    """Routes physical addresses to regions; the machine's backing store."""

    def __init__(self) -> None:
        self._regions: List[object] = []
        self._last_region = None  # most-recently-decoded region (hot path)

    def add_region(self, region) -> None:
        for other in self._regions:
            lo = max(region.base, other.base)
            hi = min(region.base + region.size, other.base + other.size)
            if lo < hi:
                raise ValueError(
                    f"region {region.name!r} overlaps {other.name!r}"
                )
        self._regions.append(region)

    def region_for(self, paddr: int, nbytes: int = 1):
        last = self._last_region
        if last is not None and last.contains(paddr, nbytes):
            return last
        for region in self._regions:
            if region.contains(paddr, nbytes):
                self._last_region = region
                return region
        raise BadAddress(f"no region decodes [{paddr:#x}, +{nbytes})")

    def region_by_name(self, name: str):
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- byte access --------------------------------------------------------

    def read(self, paddr: int, nbytes: int) -> bytes:
        return self.region_for(paddr, nbytes).read(paddr, nbytes)

    def write(self, paddr: int, data: bytes) -> None:
        self.region_for(paddr, len(data)).write(paddr, data)

    # -- typed helpers (little-endian, matching both our toy ISAs) ----------

    def read_u8(self, paddr: int) -> int:
        return self.read(paddr, 1)[0]

    def read_u16(self, paddr: int) -> int:
        return struct.unpack("<H", self.read(paddr, 2))[0]

    def read_u32(self, paddr: int) -> int:
        return struct.unpack("<I", self.read(paddr, 4))[0]

    def read_u64(self, paddr: int) -> int:
        return self.region_for(paddr, 8).read_u64(paddr)

    def write_u8(self, paddr: int, value: int) -> None:
        self.write(paddr, bytes([value & 0xFF]))

    def write_u16(self, paddr: int, value: int) -> None:
        self.write(paddr, struct.pack("<H", value & 0xFFFF))

    def write_u32(self, paddr: int, value: int) -> None:
        self.write(paddr, struct.pack("<I", value & 0xFFFF_FFFF))

    def write_u64(self, paddr: int, value: int) -> None:
        self.write(paddr, struct.pack("<Q", value & 0xFFFF_FFFF_FFFF_FFFF))
