"""The NxP's software-visible TLB model (Section IV-A).

16-entry fully-associative I-TLB and D-TLB with LRU replacement, plus the
two Flick-specific features the paper adds:

* **BAR remap register** — the host driver computes the offset between
  where it mapped BAR0 (NxP DRAM as seen by the host) and where the NxP
  decodes its local DRAM, and writes it into a TLB control register.
  Translated physical addresses falling inside the BAR window are
  adjusted so the access is routed to local DRAM instead of looping back
  over PCIe (Fig. 3).
* **Inverted NX sense** — handled by the consumer passing
  ``invert_nx=True`` to permission checks; the TLB stores the NX bit
  verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memory.paging import Translation
from repro.sim.stats import StatRegistry

__all__ = ["TLB", "TLBEntry", "RemapWindow"]


@dataclass
class TLBEntry:
    vbase: int
    page_size: int
    pbase: int
    writable: bool
    user: bool
    nx: bool
    lru_stamp: int = 0

    def covers(self, vaddr: int) -> bool:
        return self.vbase <= vaddr < self.vbase + self.page_size

    def paddr_for(self, vaddr: int) -> int:
        return self.pbase | (vaddr - self.vbase)


@dataclass
class RemapWindow:
    """The BAR-remap control register contents."""

    bar_base: int = 0
    size: int = 0
    offset: int = 0  # host BAR address - NxP local address

    def applies(self, paddr: int) -> bool:
        return self.size > 0 and self.bar_base <= paddr < self.bar_base + self.size

    def to_local(self, paddr: int) -> int:
        return paddr - self.offset


class TLB:
    """A small fully-associative TLB with LRU replacement."""

    def __init__(
        self,
        name: str,
        entries: int = 16,
        stats: Optional[StatRegistry] = None,
    ):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.name = name
        self.capacity = entries
        self.stats = stats or StatRegistry()
        self.remap = RemapWindow()
        self._entries: list[TLBEntry] = []
        self._stamp = 0
        self._c_hit = self.stats.counter(f"{name}.hit")
        self._c_miss = self.stats.counter(f"{name}.miss")
        self._c_evict = self.stats.counter(f"{name}.evict")
        self._c_flush = self.stats.counter(f"{name}.flush")

    # -- control register (written by the host driver over MMIO) ----------

    def program_remap(self, bar_base: int, size: int, offset: int) -> None:
        self.remap = RemapWindow(bar_base=bar_base, size=size, offset=offset)

    # -- lookup / fill -----------------------------------------------------

    def _bump_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def lookup(self, vaddr: int) -> Optional[TLBEntry]:
        """Return the covering entry (bumping LRU), or None on miss.

        Hits move their entry to the scan front — pure wall-clock help
        for the common hot-page case; pages are disjoint, so scan order
        cannot change which entry matches, and replacement uses
        ``lru_stamp``, not list position."""
        entries = self._entries
        for i, entry in enumerate(entries):
            if entry.vbase <= vaddr < entry.vbase + entry.page_size:
                self._stamp += 1
                entry.lru_stamp = self._stamp
                self._c_hit.value += 1
                if i:
                    entries[i] = entries[0]
                    entries[0] = entry
                return entry
        self._c_miss.value += 1
        return None

    def probe(self, vaddr: int) -> Optional[TLBEntry]:
        """Non-mutating :meth:`lookup`: no LRU movement, no stamp bump,
        no hit/miss counters.  The JIT tier uses it to decide whether an
        access can run on the compiled fast path *before* committing any
        observable TLB bookkeeping (a miss bails to the interpreter,
        which then performs the real, counted lookup)."""
        for entry in self._entries:
            if entry.vbase <= vaddr < entry.vbase + entry.page_size:
                return entry
        return None

    def insert(self, tr: Translation) -> TLBEntry:
        """Install a translation, evicting the LRU entry when full."""
        entry = TLBEntry(
            vbase=tr.page_base_vaddr,
            page_size=tr.page_size,
            pbase=tr.page_base_paddr,
            writable=tr.writable,
            user=tr.user,
            nx=tr.nx,
            lru_stamp=self._bump_stamp(),
        )
        # Replace a stale entry for the same page if present.
        for i, existing in enumerate(self._entries):
            if existing.vbase == entry.vbase and existing.page_size == entry.page_size:
                self._entries[i] = entry
                return entry
        if len(self._entries) >= self.capacity:
            victim = min(range(len(self._entries)), key=lambda i: self._entries[i].lru_stamp)
            del self._entries[victim]
            self._c_evict.value += 1
        self._entries.append(entry)
        return entry

    def flush(self) -> None:
        self._entries.clear()
        self._c_flush.value += 1

    def flush_page(self, vaddr: int) -> None:
        self._entries = [e for e in self._entries if not e.covers(vaddr)]

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    # -- physical routing (Fig. 3) -------------------------------------------

    def route(self, paddr: int) -> Tuple[str, int]:
        """Decide where a translated physical address is serviced.

        Returns ``("local", nxp_local_paddr)`` when the remap window
        captures the address (the access stays on the NxP platform) and
        ``("pcie", paddr)`` otherwise (the access crosses the system bus
        to host memory).
        """
        remap = self.remap
        if remap.size > 0 and remap.bar_base <= paddr < remap.bar_base + remap.size:
            return "local", paddr - remap.offset
        return "pcie", paddr
