"""Simulated operating system: kernel, tasks, scheduler, loader."""

from repro.os.kernel import Kernel, ProcessCrash, SYS_EXIT, SYS_PRINT
from repro.os.loader import (
    HOST_HEAP_VBASE,
    HOST_STACK_TOP,
    NXP_STACK_VBASE,
    NXP_WINDOW_VBASE,
    WindowAllocator,
    load_executable,
)
from repro.os.scheduler import CorePool, CoreResource
from repro.os.task import CpuContext, ExecRange, Process, Task, TaskState

__all__ = [
    "Kernel",
    "ProcessCrash",
    "SYS_EXIT",
    "SYS_PRINT",
    "load_executable",
    "WindowAllocator",
    "NXP_WINDOW_VBASE",
    "NXP_STACK_VBASE",
    "HOST_HEAP_VBASE",
    "HOST_STACK_TOP",
    "CorePool",
    "CoreResource",
    "Process",
    "Task",
    "TaskState",
    "CpuContext",
    "ExecRange",
]
