"""Demand paging for the host heap (kernel extension).

The baseline loader backs the host heap eagerly with 2 MB pages.  This
extension leaves a *lazy window* unmapped: the first touch of each page
takes a minor fault, the kernel allocates a frame, zero-fills it, maps
it, and the thread retries the access — the standard anonymous-memory
path of a Unix kernel.

It exists for two reasons:

* completeness — Flick's migration trigger is "just another page-fault
  flavour"; showing the same handler dispatching both NX-migration and
  not-present-minor faults demonstrates how small the paper's kernel
  hook really is;
* realism for long-running programs whose heap footprint is unknown at
  load time.

Note the NxP side is unaffected: if the NxP touches a lazily-backed
page, its MMU walk simply misses and the access faults on the NxP —
Flick (and this reproduction) requires NxP-visible memory to be
populated before migration, as the paper's prototype does.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.config import FlickConfig
from repro.memory.paging import PAGE_4K, PageFault
from repro.os.task import Process, Task

__all__ = ["LazyHeap", "MINOR_FAULT_SERVICE_NS"]

#: Kernel time to service a minor fault: entry, frame allocation,
#: zeroing (amortized), mapping, return.  Distinct from the 0.7 us
#: *migration* fault path, which does far less work.
MINOR_FAULT_SERVICE_NS = 1900.0


class LazyHeap:
    """A demand-paged window of a process's virtual address space."""

    def __init__(
        self,
        machine,
        process: Process,
        vbase: int,
        size: int,
    ):
        if vbase % PAGE_4K or size % PAGE_4K:
            raise ValueError("lazy window must be page aligned")
        self.machine = machine
        self.process = process
        self.vbase = vbase
        self.size = size
        self.minor_faults = 0

    def covers(self, vaddr: int) -> bool:
        return self.vbase <= vaddr < self.vbase + self.size

    def is_backed(self, vaddr: int) -> bool:
        try:
            self.process.page_tables.translate(vaddr)
            return True
        except PageFault:
            return False

    def service_fault(self, task: Optional[Task], vaddr: int) -> Generator:
        """Kernel minor-fault path: allocate, zero, map, account."""
        if not self.covers(vaddr):
            raise PageFault(vaddr, PageFault.NOT_PRESENT)
        cfg: FlickConfig = self.machine.cfg
        yield self.machine.sim.timeout(MINOR_FAULT_SERVICE_NS)
        page_base = vaddr & ~(PAGE_4K - 1)
        frame = self.machine.host_phys.alloc(PAGE_4K, align=PAGE_4K)
        self.machine.phys.write(frame, b"\x00" * PAGE_4K)
        self.process.page_tables.map_page(page_base, frame, PAGE_4K, writable=True, nx=True)
        self.minor_faults += 1
        self.machine.stats.count("kernel.minor_fault")
        self.machine.trace.record(
            "minor_fault", pid=self.process.pid, addr=page_base
        )
