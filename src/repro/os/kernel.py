"""The simulated kernel: fault classification, syscalls, interrupt wakeup.

This is the reproduction of the paper's <2 kLoC of Linux changes
(Section IV-D):

* the **NX page-fault hook** — :meth:`classify_exec_fault` decides
  whether a faulting fetch is a legitimate ISA-crossing call (the target
  lies inside a known ``.text`` range of the *other* ISA) or a plain
  crash;
* the **migration interrupt handler** — pops the inbound descriptor the
  DMA engine delivered, finds the suspended task by PID, and wakes it
  (the wake completes after the modeled scheduler latency);
* small **syscalls** (print/exit) used by test programs and examples.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.config import FlickConfig
from repro.core.descriptors import DESCRIPTOR_BYTES, MigrationDescriptor
from repro.interconnect.interrupt import MIGRATION_VECTOR
from repro.memory.paging import PageFault
from repro.os.task import Process, Task, TaskState
from repro.sim.engine import Simulator

__all__ = ["Kernel", "ProcessCrash", "SYS_EXIT", "SYS_PRINT"]

SYS_EXIT = 0
SYS_PRINT = 1


class ProcessCrash(Exception):
    """A fault that is *not* a migration trigger (a real segfault)."""

    def __init__(self, task: Task, reason: str):
        self.task = task
        self.reason = reason
        super().__init__(f"{task.name}: {reason}")


class Kernel:
    """OS state shared by host cores and the NxP platform."""

    def __init__(self, sim: Simulator, cfg: FlickConfig, machine) -> None:
        self.sim = sim
        self.cfg = cfg
        self.machine = machine
        self.processes: Dict[int, Process] = {}
        self.tasks: Dict[int, Task] = {}
        machine.irq.register(MIGRATION_VECTOR, self._migration_irq)

    # -- bookkeeping --------------------------------------------------------

    def register_process(self, process: Process) -> None:
        self.processes[process.pid] = process

    def register_task(self, task: Task) -> None:
        self.tasks[task.pid] = task  # one migratable task per process pid

    def process_by_pid(self, pid: int) -> Process:
        return self.processes[pid]

    def task_by_pid(self, pid: int) -> Task:
        return self.tasks[pid]

    # -- the NX-fault migration hook --------------------------------------------

    def classify_exec_fault(self, task: Task, fault: PageFault, running_on: str) -> str:
        """Return the ISA that owns the faulting target, or crash.

        ``running_on`` is the ISA of the faulting core; a valid Flick
        trigger is a fetch from a range belonging to the *other* ISA.
        """
        target_isa = task.process.isa_at(fault.vaddr)
        if target_isa is None or target_isa == running_on:
            raise ProcessCrash(
                task,
                f"invalid instruction fetch at {fault.vaddr:#x} "
                f"({fault.kind}, on {running_on})",
            )
        return target_isa

    # -- syscalls --------------------------------------------------------------

    def service_syscall(self, task: Task, code: int, value: int) -> Optional[int]:
        """Handle an ECALL.  Returns the value to place in the return
        register, or raises to signal thread exit via ``SYS_EXIT``."""
        if code == SYS_PRINT:
            signed = value - (1 << 64) if value >> 63 else value
            task.process.output.append(signed)
            return 0
        if code == SYS_EXIT:
            raise _ThreadExit(value)
        raise ProcessCrash(task, f"unknown syscall {code}")

    # -- migration interrupt -------------------------------------------------------

    def _migration_irq(self, _payload) -> Generator:
        """Generator IRQ handler: find the thread by PID and wake it."""
        yield self.sim.timeout(self.cfg.host_irq_handler_ns)
        ring = self.machine.host_ring
        slot = ring.pop_addr()
        raw = self.machine.phys.read(slot, DESCRIPTOR_BYTES)
        desc = MigrationDescriptor.unpack(raw)
        task = self.task_by_pid(desc.pid)
        self.machine.trace.record(
            "irq", pid=desc.pid, kind="call" if desc.is_call else "return"
        )
        if task.state is not TaskState.SUSPENDED or task.wake_event is None:
            raise ProcessCrash(task, "descriptor arrived for a task that is not suspended")

        def waker(sim: Simulator):
            yield sim.timeout(self.cfg.host_wakeup_ns)
            self.machine.trace.record("task_wake", pid=desc.pid)
            event, task.wake_event = task.wake_event, None
            event.trigger(desc)

        self.sim.spawn(waker(self.sim), name=f"wake-{task.name}")


class _ThreadExit(Exception):
    """Internal: a thread called exit(value)."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")
