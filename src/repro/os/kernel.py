"""The simulated kernel: fault classification, syscalls, interrupt wakeup.

This is the reproduction of the paper's <2 kLoC of Linux changes
(Section IV-D):

* the **NX page-fault hook** — :meth:`classify_exec_fault` decides
  whether a faulting fetch is a legitimate ISA-crossing call (the target
  lies inside a known ``.text`` range of the *other* ISA) or a plain
  crash;
* the **migration interrupt handler** — pops the inbound descriptor the
  DMA engine delivered, finds the suspended task by PID, and wakes it
  (the wake completes after the modeled scheduler latency);
* small **syscalls** (print/exit) used by test programs and examples.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.config import FlickConfig
from repro.core.descriptors import DESCRIPTOR_BYTES, MigrationDescriptor
from repro.core.errors import DescriptorCorrupt, ProcessCrash
from repro.interconnect.interrupt import MIGRATION_VECTOR
from repro.memory.paging import PageFault
from repro.os.task import Process, Task, TaskState
from repro.sim.engine import Simulator

# ProcessCrash historically lived here; it moved to repro.core.errors so
# the whole taxonomy sits in one module, and stays re-exported for the
# many call sites (and tests) that import it from repro.os.kernel.
__all__ = ["Kernel", "ProcessCrash", "SYS_EXIT", "SYS_PRINT"]

SYS_EXIT = 0
SYS_PRINT = 1


class Kernel:
    """OS state shared by host cores and the NxP platform."""

    def __init__(self, sim: Simulator, cfg: FlickConfig, machine) -> None:
        self.sim = sim
        self.cfg = cfg
        self.machine = machine
        self.processes: Dict[int, Process] = {}
        self.tasks: Dict[int, Task] = {}
        if getattr(machine, "multi_nxp", False):
            # One vector per device, each handler bound to that device's
            # host inbound ring (descriptors from different devices land
            # in different rings and must never be cross-drained).
            for dev in machine.devices:
                machine.irq.register(
                    dev.vector,
                    lambda payload, _ring=dev.host_ring: self._migration_irq(
                        payload, ring=_ring
                    ),
                )
        else:
            machine.irq.register(MIGRATION_VECTOR, self._migration_irq)

    # -- bookkeeping --------------------------------------------------------

    def register_process(self, process: Process) -> None:
        self.processes[process.pid] = process

    def register_task(self, task: Task) -> None:
        self.tasks[task.pid] = task  # one migratable task per process pid

    def process_by_pid(self, pid: int) -> Process:
        return self.processes[pid]

    def task_by_pid(self, pid: int) -> Task:
        return self.tasks[pid]

    # -- the NX-fault migration hook --------------------------------------------

    def classify_exec_fault(self, task: Task, fault: PageFault, running_on: str) -> str:
        """Return the ISA that owns the faulting target, or crash.

        ``running_on`` is the ISA of the faulting core; a valid Flick
        trigger is a fetch from a range belonging to the *other* ISA.
        """
        target_isa = task.process.isa_at(fault.vaddr)
        if target_isa is None or target_isa == running_on:
            raise ProcessCrash(
                task,
                f"invalid instruction fetch at {fault.vaddr:#x} "
                f"({fault.kind}, on {running_on})",
            )
        return target_isa

    # -- syscalls --------------------------------------------------------------

    def service_syscall(self, task: Task, code: int, value: int) -> Optional[int]:
        """Handle an ECALL.  Returns the value to place in the return
        register, or raises to signal thread exit via ``SYS_EXIT``."""
        if code == SYS_PRINT:
            signed = value - (1 << 64) if value >> 63 else value
            task.process.output.append(signed)
            return 0
        if code == SYS_EXIT:
            raise _ThreadExit(value)
        raise ProcessCrash(task, f"unknown syscall {code}")

    # -- migration interrupt -------------------------------------------------------

    def _migration_irq(self, _payload, ring=None) -> Generator:
        """Generator IRQ handler: find the thread by PID and wake it.

        ``ring`` selects the inbound ring to service — a multi-NxP
        machine passes each device's ring through a per-vector closure;
        the single-NxP machine leaves it ``None`` (the machine ring).
        """
        if getattr(self.machine, "hardened", False):
            yield from self._migration_irq_hardened(ring=ring)
            return
        yield self.sim.timeout(self.cfg.host_irq_handler_ns)
        if ring is None:
            ring = self.machine.host_ring
        slot = ring.pop_addr()
        raw = self.machine.phys.read(slot, DESCRIPTOR_BYTES)
        desc = MigrationDescriptor.unpack(raw)
        task = self.task_by_pid(desc.pid)
        self.machine.trace.record(
            "irq", pid=desc.pid, kind="call" if desc.is_call else "return"
        )
        if task.state is not TaskState.SUSPENDED or task.wake_event is None:
            raise ProcessCrash(task, "descriptor arrived for a task that is not suspended")

        def waker(sim: Simulator):
            yield sim.timeout(self.cfg.host_wakeup_ns)
            self.machine.trace.record("task_wake", pid=desc.pid)
            event, task.wake_event = task.wake_event, None
            event.trigger(desc)

        self.sim.spawn(waker(self.sim), name=f"wake-{task.name}")

    def _migration_irq_hardened(self, ring=None) -> Generator:
        """Fault-tolerant IRQ path, taken only when faults are armed.

        Differences from the fast path, each tied to a fault mode:

        * an empty ring is a *spurious* interrupt (``irq_spurious``, or
          an MSI raised for a descriptor a prior drain already took) —
          counted and ignored, never a crash;
        * the ring is drained completely, because a lost interrupt
          (``irq_loss``) leaves earlier descriptors stranded behind the
          one this MSI announces;
        * descriptors failing wire-format checks (``dma_corrupt``) are
          discarded — the sender's watchdog retransmits them;
        * retransmit duplicates are deduplicated by per-task sequence
          number, and the waker refuses to fire a wake event the leg
          watchdog already claimed.
        """
        yield self.sim.timeout(self.cfg.host_irq_handler_ns)
        stats = self.machine.stats
        if ring is None:
            ring = self.machine.host_ring
        if not ring.pending:
            stats.count("kernel.spurious_irq")
            self.machine.trace.record("spurious_irq")
            return
        best: Dict[int, MigrationDescriptor] = {}
        while ring.pending:
            slot = ring.pop_addr()
            raw = self.machine.phys.read(slot, DESCRIPTOR_BYTES)
            try:
                desc = MigrationDescriptor.unpack(raw)
            except DescriptorCorrupt:
                stats.count("kernel.desc_corrupt_discarded")
                self.machine.trace.record("desc_discard", reason="corrupt")
                continue
            prev = best.get(desc.pid)
            if prev is not None and prev.seq >= desc.seq:
                stats.count("kernel.desc_dup_discarded")
                continue
            best[desc.pid] = desc
        for desc in best.values():
            task = self.tasks.get(desc.pid)
            if task is None:
                stats.count("kernel.desc_unknown_pid")
                continue
            self.machine.trace.record(
                "irq", pid=desc.pid, kind="call" if desc.is_call else "return"
            )
            if desc.seq <= task.last_in_seq:
                # A retransmit of a leg the thread already completed
                # (its own watchdog resent, both copies arrived).
                stats.count("kernel.late_delivery")
                self.machine.trace.record("late_delivery", pid=desc.pid, seq=desc.seq)
                continue
            if task.state is not TaskState.SUSPENDED or task.wake_event is None:
                stats.count("kernel.late_delivery")
                self.machine.trace.record("late_delivery", pid=desc.pid, seq=desc.seq)
                continue
            self._spawn_guarded_waker(task, desc)

    def _spawn_guarded_waker(self, task: Task, desc: MigrationDescriptor) -> None:
        ev = task.wake_event

        def waker(sim: Simulator):
            yield sim.timeout(self.cfg.host_wakeup_ns)
            # The leg watchdog races this wakeup; whoever triggers the
            # event first wins, the loser must stand down (a triggered
            # Event raises on re-trigger).
            if ev is None or ev.triggered or task.wake_event is not ev:
                self.machine.stats.count("kernel.late_wake")
                return
            self.machine.trace.record("task_wake", pid=desc.pid)
            task.wake_event = None
            task.last_in_seq = desc.seq
            ev.trigger(desc)

        self.sim.spawn(waker(self.sim), name=f"wake-{task.name}")


class _ThreadExit(Exception):
    """Internal: a thread called exit(value)."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")
