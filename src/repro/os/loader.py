"""The multi-ISA executable loader (Section IV-C3).

Performs what the paper's modified GLIBC dynamic linker does:

* places each segment according to its section's **placement** — host
  DRAM for text/`.data`/`.bss` (PCIe coherence rule), NxP DRAM for
  ``.data.nxp`` — and maps it into the process page tables;
* uses the **extended mprotect** semantics to set the NX bit on every
  page of a ``.text.<nxp-isa>`` section, so that executing NxP code on
  the host faults into the migration path (and vice versa through the
  inverted NX sense on the NxP);
* maps the fixed process windows: the 4 GB NxP data window with **four
  1 GB huge pages** (the paper's TLB-miss mitigation), the NxP stack
  BRAM window, the host heap (2 MB pages) and the host stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import LoadError
from repro.memory.allocator import RegionAllocator
from repro.memory.paging import PAGE_1G, PAGE_2M, PAGE_4K, PageTables
from repro.os.task import Process
from repro.toolchain.felf import Executable

__all__ = [
    "load_executable",
    "create_address_space",
    "WindowAllocator",
    "NXP_WINDOW_VBASE",
    "NXP_STACK_VBASE",
    "HOST_HEAP_VBASE",
    "HOST_STACK_TOP",
    "HOST_HEAP_BYTES",
]

# Fixed virtual windows of every Flick process (all canonical, < 2^47).
NXP_WINDOW_VBASE = 0x1000_0000_0000  # -> BAR0 (NxP DRAM), 4 x 1GB pages
NXP_STACK_VBASE = 0x3000_0000_0000  # -> NxP stack BRAM
HOST_HEAP_VBASE = 0x2000_0000_0000  # -> host DRAM, 2MB pages
HOST_STACK_TOP = 0x7000_0000_0000  # host stack grows down from here

HOST_HEAP_BYTES = 64 * 1024 * 1024
HOST_STACK_BYTES = 2 * 1024 * 1024  # one 2MB page


def _align_up(v: int, a: int) -> int:
    return (v + a - 1) & ~(a - 1)


class WindowAllocator:
    """Allocates from a physical region but yields *virtual* addresses
    inside the fixed window that maps it (used for the NxP heap: virtual
    NxP-window addresses backed by NxP DRAM)."""

    def __init__(self, name: str, phys_alloc: RegionAllocator, phys_base: int, virt_base: int):
        self.name = name
        self.phys_alloc = phys_alloc
        self.phys_base = phys_base
        self.virt_base = virt_base

    def alloc(self, size: int, align: int = 8) -> int:
        paddr = self.phys_alloc.alloc(size, align)
        return self.virt_base + (paddr - self.phys_base)

    def free(self, vaddr: int) -> None:
        self.phys_alloc.free(self.phys_base + (vaddr - self.virt_base))

    def to_paddr(self, vaddr: int) -> int:
        return self.phys_base + (vaddr - self.virt_base)


def create_address_space(machine, name: str) -> Process:
    """Create a bare Flick address space: page tables plus the fixed
    process windows, but no program segments (used by hosted-mode
    workloads that run timing-model bodies instead of binaries)."""
    mm = machine.memory_map
    pt = PageTables(machine.phys, machine.frame_alloc)

    # -- fixed windows ------------------------------------------------------
    # 4GB NxP data window: four 1GB huge pages (Section V).
    for i in range(4):
        pt.map_page(
            NXP_WINDOW_VBASE + i * PAGE_1G,
            mm.bar0_base + i * PAGE_1G,
            PAGE_1G,
            writable=True,
            nx=True,
        )
    # NxP stack BRAM window (2MB pages).
    for off in range(0, mm.nxp_bram_size, PAGE_2M):
        pt.map_page(NXP_STACK_VBASE + off, mm.nxp_bram_base + off, PAGE_2M, nx=True)
    # Host heap (2MB pages, eagerly backed; a demand-paged variant exists
    # as kernel extension but eager keeps experiment setup deterministic).
    heap_phys = machine.host_phys.alloc(HOST_HEAP_BYTES, align=PAGE_2M)
    for off in range(0, HOST_HEAP_BYTES, PAGE_2M):
        pt.map_page(HOST_HEAP_VBASE + off, heap_phys + off, PAGE_2M, nx=True)
    # Host stack.
    stack_phys = machine.host_phys.alloc(HOST_STACK_BYTES, align=PAGE_2M)
    pt.map_page(HOST_STACK_TOP - HOST_STACK_BYTES, stack_phys, PAGE_2M, nx=True)

    process = Process(
        name=name,
        page_tables=pt,
        host_heap=RegionAllocator("host_heap", HOST_HEAP_VBASE, HOST_HEAP_BYTES),
        nxp_heap=WindowAllocator(
            "nxp_heap", machine.nxp_phys, mm.bar0_base, NXP_WINDOW_VBASE
        ),
    )
    # Map the kernel half: every loaded multi-ISA module (Section IV-D).
    if getattr(machine, "kernel_modules", None):
        from repro.os.module import map_modules_into

        map_modules_into(machine, process)
    return process


def load_executable(machine, exe: Executable, name: Optional[str] = None) -> Process:
    """Load ``exe`` into a fresh address space on ``machine``.

    ``machine`` must provide: ``phys``, ``frame_alloc`` (page-table
    frames), ``host_phys`` (host DRAM), ``nxp_phys`` (NxP DRAM, BAR0
    addresses), ``cfg`` and ``memory_map``.
    """
    process = create_address_space(machine, name or exe.entry_symbol)
    pt = process.page_tables
    process.symbols = dict(exe.symbols)

    # -- segments -----------------------------------------------------------
    for seg in exe.segments:
        if seg.size == 0:
            continue
        span = _align_up(seg.vaddr + seg.size, PAGE_4K) - (seg.vaddr & ~(PAGE_4K - 1))
        vbase = seg.vaddr & ~(PAGE_4K - 1)
        if seg.vaddr % PAGE_4K and seg.placement == "nxp":
            # An @nxp segment must start page-aligned: the loader marks
            # NxP text NX (and registers NxP data cacheable) at page
            # granularity, so a misaligned segment would drag co-resident
            # host bytes into the wrong protection/coherence domain and
            # break the vaddr->paddr congruence migration relies on.
            # The linker always page-aligns sections, so hitting this
            # means a corrupt or hand-built image.
            raise LoadError(
                f"@nxp segment {seg.section_name!r} at {seg.vaddr:#x} is "
                f"not {PAGE_4K:#x}-aligned; NxP segments must be page-congruent"
            )
        if seg.placement == "host":
            paddr = machine.host_phys.alloc(span, align=PAGE_4K)
        else:
            paddr = machine.nxp_phys.alloc(span, align=PAGE_4K)
        machine.phys.write(paddr, b"\x00" * span)
        machine.phys.write(paddr + (seg.vaddr - vbase), seg.data)
        # Map first, then apply the extended-mprotect NX marking the
        # paper's loader performs for NxP text (Section IV-C3).
        pt.map_range(vbase, paddr, span, PAGE_4K, writable=seg.writable, nx=(seg.isa is None))
        if seg.isa == "nisa":
            pt.set_nx(vbase, True, length=span)
        if seg.isa is not None:
            process.add_exec_range(seg.vaddr, seg.size, seg.isa)
        if seg.placement == "nxp" and seg.isa is None:
            # Annotated NxP-local data needs no host coherence (Section
            # III-D): the NxP D-cache may cache it.  The loader registers
            # the cacheable window with the platform, as the paper's
            # loader arranges for NxP-specific .data/.bss sections.
            machine.nxp.port.cacheable.allow(paddr, span)

    return process
