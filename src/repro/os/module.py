"""Multi-ISA kernel modules (Section IV-D).

The paper's Flick platform support itself ships as a *multi-ISA kernel
module*: its host-side pieces (platform init, the migration ioctl) run
on the host, while the NxP scheduler and NxP migration handler run on
the NxP — one module, two ISAs, loaded by a kernel module loader that
applies each section's relocation flavour by name, exactly like the
user-space linker.

This reproduction models that: a module is FlickC source compiled and
linked into a reserved *kernel window* of the shared address space.
Its segments are mapped into every subsequently created process (the
"kernel half" convention), and its exported symbols become linkable by
user programs — so a program can call a host-side module entry point
that in turn calls the module's NxP-side functions, migrating exactly
like user code does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.paging import PAGE_4K
from repro.toolchain.felf import Executable
from repro.toolchain.flickc import compile_source
from repro.toolchain.linker import LinkerScript, link

__all__ = ["KernelModule", "ModuleSegment", "load_module", "KERNEL_MODULE_VBASE"]

#: Base of the kernel-module window (canonical, far from user windows).
KERNEL_MODULE_VBASE = 0x7800_0000_0000
_MODULE_STRIDE = 0x100_0000  # 16 MB of VA per module


@dataclass(frozen=True)
class ModuleSegment:
    """One loaded piece of a module, shared by all address spaces."""

    vaddr: int
    paddr: int
    size: int
    isa: Optional[str]
    writable: bool


@dataclass
class KernelModule:
    name: str
    base_vaddr: int
    segments: List[ModuleSegment] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    isa_of_symbol: Dict[str, Optional[str]] = field(default_factory=dict)

    def symbol(self, name: str) -> int:
        return self.symbols[name]


def _align_up(v: int, a: int) -> int:
    return (v + a - 1) & ~(a - 1)


def load_module(machine, source: str, name: str, entry_symbol: str = "module_init") -> KernelModule:
    """Compile and load a multi-ISA kernel module onto ``machine``.

    ``machine`` gains the module's segments (mapped into every process
    created afterwards) and its exported symbols (linkable from user
    programs compiled afterwards).
    """
    obj = compile_source(source, name=name)
    base = KERNEL_MODULE_VBASE + len(machine.kernel_modules) * _MODULE_STRIDE
    script = LinkerScript(base_vaddr=base)
    exe: Executable = link(
        [obj],
        entry_symbol=entry_symbol,
        script=script,
        extra_symbols=dict(machine.runtime_symbols),
    )

    module = KernelModule(name=name, base_vaddr=base)
    for seg in exe.segments:
        if seg.size == 0:
            continue
        vbase = seg.vaddr & ~(PAGE_4K - 1)
        span = _align_up(seg.vaddr + seg.size, PAGE_4K) - vbase
        if seg.placement == "host":
            paddr = machine.host_phys.alloc(span, align=PAGE_4K)
        else:
            paddr = machine.nxp_phys.alloc(span, align=PAGE_4K)
        machine.phys.write(paddr, b"\x00" * span)
        machine.phys.write(paddr + (seg.vaddr - vbase), seg.data)
        module.segments.append(
            ModuleSegment(
                vaddr=vbase,
                paddr=paddr,
                size=span,
                isa=seg.isa,
                writable=seg.writable,
            )
        )

    # Export the module's own symbols (not the runtime stubs).  The
    # entry symbol stays module-local, like Linux's init functions.
    exported: Dict[str, int] = {}
    for sym, addr in exe.symbols.items():
        if sym in machine.runtime_symbols:
            continue
        module.symbols[sym] = addr
        module.isa_of_symbol[sym] = exe.isa_of_symbol.get(sym)
        if sym == entry_symbol:
            continue
        if sym in machine.module_symbols:
            raise ValueError(f"module {name!r}: symbol {sym!r} already exported")
        exported[sym] = addr

    machine.kernel_modules.append(module)
    machine.module_symbols.update(exported)
    machine.module_isa_of_symbol.update(
        {s: module.isa_of_symbol[s] for s in exported}
    )
    return module


def map_modules_into(machine, process) -> None:
    """Map every loaded module into ``process`` (the kernel half)."""
    for module in machine.kernel_modules:
        for seg in module.segments:
            process.page_tables.map_range(
                seg.vaddr,
                seg.paddr,
                seg.size,
                PAGE_4K,
                writable=seg.writable,
                nx=(seg.isa != "hisa"),
            )
            if seg.isa is not None:
                process.add_exec_range(seg.vaddr, seg.size, seg.isa)
