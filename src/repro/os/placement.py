"""Session placement for multi-NxP machines (docs/FLEET.md).

When a machine owns several NxP devices, every host→NxP migration
*session* (the outermost ISA-crossing call, including any reentrant
ladder it spawns) must be routed to exactly one device: descriptor
sequence numbers, replay caches and the task's suspended NxP frames are
all per-device state, so a session cannot straddle devices.  The
:class:`PlacementLayer` makes that routing decision once per session,
through a pluggable policy:

``static``
    Always the lowest-indexed live device — the degenerate policy a
    single-NxP machine implicitly uses; the baseline for ablations.
``round_robin``
    Cycle through live devices in index order.  Oblivious but fair;
    the default for fleet serving runs.
``least_loaded``
    The live device with the fewest outstanding sessions (ties break
    to the lowest index).  Adapts to skewed session lengths.
``locality``
    Prefer the device whose BRAM already holds the task's NxP stack
    (``task.nxp_device``); fall back to least-loaded for first-time
    migrators.  Models stack/BRAM affinity: re-placing a task on its
    stack's home device avoids cross-device stack reallocation.

Placement bookkeeping lives in a **sidecar** counter dict (like the JIT
tier's) rather than the machine's :class:`StatRegistry`: the parity
contract pins base stats bit-identical between single-NxP runs and the
pre-fleet code, and multi-NxP observability must not create pressure to
touch that snapshot.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

__all__ = ["PlacementLayer", "PlacementPolicy", "POLICIES"]


class PlacementPolicy:
    """Chooses one device from the live candidates for a new session."""

    name = "abstract"

    def choose(self, task, candidates):
        raise NotImplementedError


class StaticPolicy(PlacementPolicy):
    name = "static"

    def choose(self, task, candidates):
        return candidates[0]


class RoundRobinPolicy(PlacementPolicy):
    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, task, candidates):
        # Cycle over device *indices*, not the candidate list: a device
        # leaving and rejoining the candidate set must not reshuffle the
        # phase for its peers.
        chosen = min(candidates, key=lambda d: ((d.index - self._next) % _span(candidates), d.index))
        self._next = chosen.index + 1
        return chosen


def _span(candidates) -> int:
    return max(d.index for d in candidates) + 1


class LeastLoadedPolicy(PlacementPolicy):
    name = "least_loaded"

    def choose(self, task, candidates):
        return min(candidates, key=lambda d: (d.outstanding, d.index))


class LocalityPolicy(PlacementPolicy):
    name = "locality"

    def __init__(self):
        self._fallback = LeastLoadedPolicy()

    def choose(self, task, candidates):
        home = getattr(task, "nxp_device", None)
        if home is not None:
            for dev in candidates:
                if dev.index == home:
                    return dev
        return self._fallback.choose(task, candidates)


POLICIES = {
    "static": StaticPolicy,
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "locality": LocalityPolicy,
}


class PlacementLayer:
    """Per-machine routing of migration sessions to NxP devices."""

    def __init__(self, machine, policy: str = "static"):
        try:
            self.policy = POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None
        self.machine = machine
        # Sidecar counters (see module docstring): pick.dev{i} per
        # device, plus failover (re-placement after a dead pick) and
        # exhausted (no live device left -> host fallback).
        self.counters: Dict[str, int] = {}

    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    def pick(self, task, exclude: FrozenSet[int] = frozenset()):
        """Choose a live device for a new session, or ``None`` when no
        device outside ``exclude`` is live (the caller degrades to
        host-fallback emulation).

        ``RECOVERING`` devices join the candidate set only while
        :attr:`~repro.core.nxp_device.NxpDevice.probe_ready` — at most
        one in-flight session, the half-open breaker probe.  With
        recovery off no device ever reports probe_ready, so the
        candidate set is byte-identical to the pre-recovery behavior.
        """
        candidates = [
            d for d in self.machine.devices
            if (d.alive or d.probe_ready) and d.index not in exclude
        ]
        trace = getattr(self.machine, "trace", None)
        traced = trace is not None and trace.context_enabled
        if not candidates:
            self._count("placement.exhausted")
            if traced:
                trace.record(
                    "placement", pid=task.pid, policy=self.policy.name,
                    device=None, failover=bool(exclude), exhausted=True,
                )
            return None
        dev = self.policy.choose(task, candidates)
        self._count(f"placement.pick.dev{dev.index}")
        if dev.probe_ready:
            self._count("placement.probe")
        if exclude:
            self._count("placement.failover")
        if traced:
            trace.record(
                "placement", pid=task.pid, policy=self.policy.name,
                device=dev.index, device_label=f"nxp{dev.index}",
                failover=bool(exclude),
            )
        return dev

    def session_counts(self) -> Dict[int, int]:
        """Sessions placed per device index (for reports/tests)."""
        out: Dict[int, int] = {}
        for dev in self.machine.devices:
            out[dev.index] = self.counters.get(f"placement.pick.dev{dev.index}", 0)
        return out
