"""Host-core scheduling primitives.

Each host core is modeled as a FIFO-queued resource a task must hold to
execute.  The Flick ioctl path "suspends" a thread by releasing its core
(after the modeled context-switch cost) and re-acquires one on wakeup —
exactly the deschedule/wake_up dance the paper's modified Linux
scheduler performs, including the rule that the descriptor DMA may only
be kicked *after* the context switch away (Section IV-D's race
avoidance).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["CoreResource", "CorePool"]


class CoreResource:
    """A mutex with FIFO hand-off representing one host core."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._holder: Optional[str] = None
        self._waiters: List[Event] = []
        self._held_since: float = 0.0
        self.busy_ns: float = 0.0  # cumulative time the core was held

    @property
    def busy(self) -> bool:
        return self._holder is not None

    def acquire(self, who: str = "?") -> Generator:
        if self._holder is None:
            self._holder = who
            self._held_since = self.sim.now
            if False:  # pragma: no cover - generator marker
                yield
            return
        ev = Event(self.sim, name=f"{self.name}.wait[{who}]")
        self._waiters.append(ev)
        yield ev
        self._holder = who
        self._held_since = self.sim.now

    def release(self) -> None:
        if self._holder is None:
            raise RuntimeError(f"{self.name}: release while free")
        self.busy_ns += self.sim.now - self._held_since
        self._holder = None
        if self._waiters:
            # Hand off: the woken waiter becomes the holder when it runs.
            self._waiters.pop(0).trigger()


class CorePool:
    """A set of host cores; tasks grab the first free one (FIFO overall).

    When a :class:`~repro.sim.stats.StatRegistry` is attached, the pool
    keeps the scheduler queue-depth metrics current (gauge
    ``sched.run_queue_depth``, histogram ``sched.queue_depth_at_enqueue``,
    histogram ``sched.core_wait_ns``) — pure observation, never a
    simulated-time charge.
    """

    def __init__(self, sim: Simulator, count: int, stats=None):
        if count < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = [CoreResource(sim, f"core{i}") for i in range(count)]
        self._waiters: List[Event] = []
        self._stats = stats
        self._note_queue_depth()  # register the gauge (depth 0) up front

    def _note_queue_depth(self) -> None:
        if self._stats is not None:
            self._stats.set_gauge("sched.run_queue_depth", len(self._waiters))

    def acquire(self, who: str = "?") -> Generator:
        """Acquire any free core; returns the CoreResource held.

        A woken waiter can lose the race: another task may grab the
        freed core before the waiter's resume runs (the release/trigger
        is not a hand-off at pool level).  The loser re-waits at the
        *front* of the queue — it was the oldest waiter, and sending it
        to the back would let every later arrival overtake it once per
        race (starvation under contention).
        """
        queued = False
        enqueued_at = 0.0
        while True:
            for core in self.cores:
                if not core.busy:
                    yield from core.acquire(who)
                    if queued and self._stats is not None:
                        self._stats.observe(
                            "sched.core_wait_ns", self.sim.now - enqueued_at
                        )
                    return core
            ev = Event(self.sim, name=f"cores.wait[{who}]")
            if queued:
                self._waiters.insert(0, ev)
            else:
                self._waiters.append(ev)
                queued = True
                enqueued_at = self.sim.now
                if self._stats is not None:
                    self._stats.observe(
                        "sched.queue_depth_at_enqueue", len(self._waiters)
                    )
            self._note_queue_depth()
            yield ev

    def release(self, core: CoreResource) -> None:
        core.release()
        if self._waiters:
            self._waiters.pop(0).trigger()
            self._note_queue_depth()

    @property
    def busy_ns(self) -> float:
        """Total held time across all cores (in-flight holds included)."""
        total = sum(core.busy_ns for core in self.cores)
        for core in self.cores:
            if core.busy:
                total += self.sim.now - core._held_since
        return total
