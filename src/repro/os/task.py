"""Processes and tasks (the simulated kernel's ``task_struct``).

A :class:`Process` owns an address space (page tables, segment layout,
per-region heap allocators).  A :class:`Task` is a schedulable thread
with a saved host CPU context plus the Flick-specific fields the paper
adds to ``task_struct``: the faulting target address, the migration
flag (used to kick the DMA *after* the context switch away), and the
thread's NxP stack pointer.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.allocator import RegionAllocator
from repro.memory.paging import PageTables

__all__ = ["Process", "Task", "TaskState", "CpuContext", "ExecRange"]

_pid_counter = itertools.count(1)


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SUSPENDED = "suspended"  # TASK_KILLABLE inside the migration ioctl()
    DONE = "done"


@dataclass
class CpuContext:
    """Saved architectural state of one core's view of a thread."""

    regs: List[int]
    pc: int
    zf: bool = False
    sf_lt: bool = False


@dataclass(frozen=True)
class ExecRange:
    """One executable mapping and the ISA its instructions belong to."""

    vaddr: int
    size: int
    isa: str

    def contains(self, addr: int) -> bool:
        return self.vaddr <= addr < self.vaddr + self.size


class Process:
    """An address space plus its placement-aware allocators."""

    def __init__(
        self,
        name: str,
        page_tables: PageTables,
        host_heap: RegionAllocator,
        nxp_heap: RegionAllocator,
    ):
        self.pid = next(_pid_counter)
        self.name = name
        self.page_tables = page_tables
        self.host_heap = host_heap  # returns *virtual* addresses
        self.nxp_heap = nxp_heap  # returns *virtual* addresses (NxP window)
        self.exec_ranges: List[ExecRange] = []
        self.symbols: Dict[str, int] = {}
        self.lazy_heap = None  # set by FlickMachine.enable_lazy_heap
        self.output: List[int] = []  # values print()ed by any core
        self.exit_code: Optional[int] = None
        # Outbound (h2n) migration sequence counter.  This lives on the
        # *process*, not the task: the NxP-side dedup/replay cache is
        # keyed by pid and outlives any one thread, so a fresh thread
        # spawned on a reused process (the serving harness does exactly
        # this) must continue the sequence, not restart it — a restart
        # makes the device discard its legs as stale retransmits.
        self.h2n_seq: int = 0

    @property
    def cr3(self) -> int:
        return self.page_tables.cr3

    def add_exec_range(self, vaddr: int, size: int, isa: str) -> None:
        self.exec_ranges.append(ExecRange(vaddr, size, isa))
        # Mirror into the page tables so stores through the memory ports
        # that hit code invalidate decoded-instruction caches.
        self.page_tables.note_exec_range(vaddr, size)

    def isa_at(self, vaddr: int) -> Optional[str]:
        for r in self.exec_ranges:
            if r.contains(vaddr):
                return r.isa
        return None


class Task:
    """One software thread, migratable between host and NxP cores."""

    def __init__(self, process: Process, name: str = ""):
        self.process = process
        self.tid = next(_pid_counter)
        self.name = name or f"task{self.tid}"
        self.state = TaskState.READY
        self.host_context: Optional[CpuContext] = None
        # Flick additions to task_struct (Section IV-B1 / IV-D):
        self.faulting_target: Optional[int] = None
        self.migration_pending: bool = False
        self.nxp_stack_base: Optional[int] = None  # None => never migrated
        self.nxp_sp: Optional[int] = None  # thread's current NxP stack pointer
        # NxP-side suspended contexts, one per nesting level (reentrancy).
        self.nxp_context_stack: List[CpuContext] = []
        # Wake channel: the ioctl sleeps here; the IRQ handler delivers
        # the inbound descriptor slot address.
        self.wake_event = None  # repro.sim.Event, armed by the ioctl
        self.wake_payload: Optional[int] = None
        # Hardened-protocol bookkeeping (only advanced when faults are
        # armed): the highest inbound (n2h) sequence already delivered
        # to the ioctl.  The outbound counter is ``h2n_seq`` below — a
        # per-process value surfaced here because the ioctl works in
        # task terms.
        self.last_in_seq: int = 0
        # Multi-NxP only: index of the device whose BRAM slice holds
        # this task's NxP stack (the ``locality`` policy's affinity);
        # None until the first migration, and always None on a
        # single-NxP machine.
        self.nxp_device: Optional[int] = None

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def h2n_seq(self) -> int:
        return self.process.h2n_seq

    @h2n_seq.setter
    def h2n_seq(self, value: int) -> None:
        self.process.h2n_seq = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name} pid={self.pid} {self.state.value}>"
