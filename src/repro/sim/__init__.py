"""Discrete-event simulation substrate for the Flick reproduction."""

from repro.sim.engine import (
    Channel,
    Deadlock,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    builtin_plans,
)
from repro.sim.stats import (
    Accumulator,
    Counter,
    Gauge,
    Histogram,
    StatRegistry,
    mean,
    percentile,
    quantile,
)

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Channel",
    "SimulationError",
    "Deadlock",
    "Counter",
    "Gauge",
    "Accumulator",
    "Histogram",
    "StatRegistry",
    "mean",
    "percentile",
    "quantile",
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "builtin_plans",
]
