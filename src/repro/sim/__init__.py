"""Discrete-event simulation substrate for the Flick reproduction."""

from repro.sim.engine import (
    Channel,
    Deadlock,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.stats import Accumulator, Counter, StatRegistry, mean, percentile

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Channel",
    "SimulationError",
    "Deadlock",
    "Counter",
    "Accumulator",
    "StatRegistry",
    "mean",
    "percentile",
]
