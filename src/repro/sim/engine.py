"""Discrete-event simulation engine.

Every hardware and software component in the Flick reproduction runs on
this engine: cores, the PCIe link, the DMA controller, the OS scheduler,
and the migration handlers are all :class:`Process` coroutines that
advance a shared simulated clock (in **nanoseconds**).

The engine is deliberately small and dependency-free.  Processes are
plain Python generators that ``yield`` one of:

* ``sim.timeout(dt)`` — suspend for ``dt`` simulated nanoseconds,
* ``sim.sleep_until(t)`` — suspend until the absolute instant ``t``
  (resumes with ``now == t`` exactly, no relative-delay round-off),
* an :class:`Event` — suspend until someone calls ``event.trigger(value)``;
  the ``yield`` expression evaluates to ``value``,
* another :class:`Process` — suspend until that process finishes; the
  ``yield`` expression evaluates to its return value.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, ev):
...     yield sim.timeout(10)
...     ev.trigger("pong")
>>> def ponger(sim, ev):
...     value = yield ev
...     return (sim.now, value)
>>> ev = Event(sim)
>>> sim.spawn(pinger(sim, ev))        # doctest: +ELLIPSIS
<Process ...>
>>> p = sim.spawn(ponger(sim, ev))
>>> sim.run()
>>> p.value
(10.0, 'pong')
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "SleepUntil",
    "Channel",
    "SimulationError",
    "Deadlock",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class Deadlock(SimulationError):
    """Raised by :meth:`Simulator.run` when ``until`` was given but the
    event queue drained before reaching it and live processes remain."""


class Timeout:
    """A pending delay; created via :meth:`Simulator.timeout`."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class SleepUntil:
    """Suspend until an *absolute* simulated instant; created via
    :meth:`Simulator.sleep_until`.

    Unlike ``timeout(target - now)``, resuming at ``at`` is exact: the
    woken process observes ``sim.now == at`` bit-for-bit, with no
    float round-off from the add-the-difference detour.  Consumers that
    accumulate charges and emit them in variable-size chunks (the hosted
    mode's batch accumulator) rely on this to make the final clock
    independent of where the chunk boundaries fell.
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SleepUntil({self.at!r})"


class Event:
    """A one-shot level-triggered event carrying an optional value.

    Processes that ``yield`` an event before it triggers are resumed when
    it triggers.  Processes that ``yield`` an already-triggered event
    resume immediately (same simulated time) with the stored value.
    """

    __slots__ = ("sim", "name", "_triggered", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current sim time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc._resume_cb, value)

    def reset(self) -> None:
        """Re-arm a triggered event so it can be triggered again.

        Only legal when no process is currently waiting on it.
        """
        if self._waiters:
            raise SimulationError(f"cannot reset event {self.name!r}: has waiters")
        self._triggered = False
        self._value = None

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.sim._schedule(0.0, proc._resume_cb, self._value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.spawn`.  A process finishes when its
    generator returns; the return value is stored in :attr:`value` and
    any processes waiting on it are resumed with that value.  An uncaught
    exception inside a process aborts the whole simulation (it is
    re-raised out of :meth:`Simulator.run`), because silent process death
    hides protocol bugs.
    """

    __slots__ = (
        "sim", "gen", "name", "alive", "value", "_waiters", "_resume_cb", "_sched"
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self._waiters: List["Process"] = []
        # One bound method reused for every schedule of this process
        # (attribute access would allocate a fresh one per event), and
        # the scheduler entry point itself, hoisted off the two-level
        # ``self.sim._schedule`` chase on the per-event path.
        self._resume_cb = self._resume
        self._sched = sim._schedule

    def _resume(self, send_value: Any = None) -> None:
        if not self.alive:
            return
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if type(target) is Timeout:  # the dominant yield; no subclasses
            self._sched(target.delay, self._resume_cb, None)
        else:
            self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._sched(target.delay, self._resume_cb, None)
        elif isinstance(target, SleepUntil):
            self.sim._schedule_at(target.at, self._resume_cb, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            if target.alive:
                target._waiters.append(self)
            else:
                self._sched(0.0, self._resume_cb, target.value)
        elif target is None:
            # Bare ``yield`` — cooperative re-schedule at the same time.
            self._sched(0.0, self._resume_cb, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {target!r}"
            )

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self.sim._live_processes -= 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc._resume_cb, value)

    def kill(self) -> None:
        """Terminate the process without resuming it again."""
        if self.alive:
            self.alive = False
            self.sim._live_processes -= 1
            self.gen.close()
            waiters, self._waiters = self._waiters, []
            for proc in waiters:
                self.sim._schedule(0.0, proc._resume_cb, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Channel:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an object to ``yield`` on that
    completes with the next item (immediately, at the current simulated
    time, if an item is already queued).
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.trigger(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class Simulator:
    """The event loop and simulated clock (nanosecond granularity).

    ``fast_now_queue`` enables a wall-clock fast path for zero-delay
    wakeups (the dominant event class in the Flick protocol: event
    triggers, process completions, channel hand-offs).  Instead of
    churning the heap, they go to a plain FIFO drained only when the
    heap holds nothing at the current instant.  This preserves the
    global (time, schedule-order) firing sequence exactly: every heap
    entry stamped at the current time was necessarily scheduled before
    any entry now sitting in the FIFO (zero-delay schedules always
    divert to the FIFO, and positive delays land strictly in the
    future), so draining same-time heap entries first reproduces the
    heapq order.  Simulated results are bit-identical either way —
    the parity tests in tests/core/test_fastpath_parity.py enforce it.
    """

    def __init__(self, fast_now_queue: bool = True) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._now_q: Deque[Tuple[Callable, Any]] = deque()
        self._fast = bool(fast_now_queue)
        self._seq = 0
        self._live_processes = 0
        self._error: Optional[BaseException] = None
        # Dispatched-callback count plus the JIT tier's event credit
        # (see events_processed / credit_events).
        self._events_dispatched = 0
        self._event_credit = 0

    @property
    def events_processed(self) -> int:
        """Total processed DES events: callbacks actually dispatched
        plus credited events (see :meth:`credit_events`).  This is the
        events/sec numerator of ``benchmarks/bench_simspeed.py`` and a
        pinned quantity of every fast-path parity contract.
        """
        return self._events_dispatched + self._event_credit

    def credit_events(self, n: int) -> None:
        """Credit ``n`` events that a consolidating fast path collapsed.

        The tracing-JIT tier replays a superblock's exact sequence of
        timed pauses arithmetically and emits one ``sleep_until`` for
        the whole region; each collapsed pause would have been one
        dispatched callback, so the tier credits them here to keep
        ``events_processed`` bit-identical across tiers (the
        tests/core/test_jit_parity.py contract).
        """
        self._event_credit += n

    # -- process / primitive construction ---------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting it at ``now``."""
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        self._schedule(0.0, proc._resume_cb, None)
        return proc

    def spawn_at(self, at: float, gen: Generator, name: str = "") -> Process:
        """Register a process whose first step runs at absolute time ``at``.

        The start instant is fixed when this is called — nothing that
        happens in the simulation between now and ``at`` can move it.
        Open-loop traffic generation relies on this: an arrival schedule
        posted up front fires on time regardless of how congested the
        machine is when each instant comes due.  ``at`` must be >= now.
        """
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        self._schedule_at(at, proc._resume_cb, None)
        return proc

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def sleep_until(self, at: float) -> SleepUntil:
        return SleepUntil(at)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def channel(self, name: str = "") -> Channel:
        return Channel(self, name=name)

    # -- scheduling core ---------------------------------------------------

    def _schedule(self, delay: float, callback: Callable, arg: Any) -> None:
        if self._fast and delay == 0.0:
            self._now_q.append((callback, arg))
        else:
            self._seq += 1
            heapq.heappush(self._queue, (self.now + delay, self._seq, callback, arg))

    def _schedule_at(self, at: float, callback: Callable, arg: Any) -> None:
        """Schedule a callback at an absolute time (``at >= now``)."""
        if at < self.now:
            raise SimulationError(
                f"sleep_until target {at!r} is in the past (now={self.now!r})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, callback, arg))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or ``until`` ns is reached.

        Raises :class:`Deadlock` if ``until`` was requested but every
        process went idle before that time (usually a lost wakeup).
        Re-raises the first uncaught exception from any process.
        """
        queue = self._queue
        now_q = self._now_q
        heappop = heapq.heappop
        events = self._events_dispatched
        try:
            while queue or now_q:
                if queue and queue[0][0] <= self.now:
                    # Same-instant heap entries predate every now-queue
                    # entry (see class docstring): they fire first.
                    _at, _seq, callback, arg = heappop(queue)
                elif now_q:
                    callback, arg = now_q.popleft()
                else:
                    at = queue[0][0]
                    if until is not None and at > until:
                        self.now = until
                        return
                    _at, _seq, callback, arg = heappop(queue)
                    self.now = _at
                events += 1
                try:
                    callback(arg)
                except SimulationError:
                    raise
                except BaseException as exc:
                    raise SimulationError(
                        f"uncaught exception in simulated process at t={self.now}ns"
                    ) from exc
        finally:
            self._events_dispatched = events
        if until is not None:
            if self._live_processes > 0:
                raise Deadlock(
                    f"{self._live_processes} live process(es) idle at t={self.now}ns "
                    f"before until={until}ns"
                )
            self.now = until

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its value."""
        proc = self.spawn(gen, name=name)
        self.run()
        if proc.alive:
            raise Deadlock(f"process {proc.name!r} never finished")
        return proc.value

    def all_of(self, events: Iterable[Event]) -> Event:
        """Return an event that triggers once every input has triggered."""
        events = list(events)
        combined = Event(self, name="all_of")
        remaining = [len(events)]
        results: List[Any] = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def watcher(i: int, ev: Event) -> Generator:
            results[i] = yield ev
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.trigger(list(results))

        for i, ev in enumerate(events):
            self.spawn(watcher(i, ev), name=f"all_of[{i}]")
        return combined
