"""Discrete-event simulation engine.

Every hardware and software component in the Flick reproduction runs on
this engine: cores, the PCIe link, the DMA controller, the OS scheduler,
and the migration handlers are all :class:`Process` coroutines that
advance a shared simulated clock (in **nanoseconds**).

The engine is deliberately small and dependency-free.  Processes are
plain Python generators that ``yield`` one of:

* ``sim.timeout(dt)`` — suspend for ``dt`` simulated nanoseconds,
* an :class:`Event` — suspend until someone calls ``event.trigger(value)``;
  the ``yield`` expression evaluates to ``value``,
* another :class:`Process` — suspend until that process finishes; the
  ``yield`` expression evaluates to its return value.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, ev):
...     yield sim.timeout(10)
...     ev.trigger("pong")
>>> def ponger(sim, ev):
...     value = yield ev
...     return (sim.now, value)
>>> ev = Event(sim)
>>> sim.spawn(pinger(sim, ev))        # doctest: +ELLIPSIS
<Process ...>
>>> p = sim.spawn(ponger(sim, ev))
>>> sim.run()
>>> p.value
(10.0, 'pong')
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Channel",
    "SimulationError",
    "Deadlock",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class Deadlock(SimulationError):
    """Raised by :meth:`Simulator.run` when ``until`` was given but the
    event queue drained before reaching it and live processes remain."""


class Timeout:
    """A pending delay; created via :meth:`Simulator.timeout`."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot level-triggered event carrying an optional value.

    Processes that ``yield`` an event before it triggers are resumed when
    it triggers.  Processes that ``yield`` an already-triggered event
    resume immediately (same simulated time) with the stored value.
    """

    __slots__ = ("sim", "name", "_triggered", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current sim time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc._resume, value)

    def reset(self) -> None:
        """Re-arm a triggered event so it can be triggered again.

        Only legal when no process is currently waiting on it.
        """
        if self._waiters:
            raise SimulationError(f"cannot reset event {self.name!r}: has waiters")
        self._triggered = False
        self._value = None

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.sim._schedule(0.0, proc._resume, self._value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.spawn`.  A process finishes when its
    generator returns; the return value is stored in :attr:`value` and
    any processes waiting on it are resumed with that value.  An uncaught
    exception inside a process aborts the whole simulation (it is
    re-raised out of :meth:`Simulator.run`), because silent process death
    hides protocol bugs.
    """

    __slots__ = ("sim", "gen", "name", "alive", "value", "_waiters")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self._waiters: List["Process"] = []

    def _resume(self, send_value: Any = None) -> None:
        if not self.alive:
            return
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self.sim._schedule(target.delay, self._resume, None)
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, Process):
            if target.alive:
                target._waiters.append(self)
            else:
                self.sim._schedule(0.0, self._resume, target.value)
        elif target is None:
            # Bare ``yield`` — cooperative re-schedule at the same time.
            self.sim._schedule(0.0, self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {target!r}"
            )

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self.sim._live_processes -= 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc._resume, value)

    def kill(self) -> None:
        """Terminate the process without resuming it again."""
        if self.alive:
            self.alive = False
            self.sim._live_processes -= 1
            self.gen.close()
            waiters, self._waiters = self._waiters, []
            for proc in waiters:
                self.sim._schedule(0.0, proc._resume, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Channel:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an object to ``yield`` on that
    completes with the next item (immediately, at the current simulated
    time, if an item is already queued).
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.trigger(self._items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class Simulator:
    """The event loop and simulated clock (nanosecond granularity)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._seq = itertools.count()
        self._live_processes = 0
        self._error: Optional[BaseException] = None

    # -- process / primitive construction ---------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting it at ``now``."""
        proc = Process(self, gen, name=name)
        self._live_processes += 1
        self._schedule(0.0, proc._resume, None)
        return proc

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def channel(self, name: str = "") -> Channel:
        return Channel(self, name=name)

    # -- scheduling core ---------------------------------------------------

    def _schedule(self, delay: float, callback: Callable, arg: Any) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), callback, arg))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or ``until`` ns is reached.

        Raises :class:`Deadlock` if ``until`` was requested but every
        process went idle before that time (usually a lost wakeup).
        Re-raises the first uncaught exception from any process.
        """
        while self._queue:
            at, _seq, callback, arg = self._queue[0]
            if until is not None and at > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = at
            try:
                callback(arg)
            except SimulationError:
                raise
            except BaseException as exc:
                raise SimulationError(
                    f"uncaught exception in simulated process at t={self.now}ns"
                ) from exc
        if until is not None:
            if self._live_processes > 0:
                raise Deadlock(
                    f"{self._live_processes} live process(es) idle at t={self.now}ns "
                    f"before until={until}ns"
                )
            self.now = until

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its value."""
        proc = self.spawn(gen, name=name)
        self.run()
        if proc.alive:
            raise Deadlock(f"process {proc.name!r} never finished")
        return proc.value

    def all_of(self, events: Iterable[Event]) -> Event:
        """Return an event that triggers once every input has triggered."""
        events = list(events)
        combined = Event(self, name="all_of")
        remaining = [len(events)]
        results: List[Any] = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def watcher(i: int, ev: Event) -> Generator:
            results[i] = yield ev
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.trigger(list(results))

        for i, ev in enumerate(events):
            self.spawn(watcher(i, ev), name=f"all_of[{i}]")
        return combined
