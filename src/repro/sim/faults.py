"""Deterministic, seeded fault injection for the simulated machine.

The migration path the paper measures (NX fault → descriptor → DMA →
IRQ → NxP execute → return IRQ) is exactly the path a real deployment
must survive when the PCIe-attached device misbehaves.  This module is
the *source* of that misbehaviour: a :class:`FaultPlan` arms typed
injection points inside the interconnect and the NxP scheduler, and a
:class:`FaultInjector` (one per machine) decides — fully
deterministically — which protocol events each rule hits.

Fault taxonomy (see docs/ROBUSTNESS.md for the injection-point map):

==============  ====================================================
``dma_drop``    A descriptor burst occupies the wire but is never
                delivered: no ring slot claimed, no arrival signal.
``dma_corrupt`` The burst delivers, but bytes in the landed
                descriptor are flipped (caught by the checksum).
``dma_delay``   Extra ``delay_ns`` of latency before the burst.
``irq_loss``    The NxP→host descriptor lands but the migration
                interrupt is never raised.
``irq_spurious`` An extra migration interrupt with no new descriptor.
``pcie_flap``   The link goes down for ``down_ns``; traffic queues.
``nxp_hang``    The NxP scheduler stalls: ``delay_ns`` > 0 stalls
                transiently (dropping the in-flight descriptor),
                ``delay_ns`` == 0 parks it forever (a dead device).
``nxp_crash``   The NxP scheduler halts permanently at dispatch.
==============  ====================================================

Determinism guarantee
---------------------

A rule fires as a pure function of *(plan seed, rule index, eligible
occurrence count, sim time)*:

* each rule counts its own *eligible occurrences* (events matching its
  site/direction with ``sim.now >= after_ns``) and fires from the
  ``nth`` one, at most ``count`` times (``count=None`` = unlimited);
* probabilistic rules draw from a private ``random.Random`` seeded from
  ``(seed, rule index)`` — independent of every other rule and of any
  global RNG state;
* no wall-clock input exists anywhere in the pipeline.

Re-running the same plan against the same workload therefore replays
the exact same faults at the exact same simulated instants.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence

__all__ = ["FaultRule", "FaultPlan", "FaultInjector", "FAULT_KINDS", "builtin_plans"]

#: kind -> injection site (the subsystem that pulls the rule).
FAULT_KINDS: Dict[str, str] = {
    "dma_drop": "dma",
    "dma_corrupt": "dma",
    "dma_delay": "dma",
    "irq_loss": "irq",
    "irq_spurious": "irq",
    "pcie_flap": "pcie",
    "nxp_hang": "nxp",
    "nxp_crash": "nxp",
}


@dataclass(frozen=True)
class FaultRule:
    """One armed injection point.

    ``direction`` filters DMA/IRQ rules to one transfer direction
    (``"h2n"`` or ``"n2h"``; ``None`` matches both).  ``after_ns``
    gates eligibility on simulated time.  ``nth``/``count`` select the
    occurrence window (1-based, consecutive); ``probability`` makes the
    in-window firings stochastic under the rule's private seeded RNG.
    """

    kind: str
    direction: Optional[str] = None
    after_ns: float = 0.0
    nth: int = 1
    count: Optional[int] = 1
    probability: Optional[float] = None
    delay_ns: float = 0.0
    down_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {sorted(FAULT_KINDS)})")
        if self.direction not in (None, "h2n", "n2h"):
            raise ValueError(f"bad fault direction {self.direction!r}")
        if self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got {self.count}")

    @property
    def site(self) -> str:
        return FAULT_KINDS[self.kind]

    def to_dict(self) -> Dict:
        d = asdict(self)
        return {k: v for k, v in d.items() if v != FaultRule.__dataclass_fields__[k].default}

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultRule":
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules — one chaos scenario."""

    rules: tuple = ()
    seed: int = 0
    name: str = ""

    def apply(self, cfg):
        """Return ``cfg`` with this plan armed (``faults``/``fault_seed``)."""
        return cfg.with_overrides(faults=tuple(self.rules), fault_seed=self.seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- JSON I/O ----------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        doc = {
            "schema": "flick.fault_plan.v1",
            "name": self.name,
            "seed": self.seed,
            "rules": [r.to_dict() for r in self.rules],
        }
        return json.dumps(doc, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if doc.get("schema", "flick.fault_plan.v1") != "flick.fault_plan.v1":
            raise ValueError(f"unknown fault-plan schema {doc.get('schema')!r}")
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in doc.get("rules", [])),
            seed=int(doc.get("seed", 0)),
            name=str(doc.get("name", "")),
        )


class _ArmedRule:
    """Per-run firing state of one rule (occurrence + firing counters)."""

    __slots__ = ("rule", "rng", "occurrences", "fired")

    def __init__(self, rule: FaultRule, seed: int, index: int):
        self.rule = rule
        # Integer-derived seed: str hashing is process-randomized, so a
        # composite int keeps rule RNGs reproducible across processes.
        self.rng = random.Random((seed << 20) ^ (index * 0x9E3779B1))
        self.occurrences = 0
        self.fired = 0

    def pull(self, site: str, direction: Optional[str], now: float) -> bool:
        rule = self.rule
        if rule.site != site:
            return False
        if rule.direction is not None and direction is not None and rule.direction != direction:
            return False
        if now < rule.after_ns:
            return False
        self.occurrences += 1
        if self.occurrences < rule.nth:
            return False
        if rule.count is not None and self.fired >= rule.count:
            return False
        if rule.probability is not None and self.rng.random() >= rule.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """The per-machine oracle every injection point consults.

    Constructed only when ``FlickConfig.faults`` is non-empty, so a
    faults-off machine carries no injector at all and executes the
    exact pre-hardening code paths (the parity contract).
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0, sim=None, stats=None, trace=None):
        self.sim = sim
        self.stats = stats
        self.trace = trace
        self.seed = seed
        self._armed = [_ArmedRule(r, seed, i) for i, r in enumerate(rules)]
        self.fired_total = 0

    def pull(self, site: str, direction: Optional[str] = None) -> List[FaultRule]:
        """Report one eligible protocol event at ``site``; returns the
        rules that fire on it (possibly several, e.g. delay + corrupt)."""
        now = self.sim.now if self.sim is not None else 0.0
        fired: List[FaultRule] = []
        for armed in self._armed:
            if armed.pull(site, direction, now):
                fired.append(armed.rule)
                self.fired_total += 1
                if self.stats is not None:
                    self.stats.count(f"fault.{armed.rule.kind}")
                if self.trace is not None:
                    self.trace.record(
                        "fault_inject", kind=armed.rule.kind, site=site,
                        direction=direction or "",
                    )
        return fired

    def corrupt_offset(self, rule: FaultRule, nbytes: int) -> int:
        """Deterministic byte offset a ``dma_corrupt`` firing flips."""
        for armed in self._armed:
            if armed.rule is rule:
                return armed.rng.randrange(nbytes)
        return 0


def builtin_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """The seeded chaos matrix (docs/ROBUSTNESS.md, `repro chaos`).

    Each plan exercises one recovery mechanism; ``nxp-hang`` and
    ``nxp-crash`` are the permanent-death scenarios that must end in
    host-fallback degradation with correct results.
    """

    def plan(name: str, *rules: FaultRule) -> FaultPlan:
        return FaultPlan(rules=tuple(rules), seed=seed, name=name)

    return {
        "none": plan("none"),
        "dma-drop-h2n": plan("dma-drop-h2n", FaultRule("dma_drop", direction="h2n", nth=2)),
        "dma-drop-n2h": plan("dma-drop-n2h", FaultRule("dma_drop", direction="n2h", nth=1)),
        "dma-corrupt-h2n": plan("dma-corrupt-h2n", FaultRule("dma_corrupt", direction="h2n", nth=1)),
        "dma-corrupt-n2h": plan("dma-corrupt-n2h", FaultRule("dma_corrupt", direction="n2h", nth=2)),
        "dma-delay-h2n": plan(
            "dma-delay-h2n", FaultRule("dma_delay", direction="h2n", nth=1, count=3, delay_ns=40_000.0)
        ),
        "irq-loss": plan("irq-loss", FaultRule("irq_loss", nth=1)),
        "irq-spurious": plan("irq-spurious", FaultRule("irq_spurious", nth=1, count=2)),
        "pcie-flap": plan("pcie-flap", FaultRule("pcie_flap", nth=1, down_ns=100_000.0)),
        "nxp-stall": plan("nxp-stall", FaultRule("nxp_hang", nth=1, delay_ns=80_000.0)),
        "nxp-hang": plan("nxp-hang", FaultRule("nxp_hang", nth=1)),
        "nxp-crash": plan("nxp-crash", FaultRule("nxp_crash", nth=1)),
        "lossy-link": plan(
            "lossy-link",
            FaultRule("dma_drop", direction="h2n", nth=1, count=2),
            FaultRule("irq_loss", nth=2),
            FaultRule("pcie_flap", nth=3, down_ns=50_000.0),
        ),
        # Overload storm: every DMA burst has a coin-flip chance of an
        # extra 60 us of latency, forever.  Under deadlines + admission
        # control this is the typed-shed scenario; without them every
        # leg still completes (watchdogs outwait the delays).
        "overload-storm": plan(
            "overload-storm",
            FaultRule("dma_delay", nth=1, count=None, probability=0.5, delay_ns=60_000.0),
        ),
        # Flapping device: the NxP scheduler stalls transiently four
        # times in a row, dropping each in-flight descriptor.  The
        # breaker's re-trip/quarantine path is driven by this shape.
        "flapping-device": plan(
            "flapping-device",
            FaultRule("nxp_hang", nth=1, count=4, delay_ns=60_000.0),
        ),
    }
