"""Typed metric families for the simulated machine (docs/OBSERVABILITY.md).

Four families, all pure observation (recording a metric never touches
the DES clock — the invariance contract pinned by
``tests/core/test_metrics_parity.py``):

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — a point-in-time value (queue depths, utilization);
* :class:`Accumulator` — exact running ``count/total/min/max`` plus a
  **bounded reservoir** of samples for quantile estimates, so a
  million-access hosted sweep no longer accumulates a million-entry
  Python list;
* :class:`Histogram` — deterministic log2 buckets over integer
  simulated nanoseconds: O(1) memory, exact ``count/sum/min/max``,
  quantile *estimates* from the bucket boundaries.

:class:`StatRegistry` owns one dict per family.  Counters and
accumulators are always on (they are part of every run's
``outcome.stats`` and of the fast-path parity contracts); gauges and
histograms are the *metrics layer* and honor
:attr:`StatRegistry.metrics_enabled` (``FlickConfig.metrics``), so a
metrics-off run carries zero extra state.

Quantile helpers: :func:`percentile` is the historical nearest-rank
estimator; :func:`quantile` adds the linearly-interpolated method (the
same convention as ``numpy.percentile(..., method="linear")``).  Both
return ``nan`` for an empty sequence — a report over an idle device
must never throw mid-render.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Accumulator",
    "Histogram",
    "StatRegistry",
    "mean",
    "percentile",
    "quantile",
]

#: Default bounded-reservoir size for :class:`Accumulator`.  4096 floats
#: keep quantile estimates tight while bounding a 100k+-sample sweep's
#: memory to a few tens of kilobytes per accumulator.
RESERVOIR_SIZE = 4096

_NAN = float("nan")


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; ``nan`` for an empty sequence."""
    values = list(values)
    if not values:
        return _NAN
    return sum(values) / len(values)


def _check_pct(pct: float) -> None:
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")


def percentile(values: Iterable[float], pct: float) -> float:
    """Nearest-rank percentile; ``pct`` in [0, 100]; ``nan`` if empty.

    Nearest-rank always returns an actual sample: ``pct=0`` is the
    minimum, ``pct=100`` the maximum, and any ``pct`` in between the
    smallest sample whose cumulative frequency reaches ``pct``.
    """
    _check_pct(pct)
    values = sorted(values)
    if not values:
        return _NAN
    if pct == 0:
        return values[0]
    rank = math.ceil(pct / 100.0 * len(values))
    return values[rank - 1]


def quantile(values: Iterable[float], pct: float, method: str = "linear") -> float:
    """Quantile estimate; ``pct`` in [0, 100]; ``nan`` if empty.

    ``method="nearest"`` is :func:`percentile` (always a real sample);
    ``method="linear"`` interpolates between the two straddling order
    statistics at fractional rank ``(n - 1) * pct / 100`` — the usual
    plotting/NumPy convention.  Both agree at ``pct=0`` / ``pct=100``
    and on single-sample inputs (property-tested against sorted-list
    oracles in ``tests/sim/test_histogram.py``).
    """
    _check_pct(pct)
    if method == "nearest":
        return percentile(values, pct)
    if method != "linear":
        raise ValueError(f"unknown quantile method {method!r}")
    values = sorted(values)
    if not values:
        return _NAN
    rank = (len(values) - 1) * pct / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return values[lo]
    frac = rank - lo
    # lo + frac*(hi-lo) form: exact when the straddling samples tie
    return values[lo] + frac * (values[hi] - values[lo])


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


@dataclass
class Gauge:
    """A named point-in-time value (may move either way)."""

    name: str
    value: float = 0.0
    #: high-water mark since creation, for one-line summaries
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Accumulator:
    """Exact running aggregates plus a bounded sample reservoir.

    ``count``, ``total``, ``min`` and ``max`` are exact whatever the
    sample volume; ``samples`` holds at most ``reservoir`` entries —
    uniform reservoir sampling driven by a **deterministically seeded**
    RNG, so two runs that feed identical sample sequences keep identical
    reservoirs (required by the bit-identical parity contracts, which
    compare quantile estimates derived from it).

    Empty-state behaviour: ``mean``/``min``/``max``/``percentile`` return
    ``nan`` instead of raising, so snapshotting an idle device is safe.
    """

    __slots__ = ("name", "samples", "reservoir", "_count", "_total", "_min", "_max", "_rng")

    def __init__(self, name: str, reservoir: int = RESERVOIR_SIZE):
        self.name = name
        self.reservoir = reservoir
        self.samples: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Seeded per-accumulator: replacement decisions depend only on
        # the number of prior samples, never on global RNG state.
        self._rng = random.Random(0x5EED ^ (len(name) << 8))

    def add(self, sample: float) -> None:
        self._count += 1
        self._total += sample
        if sample < self._min:
            self._min = sample
        if sample > self._max:
            self._max = sample
        if len(self.samples) < self.reservoir:
            self.samples.append(sample)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir:
                self.samples[slot] = sample

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else _NAN

    @property
    def min(self) -> float:
        return self._min if self._count else _NAN

    @property
    def max(self) -> float:
        return self._max if self._count else _NAN

    def percentile(self, pct: float, method: str = "linear") -> float:
        """Quantile estimate from the reservoir (exact while the sample
        count is within the reservoir bound); ``nan`` when empty."""
        return quantile(self.samples, pct, method=method)


class Histogram:
    """Fixed log2 buckets over integer simulated nanoseconds.

    Bucket ``k`` covers ``(2**(k-1), 2**k]`` (bucket 0 covers
    ``[0, 1]``), so bucketing is deterministic, needs no configuration,
    and spans twelve orders of magnitude in ~40 buckets.  ``count``,
    ``sum``, ``min`` and ``max`` are exact; quantiles are *estimates*
    interpolated inside the straddling bucket and clamped to the exact
    min/max.  Memory is O(buckets touched), never O(samples).
    """

    __slots__ = ("name", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str):
        self.name = name
        self._buckets: Dict[int, int] = {}  # exponent -> count
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @staticmethod
    def bucket_exponent(value: float) -> int:
        """The exponent ``k`` whose bucket ``(2**(k-1), 2**k]`` holds
        ``value`` (values are clamped below at 0)."""
        n = math.ceil(value)
        if n <= 1:
            return 0
        return (int(n) - 1).bit_length()

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        exp = self.bucket_exponent(value)
        self._buckets[exp] = self._buckets.get(exp, 0) + 1

    # -- exact aggregates -----------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else _NAN

    @property
    def max(self) -> float:
        return self._max if self._count else _NAN

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else _NAN

    # -- buckets / quantiles --------------------------------------------------

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative bucket counts as ``(le, cumulative)`` pairs in
        increasing ``le`` order — the OpenMetrics histogram shape.  The
        implicit final ``(+Inf, count)`` pair is appended by exporters.
        """
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for exp in sorted(self._buckets):
            cumulative += self._buckets[exp]
            out.append((float(2 ** exp), cumulative))
        return out

    def quantile(self, pct: float) -> float:
        """Estimated ``pct``-quantile: locate the straddling bucket by
        cumulative count, interpolate linearly inside it, clamp to the
        exact observed ``[min, max]``.  ``nan`` when empty."""
        _check_pct(pct)
        if not self._count:
            return _NAN
        target = pct / 100.0 * self._count
        cumulative = 0
        for exp in sorted(self._buckets):
            n = self._buckets[exp]
            if cumulative + n >= target:
                hi = float(2 ** exp)
                lo = 0.0 if exp == 0 else float(2 ** (exp - 1))
                frac = (target - cumulative) / n if n else 0.0
                est = lo + frac * (hi - lo)
                return min(max(est, self._min), self._max)
            cumulative += n
        return self._max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (used to
        aggregate per-pid histograms into machine-wide ones)."""
        if not other._count:
            return
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        for exp, n in other._buckets.items():
            self._buckets[exp] = self._buckets.get(exp, 0) + n


#: snapshot suffixes that only ever grow — the keys :meth:`StatRegistry.delta`
#: operates on (means/extrema/quantiles can move both ways and are
#: therefore excluded from deltas by design).
_MONOTONE_ACC_SUFFIXES = (".count", ".total")
_MONOTONE_HIST_SUFFIXES = (".count", ".sum")


class StatRegistry:
    """Shared registry of typed metric families for one simulated machine.

    Components grab their metrics lazily so tests can introspect
    behaviour (e.g. TLB miss counts, DMA transfers, migration counts)
    without plumbing objects everywhere.

    Two tiers:

    * **base** — counters and accumulators: always recorded, part of
      every ``outcome.stats`` and of the fast-path/batching parity
      contracts;
    * **metrics** — gauges and histograms: the observability layer,
      gated by :attr:`metrics_enabled` (``FlickConfig.metrics``).  When
      disabled, :meth:`observe` and :meth:`set_gauge` are no-ops and
      register nothing, so the snapshot of a metrics-off run contains
      exactly the base tier.
    """

    def __init__(self, metrics_enabled: bool = True) -> None:
        self.metrics_enabled = metrics_enabled
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.accumulators: Dict[str, Accumulator] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- family accessors -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(name)
        return self.accumulators[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    # -- recording ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).add(n)

    def sample(self, name: str, value: float) -> None:
        self.accumulator(name).add(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op when metrics are off)."""
        if self.metrics_enabled:
            self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op when metrics are off)."""
        if self.metrics_enabled:
            self.gauge(name).set(value)

    def get(self, name: str, default: int = 0) -> int:
        c = self.counters.get(name)
        return c.value if c else default

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every family to a ``{key: number}`` dict.

        Backward-compatible keys are preserved (counter names bare,
        accumulators as ``name.mean`` / ``name.count``); the richer
        layer adds ``name.total/.min/.max/.p50/.p99`` for accumulators,
        gauge names bare, and ``name.count/.sum/.min/.max/.p50/.p99``
        for histograms.  Empty accumulators/histograms are skipped, so
        a snapshot never contains ``nan``.
        """
        out: Dict[str, float] = {k: c.value for k, c in self.counters.items()}
        for k, a in self.accumulators.items():
            if a.count:
                out[f"{k}.mean"] = a.mean
                out[f"{k}.count"] = a.count
                out[f"{k}.total"] = a.total
                out[f"{k}.min"] = a.min
                out[f"{k}.max"] = a.max
                out[f"{k}.p50"] = a.percentile(50)
                out[f"{k}.p99"] = a.percentile(99)
        for k, g in self.gauges.items():
            out[k] = g.value
            out[f"{k}.max"] = g.max_value
        for k, h in self.histograms.items():
            if h.count:
                out[f"{k}.count"] = h.count
                out[f"{k}.sum"] = h.sum
                out[f"{k}.min"] = h.min
                out[f"{k}.max"] = h.max
                out[f"{k}.p50"] = h.quantile(50)
                out[f"{k}.p99"] = h.quantile(99)
        return out

    def base_snapshot(self) -> Dict[str, float]:
        """The metrics-toggle-invariant portion of :meth:`snapshot`:
        counters and accumulator-derived keys only.  This is the dict
        the metrics on/off parity test compares bit-for-bit."""
        out: Dict[str, float] = {k: c.value for k, c in self.counters.items()}
        for k, a in self.accumulators.items():
            if a.count:
                out[f"{k}.mean"] = a.mean
                out[f"{k}.count"] = a.count
                out[f"{k}.total"] = a.total
                out[f"{k}.min"] = a.min
                out[f"{k}.max"] = a.max
                out[f"{k}.p50"] = a.percentile(50)
                out[f"{k}.p99"] = a.percentile(99)
        return out

    def _monotone_keys(self) -> Dict[str, float]:
        """Current values of every *monotone* snapshot key: counter
        values, accumulator ``.count``/``.total``, histogram
        ``.count``/``.sum``.  These only ever grow, so differences are
        guaranteed non-negative."""
        out: Dict[str, float] = {k: c.value for k, c in self.counters.items()}
        for k, a in self.accumulators.items():
            if a.count:
                out[f"{k}.count"] = a.count
                out[f"{k}.total"] = a.total
        for k, h in self.histograms.items():
            if h.count:
                out[f"{k}.count"] = h.count
                out[f"{k}.sum"] = h.sum
        return out

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Change in every **monotone** stat relative to an earlier
        :meth:`snapshot` (or :meth:`delta`-compatible dict).

        Semantics (deliberate, see docs/OBSERVABILITY.md): deltas are
        computed over counters and over accumulator/histogram
        ``.count``/``.total``/``.sum`` keys *only*.  Means, extrema and
        quantiles are excluded — a ``.mean`` can move down between two
        snapshots (or change while rounding to an equal repr), so
        "delta of a mean" is not a meaningful phase measurement; derive
        a phase mean as ``delta total / delta count`` instead.  Keys
        absent from ``since`` count from zero; zero-change entries are
        dropped so the result reads as "what this phase did"; every
        reported value is >= 0 by construction.
        """
        out = {}
        for k, v in self._monotone_keys().items():
            change = v - since.get(k, 0.0)
            if change:
                out[k] = change
        return out
