"""Lightweight statistics helpers used by benchmarks and workloads."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["Counter", "Accumulator", "StatRegistry", "mean", "percentile"]


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Iterable[float], pct: float) -> float:
    """Nearest-rank percentile; ``pct`` in [0, 100]."""
    values = sorted(values)
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")
    if pct == 0:
        return values[0]
    rank = math.ceil(pct / 100.0 * len(values))
    return values[rank - 1]


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


@dataclass
class Accumulator:
    """Accumulates samples; exposes count/total/mean/min/max."""

    name: str
    samples: List[float] = field(default_factory=list)

    def add(self, sample: float) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)


class StatRegistry:
    """Shared registry of counters/accumulators for one simulated machine.

    Components grab their counters lazily so tests can introspect
    behaviour (e.g. TLB miss counts, DMA transfers, migration counts)
    without plumbing objects everywhere.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.accumulators: Dict[str, Accumulator] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(name)
        return self.accumulators[name]

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).add(n)

    def sample(self, name: str, value: float) -> None:
        self.accumulator(name).add(value)

    def get(self, name: str, default: int = 0) -> int:
        c = self.counters.get(name)
        return c.value if c else default

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {k: c.value for k, c in self.counters.items()}
        for k, a in self.accumulators.items():
            if a.count:
                out[f"{k}.mean"] = a.mean
                out[f"{k}.count"] = a.count
        return out

    def delta(self, since: Dict[str, float]) -> Dict[str, float]:
        """Change in every stat relative to an earlier :meth:`snapshot`.

        Keys absent from ``since`` count from zero; keys that vanished
        (possible only for accumulator-derived entries) are omitted.
        Zero-change entries are dropped so the result reads as "what
        this phase did".
        """
        now = self.snapshot()
        out = {
            k: v - since.get(k, 0.0) for k, v in now.items() if v != since.get(k, 0.0)
        }
        return out
