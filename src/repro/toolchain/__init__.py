"""Multi-ISA toolchain: FlickC compiler, FELF format, linker, loader."""

from repro.toolchain.felf import (
    Executable,
    FelfError,
    ObjectFile,
    SECTION_ISA,
    SECTION_PLACEMENT,
    Section,
    Segment,
)
from repro.toolchain.flickc import compile_source, partition
from repro.toolchain.linker import LinkError, LinkerScript, RUNTIME_STUB_SYMBOLS, link

__all__ = [
    "ObjectFile",
    "Section",
    "Segment",
    "Executable",
    "FelfError",
    "SECTION_ISA",
    "SECTION_PLACEMENT",
    "compile_source",
    "partition",
    "link",
    "LinkerScript",
    "LinkError",
    "RUNTIME_STUB_SYMBOLS",
]
