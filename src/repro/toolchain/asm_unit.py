"""Assembly translation units: hand-written dual-ISA code into FELF.

The paper's toolchain accepts compiler output *and* hand-written
assembly per ISA.  This module is the `.s`-file path: it assembles
per-ISA source into the correct FELF sections, exporting labels as
global symbols, so assembly units can be linked together with FlickC
objects (or each other) into multi-ISA executables.

Example
-------
>>> from repro.toolchain.asm_unit import assemble_unit
>>> obj = assemble_unit(
...     hisa_source='''
...     main:
...         li rdi, 21
...         la r10, dev_double
...         call r10
...         ret
...     ''',
...     nisa_source='''
...     dev_double:
...         add a0, a0, a0
...         ret
...     ''',
... )
>>> sorted(obj.defined_symbols())
['dev_double', 'main']
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Optional, Tuple

from repro.isa.assembler import parse
from repro.isa import hisa, nisa
from repro.toolchain.felf import ObjectFile

__all__ = ["assemble_unit", "add_data_symbols"]


def assemble_unit(
    hisa_source: str = "",
    nisa_source: str = "",
    name: str = "asm_unit",
    data: Optional[Dict[str, int]] = None,
    nxp_data: Optional[Dict[str, int]] = None,
) -> ObjectFile:
    """Assemble per-ISA sources into one multi-ISA object file.

    Every label becomes a global symbol (assembly units are small; a
    ``.local`` directive is not worth the complexity).  ``data`` /
    ``nxp_data`` create 8-byte initialized globals with the given
    placement.
    """
    obj = ObjectFile(name)

    for source, isa_name, encode_program in (
        (hisa_source, "hisa", hisa.encode_program),
        (nisa_source, "nisa", nisa.encode_program),
    ):
        if not source.strip():
            continue
        insts = parse(source, isa_name)
        code, relocs, labels = encode_program(insts)
        section = obj.section(f".text.{isa_name}")
        section.data += code
        section.relocations.extend(relocs)
        for label, offset in labels.items():
            section.add_symbol(label, offset)

    add_data_symbols(obj, ".data", data or {})
    add_data_symbols(obj, ".data.nxp", nxp_data or {})
    return obj


def add_data_symbols(obj: ObjectFile, section_name: str, values: Dict[str, int]) -> None:
    """Append 8-byte globals to a data section of ``obj``."""
    if not values:
        return
    section = obj.section(section_name)
    for symbol, value in values.items():
        offset = len(section.data)
        section.data += struct.pack("<q", value)
        section.add_symbol(symbol, offset)
