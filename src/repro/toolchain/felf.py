"""FELF — the Flick multi-ISA object/executable format (Section IV-C).

Mirrors the paper's toolchain decisions:

* per-ISA text sections carry the target ISA in their *name*
  (``.text.hisa`` / ``.text.nisa``, like the paper's ``.text.riscv``),
  which is how the linker picks relocation functions and how the loader
  decides which pages get the NX bit;
* data sections carry a *placement* ("host" or "nxp") so the loader can
  put annotated NxP-local data into the device DRAM (Section III-D);
* one executable holds code for every ISA in a single shared virtual
  address space — internal references may freely cross ISA boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.base import Relocation

__all__ = [
    "Section",
    "ObjectFile",
    "Segment",
    "Executable",
    "SECTION_ISA",
    "SECTION_PLACEMENT",
    "FelfError",
]


class FelfError(Exception):
    """Malformed object/executable or symbol errors."""


#: Section name -> executing ISA (None: not executable).
SECTION_ISA = {
    ".text.hisa": "hisa",
    ".text.nisa": "nisa",
}

#: Section name -> memory placement (Section III-D policy).
SECTION_PLACEMENT = {
    ".text.hisa": "host",   # host code in host DRAM
    ".text.nisa": "host",   # NxP code *also* in host DRAM (I-cache covers it)
    ".rodata": "host",
    ".data": "host",        # coherence requires host placement over PCIe
    ".bss": "host",
    ".data.nxp": "nxp",     # annotated NxP-local data
    ".bss.nxp": "nxp",
}


@dataclass
class Section:
    """One named section inside an object file."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    align: int = 16
    relocations: List[Relocation] = field(default_factory=list)
    # symbol name -> offset within this section
    symbols: Dict[str, int] = field(default_factory=dict)
    bss_size: int = 0  # for .bss-style sections: zero-filled size

    @property
    def isa(self) -> Optional[str]:
        return SECTION_ISA.get(self.name)

    @property
    def placement(self) -> str:
        placement = SECTION_PLACEMENT.get(self.name)
        if placement is None:
            raise FelfError(f"unknown section {self.name!r}")
        return placement

    @property
    def size(self) -> int:
        return len(self.data) + self.bss_size

    def add_symbol(self, name: str, offset: int) -> None:
        if name in self.symbols:
            raise FelfError(f"duplicate symbol {name!r} in {self.name}")
        self.symbols[name] = offset


@dataclass
class ObjectFile:
    """The output of compiling one translation unit (all ISAs together)."""

    name: str
    sections: Dict[str, Section] = field(default_factory=dict)

    def section(self, name: str) -> Section:
        if name not in SECTION_PLACEMENT:
            raise FelfError(f"unknown section name {name!r}")
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def defined_symbols(self) -> Dict[str, str]:
        """symbol -> section name, checking for duplicates across sections."""
        out: Dict[str, str] = {}
        for section in self.sections.values():
            for sym in section.symbols:
                if sym in out:
                    raise FelfError(f"symbol {sym!r} defined twice in {self.name}")
                out[sym] = section.name
        return out


@dataclass(frozen=True)
class Segment:
    """A loadable piece of the executable."""

    section_name: str
    vaddr: int
    data: bytes
    bss_size: int
    isa: Optional[str]       # executing ISA, or None for data
    placement: str           # "host" | "nxp"
    writable: bool

    @property
    def size(self) -> int:
        return len(self.data) + self.bss_size


@dataclass
class Executable:
    """A linked multi-ISA executable: one address space, many ISAs."""

    entry_symbol: str
    segments: List[Segment]
    symbols: Dict[str, int]           # global symbol -> absolute vaddr
    isa_of_symbol: Dict[str, Optional[str]]

    @property
    def entry(self) -> int:
        return self.symbols[self.entry_symbol]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise FelfError(f"undefined symbol {name!r}") from None

    def segment_named(self, section_name: str) -> Segment:
        for seg in self.segments:
            if seg.section_name == section_name:
                return seg
        raise FelfError(f"no segment for section {section_name!r}")

    def isa_at(self, vaddr: int) -> Optional[str]:
        for seg in self.segments:
            if seg.vaddr <= vaddr < seg.vaddr + seg.size:
                return seg.isa
        return None
