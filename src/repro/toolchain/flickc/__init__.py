"""FlickC: a small C-like language with per-function ISA annotations.

This is the reproduction's stand-in for the paper's annotated-C flow
(Section IV-C1): the developer marks functions ``@nxp`` (or ``@host``,
the default); the toolchain partitions the program, compiles each part
with the matching ISA backend, and links the results into one multi-ISA
executable.  No migration code is ever inserted — migration happens at
runtime through NX page faults.
"""

from repro.toolchain.flickc.driver import compile_source, partition
from repro.toolchain.flickc.lexer import LexError, tokenize
from repro.toolchain.flickc.parser import ParseError, parse_program
from repro.toolchain.flickc.codegen import CodegenError

__all__ = [
    "compile_source",
    "partition",
    "tokenize",
    "parse_program",
    "LexError",
    "ParseError",
    "CodegenError",
]
