"""FlickC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "Program",
    "FuncDecl",
    "GlobalVar",
    "Block",
    "VarDecl",
    "Assign",
    "If",
    "While",
    "Return",
    "ExprStmt",
    "IntLit",
    "VarRef",
    "BinOp",
    "UnOp",
    "Call",
    "CallPtr",
    "AddrOf",
]


# -- expressions ---------------------------------------------------------------


@dataclass
class IntLit:
    value: int


@dataclass
class VarRef:
    name: str


@dataclass
class BinOp:
    op: str  # + - * / % == != < <= > >= && ||
    left: object
    right: object


@dataclass
class UnOp:
    op: str  # - !
    operand: object


@dataclass
class Call:
    name: str
    args: List[object]


@dataclass
class CallPtr:
    """Indirect call through a function pointer: ``call_ptr(fp, ...)``."""

    target: object
    args: List[object]


@dataclass
class AddrOf:
    """``&name`` — address of a function or global variable."""

    name: str


# -- statements -----------------------------------------------------------------


@dataclass
class Block:
    statements: List[object] = field(default_factory=list)


@dataclass
class VarDecl:
    name: str
    init: object


@dataclass
class Assign:
    name: str
    value: object


@dataclass
class If:
    cond: object
    then: Block
    orelse: Optional[Block]


@dataclass
class While:
    cond: object
    body: Block


@dataclass
class Return:
    value: Optional[object]


@dataclass
class ExprStmt:
    expr: object


# -- top level ---------------------------------------------------------------------


@dataclass
class FuncDecl:
    name: str
    params: List[str]
    body: Block
    isa: str  # "hisa" (default) or "nisa" (@nxp)
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    init: int
    placement: str  # "host" (default) or "nxp" (@nxp)
    line: int = 0


@dataclass
class Program:
    functions: List[FuncDecl] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
