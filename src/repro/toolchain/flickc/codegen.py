"""FlickC code generation — one backend per ISA, one shared AST walker.

The walker evaluates expressions into an *accumulator* register and
spills temporaries to the machine stack, so generated code is simple,
obviously correct, and exercises each ISA's real calling convention:

* NISA: acc = ``t0``, secondary = ``t1``, address temp = ``t2``; frame =
  ``[ra][old fp][slots...]`` addressed off ``fp``; args in ``a0..``.
* HISA: acc = ``rax``, secondary = ``rcx``, address temp = ``r10``;
  classic ``push rbp / mov rbp, rsp`` frames; args in ``rdi, rsi, ...``;
  CALL/RET through the stack.

``alloc``/``free`` lower to the per-ISA allocator stubs
(``__host_malloc`` vs ``__nxp_malloc``), reproducing the paper's
"linker relocates allocation calls to the corresponding allocator"
placement rule (Section III-D).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from repro.isa import hisa, nisa
from repro.isa.base import Instruction, Op, Sym
from repro.toolchain.flickc import ast_nodes as A

__all__ = ["CodegenError", "FunctionCodegen", "MAX_ARGS"]

MAX_ARGS = 6  # min(HISA's 6 register args, NISA's 8); descriptors carry 6


class CodegenError(Exception):
    pass


class _Backend:
    """ISA-specific instruction emission primitives."""

    isa: str

    def __init__(self, emit):
        self.emit = emit  # callback appending an Instruction


class _NisaBackend(_Backend):
    isa = "nisa"
    ACC, SEC, TMP = 5, 6, 7  # t0, t1, t2
    FP, SP, RA, ZERO = 8, 2, 1, 0
    ARGS = nisa.NISA_ABI.arg_regs
    RET = nisa.NISA_ABI.ret_reg

    def prologue(self, nslots: int, params: List[str]) -> None:
        frame = 16 + 8 * nslots
        self.emit(Instruction(Op.ADDI, rd=self.SP, rs1=self.SP, imm=-frame))
        self.emit(Instruction(Op.ST, rs1=self.SP, rs2=self.RA, imm=0))
        self.emit(Instruction(Op.ST, rs1=self.SP, rs2=self.FP, imm=8))
        self.emit(Instruction(Op.MOV, rd=self.FP, rs1=self.SP))
        for i, _name in enumerate(params):
            self.emit(Instruction(Op.ST, rs1=self.FP, rs2=self.ARGS[i], imm=16 + 8 * i))

    def epilogue(self, nslots: int) -> None:
        frame = 16 + 8 * nslots
        self.emit(Instruction(Op.MOV, rd=self.SP, rs1=self.FP))
        self.emit(Instruction(Op.LD, rd=self.RA, rs1=self.SP, imm=0))
        self.emit(Instruction(Op.LD, rd=self.FP, rs1=self.SP, imm=8))
        self.emit(Instruction(Op.ADDI, rd=self.SP, rs1=self.SP, imm=frame))
        self.emit(Instruction(Op.RET))

    def load_const(self, value: int) -> None:
        if -(1 << 31) <= value < (1 << 31):
            self.emit(Instruction(Op.LI, rd=self.ACC, imm=value))
        else:
            self.emit(Instruction(Op.LI, rd=self.ACC, imm=value & 0xFFFF_FFFF))
            self.emit(Instruction(Op.LIH, rd=self.ACC, imm=(value >> 32) & 0xFFFF_FFFF))

    def load_symbol_addr(self, sym: str, into_acc: bool = True) -> int:
        reg = self.ACC if into_acc else self.TMP
        self.emit(Instruction(Op.LI, rd=reg, imm=Sym(sym)))
        self.emit(Instruction(Op.LIH, rd=reg, imm=Sym(sym)))
        return reg

    def load_local(self, slot: int) -> None:
        self.emit(Instruction(Op.LD, rd=self.ACC, rs1=self.FP, imm=16 + 8 * slot))

    def store_local(self, slot: int) -> None:
        self.emit(Instruction(Op.ST, rs1=self.FP, rs2=self.ACC, imm=16 + 8 * slot))

    def load_global(self, sym: str) -> None:
        reg = self.load_symbol_addr(sym, into_acc=False)
        self.emit(Instruction(Op.LD, rd=self.ACC, rs1=reg, imm=0))

    def store_global(self, sym: str) -> None:
        reg = self.load_symbol_addr(sym, into_acc=False)
        self.emit(Instruction(Op.ST, rs1=reg, rs2=self.ACC, imm=0))

    def push_acc(self) -> None:
        self.emit(Instruction(Op.ADDI, rd=self.SP, rs1=self.SP, imm=-8))
        self.emit(Instruction(Op.ST, rs1=self.SP, rs2=self.ACC, imm=0))

    def pop_secondary(self) -> None:
        self.emit(Instruction(Op.LD, rd=self.SEC, rs1=self.SP, imm=0))
        self.emit(Instruction(Op.ADDI, rd=self.SP, rs1=self.SP, imm=8))

    def pop_reg(self, reg: int) -> None:
        self.emit(Instruction(Op.LD, rd=reg, rs1=self.SP, imm=0))
        self.emit(Instruction(Op.ADDI, rd=self.SP, rs1=self.SP, imm=8))

    _ALU = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM}

    def binop(self, op: str) -> None:
        """acc = secondary OP acc (lhs was popped into secondary)."""
        a, b, acc = self.SEC, self.ACC, self.ACC
        if op in self._ALU:
            self.emit(Instruction(self._ALU[op], rd=acc, rs1=a, rs2=b))
        elif op == "==":
            self.emit(Instruction(Op.SEQ, rd=acc, rs1=a, rs2=b))
        elif op == "!=":
            self.emit(Instruction(Op.SNE, rd=acc, rs1=a, rs2=b))
        elif op == "<":
            self.emit(Instruction(Op.SLT, rd=acc, rs1=a, rs2=b))
        elif op == ">":
            self.emit(Instruction(Op.SLT, rd=acc, rs1=b, rs2=a))
        elif op == "<=":  # !(b < a)
            self.emit(Instruction(Op.SLT, rd=acc, rs1=b, rs2=a))
            self.emit(Instruction(Op.SEQ, rd=acc, rs1=acc, rs2=self.ZERO))
        elif op == ">=":  # !(a < b)
            self.emit(Instruction(Op.SLT, rd=acc, rs1=a, rs2=b))
            self.emit(Instruction(Op.SEQ, rd=acc, rs1=acc, rs2=self.ZERO))
        else:
            raise CodegenError(f"bad binop {op!r}")

    def neg(self) -> None:
        self.emit(Instruction(Op.SUB, rd=self.ACC, rs1=self.ZERO, rs2=self.ACC))

    def logical_not(self) -> None:
        self.emit(Instruction(Op.SEQ, rd=self.ACC, rs1=self.ACC, rs2=self.ZERO))

    def normalize_bool(self) -> None:
        self.emit(Instruction(Op.SNE, rd=self.ACC, rs1=self.ACC, rs2=self.ZERO))

    def jump_if_false(self, label: str) -> None:
        self.emit(Instruction(Op.BEQ, rs1=self.ACC, rs2=self.ZERO, imm=Sym(label)))

    def jump(self, label: str) -> None:
        self.emit(Instruction(Op.J, imm=Sym(label)))

    def mem_load(self, size: int) -> None:
        op = {8: Op.LD, 4: Op.LW, 1: Op.LBU}[size]
        self.emit(Instruction(op, rd=self.ACC, rs1=self.ACC, imm=0))

    def mem_store(self, size: int) -> None:
        """store acc to [secondary] (address was popped into secondary)."""
        op = {8: Op.ST, 4: Op.SW, 1: Op.SB}[size]
        self.emit(Instruction(op, rs1=self.SEC, rs2=self.ACC, imm=0))

    def pop_args(self, count: int) -> None:
        for i in reversed(range(count)):
            self.pop_reg(self.ARGS[i])

    def call(self, sym: str, near: bool = True) -> None:
        if near:
            self.emit(Instruction(Op.CALL, imm=Sym(sym)))
        else:
            # Far call: the target may live anywhere in the 48-bit space
            # (another unit, a kernel module, a runtime stub) -- load the
            # absolute address and call through a register.
            self.load_symbol_addr(sym, into_acc=False)
            self.emit(Instruction(Op.JALR, rd=self.RA, rs1=self.TMP, imm=0))
        self.emit(Instruction(Op.MOV, rd=self.ACC, rs1=self.RET))

    def call_ptr(self) -> None:
        """Target address was popped into TMP; args already in arg regs."""
        self.emit(Instruction(Op.JALR, rd=self.RA, rs1=self.TMP, imm=0))
        self.emit(Instruction(Op.MOV, rd=self.ACC, rs1=self.RET))

    def move_acc_to_retreg(self) -> None:
        self.emit(Instruction(Op.MOV, rd=self.RET, rs1=self.ACC))

    def ecall2(self, code: int) -> None:
        """args: arg0 = code, arg1 = acc; result -> acc."""
        self.emit(Instruction(Op.MOV, rd=self.ARGS[1], rs1=self.ACC))
        self.emit(Instruction(Op.LI, rd=self.ARGS[0], imm=code))
        self.emit(Instruction(Op.ECALL))
        self.emit(Instruction(Op.MOV, rd=self.ACC, rs1=self.RET))


class _HisaBackend(_Backend):
    isa = "hisa"
    ACC, SEC, TMP = 0, 1, 10  # rax, rcx, r10
    FP, SP = 5, 4  # rbp, rsp
    ARGS = hisa.HISA_ABI.arg_regs
    RET = hisa.HISA_ABI.ret_reg

    def prologue(self, nslots: int, params: List[str]) -> None:
        self.emit(Instruction(Op.PUSH, rd=self.FP))
        self.emit(Instruction(Op.MOV, rd=self.FP, rs1=self.SP))
        if nslots:
            self.emit(Instruction(Op.SUB, rd=self.SP, imm=8 * nslots))
        for i, _name in enumerate(params):
            self.emit(Instruction(Op.ST, rs1=self.FP, rs2=self.ARGS[i], imm=-8 * (i + 1)))

    def epilogue(self, nslots: int) -> None:
        self.emit(Instruction(Op.MOV, rd=self.SP, rs1=self.FP))
        self.emit(Instruction(Op.POP, rd=self.FP))
        self.emit(Instruction(Op.RET))

    def load_const(self, value: int) -> None:
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=value))

    def load_symbol_addr(self, sym: str, into_acc: bool = True) -> int:
        reg = self.ACC if into_acc else self.TMP
        self.emit(Instruction(Op.LI, rd=reg, imm=Sym(sym)))
        return reg

    def load_local(self, slot: int) -> None:
        self.emit(Instruction(Op.LD, rd=self.ACC, rs1=self.FP, imm=-8 * (slot + 1)))

    def store_local(self, slot: int) -> None:
        self.emit(Instruction(Op.ST, rs1=self.FP, rs2=self.ACC, imm=-8 * (slot + 1)))

    def load_global(self, sym: str) -> None:
        reg = self.load_symbol_addr(sym, into_acc=False)
        self.emit(Instruction(Op.LD, rd=self.ACC, rs1=reg, imm=0))

    def store_global(self, sym: str) -> None:
        reg = self.load_symbol_addr(sym, into_acc=False)
        self.emit(Instruction(Op.ST, rs1=reg, rs2=self.ACC, imm=0))

    def push_acc(self) -> None:
        self.emit(Instruction(Op.PUSH, rd=self.ACC))

    def pop_secondary(self) -> None:
        self.emit(Instruction(Op.POP, rd=self.SEC))

    def pop_reg(self, reg: int) -> None:
        self.emit(Instruction(Op.POP, rd=reg))

    _ALU = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM}
    _CONDS = {"==": "eq", "!=": "ne", "<": "lt", ">=": "ge", "<=": "le", ">": "gt"}

    def __init__(self, emit, new_label):
        super().__init__(emit)
        self.new_label = new_label

    def binop(self, op: str) -> None:
        """acc = secondary OP acc."""
        if op in self._ALU:
            self.emit(Instruction(self._ALU[op], rd=self.SEC, rs1=self.ACC))
            self.emit(Instruction(Op.MOV, rd=self.ACC, rs1=self.SEC))
        elif op in self._CONDS:
            true_label = self.new_label("cmp")
            self.emit(Instruction(Op.CMP, rd=self.SEC, rs1=self.ACC))
            self.emit(Instruction(Op.LI, rd=self.ACC, imm=1))
            self.emit(Instruction(Op.JCC, cond=self._CONDS[op], imm=Sym(true_label)))
            self.emit(Instruction(Op.LI, rd=self.ACC, imm=0))
            self.emit(Instruction(Op.NOP, label=true_label))
        else:
            raise CodegenError(f"bad binop {op!r}")

    def neg(self) -> None:
        self.emit(Instruction(Op.MOV, rd=self.SEC, rs1=self.ACC))
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.SUB, rd=self.ACC, rs1=self.SEC))

    def logical_not(self) -> None:
        label = self.new_label("not")
        self.emit(Instruction(Op.CMP, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=1))
        self.emit(Instruction(Op.JCC, cond="eq", imm=Sym(label)))
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.NOP, label=label))

    def normalize_bool(self) -> None:
        label = self.new_label("bool")
        self.emit(Instruction(Op.CMP, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.JCC, cond="eq", imm=Sym(label)))
        self.emit(Instruction(Op.LI, rd=self.ACC, imm=1))
        self.emit(Instruction(Op.NOP, label=label))

    def jump_if_false(self, label: str) -> None:
        self.emit(Instruction(Op.CMP, rd=self.ACC, imm=0))
        self.emit(Instruction(Op.JCC, cond="eq", imm=Sym(label)))

    def jump(self, label: str) -> None:
        self.emit(Instruction(Op.J, imm=Sym(label)))

    def mem_load(self, size: int) -> None:
        op = {8: Op.LD, 4: Op.LW, 1: Op.LBU}[size]
        self.emit(Instruction(op, rd=self.ACC, rs1=self.ACC, imm=0))

    def mem_store(self, size: int) -> None:
        op = {8: Op.ST, 4: Op.SW, 1: Op.SB}[size]
        self.emit(Instruction(op, rs1=self.SEC, rs2=self.ACC, imm=0))

    def pop_args(self, count: int) -> None:
        for i in reversed(range(count)):
            self.pop_reg(self.ARGS[i])

    def call(self, sym: str, near: bool = True) -> None:
        if near:
            self.emit(Instruction(Op.CALL, imm=Sym(sym)))
        else:
            self.load_symbol_addr(sym, into_acc=False)  # movabs r10, sym
            self.emit(Instruction(Op.CALLR, rs1=self.TMP))

    def call_ptr(self) -> None:
        self.emit(Instruction(Op.CALLR, rs1=self.TMP))

    def move_acc_to_retreg(self) -> None:
        pass  # acc *is* rax

    def ecall2(self, code: int) -> None:
        self.emit(Instruction(Op.MOV, rd=self.ARGS[1], rs1=self.ACC))
        self.emit(Instruction(Op.LI, rd=self.ARGS[0], imm=code))
        self.emit(Instruction(Op.ECALL))


_MEM_BUILTINS = {
    "load": ("load", 8), "load32": ("load", 4), "load8": ("load", 1),
    "store": ("store", 8), "store32": ("store", 4), "store8": ("store", 1),
}

_SYSCALLS = {"exit": 0, "print": 1}


class FunctionCodegen:
    """Generates the instruction list for one function."""

    def __init__(
        self,
        func: A.FuncDecl,
        global_names: Set[str],
        func_names: Set[str],
        near_funcs: Optional[Set[str]] = None,
    ):
        self.func = func
        self.global_names = global_names
        self.func_names = func_names
        # Functions guaranteed to live in this unit's same-ISA text
        # section: reachable with rel32.  Everything else (other ISA,
        # other unit, kernel modules, runtime stubs) gets a far call.
        self.near_funcs = near_funcs if near_funcs is not None else func_names
        self.insts: List[Instruction] = []
        self._labels = itertools.count()
        self.slots: Dict[str, int] = {}
        if func.isa == "nisa":
            self.backend = _NisaBackend(self._emit)
        else:
            self.backend = _HisaBackend(self._emit, self._new_label)
        if len(func.params) > MAX_ARGS:
            raise CodegenError(f"{func.name}: more than {MAX_ARGS} parameters")
        self._collect_slots()

    # -- plumbing ----------------------------------------------------------------

    def _emit(self, inst: Instruction) -> None:
        self.insts.append(inst)

    def _new_label(self, tag: str) -> str:
        return f".{self.func.name}.{tag}{next(self._labels)}"

    def _label_here(self, label: str) -> None:
        self._emit(Instruction(Op.NOP, label=label))

    def _collect_slots(self) -> None:
        for param in self.func.params:
            if param in self.slots:
                raise CodegenError(f"{self.func.name}: duplicate parameter {param!r}")
            self.slots[param] = len(self.slots)

        def walk(block: A.Block) -> None:
            for stmt in block.statements:
                if isinstance(stmt, A.VarDecl):
                    if stmt.name in self.slots:
                        raise CodegenError(
                            f"{self.func.name}: duplicate variable {stmt.name!r}"
                        )
                    self.slots[stmt.name] = len(self.slots)
                elif isinstance(stmt, A.If):
                    walk(stmt.then)
                    if stmt.orelse:
                        walk(stmt.orelse)
                elif isinstance(stmt, A.While):
                    walk(stmt.body)

        walk(self.func.body)

    # -- generation -----------------------------------------------------------------

    def generate(self) -> List[Instruction]:
        b = self.backend
        self.ret_label = self._new_label("ret")
        b.prologue(len(self.slots), self.func.params)
        if self.insts:
            self.insts[0].label = self.func.name
        else:  # empty prologue cannot happen, but be safe
            self._label_here(self.func.name)
        self.stmt_block(self.func.body)
        # Fall-through return (value 0).
        b.load_const(0)
        b.move_acc_to_retreg()
        self._label_here(self.ret_label)
        b.epilogue(len(self.slots))
        return self.insts

    def stmt_block(self, block: A.Block) -> None:
        for stmt in block.statements:
            self.statement(stmt)

    def statement(self, stmt) -> None:
        b = self.backend
        if isinstance(stmt, A.VarDecl):
            self.expr(stmt.init)
            b.store_local(self.slots[stmt.name])
        elif isinstance(stmt, A.Assign):
            self.expr(stmt.value)
            if stmt.name in self.slots:
                b.store_local(self.slots[stmt.name])
            elif stmt.name in self.global_names:
                b.store_global(stmt.name)
            else:
                raise CodegenError(f"{self.func.name}: assignment to unknown {stmt.name!r}")
        elif isinstance(stmt, A.If):
            else_label = self._new_label("else")
            end_label = self._new_label("endif")
            self.expr(stmt.cond)
            b.jump_if_false(else_label if stmt.orelse else end_label)
            self.stmt_block(stmt.then)
            if stmt.orelse:
                b.jump(end_label)
                self._label_here(else_label)
                self.stmt_block(stmt.orelse)
            self._label_here(end_label)
        elif isinstance(stmt, A.While):
            top = self._new_label("while")
            end = self._new_label("endwhile")
            self._label_here(top)
            self.expr(stmt.cond)
            b.jump_if_false(end)
            self.stmt_block(stmt.body)
            b.jump(top)
            self._label_here(end)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self.expr(stmt.value)
            else:
                b.load_const(0)
            b.move_acc_to_retreg()
            b.jump(self.ret_label)
        elif isinstance(stmt, A.ExprStmt):
            self.expr(stmt.expr)
        else:
            raise CodegenError(f"unknown statement {stmt!r}")

    def expr(self, node) -> None:
        b = self.backend
        if isinstance(node, A.IntLit):
            b.load_const(node.value)
        elif isinstance(node, A.VarRef):
            if node.name in self.slots:
                b.load_local(self.slots[node.name])
            elif node.name in self.global_names:
                b.load_global(node.name)
            else:
                raise CodegenError(f"{self.func.name}: unknown variable {node.name!r}")
        elif isinstance(node, A.AddrOf):
            if node.name not in self.global_names and node.name not in self.func_names:
                raise CodegenError(f"{self.func.name}: '&' of unknown {node.name!r}")
            b.load_symbol_addr(node.name, into_acc=True)
        elif isinstance(node, A.UnOp):
            self.expr(node.operand)
            if node.op == "-":
                b.neg()
            else:
                b.logical_not()
        elif isinstance(node, A.BinOp):
            if node.op in ("&&", "||"):
                self._short_circuit(node)
            else:
                self.expr(node.left)
                b.push_acc()
                self.expr(node.right)
                b.pop_secondary()
                b.binop(node.op)
        elif isinstance(node, A.Call):
            self._call(node)
        elif isinstance(node, A.CallPtr):
            self._call_ptr(node)
        else:
            raise CodegenError(f"unknown expression {node!r}")

    def _short_circuit(self, node: A.BinOp) -> None:
        b = self.backend
        out = self._new_label("sc_out")
        shortcut = self._new_label("sc_cut")
        self.expr(node.left)
        if node.op == "&&":
            b.jump_if_false(shortcut)
            self.expr(node.right)
            b.normalize_bool()
            b.jump(out)
            self._label_here(shortcut)
            b.load_const(0)
        else:  # ||
            b.jump_if_false(shortcut)
            b.load_const(1)
            b.jump(out)
            self._label_here(shortcut)
            self.expr(node.right)
            b.normalize_bool()
        self._label_here(out)

    def _call(self, node: A.Call) -> None:
        b = self.backend
        name = node.name

        if name in _MEM_BUILTINS:
            kind, size = _MEM_BUILTINS[name]
            if kind == "load":
                if len(node.args) != 1:
                    raise CodegenError(f"{name} takes 1 argument")
                self.expr(node.args[0])
                b.mem_load(size)
            else:
                if len(node.args) != 2:
                    raise CodegenError(f"{name} takes 2 arguments")
                self.expr(node.args[0])  # address
                b.push_acc()
                self.expr(node.args[1])  # value
                b.pop_secondary()
                b.mem_store(size)
            return

        if name in _SYSCALLS:
            if len(node.args) != 1:
                raise CodegenError(f"{name} takes 1 argument")
            self.expr(node.args[0])
            b.ecall2(_SYSCALLS[name])
            return

        if name == "alloc":
            name = "__nxp_malloc" if self.func.isa == "nisa" else "__host_malloc"
        elif name == "free":
            name = "__nxp_free" if self.func.isa == "nisa" else "__host_free"

        if len(node.args) > MAX_ARGS:
            raise CodegenError(f"call to {name!r}: more than {MAX_ARGS} arguments")
        for arg in node.args:
            self.expr(arg)
            b.push_acc()
        b.pop_args(len(node.args))
        b.call(name, near=name in self.near_funcs)

    def _call_ptr(self, node: A.CallPtr) -> None:
        b = self.backend
        if len(node.args) > MAX_ARGS:
            raise CodegenError(f"call_ptr: more than {MAX_ARGS} arguments")
        self.expr(node.target)
        b.push_acc()
        for arg in node.args:
            self.expr(arg)
            b.push_acc()
        b.pop_args(len(node.args))
        b.pop_reg(b.TMP)
        b.call_ptr()
