"""FlickC compilation driver: partition by annotation, compile per ISA.

Reproduces the paper's flow (Section IV-C1): annotated source is
partitioned into per-ISA groups, each group is compiled by the matching
backend (with renamed sections, e.g. ``.text.nisa``), and the pieces are
assembled into one multi-ISA object file.  No migration code is
inserted anywhere — crossing happens via NX faults at runtime.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.isa import hisa, nisa
from repro.toolchain.felf import FelfError, ObjectFile
from repro.toolchain.flickc import ast_nodes as A
from repro.toolchain.flickc.codegen import CodegenError, FunctionCodegen
from repro.toolchain.flickc.parser import parse_program

__all__ = ["partition", "compile_source"]


def partition(program: A.Program) -> Dict[str, List[A.FuncDecl]]:
    """Group functions by target ISA (the paper's source-partition step)."""
    groups: Dict[str, List[A.FuncDecl]] = {"hisa": [], "nisa": []}
    for fn in program.functions:
        groups[fn.isa].append(fn)
    return groups


def compile_source(source: str, name: str = "unit", optimize: bool = False) -> ObjectFile:
    """Compile one FlickC translation unit into a multi-ISA object file.

    ``optimize=True`` runs the constant-folding/branch-pruning pass
    (see :mod:`repro.toolchain.flickc.optimizer`) before codegen.
    """
    program = parse_program(source)
    if optimize:
        from repro.toolchain.flickc.optimizer import optimize_program

        program = optimize_program(program)

    func_names = set()
    for fn in program.functions:
        if fn.name in func_names:
            raise CodegenError(f"duplicate function {fn.name!r}")
        func_names.add(fn.name)
    global_names = set()
    for gv in program.globals:
        if gv.name in global_names or gv.name in func_names:
            raise CodegenError(f"duplicate global {gv.name!r}")
        global_names.add(gv.name)

    obj = ObjectFile(name)

    # -- code: one .text.<isa> section per ISA actually used -----------------
    for isa_name, funcs in partition(program).items():
        if not funcs:
            continue
        near_funcs = {fn.name for fn in funcs}  # same unit, same ISA
        insts = []
        for fn in funcs:
            insts.extend(
                FunctionCodegen(fn, global_names, func_names, near_funcs=near_funcs).generate()
            )
        if isa_name == "nisa":
            code, relocs, labels = nisa.encode_program(insts)
        else:
            code, relocs, labels = hisa.encode_program(insts)
        section = obj.section(f".text.{isa_name}")
        section.data += code
        section.relocations.extend(relocs)
        for fn in funcs:
            if fn.name not in labels:
                raise FelfError(f"lost symbol for function {fn.name!r}")
            section.add_symbol(fn.name, labels[fn.name])

    # -- globals: .data (host) and .data.nxp per placement annotation ---------
    for gv in program.globals:
        section = obj.section(".data" if gv.placement == "host" else ".data.nxp")
        offset = len(section.data)
        section.data += struct.pack("<q", gv.init)
        section.add_symbol(gv.name, offset)

    return obj
