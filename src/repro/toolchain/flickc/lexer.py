"""FlickC lexer."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "tokenize", "LexError", "KEYWORDS"]

KEYWORDS = {"func", "var", "if", "else", "while", "return"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<annotation>@[A-Za-z_]\w*)
  | (?P<int>0x[0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>==|!=|<=|>=|&&|\|\||[-+*/%<>=!&(){},;])
    """,
    re.VERBOSE,
)


class LexError(Exception):
    def __init__(self, line: int, col: int, message: str):
        self.line = line
        self.col = col
        super().__init__(f"{line}:{col}: {message}")


@dataclass(frozen=True)
class Token:
    kind: str  # "int" | "ident" | "kw" | "op" | "annotation" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Turn FlickC source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(line, pos - line_start + 1, f"bad character {source[pos]!r}")
        text = m.group(0)
        kind = m.lastgroup
        col = pos - line_start + 1
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, line, col))
        else:
            tokens.append(Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
