"""FlickC AST optimizer: constant folding and branch pruning.

An optional pass (``compile_source(..., optimize=True)``) that runs
between parsing and codegen:

* folds constant arithmetic/comparison/logical subtrees with FlickC's
  runtime semantics (64-bit wraparound, C-style truncating division,
  0/1 booleans) — division by a constant zero is left unfolded so the
  runtime fault behaviour is preserved;
* simplifies algebraic identities (``x+0``, ``x*1``, ``x*0`` when the
  operand is side-effect-free, ``!!x`` in branch contexts);
* prunes ``if``/``while`` with constant conditions (dead branches are
  dropped; ``while (0)`` disappears).

The differential fuzz suite runs with the optimizer on and off and
compares — folding must never change observable behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.toolchain.flickc import ast_nodes as A

__all__ = ["optimize_program", "fold_expr"]

MASK64 = (1 << 64) - 1


def _to_signed(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >> 63 else v


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _const(node) -> Optional[int]:
    """The node's signed constant value, or None."""
    if isinstance(node, A.IntLit):
        return _to_signed(node.value)
    return None


def _pure(node) -> bool:
    """True when evaluating the node can have no side effects."""
    if isinstance(node, (A.IntLit, A.VarRef, A.AddrOf)):
        return True
    if isinstance(node, A.UnOp):
        return _pure(node.operand)
    if isinstance(node, A.BinOp):
        return _pure(node.left) and _pure(node.right)
    return False  # calls (and anything unknown) may have effects


def fold_expr(node):
    """Return an equivalent, possibly simpler expression node."""
    if isinstance(node, A.BinOp):
        left = fold_expr(node.left)
        right = fold_expr(node.right)
        node = A.BinOp(node.op, left, right)
        lv, rv = _const(left), _const(right)

        if lv is not None and rv is not None:
            return _fold_binop_consts(node.op, lv, rv) or node

        # Algebraic identities (only when dropping a side is safe).
        if node.op == "+":
            if rv == 0:
                return left
            if lv == 0:
                return right
        elif node.op == "-" and rv == 0:
            return left
        elif node.op == "*":
            if rv == 1:
                return left
            if lv == 1:
                return right
            if (rv == 0 and _pure(left)) or (lv == 0 and _pure(right)):
                return A.IntLit(0)
        elif node.op == "&&":
            if lv is not None:
                # Constant lhs: short-circuit is compile-time decidable.
                return A.IntLit(0) if lv == 0 else _boolify(right)
        elif node.op == "||":
            if lv is not None:
                return _boolify(right) if lv == 0 else A.IntLit(1)
        return node

    if isinstance(node, A.UnOp):
        operand = fold_expr(node.operand)
        value = _const(operand)
        if value is not None:
            if node.op == "-":
                return A.IntLit(_to_signed(-value))
            return A.IntLit(int(value == 0))
        return A.UnOp(node.op, operand)

    if isinstance(node, A.Call):
        return A.Call(node.name, [fold_expr(a) for a in node.args])
    if isinstance(node, A.CallPtr):
        return A.CallPtr(fold_expr(node.target), [fold_expr(a) for a in node.args])
    return node


def _boolify(node):
    """0/1-normalize an already-folded node for &&/|| results."""
    value = _const(node)
    if value is not None:
        return A.IntLit(int(value != 0))
    return A.BinOp("!=", node, A.IntLit(0))


def _fold_binop_consts(op: str, lv: int, rv: int) -> Optional[A.IntLit]:
    if op == "+":
        return A.IntLit(_to_signed(lv + rv))
    if op == "-":
        return A.IntLit(_to_signed(lv - rv))
    if op == "*":
        return A.IntLit(_to_signed(lv * rv))
    if op == "/":
        if rv == 0:
            return None  # preserve the runtime fault
        return A.IntLit(_to_signed(_trunc_div(lv, rv)))
    if op == "%":
        if rv == 0:
            return None
        return A.IntLit(_to_signed(lv - _trunc_div(lv, rv) * rv))
    if op == "<":
        return A.IntLit(int(lv < rv))
    if op == "<=":
        return A.IntLit(int(lv <= rv))
    if op == ">":
        return A.IntLit(int(lv > rv))
    if op == ">=":
        return A.IntLit(int(lv >= rv))
    if op == "==":
        return A.IntLit(int(lv == rv))
    if op == "!=":
        return A.IntLit(int(lv != rv))
    if op == "&&":
        return A.IntLit(int(bool(lv) and bool(rv)))
    if op == "||":
        return A.IntLit(int(bool(lv) or bool(rv)))
    return None


def _fold_block(block: A.Block) -> A.Block:
    out: List[object] = []
    for stmt in block.statements:
        folded = _fold_stmt(stmt)
        if folded is None:
            continue
        if isinstance(folded, list):
            out.extend(folded)
        else:
            out.append(folded)
    return A.Block(out)


def _fold_stmt(stmt):
    if isinstance(stmt, A.VarDecl):
        return A.VarDecl(stmt.name, fold_expr(stmt.init))
    if isinstance(stmt, A.Assign):
        return A.Assign(stmt.name, fold_expr(stmt.value))
    if isinstance(stmt, A.Return):
        return A.Return(fold_expr(stmt.value) if stmt.value is not None else None)
    if isinstance(stmt, A.ExprStmt):
        expr = fold_expr(stmt.expr)
        if _pure(expr):
            return None  # side-effect-free statement: drop it
        return A.ExprStmt(expr)
    if isinstance(stmt, A.If):
        cond = fold_expr(stmt.cond)
        value = _const(cond)
        then = _fold_block(stmt.then)
        orelse = _fold_block(stmt.orelse) if stmt.orelse else None
        if value is not None:
            taken = then if value != 0 else orelse
            return list(taken.statements) if taken else None
        return A.If(cond, then, orelse)
    if isinstance(stmt, A.While):
        cond = fold_expr(stmt.cond)
        if _const(cond) == 0:
            return None  # while (0) vanishes
        return A.While(cond, _fold_block(stmt.body))
    return stmt


def optimize_program(program: A.Program) -> A.Program:
    """Fold every function body; globals are untouched (already ints).

    Note: dropped branches may eliminate ``var`` declarations; the
    codegen allocates slots from a pre-pass over the *optimized* body,
    so eliminated variables simply cost nothing.
    """
    return A.Program(
        functions=[
            A.FuncDecl(fn.name, fn.params, _fold_block(fn.body), isa=fn.isa, line=fn.line)
            for fn in program.functions
        ],
        globals=list(program.globals),
    )
