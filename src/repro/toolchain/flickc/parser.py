"""FlickC recursive-descent parser.

Grammar (EBNF):

    program     := (funcdecl | globalvar)*
    funcdecl    := annotation? "func" IDENT "(" params? ")" block
    globalvar   := annotation? "var" IDENT ("=" ("-")? INT)? ";"
    annotation  := "@nxp" | "@host"
    block       := "{" statement* "}"
    statement   := "var" IDENT "=" expr ";"
                 | IDENT "=" expr ";"
                 | "if" "(" expr ")" block ("else" (block | if-stmt))?
                 | "while" "(" expr ")" block
                 | "return" expr? ";"
                 | expr ";"
    expr        := or-chain with C-like precedence:
                   ||  <  &&  <  == !=  <  < <= > >=  <  + -  <  * / %  <  unary - !
    primary     := INT | IDENT | IDENT "(" args ")" | "&" IDENT
                 | "call_ptr" "(" expr ("," expr)* ")" | "(" expr ")"

All values are 64-bit integers; comparisons yield 0/1; ``&&``/``||``
short-circuit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.toolchain.flickc import ast_nodes as A
from repro.toolchain.flickc.lexer import Token, tokenize

__all__ = ["parse_program", "ParseError"]


class ParseError(Exception):
    def __init__(self, token: Token, message: str):
        self.token = token
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.text!r})")


_BINOP_LEVELS = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(tok, f"expected {want!r}")
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # -- top level ------------------------------------------------------------

    def program(self) -> A.Program:
        prog = A.Program()
        while self.peek().kind != "eof":
            annotation = self.accept("annotation")
            target = self._target_from_annotation(annotation)
            if self.accept("kw", "func"):
                prog.functions.append(self.funcdecl(target))
            elif self.accept("kw", "var"):
                prog.globals.append(self.globalvar(target))
            else:
                raise ParseError(self.peek(), "expected 'func' or 'var' at top level")
        return prog

    def _target_from_annotation(self, annotation: Optional[Token]) -> str:
        if annotation is None or annotation.text == "@host":
            return "host"
        if annotation.text == "@nxp":
            return "nxp"
        raise ParseError(annotation, "unknown annotation (use @nxp or @host)")

    def funcdecl(self, target: str) -> A.FuncDecl:
        name_tok = self.expect("ident")
        self.expect("op", "(")
        params: List[str] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.expect("ident").text)
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.block()
        isa = "nisa" if target == "nxp" else "hisa"
        return A.FuncDecl(name_tok.text, params, body, isa=isa, line=name_tok.line)

    def globalvar(self, target: str) -> A.GlobalVar:
        name_tok = self.expect("ident")
        init = 0
        if self.accept("op", "="):
            negative = bool(self.accept("op", "-"))
            value_tok = self.expect("int")
            init = int(value_tok.text, 0)
            if negative:
                init = -init
        self.expect("op", ";")
        return A.GlobalVar(name_tok.text, init, placement=target, line=name_tok.line)

    # -- statements ---------------------------------------------------------------

    def block(self) -> A.Block:
        self.expect("op", "{")
        stmts: List[object] = []
        while not self.accept("op", "}"):
            stmts.append(self.statement())
        return A.Block(stmts)

    def statement(self):
        if self.accept("kw", "var"):
            name = self.expect("ident").text
            self.expect("op", "=")
            expr = self.expr()
            self.expect("op", ";")
            return A.VarDecl(name, expr)
        if self.accept("kw", "if"):
            return self._if_statement()
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            return A.While(cond, self.block())
        if self.accept("kw", "return"):
            if self.accept("op", ";"):
                return A.Return(None)
            value = self.expr()
            self.expect("op", ";")
            return A.Return(value)
        # assignment or expression statement
        if (
            self.peek().kind == "ident"
            and self.tokens[self.pos + 1].kind == "op"
            and self.tokens[self.pos + 1].text == "="
        ):
            name = self.advance().text
            self.advance()  # '='
            value = self.expr()
            self.expect("op", ";")
            return A.Assign(name, value)
        expr = self.expr()
        self.expect("op", ";")
        return A.ExprStmt(expr)

    def _if_statement(self) -> A.If:
        self.expect("op", "(")
        cond = self.expr()
        self.expect("op", ")")
        then = self.block()
        orelse: Optional[A.Block] = None
        if self.accept("kw", "else"):
            if self.accept("kw", "if"):
                orelse = A.Block([self._if_statement()])
            else:
                orelse = self.block()
        return A.If(cond, then, orelse)

    # -- expressions ----------------------------------------------------------------

    def expr(self, level: int = 0):
        if level >= len(_BINOP_LEVELS):
            return self.unary()
        node = self.expr(level + 1)
        ops = _BINOP_LEVELS[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.advance().text
            right = self.expr(level + 1)
            node = A.BinOp(op, node, right)
        return node

    def unary(self):
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!"):
            self.advance()
            return A.UnOp(tok.text, self.unary())
        if tok.kind == "op" and tok.text == "&":
            self.advance()
            name = self.expect("ident").text
            return A.AddrOf(name)
        return self.primary()

    def primary(self):
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return A.IntLit(int(tok.text, 0))
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            node = self.expr()
            self.expect("op", ")")
            return node
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List[object] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                if tok.text == "call_ptr":
                    if not args:
                        raise ParseError(tok, "call_ptr needs a target expression")
                    return A.CallPtr(args[0], args[1:])
                return A.Call(tok.text, args)
            return A.VarRef(tok.text)
        raise ParseError(tok, "expected expression")


def parse_program(source: str) -> A.Program:
    """Tokenize and parse a FlickC translation unit."""
    return _Parser(tokenize(source)).program()
