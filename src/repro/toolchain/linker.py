"""The multi-ISA linker (Section IV-C2).

Follows the paper's design: the native linker machinery is reused, with

* a **linker script** that keeps per-ISA sections separate (never merges
  ``.text.nisa`` into ``.text.hisa``) and aligns every text section to a
  4 KB page boundary so code for each ISA has its own page-table entries,
* **relocation functions for both ISAs**, selected by section name —
  HISA uses ``abs64``/``rel32``, NISA uses ``abs32lo``/``abs32hi`` pairs
  and ``rel32`` — resolving symbols freely *across* ISA boundaries in the
  single shared virtual address space,
* routing of ``alloc`` calls to the per-ISA memory allocator stubs
  (``__host_malloc`` vs ``__nxp_malloc``, Section III-D) — done by the
  compiler emitting the ISA-appropriate symbol and the linker binding
  both against runtime-provided stub addresses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.base import Relocation
from repro.toolchain.felf import (
    Executable,
    FelfError,
    ObjectFile,
    SECTION_ISA,
    SECTION_PLACEMENT,
    Section,
    Segment,
)

__all__ = ["LinkerScript", "LinkError", "link", "RUNTIME_STUB_SYMBOLS"]

PAGE_4K = 4096

#: Symbols the runtime provides (resolved to stub addresses the machine
#: intercepts): per-region allocators and the user-space migration
#: handler entry points.
RUNTIME_STUB_SYMBOLS = (
    "__host_malloc",
    "__nxp_malloc",
    "__host_free",
    "__nxp_free",
)


class LinkError(FelfError):
    """Undefined/duplicate symbols or relocation overflow."""


@dataclass
class LinkerScript:
    """Section layout policy.

    The default mirrors the paper's custom script: text sections first
    (each 4 KB aligned, never merged across ISAs), then read-only data,
    then writable host data, then NxP-placed data.
    """

    base_vaddr: int = 0x40_0000
    order: Sequence[str] = (
        ".text.hisa",
        ".text.nisa",
        ".rodata",
        ".data",
        ".bss",
        ".data.nxp",
        ".bss.nxp",
    )
    text_align: int = PAGE_4K
    # Data sections are page-aligned too: NX bits and placement are
    # per-page properties, so no page may mix a text section with data
    # (or host-placed with NxP-placed bytes).
    data_align: int = PAGE_4K

    def align_for(self, section_name: str) -> int:
        return self.text_align if section_name.startswith(".text") else self.data_align


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


@dataclass
class _MergedSection:
    name: str
    vaddr: int = 0
    data: bytearray = field(default_factory=bytearray)
    bss_size: int = 0
    relocations: List[Tuple[int, Relocation]] = field(default_factory=list)  # (bias, reloc)


def link(
    objects: Sequence[ObjectFile],
    entry_symbol: str = "main",
    script: Optional[LinkerScript] = None,
    extra_symbols: Optional[Dict[str, int]] = None,
) -> Executable:
    """Link object files into one multi-ISA executable.

    ``extra_symbols`` lets the caller bind runtime-provided symbols
    (allocator stubs, etc.) to absolute addresses.
    """
    script = script or LinkerScript()
    extra_symbols = dict(extra_symbols or {})

    # 1. Merge same-named input sections, remembering each piece's bias.
    merged: Dict[str, _MergedSection] = {}
    # symbol -> (section name, offset-within-merged-section)
    local_defs: Dict[str, Tuple[str, int]] = {}
    for obj in objects:
        for name, section in obj.sections.items():
            if name not in SECTION_PLACEMENT:
                raise LinkError(f"{obj.name}: unknown section {name!r}")
            m = merged.setdefault(name, _MergedSection(name))
            bias = _align_up(len(m.data), section.align)
            m.data += b"\x00" * (bias - len(m.data))
            m.data += section.data
            m.bss_size += section.bss_size
            for reloc in section.relocations:
                m.relocations.append((bias, reloc))
            for sym, offset in section.symbols.items():
                if sym in local_defs:
                    raise LinkError(f"duplicate symbol {sym!r} ({obj.name})")
                if sym in extra_symbols:
                    raise LinkError(f"symbol {sym!r} collides with a runtime symbol")
                local_defs[sym] = (name, bias + offset)

    # 2. Lay sections out per the script (text pages never shared by ISAs).
    cursor = script.base_vaddr
    ordered: List[_MergedSection] = []
    for name in script.order:
        if name not in merged:
            continue
        m = merged[name]
        cursor = _align_up(cursor, script.align_for(name))
        m.vaddr = cursor
        cursor += len(m.data) + m.bss_size
        ordered.append(m)
    leftovers = set(merged) - {m.name for m in ordered}
    if leftovers:
        raise LinkError(f"sections not covered by the linker script: {sorted(leftovers)}")

    # 3. Absolute symbol table.
    symbols: Dict[str, int] = dict(extra_symbols)
    isa_of_symbol: Dict[str, Optional[str]] = {s: None for s in extra_symbols}
    for sym, (section_name, offset) in local_defs.items():
        symbols[sym] = merged[section_name].vaddr + offset
        isa_of_symbol[sym] = SECTION_ISA.get(section_name)

    if entry_symbol not in symbols:
        raise LinkError(f"entry symbol {entry_symbol!r} undefined")

    # 4. Apply relocations — per-ISA relocation kinds, cross-ISA targets OK.
    for m in ordered:
        for bias, reloc in m.relocations:
            _apply_relocation(m, bias, reloc, symbols)

    # 5. Emit segments, checking the per-page exclusivity invariant the
    # loader relies on (NX and placement are page-granular).
    prev_end_page = -1
    for m in ordered:
        start_page = m.vaddr // PAGE_4K
        if start_page <= prev_end_page:
            raise LinkError(f"section {m.name} shares a page with its predecessor")
        size = len(m.data) + m.bss_size
        if size:
            prev_end_page = (m.vaddr + size - 1) // PAGE_4K
    segments = [
        Segment(
            section_name=m.name,
            vaddr=m.vaddr,
            data=bytes(m.data),
            bss_size=m.bss_size,
            isa=SECTION_ISA.get(m.name),
            placement=SECTION_PLACEMENT[m.name],
            writable=not (m.name.startswith(".text") or m.name == ".rodata"),
        )
        for m in ordered
    ]
    return Executable(
        entry_symbol=entry_symbol,
        segments=segments,
        symbols=symbols,
        isa_of_symbol=isa_of_symbol,
    )


def _apply_relocation(
    m: _MergedSection, bias: int, reloc: Relocation, symbols: Dict[str, int]
) -> None:
    target = symbols.get(reloc.symbol.name)
    if target is None:
        raise LinkError(f"undefined symbol {reloc.symbol.name!r} referenced from {m.name}")
    value = target + reloc.symbol.addend
    patch_at = bias + reloc.offset

    if reloc.kind == "abs64":
        m.data[patch_at : patch_at + 8] = struct.pack("<Q", value & (1 << 64) - 1)
    elif reloc.kind == "abs32lo":
        m.data[patch_at : patch_at + 4] = struct.pack("<I", value & 0xFFFF_FFFF)
    elif reloc.kind == "abs32hi":
        m.data[patch_at : patch_at + 4] = struct.pack("<I", (value >> 32) & 0xFFFF_FFFF)
    elif reloc.kind == "rel32":
        pc = m.vaddr + bias + reloc.pc_base
        delta = value - pc
        if not -(1 << 31) <= delta < (1 << 31):
            raise LinkError(
                f"rel32 overflow to {reloc.symbol.name!r} (delta {delta:#x})"
            )
        m.data[patch_at : patch_at + 4] = struct.pack("<i", delta)
    else:
        raise LinkError(f"unknown relocation kind {reloc.kind!r}")
