"""Command-line tooling for the Flick reproduction."""

from repro.tools.cli import main

__all__ = ["main"]
