"""Command-line interface: compile, run and disassemble FlickC programs.

Usage (also via ``python -m repro``):

    python -m repro run program.fc --args 6 7 --trace
    python -m repro compile program.fc
    python -m repro disasm program.fc
    python -m repro trace program.fc --out program.trace.json
    python -m repro profile program.fc --args 10
    python -m repro metrics program.fc --format openmetrics
    python -m repro bench --quick
    python -m repro bench --quick --check benchmarks/baseline_simspeed.json
    python -m repro chaos
    python -m repro chaos --plan nxp-crash --seed 3
    python -m repro chaos --plan-file myplan.json
    python -m repro serve --qps 1000 5000 20000 --scenario null_call --seed 7
    python -m repro serve --qps 2000 --scenario mixed --arrival bursty --out curve.json
    python -m repro serve --qps 40000 --nxps 2 --policy round_robin
    python -m repro serve --qps 20000 --traced --slo p99:500us --slo-gate
    python -m repro why --p99 --qps 20000 --seed 7
    python -m repro why --p99 --nxps 2 --kill-aim
    python -m repro fleet
    python -m repro fleet --smoke --gate --slo p99:2ms

``run`` executes on a fresh simulated machine and reports the return
value, program output, simulated time and migration count.  ``compile``
prints the linked image's sections and symbols.  ``disasm`` shows both
ISAs' text sections side by side — useful for seeing what the dual
backends emitted.  ``trace`` runs the program and exports the event
timeline as Chrome ``trace_event`` JSON (load it in ``chrome://tracing``
or Perfetto); ``--phases`` overlays the measured per-migration phase
decomposition, ``--detail`` adds per-TLP PCIe events.  ``profile`` runs
the program and prints the observability summary: the measured
migration breakdown (per pid with ``--by-pid``), the span census, and
the statistics the run changed (see docs/OBSERVABILITY.md).  ``metrics``
runs the program and emits the derived metrics — latency histograms,
per-device utilization, counters — as OpenMetrics/Prometheus text or a
JSON ``RunReport`` (``--format``, ``--by-pid`` for per-pid series).
``chaos`` runs the chaos matrix (docs/ROBUSTNESS.md): seeded fault plans
crossed with fixed workloads on the hardened migration protocol, with a
verdict per case (survived/degraded/crashed/hung/mismatch); exit 1 if
any case hangs or returns a wrong value.  ``--plan``/``--plan-file``
select plans, ``--seed`` reseeds them, ``--list`` shows what's built in.
``serve`` replays deterministic seeded serving traffic (open- or
closed-loop; Poisson, bursty or uniform arrivals; scenario request
mixes) against one simulated machine per offered-QPS point and prints
the latency-vs-load table — p50/p95/p99 session latency with queueing
delay included, achieved vs offered throughput, per-device utilization,
and the saturation point (docs/OBSERVABILITY.md's serving-metrics
section); ``--out`` lands the curve as ``flick.serving.v1`` JSON,
``--format openmetrics`` emits scrape-ready series, and ``--tolerance``
turns the achieved/offered ratio into an exit-code gate (the CI smoke);
``--nxps``/``--policy`` serve against a multi-NxP machine (docs/FLEET.md);
``--traced`` threads a per-request trace id through every span the
request touches and prints a tail-attribution line per point;
``--slo``/``--slo-gate`` evaluate latency SLOs (windowed burn rates)
and optionally gate on them.
``why`` serves one traced traffic point and explains its latency tail:
the percentile-band phase breakdown (phases tile each request's latency
exactly), the dominant phase, and exemplar trace ids; ``--kill-aim``
first runs an untouched baseline, then re-runs the identical traffic
killing one device at an instant aimed inside an in-flight leg, so the
report shows watchdog/failover recovery dominating the tail.
``fleet`` runs the multi-NxP study — throughput-vs-device-count scaling
curve, placement-policy ablation, and a kill-one-device chaos drain —
with ``--smoke`` for a CI-sized subset and ``--gate`` as an exit-code
check (chaos must serve every request; throughput must rise with
device count).
``bench`` measures simulator throughput with the fast paths on vs off
(docs/PERFORMANCE.md); ``--quick`` shrinks the workloads to a
sub-30-second smoke, ``--hosted`` adds the hosted-mode op-batching
measurement (batched vs unbatched pointer chase, asserting bit-identical
parity via the exit code), ``--save`` writes the report as a baseline
JSON, and ``--check BASELINE`` gates the run against a saved baseline
(exit 1 on regression — the CI perf job).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.machine import FlickMachine
from repro.isa.disasm import disassemble
from repro.toolchain.felf import FelfError
from repro.toolchain.flickc import compile_source
from repro.toolchain.linker import link
from repro.core.stubs import STUB_SYMBOLS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flick reproduction: run FlickC programs on the simulated "
        "heterogeneous-ISA machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="compile and run a FlickC program")
    run_p.add_argument("file", help="FlickC source file")
    run_p.add_argument("--args", nargs="*", type=int, default=[], help="main() arguments")
    run_p.add_argument("--entry", default="main", help="entry function (default: main)")
    run_p.add_argument("--trace", action="store_true", help="print the migration trace")
    run_p.add_argument("--optimize", action="store_true", help="enable constant folding")
    run_p.add_argument("--stats", action="store_true", help="dump machine statistics")

    compile_p = sub.add_parser("compile", help="compile and link; show the image")
    compile_p.add_argument("file")
    compile_p.add_argument("--entry", default="main")
    compile_p.add_argument("--optimize", action="store_true")

    disasm_p = sub.add_parser("disasm", help="disassemble both text sections")
    disasm_p.add_argument("file")
    disasm_p.add_argument("--entry", default="main")
    disasm_p.add_argument("--optimize", action="store_true")

    trace_p = sub.add_parser(
        "trace", help="run and export a Chrome trace_event JSON timeline"
    )
    trace_p.add_argument("file")
    trace_p.add_argument("--args", nargs="*", type=int, default=[])
    trace_p.add_argument("--entry", default="main")
    trace_p.add_argument("--optimize", action="store_true")
    trace_p.add_argument(
        "--out", default=None, help="output path (default: <file>.trace.json)"
    )
    trace_p.add_argument(
        "--phases",
        action="store_true",
        help="overlay the measured per-migration phase decomposition",
    )
    trace_p.add_argument(
        "--detail", action="store_true", help="record per-TLP PCIe events too"
    )
    trace_p.add_argument(
        "--limit", type=int, default=None, help="event ring size (default 100000)"
    )

    profile_p = sub.add_parser(
        "profile", help="run and print the observability summary"
    )
    profile_p.add_argument("file")
    profile_p.add_argument("--args", nargs="*", type=int, default=[])
    profile_p.add_argument("--entry", default="main")
    profile_p.add_argument("--optimize", action="store_true")
    profile_p.add_argument(
        "--by-pid", action="store_true", help="one breakdown table per migrating task"
    )

    metrics_p = sub.add_parser(
        "metrics", help="run and emit derived metrics (OpenMetrics or JSON)"
    )
    metrics_p.add_argument("file")
    metrics_p.add_argument("--args", nargs="*", type=int, default=[])
    metrics_p.add_argument("--entry", default="main")
    metrics_p.add_argument("--optimize", action="store_true")
    metrics_p.add_argument(
        "--format",
        choices=("openmetrics", "json"),
        default="openmetrics",
        help="output format (default: openmetrics)",
    )
    metrics_p.add_argument(
        "--by-pid",
        action="store_true",
        help="include per-pid latency histogram series",
    )
    metrics_p.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )

    bench_p = sub.add_parser(
        "bench", help="measure simulator throughput, fast paths on vs off"
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads, one repeat (a quick smoke, not a stable number)",
    )
    bench_p.add_argument(
        "--hosted",
        action="store_true",
        help="also measure hosted-mode op batching (on vs off, exact parity)",
    )
    bench_p.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="write this run's report as a baseline JSON",
    )
    bench_p.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="gate this run against a saved baseline (exit 1 on regression)",
    )

    chaos_p = sub.add_parser(
        "chaos", help="run workloads under seeded fault plans; verdict table"
    )
    chaos_p.add_argument(
        "--plan",
        action="append",
        default=None,
        metavar="NAME",
        help="builtin plan to run (repeatable; default: the whole matrix)",
    )
    chaos_p.add_argument(
        "--plan-file",
        action="append",
        default=None,
        metavar="PATH",
        help="fault plan JSON (flick.fault_plan.v1) to run (repeatable)",
    )
    chaos_p.add_argument(
        "--seed", type=int, default=0, help="plan seed (default: 0)"
    )
    chaos_p.add_argument(
        "--bound-us",
        type=float,
        default=None,
        help="sim-time bound per case in microseconds (default: 50000)",
    )
    chaos_p.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workload subset (default: all)",
    )
    chaos_p.add_argument(
        "--list", action="store_true", help="list builtin plans and workloads, then exit"
    )

    serve_p = sub.add_parser(
        "serve", help="replay seeded serving traffic; latency-vs-load table"
    )
    serve_p.add_argument(
        "--qps",
        nargs="+",
        type=float,
        default=[1000.0],
        metavar="QPS",
        help="offered load point(s) in requests/sec of simulated time "
        "(repeat values for a sweep; default: 1000)",
    )
    serve_p.add_argument(
        "--scenario",
        default="null_call",
        help="request mix (null_call, pointer_chase, kv_filter, bfs, mixed)",
    )
    serve_p.add_argument(
        "--arrival",
        choices=("poisson", "bursty", "uniform"),
        default="poisson",
        help="arrival process (default: poisson)",
    )
    serve_p.add_argument(
        "--mode",
        choices=("open", "closed"),
        default="open",
        help="open loop (arrivals independent of completions, queueing "
        "delay counted) or closed loop (default: open)",
    )
    serve_p.add_argument("--seed", type=int, default=0, help="traffic seed (default: 0)")
    serve_p.add_argument(
        "--requests", type=int, default=200, help="requests per point (default: 200)"
    )
    serve_p.add_argument(
        "--clients", type=int, default=8, help="connection-pool size (default: 8)"
    )
    serve_p.add_argument(
        "--think-us",
        type=float,
        default=0.0,
        help="closed-loop think time between requests, microseconds",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (default: one per point, capped at cores)",
    )
    serve_p.add_argument(
        "--format",
        choices=("table", "json", "openmetrics"),
        default="table",
        help="stdout format (default: table)",
    )
    serve_p.add_argument(
        "--out", default=None, help="also write the flick.serving.v1 JSON report here"
    )
    serve_p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="gate: exit 1 unless every point achieves at least FRAC of its "
        "offered QPS and reports a finite p99 (the CI smoke check)",
    )
    serve_p.add_argument(
        "--nxps",
        type=int,
        default=1,
        help="NxP devices on the serving machine (default: 1)",
    )
    serve_p.add_argument(
        "--policy",
        choices=("static", "round_robin", "least_loaded", "locality"),
        default="static",
        help="session placement policy for --nxps > 1 (default: static)",
    )
    serve_p.add_argument(
        "--traced",
        action="store_true",
        help="request-scoped causal tracing: per-request trace ids and "
        "exactly-tiling critical paths; adds a tail-attribution line "
        "per point (docs/OBSERVABILITY.md)",
    )
    serve_p.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="latency SLO to evaluate per point, e.g. p99:500us "
        "(repeatable; windowed burn rates printed per point; evaluated "
        "over completed requests, shed requests reported separately)",
    )
    serve_p.add_argument(
        "--slo-gate",
        action="store_true",
        help="exit 1 if any --slo promise is violated at any point",
    )
    serve_p.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request deadline in microseconds; requests whose "
        "deadline expires before dispatch are shed with a typed "
        "rejection instead of served late (docs/ROBUSTNESS.md)",
    )
    serve_p.add_argument(
        "--admission-limit",
        type=int,
        default=0,
        help="admission-control queue depth per in-service device; "
        "arrivals beyond it are shed at the front door (0 = unbounded)",
    )
    serve_p.add_argument(
        "--brownout",
        action="store_true",
        help="brownout mode: route over-limit / deadline-risk calls to "
        "host fallback instead of shedding (needs --admission-limit "
        "or --deadline-us)",
    )

    why_p = sub.add_parser(
        "why",
        help="serve traced traffic and explain the latency tail: "
        "percentile-band phase breakdown, dominant phase, exemplar "
        "trace ids (docs/OBSERVABILITY.md)",
    )
    why_p.add_argument(
        "--qps", type=float, default=20_000.0, help="offered load (default: 20000)"
    )
    why_p.add_argument(
        "--scenario",
        default="null_call",
        help="request mix (null_call, pointer_chase, kv_filter, bfs, mixed)",
    )
    why_p.add_argument(
        "--arrival",
        choices=("poisson", "bursty", "uniform"),
        default="poisson",
        help="arrival process (default: poisson)",
    )
    why_p.add_argument("--seed", type=int, default=7, help="traffic seed (default: 7)")
    why_p.add_argument(
        "--requests", type=int, default=200, help="request count (default: 200)"
    )
    why_p.add_argument(
        "--clients", type=int, default=8, help="connection-pool size (default: 8)"
    )
    why_p.add_argument(
        "--nxps", type=int, default=1, help="NxP devices (default: 1)"
    )
    why_p.add_argument(
        "--policy",
        choices=("static", "round_robin", "least_loaded", "locality"),
        default="static",
        help="session placement policy for --nxps > 1 (default: static)",
    )
    why_p.add_argument(
        "--p99",
        dest="percentile",
        action="store_const",
        const=99.0,
        default=99.0,
        help="attribute the p99 tail (the default)",
    )
    why_p.add_argument(
        "--percentile",
        dest="percentile",
        type=float,
        help="attribute this percentile's tail instead of p99",
    )
    why_p.add_argument(
        "--kill-aim",
        action="store_true",
        help="chaos: run an untouched baseline, then kill one device at "
        "an instant aimed inside an in-flight leg and attribute the "
        "killed run (needs --nxps >= 2)",
    )
    why_p.add_argument(
        "--kill-device",
        type=int,
        default=0,
        help="device --kill-aim kills (default: 0)",
    )
    why_p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="stdout format (default: table; json = flick.why.v1)",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="multi-NxP fleet study: scaling curve, placement ablation, "
        "chaos drain (docs/FLEET.md)",
    )
    fleet_p.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized study (two device counts, two load points)",
    )
    fleet_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (default: capped at cores)",
    )
    fleet_p.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="stdout format (default: table)",
    )
    fleet_p.add_argument(
        "--out", default=None, help="also write the flick.fleet.v1 JSON report here"
    )
    fleet_p.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless the chaos drain served every request correctly "
        "and peak throughput rises with device count (the CI fleet smoke)",
    )
    fleet_p.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="latency SLO evaluated against the chaos runs, e.g. p99:2ms "
        "(repeatable; with --gate a violated SLO fails the gate)",
    )
    fleet_p.add_argument(
        "--revive-at-ns",
        type=float,
        default=None,
        metavar="NS",
        help="kill-then-revive drain: revive the killed device at this "
        "sim instant (must land after the kill); the device re-enters "
        "service through half-open breaker probes and with --gate must "
        "serve a nonzero post-revival share (docs/ROBUSTNESS.md)",
    )

    return parser


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _link(source: str, entry: str, optimize: bool):
    obj = compile_source(source, optimize=optimize)
    return link([obj], entry_symbol=entry, extra_symbols=dict(STUB_SYMBOLS))


def _cmd_run(args, out) -> int:
    machine = FlickMachine()
    obj = compile_source(_read(args.file), optimize=args.optimize)
    exe = link([obj], entry_symbol=args.entry, extra_symbols=machine.runtime_symbols)
    outcome = machine.run_program(exe, entry=args.entry, args=args.args)
    if outcome.output:
        for value in outcome.output:
            print(value, file=out)
    print(f"return value: {outcome.retval}", file=out)
    print(f"simulated time: {outcome.sim_time_us:.3f} us", file=out)
    print(f"migrations: {outcome.migrations}", file=out)
    if args.trace:
        print(machine.trace.render(), file=out)
    if args.stats:
        for key, value in sorted(outcome.stats.items()):
            print(f"  {key} = {value}", file=out)
    return 0


def _cmd_compile(args, out) -> int:
    exe = _link(_read(args.file), args.entry, args.optimize)
    print("segments:", file=out)
    for seg in exe.segments:
        isa = seg.isa or "-"
        print(
            f"  {seg.section_name:12s} vaddr={seg.vaddr:#10x} size={seg.size:6d} "
            f"isa={isa:5s} placement={seg.placement}",
            file=out,
        )
    print("symbols:", file=out)
    for name, addr in sorted(exe.symbols.items(), key=lambda kv: kv[1]):
        isa = exe.isa_of_symbol.get(name) or "data/ext"
        print(f"  {addr:#10x}  {name}  [{isa}]", file=out)
    return 0


def _cmd_disasm(args, out) -> int:
    exe = _link(_read(args.file), args.entry, args.optimize)
    for section_name, isa in ((".text.hisa", "hisa"), (".text.nisa", "nisa")):
        try:
            seg = exe.segment_named(section_name)
        except FelfError:
            continue  # program has no functions on this ISA
        print(f"{section_name} ({isa}):", file=out)
        print(disassemble(seg.data, isa, base=seg.vaddr), file=out)
        print(file=out)
    return 0


def _run_machine(args):
    """Shared compile+load+run for the observability commands."""
    machine = FlickMachine()
    if getattr(args, "limit", None):
        machine.trace.limit = args.limit
    if getattr(args, "detail", False):
        machine.trace.detail = True
    obj = compile_source(_read(args.file), optimize=args.optimize)
    exe = link([obj], entry_symbol=args.entry, extra_symbols=machine.runtime_symbols)
    outcome = machine.run_program(exe, entry=args.entry, args=args.args)
    return machine, outcome


def _cmd_trace(args, out) -> int:
    from repro.analysis.breakdown import chrome_phase_events

    machine, outcome = _run_machine(args)
    extra = chrome_phase_events(machine.trace, allow_truncated=True) if args.phases else None
    dst = args.out or f"{args.file}.trace.json"
    machine.trace.export_chrome(dst, extra_events=extra)
    print(
        f"{len(machine.trace.events)} events, {outcome.migrations} migrations, "
        f"{outcome.sim_time_us:.3f} us simulated -> {dst}",
        file=out,
    )
    if machine.trace.truncated:
        print(
            f"WARNING: ring dropped {machine.trace.dropped} events "
            f"({machine.trace.spans_dropped} spans); raise --limit for a full trace",
            file=out,
        )
        return 1
    return 0


def _cmd_profile(args, out) -> int:
    from repro.analysis.breakdown import (
        measure_breakdown,
        measure_breakdown_by_pid,
        render_breakdown,
    )

    machine, outcome = _run_machine(args)
    trace = machine.trace
    print(f"return value: {outcome.retval}", file=out)
    print(f"simulated time: {outcome.sim_time_us:.3f} us", file=out)
    print(file=out)
    if args.by_pid:
        for pid, breakdown in measure_breakdown_by_pid(trace).items():
            print(f"pid {pid}:", file=out)
            print(render_breakdown(breakdown, machine.cfg.host_page_fault_ns), file=out)
            print(file=out)
    else:
        breakdown = measure_breakdown(trace)
        print(render_breakdown(breakdown, machine.cfg.host_page_fault_ns), file=out)
        print(file=out)
    spans = trace.finished_spans()
    open_spans = trace.open_spans()
    if spans or open_spans:
        print("spans:", file=out)
        census = {}
        for span in spans:
            census.setdefault(span.name, []).append(span.duration)
        for name, durations in sorted(census.items()):
            total_us = sum(durations) / 1000.0
            print(
                f"  {name:14s} n={len(durations):4d} total={total_us:10.3f}us "
                f"mean={total_us / len(durations):8.3f}us",
                file=out,
            )
        if open_spans:
            unfinished = {}
            for span in open_spans:
                unfinished[span.name] = unfinished.get(span.name, 0) + 1
            for name, count in sorted(unfinished.items()):
                print(f"  {name:14s} n={count:4d} UNFINISHED", file=out)
        if trace.span_anomalies:
            print(f"  span anomalies: {trace.span_anomalies}", file=out)
        print(file=out)
    jit = machine.jit_stats()
    if jit.get("jit.compiled_blocks"):
        print("jit tier:", file=out)
        for key, value in sorted(jit.items()):
            print(f"  {key} = {value:g}", file=out)
        print(file=out)
    print("stats:", file=out)
    for key, value in sorted(outcome.stats.items()):
        print(f"  {key} = {value}", file=out)
    return 0


def _cmd_metrics(args, out) -> int:
    from repro.analysis.metrics import (
        build_run_report,
        render_json,
        render_openmetrics,
    )

    machine, _outcome = _run_machine(args)
    report = build_run_report(machine, allow_truncated=True)
    if not args.by_pid:
        report.by_pid = {}
    text = render_json(report) if args.format == "json" else render_openmetrics(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.format} report -> {args.out}", file=out)
    else:
        out.write(text)
    return 0


def _cmd_bench(args, out) -> int:
    from dataclasses import asdict

    from repro.analysis.simspeed import (
        measure_all,
        measure_hosted_batching,
        render,
        render_hosted,
    )

    if args.quick:
        results = measure_all(repeats=1, scale=0.15)
    else:
        results = measure_all(repeats=3)
    print(render(results), file=out)
    ok = all(r.parity for r in results)
    hosted = None
    if args.hosted:
        if args.quick:
            hosted = measure_hosted_batching(accesses=30_000, repeats=1)
        else:
            hosted = measure_hosted_batching()
        print(render_hosted(hosted), file=out)
        ok = ok and hosted.parity

    if args.save or args.check:
        doc = {
            "benchmark": "simspeed",
            "workloads": [asdict(r) for r in results],
        }
        if hosted is not None:
            doc["hosted_batching"] = asdict(hosted)
        if args.save:
            import json

            with open(args.save, "w") as handle:
                json.dump(doc, handle, indent=2)
            print(f"baseline saved -> {args.save}", file=out)
        if args.check:
            from repro.analysis.regression import compare_files, render_regression

            gate = compare_files(args.check, current_doc=doc)
            print(render_regression(gate), file=out)
            ok = ok and gate.ok
    return 0 if ok else 1


def _cmd_chaos(args, out) -> int:
    from repro.analysis.chaos import (
        DEFAULT_BOUND_NS,
        WORKLOADS,
        render_verdicts,
        run_chaos_matrix,
        run_multi_nxp_revive_case,
        run_overload_storm_case,
    )
    from repro.sim.faults import FaultPlan, builtin_plans

    builtin = builtin_plans(args.seed)
    if args.list:
        print("builtin plans:", file=out)
        for name, plan in builtin.items():
            print(f"  {name} ({len(plan.rules)} rule(s))", file=out)
        print(f"workloads: {', '.join(sorted(WORKLOADS))}", file=out)
        return 0
    plans = None
    if args.plan or args.plan_file:
        plans = []
        for name in args.plan or []:
            if name not in builtin:
                print(f"unknown plan {name!r} (try --list)", file=out)
                return 2
            plans.append(builtin[name])
        for path in args.plan_file or []:
            plans.append(FaultPlan.from_json(_read(path)).with_seed(args.seed))
    bound_ns = args.bound_us * 1000.0 if args.bound_us is not None else DEFAULT_BOUND_NS
    results = run_chaos_matrix(
        plans=plans, workloads=args.workloads, seed=args.seed, bound_ns=bound_ns
    )
    if plans is None and args.workloads is None:
        # Full-matrix runs also exercise the robustness scenarios:
        # admission + retry-budget under an overload storm, and the
        # breaker's kill-then-revive path (docs/ROBUSTNESS.md).
        results.append(run_overload_storm_case(seed=args.seed))
        results.append(run_multi_nxp_revive_case())
    print(render_verdicts(results), file=out)
    bad = [r for r in results if not r.ok]
    return 1 if bad else 0


def _warn_truncated(results, out) -> None:
    """Satellite of the tracing work: a bounded trace ring silently
    windows every span-derived number; say so out loud."""
    for r in results:
        if r.trace_dropped or r.trace_spans_dropped:
            print(
                f"WARNING: @ {r.offered_qps:g} qps the trace ring dropped "
                f"{r.trace_dropped} events / {r.trace_spans_dropped} spans; "
                "utilization and critical paths cover a window of the run",
                file=out,
            )


def _cmd_serve(args, out) -> int:
    import math

    from repro.analysis.serving import (
        TrafficConfig,
        render_serving_openmetrics,
        render_serving_table,
        serving_report_doc,
        sweep_latency_vs_load,
        write_serving_report,
    )
    from repro.analysis.slo import evaluate_slo, parse_slo, render_slo

    base = TrafficConfig(
        scenario=args.scenario,
        arrival=args.arrival,
        mode=args.mode,
        seed=args.seed,
        requests=args.requests,
        clients=args.clients,
        think_ns=args.think_us * 1000.0,
        nxps=args.nxps,
        policy=args.policy,
        traced=args.traced,
        deadline_ns=args.deadline_us * 1000.0,
        admission_limit=args.admission_limit,
        brownout=args.brownout,
    )
    try:
        base.validate()
        if args.brownout and not (args.admission_limit or args.deadline_us):
            raise ValueError(
                "--brownout needs --admission-limit or --deadline-us "
                "(nothing to brown out otherwise)"
            )
        slos = [parse_slo(spec) for spec in args.slo or []]
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    results = sweep_latency_vs_load(args.qps, base, workers=args.workers)

    if args.format == "json":
        import json

        out.write(json.dumps(serving_report_doc(results), indent=2) + "\n")
    elif args.format == "openmetrics":
        out.write(render_serving_openmetrics(results))
    else:
        print(render_serving_table(results), file=out)
        if args.traced:
            from repro.analysis.critical_path import why_report

            for r in results:
                rep = why_report(r.paths)
                exemplars = ", ".join(rep.tail.exemplars)
                print(
                    f"p99 attribution @ {r.offered_qps:g} qps: "
                    f"{rep.tail.dominant} ({exemplars})",
                    file=out,
                )
    _warn_truncated(results, out)
    if args.out:
        write_serving_report(results, args.out)
        print(f"serving report -> {args.out}", file=out)

    slo_ok = True
    for slo in slos:
        for r in results:
            # Percentiles over completed requests only: a shed request
            # has no latency, and counting it would let heavy shedding
            # masquerade as a latency win.  The shed count rides along.
            rep = evaluate_slo(r.completed_records, slo, shed=r.shed)
            slo_ok = slo_ok and rep.ok
            verdict = render_slo(rep).splitlines()[0]
            print(f"@ {r.offered_qps:g} qps: {verdict}", file=out)
    if args.slo_gate and not slo_ok:
        print("serve SLO gate FAILED", file=out)
        return 1

    if args.tolerance is not None:
        bad = []
        for r in results:
            # achieved_qps already counts completed requests only, so a
            # point that sheds its way out of overload fails the ratio
            # check unless the tolerance allows for the shed fraction.
            ratio = r.achieved_qps / r.offered_qps if r.offered_qps > 0 else 0.0
            if ratio < args.tolerance:
                note = f" ({r.shed} shed)" if r.shed else ""
                bad.append(
                    f"{r.offered_qps:g} qps: achieved/offered {ratio:.3f}{note}"
                )
            if not math.isfinite(r.p99_ns):
                bad.append(f"{r.offered_qps:g} qps: no p99 (empty latency sample)")
            if r.errors:
                bad.append(f"{r.offered_qps:g} qps: {r.errors} wrong return value(s)")
        if bad:
            print("serve gate FAILED:", file=out)
            for line in bad:
                print(f"  {line}", file=out)
            return 1
        print(f"serve gate ok (tolerance {args.tolerance})", file=out)
    return 0


def _cmd_why(args, out) -> int:
    import json

    from repro.analysis.critical_path import render_why, why_doc, why_report
    from repro.analysis.serving import TrafficConfig, aim_kill_ns, run_serving

    base = TrafficConfig(
        scenario=args.scenario,
        arrival=args.arrival,
        mode="open",
        seed=args.seed,
        qps=args.qps,
        requests=args.requests,
        clients=args.clients,
        nxps=args.nxps,
        policy=args.policy,
        traced=True,
    )
    try:
        base.validate()
        if args.kill_aim and args.nxps < 2:
            raise ValueError("--kill-aim needs --nxps >= 2 (survivors)")
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    # In json mode the document must be alone on stdout (machine
    # parseable); status notes and warnings go to stderr instead.
    note_out = sys.stderr if args.format == "json" else out
    result = run_serving(base)
    if args.kill_aim:
        from dataclasses import replace

        kill_at = aim_kill_ns(result, args.kill_device)
        result = run_serving(
            replace(base, kill_at_ns=kill_at, kill_device=args.kill_device)
        )
        print(
            f"killed device {args.kill_device} at {kill_at / 1000.0:.1f} us "
            "(aimed at an in-flight leg observed in the baseline)",
            file=note_out,
        )
    report = why_report(result.paths, percentile=args.percentile)
    if args.format == "json":
        out.write(json.dumps(why_doc(report), indent=2) + "\n")
    else:
        print(render_why(report), file=out)
    _warn_truncated([result], note_out)
    return 0


def _cmd_fleet(args, out) -> int:
    from repro.analysis.fleet import (
        FleetConfig,
        fleet_report_doc,
        render_ablation_table,
        render_chaos_summary,
        render_scaling_table,
        run_fleet,
        write_fleet_report,
    )
    from repro.analysis.slo import evaluate_slo, parse_slo, render_slo

    try:
        slos = [parse_slo(spec) for spec in args.slo or []]
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    fc = FleetConfig.smoke() if args.smoke else FleetConfig()
    if args.revive_at_ns is not None:
        from dataclasses import replace

        fc = replace(fc, chaos_revive_at_ns=args.revive_at_ns)
    report = run_fleet(fc, workers=args.workers)

    if args.format == "json":
        import json

        out.write(json.dumps(fleet_report_doc(report), indent=2) + "\n")
    else:
        print("== scaling: throughput vs NxP count ==", file=out)
        print(render_scaling_table(report.scaling), file=out)
        print("", file=out)
        print("== placement ablation ==", file=out)
        print(render_ablation_table(report.ablation), file=out)
        print("", file=out)
        print("== chaos drain ==", file=out)
        print(render_chaos_summary(report.chaos), file=out)
    _warn_truncated([report.chaos.baseline, report.chaos.killed], out)
    if args.out:
        write_fleet_report(report, args.out)
        print(f"fleet report -> {args.out}", file=out)

    slo_failures = []
    for slo in slos:
        for label, run in (
            ("baseline", report.chaos.baseline),
            ("killed", report.chaos.killed),
        ):
            rep = evaluate_slo(run.completed_records, slo, shed=run.shed)
            verdict = render_slo(rep).splitlines()[0]
            print(f"chaos {label}: {verdict}", file=out)
            if not rep.ok:
                slo_failures.append(f"chaos {label} violates {slo.spec}")

    if args.gate:
        bad = list(slo_failures)
        if not report.chaos.all_served_ok:
            bad.append(
                f"chaos drain lost requests or returned wrong values "
                f"({report.chaos.killed.errors} errors)"
            )
        if args.revive_at_ns is not None and report.chaos.verdict != "recovered":
            bad.append(
                f"kill-then-revive drain verdict {report.chaos.verdict!r}: "
                f"revived={report.chaos.revived} post-revival "
                f"share={report.chaos.post_revival_share:.2f} "
                "(expected the killed device back in service)"
            )
        peaks = [pt.peak_achieved_qps for pt in report.scaling]
        if any(b <= a for a, b in zip(peaks, peaks[1:])):
            bad.append(
                "peak achieved QPS does not rise with device count: "
                + ", ".join(f"{p:.0f}" for p in peaks)
            )
        for row in report.ablation:
            if row.result.errors:
                bad.append(
                    f"ablation policy {row.policy!r}: "
                    f"{row.result.errors} wrong return value(s)"
                )
        if bad:
            print("fleet gate FAILED:", file=out)
            for line in bad:
                print(f"  {line}", file=out)
            return 1
        print("fleet gate ok", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compile": _cmd_compile,
        "disasm": _cmd_disasm,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "metrics": _cmd_metrics,
        "bench": _cmd_bench,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "why": _cmd_why,
        "fleet": _cmd_fleet,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
