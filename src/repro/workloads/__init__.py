"""The paper's evaluation workloads: null call, pointer chase, BFS."""

from repro.workloads.bfs import BFSResult, reference_bfs_order, run_bfs
from repro.workloads.graphs import PAPER_DATASETS, GraphCSR, scaled_dataset, social_graph
from repro.workloads.kv_filter import KVFilterResult, run_kv_filter, sweep_selectivity
from repro.workloads.null_call import (
    RoundTripResult,
    measure_h2n_roundtrip,
    measure_n2h_roundtrip,
    measure_roundtrips,
)
from repro.workloads.pointer_chase import (
    PointerChasePoint,
    run_pointer_chase,
    sweep_pointer_chase,
)
from repro.workloads.serving_profiles import (
    PROFILES,
    SCENARIOS,
    RequestProfile,
    scenario_mix,
)

__all__ = [
    "measure_h2n_roundtrip",
    "measure_n2h_roundtrip",
    "measure_roundtrips",
    "RoundTripResult",
    "run_pointer_chase",
    "sweep_pointer_chase",
    "PointerChasePoint",
    "run_bfs",
    "reference_bfs_order",
    "BFSResult",
    "GraphCSR",
    "social_graph",
    "scaled_dataset",
    "PAPER_DATASETS",
    "run_kv_filter",
    "sweep_selectivity",
    "KVFilterResult",
    "RequestProfile",
    "PROFILES",
    "SCENARIOS",
    "scenario_mix",
]
