"""BFS application benchmark (Section V-C, Table IV).

The graph lives in the NxP-side DRAM, as in the paper.  The traversal
function either migrates to the NxP (Flick) or runs on the host reaching
across PCIe (baseline).  To emulate the common "host must do something
per result" pattern, the traversal calls a **dummy host function for
every newly discovered vertex** — under Flick that is a full
NxP-to-host-to-NxP migration round trip per vertex, which is why the
small, vertex-heavy Epinions graph *loses* while the edge-heavy graphs
win (Table IV's shape).

Graph layout: **per-vertex adjacency linked lists** (16-byte edge nodes
``{target, next}`` plus a per-vertex head array and a visited bitmap).
This pointer-based layout issues three dependent memory accesses per
edge, which reproduces the per-edge traversal times implied by the
paper's Table IV (their baseline spends ~3.5 us per edge — several
uncached PCIe round trips — far more than a packed-CSR scan would);
see EXPERIMENTS.md for the derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.hosted import HostedMachine, HostedProgram
from repro.workloads.graphs import GraphCSR

__all__ = [
    "BFSResult",
    "run_bfs",
    "reference_bfs_order",
    "PER_EDGE_COMPUTE_CYCLES",
    "PER_VERTEX_COMPUTE_CYCLES",
]

PER_EDGE_COMPUTE_CYCLES = 60  # pointer chase + visited test on a scalar core
PER_VERTEX_COMPUTE_CYCLES = 40  # queue management per dequeued vertex
EDGE_NODE_BYTES = 16  # {target: u64, next: u64}


@dataclass
class BFSResult:
    mode: str  # "flick" | "host"
    sim_time_ns: float
    discovered: int
    migrations_per_vertex: bool
    graph_vertices: int
    graph_edges: int

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ns / 1e9


def _build_program(visit_host: bool) -> HostedProgram:
    prog = HostedProgram()

    def host_visit(ctx, v):
        # The paper's dummy per-vertex host function: immediately returns.
        ctx.compute(4)
        return 0
        yield  # pragma: no cover - generator marker

    prog.register("host_visit", "hisa", host_visit)

    def traverse(ctx, heads, visited, frontier, source, vertices, unused):
        """BFS over linked adjacency lists in simulated memory.

        With batching off the edge loop runs a generator flush check per
        edge (the original reference path); with batching on it checks
        once per ``ctx.batch_ops`` edges via a countdown, with the timed
        ops hoisted to locals.  Edge order is preserved exactly either
        way, so the two paths match bit for bit.
        """
        if ctx.batch_ops <= 1:
            ctx.store(visited + source, 1, nbytes=1)
            ctx.store(frontier, source)
            head_idx, tail = 0, 1
            discovered = 1
            while head_idx < tail:
                u = ctx.load(frontier + head_idx * 8)
                head_idx += 1
                node = ctx.load(heads + u * 8)
                ctx.compute(PER_VERTEX_COMPUTE_CYCLES)
                while node:
                    v = ctx.load(node)  # edge target
                    nxt = ctx.load(node + 8)  # next edge node
                    ctx.compute(PER_EDGE_COMPUTE_CYCLES)
                    if ctx.load(visited + v, nbytes=1) == 0:
                        ctx.store(visited + v, 1, nbytes=1)
                        ctx.store(frontier + tail * 8, v)
                        tail += 1
                        discovered += 1
                        if visit_host:
                            yield from ctx.call("host_visit", v)
                    node = nxt
                    yield from ctx.maybe_flush()
            return discovered
        load, store, compute = ctx.load, ctx.store, ctx.compute
        store(visited + source, 1, nbytes=1)
        store(frontier, source)
        head_idx, tail = 0, 1
        discovered = 1
        batch = ctx.batch_ops
        budget = batch
        while head_idx < tail:
            u = load(frontier + head_idx * 8)
            head_idx += 1
            node = load(heads + u * 8)
            compute(PER_VERTEX_COMPUTE_CYCLES)
            while node:
                v = load(node)  # edge target
                nxt = load(node + 8)  # next edge node
                compute(PER_EDGE_COMPUTE_CYCLES)
                if load(visited + v, nbytes=1) == 0:
                    store(visited + v, 1, nbytes=1)
                    store(frontier + tail * 8, v)
                    tail += 1
                    discovered += 1
                    if visit_host:
                        yield from ctx.call("host_visit", v)
                node = nxt
                budget -= 1
                if budget <= 0:
                    budget = batch
                    if ctx.need_flush:
                        yield from ctx.flush()
        return discovered

    prog.register("traverse_nxp", "nisa", traverse)
    prog.register("traverse_host", "hisa", traverse)

    def main(ctx, heads, visited, frontier, source, vertices, remote):
        target = "traverse_nxp" if remote else "traverse_host"
        result = yield from ctx.call(target, heads, visited, frontier, source, vertices, 0)
        return result

    prog.register("main", "hisa", main)
    return prog


def _load_graph_linked(hosted: HostedMachine, graph: GraphCSR):
    """Materialize the adjacency-linked-list image in NxP DRAM.

    Edge nodes are laid out in CSR order (vectorized construction), each
    node holding its target and the address of the next node of the same
    source vertex (0 terminates the list).
    """
    v, e = graph.vertices, graph.edges
    heap = hosted.process.nxp_heap
    heads = heap.alloc(v * 8, align=4096)
    visited = heap.alloc(v, align=4096)
    frontier = heap.alloc(v * 8, align=4096)
    nodes = heap.alloc(max(e, 1) * EDGE_NODE_BYTES, align=4096)

    row = graph.row_ptr
    targets = graph.col.astype("<u8")
    idx = np.arange(e, dtype=np.int64)
    next_addr = nodes + (idx + 1) * EDGE_NODE_BYTES
    # Last edge of each vertex terminates its list.
    last_of_vertex = np.zeros(e, dtype=bool)
    ends = row[1:][row[1:] > row[:-1]] - 1  # last edge index per non-empty vertex
    last_of_vertex[ends] = True
    next_addr[last_of_vertex] = 0

    image = np.empty(e * 2, dtype="<u8")
    image[0::2] = targets
    image[1::2] = next_addr.astype("<u8")
    hosted.machine.phys.write(hosted.translate(nodes), image.tobytes())

    heads_arr = np.where(
        row[1:] > row[:-1], nodes + row[:-1] * EDGE_NODE_BYTES, 0
    ).astype("<u8")
    hosted.machine.phys.write(hosted.translate(heads), heads_arr.tobytes())
    return heads, visited, frontier


def run_bfs(
    graph: GraphCSR,
    mode: str = "flick",
    cfg: Optional[FlickConfig] = None,
    source: int = 0,
    visit_host: bool = True,
) -> BFSResult:
    """One BFS traversal; returns timing plus the discovery count."""
    if mode not in ("flick", "host"):
        raise ValueError(f"mode must be 'flick' or 'host', not {mode!r}")
    prog = _build_program(visit_host)
    hosted = HostedMachine(prog, cfg=cfg or DEFAULT_CONFIG)
    heads, visited, frontier = _load_graph_linked(hosted, graph)

    out = hosted.run(
        "main",
        [heads, visited, frontier, source, graph.vertices, 1 if mode == "flick" else 0],
    )
    return BFSResult(
        mode=mode,
        sim_time_ns=out.sim_time_ns,
        discovered=out.retval,
        migrations_per_vertex=visit_host,
        graph_vertices=graph.vertices,
        graph_edges=graph.edges,
    )


def reference_bfs_order(graph: GraphCSR, source: int = 0) -> List[int]:
    """Pure-Python reference BFS (for correctness tests)."""
    seen = [False] * graph.vertices
    seen[source] = True
    queue = [source]
    order = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v_ in graph.neighbors(u):
            v_ = int(v_)
            if not seen[v_]:
                seen[v_] = True
                queue.append(v_)
                order.append(v_)
    return order
