"""Synthetic graph generation standing in for the SNAP datasets.

The paper evaluates BFS on three SNAP social networks (Table IV).  We
cannot ship those datasets, so we generate deterministic directed graphs
with the same vertex/edge *ratios* (optionally scaled down for
pure-Python tractability):

=============  ==========  ===========  =====
dataset        vertices    edges        E/V
=============  ==========  ===========  =====
Epinions1      75,879      508,837      6.7
Pokec          1,632,803   30,622,564   18.8
LiveJournal1   4,847,571   68,993,773   14.2
=============  ==========  ===========  =====

The E/V ratio is what drives Table IV's shape (it sets the amount of
near-data work per forced migration), so preserving it preserves the
experiment; the scale factor is recorded with each result.

Generated graphs are connected from vertex 0 (a random arborescence
provides reachability; the remaining edges follow a skewed out-degree
distribution like real social graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["GraphCSR", "PAPER_DATASETS", "social_graph", "scaled_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    vertices: int
    edges: int
    size_label: str
    baseline_s: float  # paper's measured baseline seconds
    flick_s: float  # paper's measured Flick seconds


PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "epinions1": DatasetSpec("Epinions1", 75_879, 508_837, "16.7 MB", 1.8, 2.4),
    "pokec": DatasetSpec("Pokec", 1_632_803, 30_622_564, "1.0 GB", 107.4, 90.3),
    "livejournal1": DatasetSpec("LiveJournal1", 4_847_571, 68_993_773, "2.2 GB", 240.5, 220.9),
}


@dataclass
class GraphCSR:
    """A directed graph in compressed-sparse-row form."""

    row_ptr: np.ndarray  # int64, len V+1
    col: np.ndarray  # int64, len E

    @property
    def vertices(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def edges(self) -> int:
        return len(self.col)

    def neighbors(self, u: int) -> np.ndarray:
        return self.col[self.row_ptr[u] : self.row_ptr[u + 1]]

    def degree(self, u: int) -> int:
        return int(self.row_ptr[u + 1] - self.row_ptr[u])


def social_graph(vertices: int, edges: int, seed: int = 42) -> GraphCSR:
    """A deterministic directed graph, connected from vertex 0.

    * ``vertices - 1`` tree edges parent->child guarantee that BFS from
      vertex 0 reaches every vertex (like taking the giant component of
      a SNAP graph);
    * the remaining edges use a squared-uniform source distribution (a
      cheap heavy-tail) with uniform targets, echoing social-network
      degree skew.
    """
    if vertices < 2:
        raise ValueError("need at least 2 vertices")
    if edges < vertices - 1:
        raise ValueError("need at least V-1 edges for connectivity")
    rng = np.random.default_rng(seed)

    children = np.arange(1, vertices, dtype=np.int64)
    parents = (rng.random(vertices - 1) * children).astype(np.int64)  # parent < child

    extra = edges - (vertices - 1)
    skew = rng.random(extra)
    sources = (skew * skew * vertices).astype(np.int64)
    targets = rng.integers(0, vertices, size=extra, dtype=np.int64)

    src = np.concatenate([parents, sources])
    dst = np.concatenate([children, targets])

    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    row_ptr = np.zeros(vertices + 1, dtype=np.int64)
    np.add.at(row_ptr, src + 1, 1)
    np.cumsum(row_ptr, out=row_ptr)
    return GraphCSR(row_ptr=row_ptr, col=dst.astype(np.int64))


def scaled_dataset(name: str, scale: int = 16, seed: int = 42) -> Tuple[GraphCSR, DatasetSpec, int]:
    """Generate dataset ``name`` scaled down by ``scale`` (V and E both
    divided, preserving E/V).  Returns (graph, paper spec, scale)."""
    spec = PAPER_DATASETS[name]
    v = max(spec.vertices // scale, 2)
    e = max(spec.edges // scale, v - 1)
    return social_graph(v, e, seed=seed), spec, scale
