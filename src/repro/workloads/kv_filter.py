"""Near-data key-value filtering (extra workload).

The paper's introduction motivates NxPs with near-storage processing
(e.g. Biscuit [6]): ship the *scan* to the data instead of hauling every
record across PCIe.  This workload makes that concrete on the Flick
machine and exposes a trade-off the pointer-chase microbenchmark cannot:
**selectivity**.

A table of 16-byte records ``{key, value}`` lives in NxP DRAM.  A query
scans the table and appends the values of matching records (``key %
modulus == residue``) to a result buffer in *host* memory:

* **Flick**: the scan migrates to the NxP — record reads are local
  (~270 ns) but every *match* is a posted write back across PCIe;
* **baseline**: the host scans across PCIe (~825 ns per record) and
  writes matches locally for free.

So Flick's advantage shrinks as selectivity rises: at 100 % match rate
the PCIe traffic it avoided on reads comes back as writes.  The
crossover-vs-records-per-query behaviour mirrors Fig. 5a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.hosted import HostedMachine, HostedProgram

__all__ = ["KVFilterResult", "run_kv_filter", "sweep_selectivity", "RECORD_BYTES"]

RECORD_BYTES = 16  # {key: u64, value: u64}
PER_RECORD_COMPUTE_CYCLES = 8


@dataclass(frozen=True)
class KVFilterResult:
    mode: str
    records: int
    matches: int
    sim_time_ns: float

    @property
    def ns_per_record(self) -> float:
        return self.sim_time_ns / self.records


def _make_program() -> HostedProgram:
    prog = HostedProgram()

    def scan(ctx, table, n, modulus, residue, out_buf, out_cap):
        if ctx.batch_ops <= 1:
            # Batching off: the original per-record loop with one flush
            # check per record — the reference the batched branch must
            # match bit for bit.
            matches = 0
            for i in range(n):
                key = ctx.load(table + i * RECORD_BYTES)
                ctx.compute(PER_RECORD_COMPUTE_CYCLES)
                if key % modulus == residue:
                    value = ctx.load(table + i * RECORD_BYTES + 8)
                    if matches < out_cap:
                        ctx.store(out_buf + matches * 8, value)
                    matches += 1
                yield from ctx.maybe_flush()
            return matches
        # Batching on: up to ctx.batch_ops records between flush checks,
        # with the timed ops hoisted to locals.  Record order is
        # preserved exactly, so TLB state and stat counters match.
        matches = 0
        load, store, compute = ctx.load, ctx.store, ctx.compute
        i = 0
        while i < n:
            end = i + ctx.batch_ops
            if end > n:
                end = n
            while i < end:
                key = load(table + i * RECORD_BYTES)
                compute(PER_RECORD_COMPUTE_CYCLES)
                if key % modulus == residue:
                    value = load(table + i * RECORD_BYTES + 8)
                    if matches < out_cap:
                        store(out_buf + matches * 8, value)
                    matches += 1
                i += 1
            if ctx.need_flush:
                yield from ctx.flush()
        return matches

    prog.register("scan_nxp", "nisa", scan)
    prog.register("scan_host", "hisa", scan)

    def main(ctx, table, n, modulus, residue, out_buf, remote):
        target = "scan_nxp" if remote else "scan_host"
        return (yield from ctx.call(target, table, n, modulus, residue, out_buf, n))

    prog.register("main", "hisa", main)
    return prog


def _load_table(hosted: HostedMachine, records: int, seed: int) -> int:
    rng = np.random.default_rng(seed)
    table = hosted.process.nxp_heap.alloc(records * RECORD_BYTES, align=4096)
    image = np.empty(records * 2, dtype="<u8")
    image[0::2] = rng.integers(0, 1 << 32, size=records, dtype=np.uint64)  # keys
    image[1::2] = rng.integers(0, 1 << 20, size=records, dtype=np.uint64)  # values
    hosted.machine.phys.write(hosted.translate(table), image.tobytes())
    return table


def run_kv_filter(
    records: int,
    modulus: int = 10,
    residue: int = 3,
    mode: str = "flick",
    cfg: Optional[FlickConfig] = None,
    seed: int = 11,
) -> KVFilterResult:
    """One filtered scan; ``1/modulus`` is the expected selectivity."""
    if mode not in ("flick", "host"):
        raise ValueError(f"mode must be 'flick' or 'host', not {mode!r}")
    if modulus < 1 or not 0 <= residue < modulus:
        raise ValueError("need modulus >= 1 and 0 <= residue < modulus")
    prog = _make_program()
    hosted = HostedMachine(prog, cfg=cfg or DEFAULT_CONFIG)
    table = _load_table(hosted, records, seed)
    out_buf = hosted.process.host_heap.alloc(records * 8, align=4096)
    out = hosted.run(
        "main", [table, records, modulus, residue, out_buf, 1 if mode == "flick" else 0]
    )
    return KVFilterResult(
        mode=mode, records=records, matches=out.retval, sim_time_ns=out.sim_time_ns
    )


def sweep_selectivity(
    records: int,
    moduli: Sequence[int],
    cfg: Optional[FlickConfig] = None,
) -> Dict[float, float]:
    """Normalized Flick performance (baseline/Flick) per selectivity.

    ``moduli`` of [1, 2, 5, 10, ...] give selectivities 100%, 50%, 20%,
    10%, ...  Returns {selectivity: speedup}.
    """
    out: Dict[float, float] = {}
    for modulus in moduli:
        flick = run_kv_filter(records, modulus=modulus, residue=0, cfg=cfg, mode="flick")
        host = run_kv_filter(records, modulus=modulus, residue=0, cfg=cfg, mode="host")
        assert flick.matches == host.matches
        out[1.0 / modulus] = host.sim_time_ns / flick.sim_time_ns
    return out
