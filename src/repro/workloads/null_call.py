"""Null-call microbenchmark (Section V-A / Table III).

Measures Flick's thread-migration round-trip overhead exactly as the
paper does: a loop calls an immediately-returning function on the other
side many times; the average per-iteration time, minus the same loop's
overhead with a *local* immediately-returning callee, is the round trip.

Both directions are measured:

* **Host-NxP-Host** — host loop calls an ``@nxp`` nop.
* **NxP-Host-NxP** — an ``@nxp`` loop calls a host nop (the paper
  derives this by subtraction; we measure it directly with the loop
  running on the NxP, then subtract the NxP-side loop overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.machine import FlickMachine

__all__ = ["RoundTripResult", "measure_h2n_roundtrip", "measure_n2h_roundtrip", "measure_roundtrips"]

_H2N_SRC = """
@nxp func remote_nop() { return 0; }
func local_nop() { return 0; }
func main(n, remote) {
    var i = 0;
    if (remote) {
        while (i < n) { remote_nop(); i = i + 1; }
    } else {
        while (i < n) { local_nop(); i = i + 1; }
    }
    return 0;
}
"""

_N2H_SRC = """
func remote_nop() { return 0; }
@nxp func local_nop() { return 0; }
@nxp func dev_loop(n, remote) {
    var i = 0;
    if (remote) {
        while (i < n) { remote_nop(); i = i + 1; }
    } else {
        while (i < n) { local_nop(); i = i + 1; }
    }
    return 0;
}
func main(n, remote) { return dev_loop(n, remote); }
"""


@dataclass(frozen=True)
class RoundTripResult:
    """Average per-migration round trip, in nanoseconds."""

    roundtrip_ns: float
    loop_total_ns: float
    baseline_total_ns: float
    calls: int

    @property
    def roundtrip_us(self) -> float:
        return self.roundtrip_ns / 1000.0


def _loop_time(source: str, calls: int, remote: bool, cfg: FlickConfig, warmup: int) -> float:
    machine = FlickMachine(cfg)
    exe = machine.compile(source)
    process = machine.load(exe)
    # Warmup run: first-migration stack allocation, cold TLBs/I-cache.
    if warmup:
        thread = machine.spawn(process, args=[warmup, 1 if remote else 0])
        machine.run()
        start = thread.finished_at
    else:
        start = 0.0
    thread = machine.spawn(process, args=[calls, 1 if remote else 0])
    machine.run()
    return thread.finished_at - start


def measure_h2n_roundtrip(
    cfg: FlickConfig = DEFAULT_CONFIG, calls: int = 200, warmup: int = 3
) -> RoundTripResult:
    """Host-NxP-Host migration round trip (paper: 18.3 us)."""
    remote = _loop_time(_H2N_SRC, calls, remote=True, cfg=cfg, warmup=warmup)
    local = _loop_time(_H2N_SRC, calls, remote=False, cfg=cfg, warmup=warmup)
    return RoundTripResult(
        roundtrip_ns=(remote - local) / calls,
        loop_total_ns=remote,
        baseline_total_ns=local,
        calls=calls,
    )


def measure_n2h_roundtrip(
    cfg: FlickConfig = DEFAULT_CONFIG, calls: int = 200, warmup: int = 3
) -> RoundTripResult:
    """NxP-Host-NxP migration round trip (paper: 16.9 us)."""
    remote = _loop_time(_N2H_SRC, calls, remote=True, cfg=cfg, warmup=warmup)
    local = _loop_time(_N2H_SRC, calls, remote=False, cfg=cfg, warmup=warmup)
    return RoundTripResult(
        roundtrip_ns=(remote - local) / calls,
        loop_total_ns=remote,
        baseline_total_ns=local,
        calls=calls,
    )


def measure_roundtrips(cfg: FlickConfig = DEFAULT_CONFIG, calls: int = 200):
    """Both directions (Table III)."""
    return {
        "host-nxp-host": measure_h2n_roundtrip(cfg, calls),
        "nxp-host-nxp": measure_n2h_roundtrip(cfg, calls),
    }
