"""Pointer-chasing microbenchmark (Section V-B, Fig. 5).

Variable-length linked lists live in the NxP-side DRAM, nodes 8-byte
aligned and randomly spread.  A host loop calls a traversal function per
list; the traversal either migrates to the NxP (Flick) or runs on the
host reaching across PCIe (baseline).  Sweeping the list length sweeps
the amount of work per migration:

* Fig. 5a — back-to-back calls (no host work in between): Flick breaks
  even around ~32 accesses/migration and plateaus at ~2.6x; systems with
  500 us / 1 ms migration latency need far longer lists to benefit.
* Fig. 5b — a call every 100 us of host work: the plateau drops to ~2x.

All runs are hosted-mode: function bodies are timing-model generators,
but every migration runs the full descriptor/DMA/interrupt protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_CONFIG, FlickConfig
from repro.core.hosted import HostedMachine, HostedProgram

__all__ = [
    "PointerChasePoint",
    "paper_sweep_points",
    "build_chain",
    "run_pointer_chase",
    "sweep_pointer_chase",
    "PER_NODE_COMPUTE_CYCLES",
]

PER_NODE_COMPUTE_CYCLES = 10  # pointer update + loop bookkeeping
NODE_BYTES = 16  # one next-pointer per node, 16-byte spaced


@dataclass(frozen=True)
class PointerChasePoint:
    """One sweep point: average time per traversal call."""

    accesses: int
    avg_call_ns: float
    mode: str  # "flick" | "host"

    @property
    def avg_call_us(self) -> float:
        return self.avg_call_ns / 1000.0


def _make_program() -> HostedProgram:
    prog = HostedProgram()

    def traverse(ctx, head, count):
        if ctx.batch_ops <= 1:
            # Batching off: the original per-op loop — one load, one
            # compute, one flush check per node.  This is the reference
            # path the batched branch must match bit for bit.
            node = head
            remaining = count
            while remaining > 0:
                node = ctx.load(node)
                ctx.compute(PER_NODE_COMPUTE_CYCLES)
                remaining -= 1
                yield from ctx.maybe_flush()
            return node
        # Batching on: up to ctx.batch_ops dependent loads per ctx.chase
        # call, one flush check per consolidated run.
        node = head
        remaining = count
        batch = ctx.batch_ops
        while remaining > 0:
            run = batch if batch < remaining else remaining
            node = ctx.chase(node, run, PER_NODE_COMPUTE_CYCLES)
            remaining -= run
            if ctx.need_flush:
                yield from ctx.flush()
        return node

    prog.register("traverse_nxp", "nisa", traverse)
    prog.register("traverse_host", "hisa", traverse)

    def main(ctx, head, count, calls, remote, inter_call_ns):
        target = "traverse_nxp" if remote else "traverse_host"
        for _ in range(calls):
            if inter_call_ns:
                ctx.charge(inter_call_ns)  # unrelated host work
            yield from ctx.call(target, head, count)
        return 0

    prog.register("main", "hisa", main)
    return prog


def build_chain(hosted: HostedMachine, nodes: int, seed: int = 7) -> int:
    """Build one linked list of ``nodes`` in NxP DRAM; returns head vaddr.

    Node addresses are randomly spread within an allocation sized for the
    list (mirroring the paper's random 8-byte-aligned placement without
    touching gigabytes of simulated backing store).
    """
    rng = random.Random(seed)
    span = max(nodes * NODE_BYTES * 4, 4096)
    base = hosted.process.nxp_heap.alloc(span, align=4096)
    slots = rng.sample(range(span // NODE_BYTES), nodes)
    addrs = [base + s * NODE_BYTES for s in slots]
    # Vectorized image construction (same node addresses and links as
    # the one-write-per-node loop this replaces), flushed with one
    # physical write per 4 KB page so no write assumes physically
    # contiguous mappings across page boundaries.
    image = np.zeros(span // 8, dtype="<u8")
    idx = (np.array(addrs, dtype=np.int64) - base) >> 3
    image[idx[:-1]] = np.array(addrs[1:], dtype="<u8")
    raw = image.tobytes()
    phys = hosted.machine.phys
    for off in range(0, span, 4096):
        phys.write(hosted.translate(base + off), raw[off : off + 4096])
    return addrs[0]


def run_pointer_chase(
    accesses: int,
    calls: int = 10,
    mode: str = "flick",
    cfg: Optional[FlickConfig] = None,
    inter_call_ns: float = 0.0,
    warmup_calls: int = 2,
    seed: int = 7,
) -> PointerChasePoint:
    """Average per-call time for lists of ``accesses`` nodes."""
    if mode not in ("flick", "host"):
        raise ValueError(f"mode must be 'flick' or 'host', not {mode!r}")
    prog = _make_program()
    hosted = HostedMachine(prog, cfg=cfg or DEFAULT_CONFIG)
    head = build_chain(hosted, accesses, seed=seed)
    remote = 1 if mode == "flick" else 0
    if warmup_calls:
        hosted.run("main", [head, accesses, warmup_calls, remote, 0.0])
    out = hosted.run("main", [head, accesses, calls, remote, inter_call_ns])
    return PointerChasePoint(
        accesses=accesses,
        avg_call_ns=out.sim_time_ns / calls,
        mode=mode,
    )


def paper_sweep_points(step: int = 4, max_accesses: int = 1024):
    """The paper's exact sweep: 4..1024 in increments of 4 (256 points).

    The default benchmarks use a 16-point log-spaced subset for wall-time
    reasons; pass these points (e.g. via FLICK_BENCH_FULL=1 in the
    benches) to reproduce the figure at full granularity.
    """
    return list(range(step, max_accesses + 1, step))


def _sweep_job(job) -> tuple:
    """One sweep point (module-level so the parallel runner can pickle it)."""
    n, cfg, calls, inter_call_ns = job
    flick = run_pointer_chase(n, calls=calls, mode="flick", cfg=cfg, inter_call_ns=inter_call_ns)
    host = run_pointer_chase(n, calls=calls, mode="host", cfg=cfg, inter_call_ns=inter_call_ns)
    return n, host.avg_call_ns / flick.avg_call_ns


def sweep_pointer_chase(
    accesses_list: Sequence[int],
    cfg: Optional[FlickConfig] = None,
    calls: int = 10,
    inter_call_ns: float = 0.0,
    workers: Optional[int] = None,
) -> Dict[int, float]:
    """Normalized performance (baseline time / Flick time) per point.

    Values above 1.0 mean Flick outperforms the host-direct baseline —
    the y-axis of Fig. 5.

    Points are independent simulations, so they fan out over
    :func:`repro.analysis.sweep.parallel_map` (``workers`` argument,
    ``FLICK_SWEEP_WORKERS``, or all cores; results merge in input order,
    so the output is identical to a serial sweep).
    """
    from repro.analysis.sweep import parallel_map

    jobs = [(n, cfg, calls, inter_call_ns) for n in accesses_list]
    return dict(parallel_map(_sweep_job, jobs, workers=workers))
