"""Request profiles and scenario mixes for the serving-traffic harness.

The serving harness (``repro.analysis.serving``) replays production-ish
traffic against one simulated machine: many concurrent requests, each a
complete FlickC program run on its own task.  This module is the
workload side of that split (modeled on llm-d-benchmark's
harness/workload-profile separation): each :class:`RequestProfile` is
one *request type* — a dual-ISA FlickC program, its ``main()``
arguments, and the golden return value every served request is checked
against — and each scenario is a weighted mix of request types.

The four request types mirror the paper's evaluation workloads, scaled
to per-request size:

* ``null_call`` — a short loop of host→NxP→host migrations (Table III's
  round trip as an RPC body); the minimum-work request.
* ``pointer_chase`` — build a linked list in NxP DRAM from the host
  (writes cross PCIe), then chase it on the NxP (Fig. 5's near-data
  traversal).
* ``kv_filter`` — fill a key table in NxP DRAM and scan it with a
  modulo predicate on the NxP (the kv_filter near-data filter).
* ``bfs`` — the Table IV pattern: host builds an adjacency graph in NxP
  DRAM, the NxP traverses it, and every discovery migrates back for a
  host-side visit (heavy bidirectional traffic).

Every program here is **re-entrant by construction**: no mutable
globals, all working state allocated fresh inside ``main`` — the
harness reuses one loaded process per (client, request type) across
sequential requests, and concurrent clients run concurrent processes,
so shared-global state would corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "RequestProfile",
    "PROFILES",
    "SCENARIOS",
    "scenario_mix",
]


@dataclass(frozen=True)
class RequestProfile:
    """One request type: a FlickC program plus its fixed invocation."""

    kind: str
    source: str
    args: Tuple[int, ...]
    #: golden return value; every served request is checked against it
    expected: int


NULL_CALL_SRC = """
@nxp func rpc(x) { return x + 1; }
func main(n) {
    var i = 0;
    var acc = 0;
    while (i < n) { acc = rpc(acc); i = i + 1; }
    return acc;
}
"""

POINTER_CHASE_SRC = """
@nxp func nxp_alloc(n) { return alloc(n); }

// Host side: materialize the list in NxP DRAM (stores cross PCIe).
func build(n) {
    var base = nxp_alloc(n * 16);
    var i = 0;
    while (i < n) {
        var node = base + i * 16;
        var nxt = 0;
        if (i + 1 < n) { nxt = base + (i + 1) * 16; }
        store(node, i * 7);
        store(node + 8, nxt);
        i = i + 1;
    }
    return base;
}

@nxp func chase(head) {
    var sum = 0;
    var node = head;
    while (node != 0) {
        sum = sum + load(node);
        node = load(node + 8);
    }
    return sum;
}

func main(n) { return chase(build(n)); }
"""

KV_FILTER_SRC = """
@nxp func nxp_alloc(n) { return alloc(n); }

@nxp func fill(table, n) {
    var i = 0;
    while (i < n) { store(table + i * 8, i * 13 % 97); i = i + 1; }
    return 0;
}

@nxp func scan(table, n, m) {
    var hits = 0;
    var i = 0;
    while (i < n) {
        if (load(table + i * 8) % m == 0) { hits = hits + 1; }
        i = i + 1;
    }
    return hits;
}

func main(n, m) {
    var table = nxp_alloc(n * 8);
    fill(table, n);
    return scan(table, n, m);
}
"""

# The Table IV pattern from examples/flickc_bfs.py, minus its
# ``visit_count`` global (a serving process is reused across requests;
# a cross-request accumulator would make the program non-re-entrant).
BFS_SRC = """
@nxp func nxp_alloc(n) { return alloc(n); }

func host_note(v) { return v; }               // the per-discovery host work

func add_edge(heads, nodes, slot, u, v) {
    var node = nodes + slot * 16;
    store(node, v);
    store(node + 8, load(heads + u * 8));     // push-front
    store(heads + u * 8, node);
    return slot + 1;
}

func build_ring_with_chords(heads, nodes, n) {
    var slot = 0;
    var i = 0;
    while (i < n) {
        slot = add_edge(heads, nodes, slot, i, (i + 1) % n);          // ring
        if (i % 3 == 0) {
            slot = add_edge(heads, nodes, slot, i, (i + n / 2) % n);  // chord
        }
        i = i + 1;
    }
    return slot;
}

@nxp func bfs(heads, visited, frontier, source, n) {
    store8(visited + source, 1);
    store(frontier, source);
    var head = 0;
    var tail = 1;
    var found = 1;
    while (head < tail) {
        var u = load(frontier + head * 8);
        head = head + 1;
        var node = load(heads + u * 8);
        while (node != 0) {
            var v = load(node);
            if (load8(visited + v) == 0) {
                store8(visited + v, 1);
                store(frontier + tail * 8, v);
                tail = tail + 1;
                found = found + 1;
                host_note(v);
            }
            node = load(node + 8);
        }
    }
    return found;
}

func main(n) {
    var heads = nxp_alloc(n * 8);
    var visited = nxp_alloc(n);
    var frontier = nxp_alloc(n * 8);
    var nodes = nxp_alloc(2 * n * 16);
    build_ring_with_chords(heads, nodes, n);
    return bfs(heads, visited, frontier, 0, n);
}
"""

_NULL_CALL_N = 2
_CHASE_N = 16
_KV_N = 24
_KV_M = 3
_BFS_N = 12

PROFILES: Dict[str, RequestProfile] = {
    "null_call": RequestProfile(
        kind="null_call",
        source=NULL_CALL_SRC,
        args=(_NULL_CALL_N,),
        expected=_NULL_CALL_N,
    ),
    "pointer_chase": RequestProfile(
        kind="pointer_chase",
        source=POINTER_CHASE_SRC,
        args=(_CHASE_N,),
        expected=sum(7 * i for i in range(_CHASE_N)),
    ),
    "kv_filter": RequestProfile(
        kind="kv_filter",
        source=KV_FILTER_SRC,
        args=(_KV_N, _KV_M),
        expected=sum(1 for i in range(_KV_N) if (i * 13 % 97) % _KV_M == 0),
    ),
    "bfs": RequestProfile(
        kind="bfs",
        source=BFS_SRC,
        args=(_BFS_N,),
        expected=_BFS_N,
    ),
}

#: Scenario name -> weighted request-type mix (weights need not sum to
#: one; they are normalized at draw time).  The single-type scenarios
#: carry the paper workload names; ``mixed`` is a front-end-ish blend:
#: mostly cheap RPCs, some scans, the occasional heavy graph request.
SCENARIOS: Dict[str, List[Tuple[str, float]]] = {
    "null_call": [("null_call", 1.0)],
    "pointer_chase": [("pointer_chase", 1.0)],
    "kv_filter": [("kv_filter", 1.0)],
    "bfs": [("bfs", 1.0)],
    "mixed": [
        ("null_call", 0.50),
        ("kv_filter", 0.25),
        ("pointer_chase", 0.20),
        ("bfs", 0.05),
    ],
}


def scenario_mix(name: str) -> List[Tuple[str, float]]:
    """The normalized ``(kind, weight)`` mix of one scenario."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r} (know {sorted(SCENARIOS)})")
    mix = SCENARIOS[name]
    total = sum(weight for _kind, weight in mix)
    return [(kind, weight / total) for kind, weight in mix]
