"""Measured-breakdown tests: trace analysis vs config pricing."""

import pytest

from repro import FlickMachine
from repro.analysis.breakdown import measure_breakdown, render_breakdown
from repro.baselines import flick_roundtrip_component_ns
from repro.core.config import DEFAULT_CONFIG

NULL_CALL = """
@nxp func f() { return 0; }
func main(n) {
    var i = 0;
    while (i < n) { f(); i = i + 1; }
    return 0;
}
"""

NESTED = """
func host_leaf(x) { return x; }
@nxp func dev(x) { return host_leaf(x); }
func main() { return dev(1); }
"""


@pytest.fixture(scope="module")
def traced_machine():
    machine = FlickMachine()
    machine.run_program(NULL_CALL, args=[10])
    return machine


class TestMeasureBreakdown:
    def test_counts_simple_sessions(self, traced_machine):
        b = measure_breakdown(traced_machine.trace)
        assert b.sessions == 10

    def test_total_matches_calibrated_roundtrip(self, traced_machine):
        """Measured phases + the 0.7us fault = Table III's 18.3us
        (modulo the interpreted nop's handful of instructions)."""
        b = measure_breakdown(traced_machine.trace)
        total_us = (b.total_ns + DEFAULT_CONFIG.host_page_fault_ns) / 1000
        # Sessions include the first (cold) call, so allow some slack up.
        assert 17.5 < total_us < 21.0

    def test_phases_match_config_pricing(self, traced_machine):
        """Cross-check: the measured host_out phase equals the summed
        config constants for that path."""
        b = measure_breakdown(traced_machine.trace)
        cfg = DEFAULT_CONFIG
        expected_host_out = (
            cfg.host_handler_entry_ns
            + cfg.host_ioctl_entry_ns
            + cfg.host_desc_build_ns
            + cfg.host_context_switch_ns
            + cfg.host_dma_kick_ns
        )
        # First session also pays stack allocation; means sit slightly above.
        assert b.phases["host_out"] == pytest.approx(expected_host_out, rel=0.10)

    def test_host_resume_is_biggest_host_phase(self, traced_machine):
        """The wakeup path dominates (the cost of releasing the core)."""
        b = measure_breakdown(traced_machine.trace)
        assert b.phases["host_resume"] > b.phases["host_out"]

    def test_nested_sessions_excluded(self):
        machine = FlickMachine()
        machine.run_program(NESTED)
        b = measure_breakdown(machine.trace)
        assert b.sessions == 0  # the only session nested: skipped

    def test_empty_trace(self):
        machine = FlickMachine()
        b = measure_breakdown(machine.trace)
        assert b.sessions == 0
        assert b.total_ns == 0.0

    def test_pid_filter(self):
        machine = FlickMachine(host_cores=2)
        exe = machine.compile(NULL_CALL)
        p1 = machine.load(exe, name="a")
        p2 = machine.load(exe, name="b")
        machine.spawn(p1, args=[3])
        machine.spawn(p2, args=[5])
        machine.run()
        assert measure_breakdown(machine.trace, pid=p1.pid).sessions == 3
        assert measure_breakdown(machine.trace, pid=p2.pid).sessions == 5


class TestRender:
    def test_render_includes_all_phases_and_total(self, traced_machine):
        text = render_breakdown(measure_breakdown(traced_machine.trace))
        for phase in ("host_out", "transfer_to_nxp", "nxp_execute", "return_to_host", "host_resume"):
            assert phase in text
        assert "TOTAL" in text
        assert "page fault" in text
