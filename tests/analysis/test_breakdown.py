"""Measured-breakdown tests: trace analysis vs config pricing."""

import pytest

from repro import FlickMachine
from repro.analysis.breakdown import (
    measure_breakdown,
    measure_breakdown_by_pid,
    render_breakdown,
)
from repro.baselines import flick_roundtrip_component_ns
from repro.core.config import DEFAULT_CONFIG

NULL_CALL = """
@nxp func f() { return 0; }
func main(n) {
    var i = 0;
    while (i < n) { f(); i = i + 1; }
    return 0;
}
"""

NESTED = """
func host_leaf(x) { return x; }
@nxp func dev(x) { return host_leaf(x); }
func main() { return dev(1); }
"""


@pytest.fixture(scope="module")
def traced_machine():
    machine = FlickMachine()
    machine.run_program(NULL_CALL, args=[10])
    return machine


class TestMeasureBreakdown:
    def test_counts_simple_sessions(self, traced_machine):
        b = measure_breakdown(traced_machine.trace)
        assert b.sessions == 10

    def test_total_matches_calibrated_roundtrip(self, traced_machine):
        """Measured phases + the 0.7us fault = Table III's 18.3us
        (modulo the interpreted nop's handful of instructions)."""
        b = measure_breakdown(traced_machine.trace)
        total_us = (b.total_ns + DEFAULT_CONFIG.host_page_fault_ns) / 1000
        # Sessions include the first (cold) call, so allow some slack up.
        assert 17.5 < total_us < 21.0

    def test_phases_match_config_pricing(self, traced_machine):
        """Cross-check: the measured host_out phase equals the summed
        config constants for that path."""
        b = measure_breakdown(traced_machine.trace)
        cfg = DEFAULT_CONFIG
        expected_host_out = (
            cfg.host_handler_entry_ns
            + cfg.host_ioctl_entry_ns
            + cfg.host_desc_build_ns
            + cfg.host_context_switch_ns
            + cfg.host_dma_kick_ns
        )
        # First session also pays stack allocation; means sit slightly above.
        assert b.phases["host_out"] == pytest.approx(expected_host_out, rel=0.10)

    def test_host_resume_is_biggest_host_phase(self, traced_machine):
        """The wakeup path dominates (the cost of releasing the core)."""
        b = measure_breakdown(traced_machine.trace)
        assert b.phases["host_resume"] > b.phases["host_out"]

    def test_nested_sessions_decomposed(self):
        """A session containing an NxP->host call is measured, not
        skipped: NxP-resident legs under nxp_execute, away-time under
        nested_host, and the phases tile the session duration exactly."""
        machine = FlickMachine()
        machine.run_program(NESTED)
        b = measure_breakdown(machine.trace)
        assert b.sessions == 1
        assert b.nested_sessions == 1
        assert b.phases["nested_host"] > 0.0
        assert b.phases["nxp_execute"] > 0.0
        start = machine.trace.filter("h2n_call_start")[0]
        done = machine.trace.filter("h2n_call_done")[-1]
        # The outer session's phases sum to its wall duration (the inner
        # events all belong to NxP residency or nested_host intervals).
        assert b.total_ns == pytest.approx(done.time - start.time, abs=1e-6)

    def test_simple_sessions_have_zero_nested_host(self, traced_machine):
        b = measure_breakdown(traced_machine.trace)
        assert b.nested_sessions == 0
        assert b.phases["nested_host"] == 0.0

    def test_empty_trace(self):
        machine = FlickMachine()
        b = measure_breakdown(machine.trace)
        assert b.sessions == 0
        assert b.total_ns == 0.0

    def test_concurrent_tasks_match_single_task_oracle(self):
        """Two concurrent migrating tasks (phases interleaved in the
        global event stream) each measure the same per-pid phase means a
        single-task oracle run measures — no cross-task conflation.

        Host-side phases are exact.  NxP-side phases carry genuine
        shared-resource effects which are asserted tightly: the second
        task's first dispatch waits out poll-loop alignment (bounded by
        one poll period amortized over its sessions), and alternating
        address spaces flushes the NxP TLB so every session re-walks its
        pages — a surcharge that is identical for both pids and bounded
        by the oracle's own cold first session.
        """
        oracle = FlickMachine()
        oracle.run_program(NULL_CALL, args=[5])
        ob = measure_breakdown(oracle.trace)
        cold = FlickMachine()
        cold.run_program(NULL_CALL, args=[1])
        cold_nxp = measure_breakdown(cold.trace).phases["nxp_execute"]

        m = FlickMachine(host_cores=2)
        exe = m.compile(NULL_CALL)
        p1 = m.load(exe, name="a")
        p2 = m.load(exe, name="b")
        m.spawn(p1, args=[5])
        m.sim.run(until=9500)  # half a round trip: phases interleave
        m.spawn(p2, args=[5])
        m.run()

        # The two tasks' events genuinely interleave in the stream.
        order = [e.pid for e in m.trace.events if e.pid in (p1.pid, p2.pid)]
        assert sum(1 for a, b in zip(order, order[1:]) if a != b) > 10

        by_pid = measure_breakdown_by_pid(m.trace)
        assert set(by_pid) == {p1.pid, p2.pid}
        for b in by_pid.values():
            assert b.sessions == 5
            for phase in ("host_out", "return_to_host", "host_resume", "nested_host"):
                assert b.phases[phase] == pytest.approx(ob.phases[phase], abs=1e-6)
            lag = b.phases["transfer_to_nxp"] - ob.phases["transfer_to_nxp"]
            assert 0.0 <= lag <= DEFAULT_CONFIG.nxp_poll_period_ns
            assert ob.phases["nxp_execute"] <= b.phases["nxp_execute"] <= cold_nxp
        # The TLB-thrash surcharge attributes identically to both pids.
        assert by_pid[p1.pid].phases["nxp_execute"] == pytest.approx(
            by_pid[p2.pid].phases["nxp_execute"], abs=1e-6
        )

    def test_pid_filter(self):
        machine = FlickMachine(host_cores=2)
        exe = machine.compile(NULL_CALL)
        p1 = machine.load(exe, name="a")
        p2 = machine.load(exe, name="b")
        machine.spawn(p1, args=[3])
        machine.spawn(p2, args=[5])
        machine.run()
        assert measure_breakdown(machine.trace, pid=p1.pid).sessions == 3
        assert measure_breakdown(machine.trace, pid=p2.pid).sessions == 5


class TestRender:
    def test_render_includes_all_phases_and_total(self, traced_machine):
        text = render_breakdown(measure_breakdown(traced_machine.trace))
        for phase in ("host_out", "transfer_to_nxp", "nxp_execute", "return_to_host", "host_resume"):
            assert phase in text
        assert "TOTAL" in text
        assert "page fault" in text
