"""Critical-path extraction: the exact-tiling property and tail attribution.

The load-bearing invariant: for every request of a traced run —
interpreted or hosted, clean or suffering retries/failover — the phase
breakdown partitions the measured latency *exactly* (``math.fsum`` of
phases equals ``end - arrival`` to float precision).  Nothing
double-counted, nothing unattributed.
"""

import math
from dataclasses import replace

import pytest

from repro.analysis.critical_path import (
    DEFAULT_BANDS,
    PHASES,
    RequestPath,
    extract_request_paths,
    render_why,
    tail_attribution,
    why_doc,
    why_report,
)
from repro.analysis.serving import (
    RequestRecord,
    TrafficConfig,
    aim_kill_ns,
    run_serving,
)
from repro.core.config import DEFAULT_CONFIG
from repro.core.hosted import HostedMachine, HostedProgram
from repro.sim.faults import FaultRule

QUICK_TRACED = TrafficConfig(qps=2000.0, requests=24, clients=3, seed=7, traced=True)


def assert_tiles(path):
    assert math.isclose(
        path.phase_sum_ns, path.latency_ns, rel_tol=1e-9, abs_tol=1e-6
    ), (
        f"request {path.trace_id}: phases sum {path.phase_sum_ns} != "
        f"latency {path.latency_ns} ({path.phases})"
    )
    assert set(path.phases) <= set(PHASES)
    assert all(v >= 0.0 for v in path.phases.values())
    assert path.dominant in PHASES


class TestInterpretedTiling:
    def test_clean_run_tiles_exactly(self):
        r = run_serving(QUICK_TRACED)
        assert len(r.paths) == len(r.records)
        for path in r.paths:
            assert_tiles(path)

    def test_clean_run_phases_are_plausible(self):
        r = run_serving(QUICK_TRACED)
        # every request crosses the ISA boundary at least once: protocol
        # and device time must appear somewhere in the run
        assert any(p.phases.get("protocol_host", 0.0) > 0.0 for p in r.paths)
        assert any(p.phases.get("nxp_execute", 0.0) > 0.0 for p in r.paths)
        for p in r.paths:
            assert p.retries == 0
            assert p.failovers == 0
            assert not p.fallback

    def test_multi_nxp_devices_on_path(self):
        tc = replace(QUICK_TRACED, nxps=2, policy="round_robin")
        r = run_serving(tc)
        for path in r.paths:
            assert_tiles(path)
        devices = set()
        for p in r.paths:
            devices.update(p.devices)
        assert devices == {0, 1}
        assert all(
            lbl.startswith("nxp") for p in r.paths for lbl in p.device_labels
        )


class TestKillRunTiling:
    @pytest.fixture(scope="class")
    def killed(self):
        base = TrafficConfig(
            qps=20_000.0,
            requests=120,
            clients=8,
            seed=7,
            nxps=2,
            policy="round_robin",
            traced=True,
        )
        baseline = run_serving(base)
        kill_at = aim_kill_ns(baseline, base.kill_device)
        return run_serving(replace(base, kill_at_ns=kill_at))

    def test_tiles_exactly_under_failover(self, killed):
        for path in killed.paths:
            assert_tiles(path)

    def test_recovery_phases_attributed(self, killed):
        tripped = [p for p in killed.paths if p.retries > 0]
        assert tripped, "aimed kill produced no watchdog trips"
        recovered = [
            p
            for p in killed.paths
            if p.phases.get("retry_backoff", 0.0) > 0.0
            or p.phases.get("failover", 0.0) > 0.0
        ]
        assert recovered

    def test_why_names_recovery_with_exemplars(self, killed):
        rep = why_report(killed.paths, percentile=99.0)
        assert rep.culprit_phase in ("failover", "retry_backoff")
        assert rep.tail.exemplars
        # exemplars are real request trace ids from this run
        ids = {p.trace_id for p in killed.paths}
        assert set(rep.tail.exemplars) <= ids


def _traced_hosted_run(prog, cfg, entry="main", args=()):
    """Run a hosted program under a synthetic serve_request root and
    fold it into a RequestPath."""
    hm = HostedMachine(prog, cfg=cfg)
    tr = hm.machine.trace
    tid = "req-hosted-0000"
    root = tr.open_span("serve_request", pid=None, trace_id=tid, index=0)
    orig = hm.machine.kernel.register_task

    def hook(task):
        orig(task)
        tr.set_context(task.pid, tid, root_span_id=root.attrs["span_id"])

    hm.machine.kernel.register_task = hook
    arrival = hm.sim.now
    out = hm.run(entry, list(args))
    end = hm._thread.finished_at
    tr.close(root)
    rec = RequestRecord(
        index=0,
        kind="hosted",
        client=0,
        arrival_ns=arrival,
        start_ns=arrival,
        end_ns=end,
        ok=True,
    )
    (path,) = extract_request_paths(tr, [rec])
    return out, path


def _hosted_program():
    prog = HostedProgram()

    @prog.nxp()
    def dev(ctx, x):
        ctx.compute(300)
        return x + 7
        yield

    @prog.host()
    def main(ctx, n):
        total = 0
        for i in range(n):
            total += yield from ctx.call("dev", i)
        return total

    return prog


class TestHostedTiling:
    def test_hosted_clean_run_tiles(self):
        cfg = DEFAULT_CONFIG.with_overrides(trace_context=True)
        out, path = _traced_hosted_run(_hosted_program(), cfg, args=[3])
        assert out.retval == 0 + 1 + 2 + 3 * 7
        assert_tiles(path)
        assert path.phases.get("nxp_execute", 0.0) > 0.0
        assert path.phases.get("protocol_host", 0.0) > 0.0
        assert path.retries == 0

    def test_hosted_retry_run_tiles(self):
        cfg = DEFAULT_CONFIG.with_overrides(
            trace_context=True,
            faults=(FaultRule("dma_drop", direction="h2n", nth=1, count=1),),
            migration_watchdog_ns=20_000.0,
        )
        out, path = _traced_hosted_run(_hosted_program(), cfg, args=[3])
        assert out.retval == 0 + 1 + 2 + 3 * 7
        assert_tiles(path)
        assert path.retries >= 1
        assert path.phases.get("retry_backoff", 0.0) > 0.0


def mk_path(idx, latency_ns, phases, ok=True):
    dominant = max(PHASES, key=lambda p: (phases.get(p, 0.0), -PHASES.index(p)))
    return RequestPath(
        trace_id=f"req-s-{idx:04d}",
        index=idx,
        kind="nisa",
        ok=ok,
        arrival_ns=0.0,
        end_ns=latency_ns,
        phases=phases,
        dominant=dominant,
    )


class TestTailAttribution:
    def test_default_bands_partition(self):
        paths = [
            mk_path(i, 1000.0 * (i + 1), {"host_execute": 1000.0 * (i + 1)})
            for i in range(100)
        ]
        bands = tail_attribution(paths)
        assert [b.label for b in bands] == ["p0-p50", "p50-p95", "p95-p99", "p99-p100"]
        assert [b.count for b in bands] == [50, 45, 4, 1]

    def test_exemplars_worst_first(self):
        paths = [
            mk_path(i, 1000.0 * (i + 1), {"host_execute": 1000.0 * (i + 1)})
            for i in range(10)
        ]
        (band,) = tail_attribution(paths, bands=((0.0, 100.0),), exemplars=3)
        assert band.exemplars == ("req-s-0009", "req-s-0008", "req-s-0007")

    def test_band_phase_means(self):
        paths = [mk_path(i, 100.0, {"dma_h2n": 60.0, "host_execute": 40.0}) for i in range(4)]
        (band,) = tail_attribution(paths, bands=((0.0, 100.0),))
        assert band.phases["dma_h2n"] == pytest.approx(60.0)
        assert band.phases["host_execute"] == pytest.approx(40.0)
        assert band.dominant == "dma_h2n"


class TestWhyReport:
    def _paths(self):
        # 98 uniform requests plus 2 tail requests that pay a retry storm
        body = [mk_path(i, 100.0, {"host_execute": 100.0}) for i in range(98)]
        tail = [
            mk_path(98 + j, 1000.0, {"host_execute": 100.0, "retry_backoff": 900.0})
            for j in range(2)
        ]
        return body + tail

    def test_culprit_is_excess_over_baseline(self):
        rep = why_report(self._paths(), percentile=99.0)
        assert rep.culprit_phase == "retry_backoff"
        assert "retry" in rep.culprit
        assert rep.tail.label == "p99-p100"
        assert set(rep.tail.exemplars) <= {"req-s-0098", "req-s-0099"}

    def test_render_and_doc(self):
        rep = why_report(self._paths(), percentile=99.0)
        text = render_why(rep)
        assert "verdict:" in text
        assert "req-s-" in text
        doc = why_doc(rep)
        assert doc["schema"] == "flick.why.v1"
        assert doc["culprit_phase"] == "retry_backoff"
        assert doc["tail"]["band"] == "p99-p100"

    def test_empty_paths_raises(self):
        with pytest.raises(ValueError):
            why_report([])

    def test_uniform_load_blames_dominant(self):
        paths = [mk_path(i, 100.0, {"queue_wait": 70.0, "host_execute": 30.0}) for i in range(20)]
        rep = why_report(paths, percentile=99.0)
        assert rep.culprit_phase == "queue_wait"


class TestUnknownTraces:
    def test_untraced_record_still_tiles(self):
        # a record whose spans were never traced: whole window defaults
        # to coarse phases but the tiling invariant still holds
        r = run_serving(QUICK_TRACED)
        trace_less = RequestRecord(
            index=9999,
            kind="nisa",
            client=0,
            arrival_ns=0.0,
            start_ns=0.0,
            end_ns=5000.0,
            ok=True,
        )

        class _EmptyTrace:
            events = []

            @staticmethod
            def finished_spans(name=None):
                return []

        (path,) = extract_request_paths(_EmptyTrace(), [trace_less])
        assert path.trace_id == "req-unknown-9999"
        assert_tiles(path)
        assert path.phases == {"host_execute": 5000.0}
