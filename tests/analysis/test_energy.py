"""Energy model tests: Flick frees the host core; the bill shows it."""

import pytest

from repro.analysis.energy import EnergyEstimate, PowerModel, estimate_energy
from repro.workloads.pointer_chase import run_pointer_chase, _make_program
from repro.core.hosted import HostedMachine
from repro.workloads.pointer_chase import build_chain


def chase_energy(mode, accesses=1024, calls=6):
    prog = _make_program()
    hosted = HostedMachine(prog)
    head = build_chain(hosted, accesses)
    remote = 1 if mode == "flick" else 0
    out = hosted.run("main", [head, accesses, calls, remote, 0.0])
    return estimate_energy(hosted.machine, out.sim_time_ns), out


class TestAccounting:
    def test_host_direct_keeps_core_busy_whole_run(self):
        est, out = chase_energy("host")
        # One core, busy essentially the whole time.
        assert est.host_idle_j < 0.05 * est.host_busy_j

    def test_flick_releases_host_core(self):
        est, out = chase_energy("flick")
        # Most of the run executes on the NxP: the host core is parked.
        assert est.host_busy_j < 0.4 * (est.host_busy_j + est.host_idle_j)

    def test_nxp_busy_only_under_flick(self):
        est_host, _ = chase_energy("host")
        est_flick, _ = chase_energy("flick")
        assert est_host.nxp_busy_j == 0.0
        assert est_flick.nxp_busy_j > 0.0


class TestComparison:
    def test_flick_uses_less_energy_and_less_time(self):
        est_host, out_host = chase_energy("host")
        est_flick, out_flick = chase_energy("flick")
        assert out_flick.sim_time_ns < out_host.sim_time_ns  # faster
        assert est_flick.total_j < est_host.total_j  # and cheaper

    def test_energy_advantage_exceeds_time_advantage(self):
        """Flick wins twice: shorter runtime *and* the expensive core is
        idle for most of it."""
        est_host, out_host = chase_energy("host")
        est_flick, out_flick = chase_energy("flick")
        speedup = out_host.sim_time_ns / out_flick.sim_time_ns
        energy_ratio = est_host.total_j / est_flick.total_j
        assert energy_ratio > speedup

    def test_power_model_is_sweepable(self):
        est_default, out = chase_energy("flick")
        expensive_nxp = PowerModel(nxp_active_w=50.0)  # absurd NxP
        from repro.workloads.pointer_chase import _make_program

        # Re-estimate the same run under a different model.
        est2 = estimate_energy(out.machine, out.sim_time_ns, model=expensive_nxp)
        assert est2.total_j > est_default.total_j


class TestValidation:
    def test_zero_duration_rejected(self):
        est_host, out = chase_energy("host")
        with pytest.raises(ValueError):
            estimate_energy(out.machine, 0)

    def test_estimate_fields_sum(self):
        est, _ = chase_energy("flick")
        assert est.total_j == pytest.approx(
            est.host_busy_j + est.host_idle_j + est.nxp_busy_j + est.nxp_idle_j
        )
        d = est.as_dict()
        assert set(d) == {"host_busy_j", "host_idle_j", "nxp_busy_j", "nxp_idle_j", "total_j"}
